# Empty dependencies file for test_dirigent.
# This may be replaced when dependencies are built.
