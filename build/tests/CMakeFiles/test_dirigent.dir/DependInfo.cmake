
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dirigent/coarse_controller_test.cc" "tests/CMakeFiles/test_dirigent.dir/dirigent/coarse_controller_test.cc.o" "gcc" "tests/CMakeFiles/test_dirigent.dir/dirigent/coarse_controller_test.cc.o.d"
  "/root/repo/tests/dirigent/fine_controller_test.cc" "tests/CMakeFiles/test_dirigent.dir/dirigent/fine_controller_test.cc.o" "gcc" "tests/CMakeFiles/test_dirigent.dir/dirigent/fine_controller_test.cc.o.d"
  "/root/repo/tests/dirigent/online_profiler_test.cc" "tests/CMakeFiles/test_dirigent.dir/dirigent/online_profiler_test.cc.o" "gcc" "tests/CMakeFiles/test_dirigent.dir/dirigent/online_profiler_test.cc.o.d"
  "/root/repo/tests/dirigent/predictor_edge_test.cc" "tests/CMakeFiles/test_dirigent.dir/dirigent/predictor_edge_test.cc.o" "gcc" "tests/CMakeFiles/test_dirigent.dir/dirigent/predictor_edge_test.cc.o.d"
  "/root/repo/tests/dirigent/predictor_test.cc" "tests/CMakeFiles/test_dirigent.dir/dirigent/predictor_test.cc.o" "gcc" "tests/CMakeFiles/test_dirigent.dir/dirigent/predictor_test.cc.o.d"
  "/root/repo/tests/dirigent/profile_test.cc" "tests/CMakeFiles/test_dirigent.dir/dirigent/profile_test.cc.o" "gcc" "tests/CMakeFiles/test_dirigent.dir/dirigent/profile_test.cc.o.d"
  "/root/repo/tests/dirigent/profiler_test.cc" "tests/CMakeFiles/test_dirigent.dir/dirigent/profiler_test.cc.o" "gcc" "tests/CMakeFiles/test_dirigent.dir/dirigent/profiler_test.cc.o.d"
  "/root/repo/tests/dirigent/progress_test.cc" "tests/CMakeFiles/test_dirigent.dir/dirigent/progress_test.cc.o" "gcc" "tests/CMakeFiles/test_dirigent.dir/dirigent/progress_test.cc.o.d"
  "/root/repo/tests/dirigent/reactive_test.cc" "tests/CMakeFiles/test_dirigent.dir/dirigent/reactive_test.cc.o" "gcc" "tests/CMakeFiles/test_dirigent.dir/dirigent/reactive_test.cc.o.d"
  "/root/repo/tests/dirigent/runtime_test.cc" "tests/CMakeFiles/test_dirigent.dir/dirigent/runtime_test.cc.o" "gcc" "tests/CMakeFiles/test_dirigent.dir/dirigent/runtime_test.cc.o.d"
  "/root/repo/tests/dirigent/scheme_test.cc" "tests/CMakeFiles/test_dirigent.dir/dirigent/scheme_test.cc.o" "gcc" "tests/CMakeFiles/test_dirigent.dir/dirigent/scheme_test.cc.o.d"
  "/root/repo/tests/dirigent/trace_test.cc" "tests/CMakeFiles/test_dirigent.dir/dirigent/trace_test.cc.o" "gcc" "tests/CMakeFiles/test_dirigent.dir/dirigent/trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dirigent_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
