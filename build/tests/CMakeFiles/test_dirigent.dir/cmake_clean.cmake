file(REMOVE_RECURSE
  "CMakeFiles/test_dirigent.dir/dirigent/coarse_controller_test.cc.o"
  "CMakeFiles/test_dirigent.dir/dirigent/coarse_controller_test.cc.o.d"
  "CMakeFiles/test_dirigent.dir/dirigent/fine_controller_test.cc.o"
  "CMakeFiles/test_dirigent.dir/dirigent/fine_controller_test.cc.o.d"
  "CMakeFiles/test_dirigent.dir/dirigent/online_profiler_test.cc.o"
  "CMakeFiles/test_dirigent.dir/dirigent/online_profiler_test.cc.o.d"
  "CMakeFiles/test_dirigent.dir/dirigent/predictor_edge_test.cc.o"
  "CMakeFiles/test_dirigent.dir/dirigent/predictor_edge_test.cc.o.d"
  "CMakeFiles/test_dirigent.dir/dirigent/predictor_test.cc.o"
  "CMakeFiles/test_dirigent.dir/dirigent/predictor_test.cc.o.d"
  "CMakeFiles/test_dirigent.dir/dirigent/profile_test.cc.o"
  "CMakeFiles/test_dirigent.dir/dirigent/profile_test.cc.o.d"
  "CMakeFiles/test_dirigent.dir/dirigent/profiler_test.cc.o"
  "CMakeFiles/test_dirigent.dir/dirigent/profiler_test.cc.o.d"
  "CMakeFiles/test_dirigent.dir/dirigent/progress_test.cc.o"
  "CMakeFiles/test_dirigent.dir/dirigent/progress_test.cc.o.d"
  "CMakeFiles/test_dirigent.dir/dirigent/reactive_test.cc.o"
  "CMakeFiles/test_dirigent.dir/dirigent/reactive_test.cc.o.d"
  "CMakeFiles/test_dirigent.dir/dirigent/runtime_test.cc.o"
  "CMakeFiles/test_dirigent.dir/dirigent/runtime_test.cc.o.d"
  "CMakeFiles/test_dirigent.dir/dirigent/scheme_test.cc.o"
  "CMakeFiles/test_dirigent.dir/dirigent/scheme_test.cc.o.d"
  "CMakeFiles/test_dirigent.dir/dirigent/trace_test.cc.o"
  "CMakeFiles/test_dirigent.dir/dirigent/trace_test.cc.o.d"
  "test_dirigent"
  "test_dirigent.pdb"
  "test_dirigent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dirigent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
