file(REMOVE_RECURSE
  "CMakeFiles/test_machine.dir/machine/bwguard_integration_test.cc.o"
  "CMakeFiles/test_machine.dir/machine/bwguard_integration_test.cc.o.d"
  "CMakeFiles/test_machine.dir/machine/cat_test.cc.o"
  "CMakeFiles/test_machine.dir/machine/cat_test.cc.o.d"
  "CMakeFiles/test_machine.dir/machine/cpufreq_test.cc.o"
  "CMakeFiles/test_machine.dir/machine/cpufreq_test.cc.o.d"
  "CMakeFiles/test_machine.dir/machine/listener_reentrancy_test.cc.o"
  "CMakeFiles/test_machine.dir/machine/listener_reentrancy_test.cc.o.d"
  "CMakeFiles/test_machine.dir/machine/machine_test.cc.o"
  "CMakeFiles/test_machine.dir/machine/machine_test.cc.o.d"
  "CMakeFiles/test_machine.dir/machine/os_test.cc.o"
  "CMakeFiles/test_machine.dir/machine/os_test.cc.o.d"
  "CMakeFiles/test_machine.dir/machine/sampler_test.cc.o"
  "CMakeFiles/test_machine.dir/machine/sampler_test.cc.o.d"
  "test_machine"
  "test_machine.pdb"
  "test_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
