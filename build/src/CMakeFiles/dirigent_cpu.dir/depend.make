# Empty dependencies file for dirigent_cpu.
# This may be replaced when dependencies are built.
