file(REMOVE_RECURSE
  "CMakeFiles/dirigent_cpu.dir/cpu/core.cc.o"
  "CMakeFiles/dirigent_cpu.dir/cpu/core.cc.o.d"
  "CMakeFiles/dirigent_cpu.dir/cpu/perf_counters.cc.o"
  "CMakeFiles/dirigent_cpu.dir/cpu/perf_counters.cc.o.d"
  "libdirigent_cpu.a"
  "libdirigent_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirigent_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
