src/CMakeFiles/dirigent_cpu.dir/cpu/perf_counters.cc.o: \
 /root/repo/src/cpu/perf_counters.cc /usr/include/stdc-predef.h \
 /root/repo/src/cpu/perf_counters.h
