file(REMOVE_RECURSE
  "libdirigent_cpu.a"
)
