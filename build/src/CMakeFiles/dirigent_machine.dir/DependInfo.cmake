
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/cat.cc" "src/CMakeFiles/dirigent_machine.dir/machine/cat.cc.o" "gcc" "src/CMakeFiles/dirigent_machine.dir/machine/cat.cc.o.d"
  "/root/repo/src/machine/cpufreq.cc" "src/CMakeFiles/dirigent_machine.dir/machine/cpufreq.cc.o" "gcc" "src/CMakeFiles/dirigent_machine.dir/machine/cpufreq.cc.o.d"
  "/root/repo/src/machine/machine.cc" "src/CMakeFiles/dirigent_machine.dir/machine/machine.cc.o" "gcc" "src/CMakeFiles/dirigent_machine.dir/machine/machine.cc.o.d"
  "/root/repo/src/machine/os.cc" "src/CMakeFiles/dirigent_machine.dir/machine/os.cc.o" "gcc" "src/CMakeFiles/dirigent_machine.dir/machine/os.cc.o.d"
  "/root/repo/src/machine/sampler.cc" "src/CMakeFiles/dirigent_machine.dir/machine/sampler.cc.o" "gcc" "src/CMakeFiles/dirigent_machine.dir/machine/sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dirigent_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
