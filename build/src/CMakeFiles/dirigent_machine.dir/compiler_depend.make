# Empty compiler generated dependencies file for dirigent_machine.
# This may be replaced when dependencies are built.
