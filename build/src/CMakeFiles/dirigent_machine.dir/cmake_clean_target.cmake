file(REMOVE_RECURSE
  "libdirigent_machine.a"
)
