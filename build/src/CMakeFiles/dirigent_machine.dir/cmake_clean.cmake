file(REMOVE_RECURSE
  "CMakeFiles/dirigent_machine.dir/machine/cat.cc.o"
  "CMakeFiles/dirigent_machine.dir/machine/cat.cc.o.d"
  "CMakeFiles/dirigent_machine.dir/machine/cpufreq.cc.o"
  "CMakeFiles/dirigent_machine.dir/machine/cpufreq.cc.o.d"
  "CMakeFiles/dirigent_machine.dir/machine/machine.cc.o"
  "CMakeFiles/dirigent_machine.dir/machine/machine.cc.o.d"
  "CMakeFiles/dirigent_machine.dir/machine/os.cc.o"
  "CMakeFiles/dirigent_machine.dir/machine/os.cc.o.d"
  "CMakeFiles/dirigent_machine.dir/machine/sampler.cc.o"
  "CMakeFiles/dirigent_machine.dir/machine/sampler.cc.o.d"
  "libdirigent_machine.a"
  "libdirigent_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirigent_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
