# Empty compiler generated dependencies file for dirigent_sim.
# This may be replaced when dependencies are built.
