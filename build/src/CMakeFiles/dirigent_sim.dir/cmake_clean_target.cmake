file(REMOVE_RECURSE
  "libdirigent_sim.a"
)
