file(REMOVE_RECURSE
  "CMakeFiles/dirigent_sim.dir/sim/engine.cc.o"
  "CMakeFiles/dirigent_sim.dir/sim/engine.cc.o.d"
  "CMakeFiles/dirigent_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/dirigent_sim.dir/sim/event_queue.cc.o.d"
  "libdirigent_sim.a"
  "libdirigent_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirigent_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
