file(REMOVE_RECURSE
  "libdirigent_common.a"
)
