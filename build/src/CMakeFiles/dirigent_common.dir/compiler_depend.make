# Empty compiler generated dependencies file for dirigent_common.
# This may be replaced when dependencies are built.
