file(REMOVE_RECURSE
  "CMakeFiles/dirigent_common.dir/common/config.cc.o"
  "CMakeFiles/dirigent_common.dir/common/config.cc.o.d"
  "CMakeFiles/dirigent_common.dir/common/log.cc.o"
  "CMakeFiles/dirigent_common.dir/common/log.cc.o.d"
  "CMakeFiles/dirigent_common.dir/common/random.cc.o"
  "CMakeFiles/dirigent_common.dir/common/random.cc.o.d"
  "CMakeFiles/dirigent_common.dir/common/stats.cc.o"
  "CMakeFiles/dirigent_common.dir/common/stats.cc.o.d"
  "CMakeFiles/dirigent_common.dir/common/strfmt.cc.o"
  "CMakeFiles/dirigent_common.dir/common/strfmt.cc.o.d"
  "CMakeFiles/dirigent_common.dir/common/table.cc.o"
  "CMakeFiles/dirigent_common.dir/common/table.cc.o.d"
  "libdirigent_common.a"
  "libdirigent_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirigent_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
