
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/benchmarks.cc" "src/CMakeFiles/dirigent_workload.dir/workload/benchmarks.cc.o" "gcc" "src/CMakeFiles/dirigent_workload.dir/workload/benchmarks.cc.o.d"
  "/root/repo/src/workload/mix.cc" "src/CMakeFiles/dirigent_workload.dir/workload/mix.cc.o" "gcc" "src/CMakeFiles/dirigent_workload.dir/workload/mix.cc.o.d"
  "/root/repo/src/workload/parser.cc" "src/CMakeFiles/dirigent_workload.dir/workload/parser.cc.o" "gcc" "src/CMakeFiles/dirigent_workload.dir/workload/parser.cc.o.d"
  "/root/repo/src/workload/phase.cc" "src/CMakeFiles/dirigent_workload.dir/workload/phase.cc.o" "gcc" "src/CMakeFiles/dirigent_workload.dir/workload/phase.cc.o.d"
  "/root/repo/src/workload/rotate.cc" "src/CMakeFiles/dirigent_workload.dir/workload/rotate.cc.o" "gcc" "src/CMakeFiles/dirigent_workload.dir/workload/rotate.cc.o.d"
  "/root/repo/src/workload/task.cc" "src/CMakeFiles/dirigent_workload.dir/workload/task.cc.o" "gcc" "src/CMakeFiles/dirigent_workload.dir/workload/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dirigent_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
