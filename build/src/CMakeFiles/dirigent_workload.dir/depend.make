# Empty dependencies file for dirigent_workload.
# This may be replaced when dependencies are built.
