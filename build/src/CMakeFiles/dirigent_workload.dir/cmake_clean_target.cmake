file(REMOVE_RECURSE
  "libdirigent_workload.a"
)
