file(REMOVE_RECURSE
  "CMakeFiles/dirigent_workload.dir/workload/benchmarks.cc.o"
  "CMakeFiles/dirigent_workload.dir/workload/benchmarks.cc.o.d"
  "CMakeFiles/dirigent_workload.dir/workload/mix.cc.o"
  "CMakeFiles/dirigent_workload.dir/workload/mix.cc.o.d"
  "CMakeFiles/dirigent_workload.dir/workload/parser.cc.o"
  "CMakeFiles/dirigent_workload.dir/workload/parser.cc.o.d"
  "CMakeFiles/dirigent_workload.dir/workload/phase.cc.o"
  "CMakeFiles/dirigent_workload.dir/workload/phase.cc.o.d"
  "CMakeFiles/dirigent_workload.dir/workload/rotate.cc.o"
  "CMakeFiles/dirigent_workload.dir/workload/rotate.cc.o.d"
  "CMakeFiles/dirigent_workload.dir/workload/task.cc.o"
  "CMakeFiles/dirigent_workload.dir/workload/task.cc.o.d"
  "libdirigent_workload.a"
  "libdirigent_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirigent_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
