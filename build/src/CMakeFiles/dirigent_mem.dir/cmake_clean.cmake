file(REMOVE_RECURSE
  "CMakeFiles/dirigent_mem.dir/mem/bwguard.cc.o"
  "CMakeFiles/dirigent_mem.dir/mem/bwguard.cc.o.d"
  "CMakeFiles/dirigent_mem.dir/mem/cache.cc.o"
  "CMakeFiles/dirigent_mem.dir/mem/cache.cc.o.d"
  "CMakeFiles/dirigent_mem.dir/mem/dram.cc.o"
  "CMakeFiles/dirigent_mem.dir/mem/dram.cc.o.d"
  "libdirigent_mem.a"
  "libdirigent_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirigent_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
