file(REMOVE_RECURSE
  "libdirigent_mem.a"
)
