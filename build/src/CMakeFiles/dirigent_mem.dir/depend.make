# Empty dependencies file for dirigent_mem.
# This may be replaced when dependencies are built.
