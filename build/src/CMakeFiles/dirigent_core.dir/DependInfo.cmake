
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dirigent/coarse_controller.cc" "src/CMakeFiles/dirigent_core.dir/dirigent/coarse_controller.cc.o" "gcc" "src/CMakeFiles/dirigent_core.dir/dirigent/coarse_controller.cc.o.d"
  "/root/repo/src/dirigent/fine_controller.cc" "src/CMakeFiles/dirigent_core.dir/dirigent/fine_controller.cc.o" "gcc" "src/CMakeFiles/dirigent_core.dir/dirigent/fine_controller.cc.o.d"
  "/root/repo/src/dirigent/online_profiler.cc" "src/CMakeFiles/dirigent_core.dir/dirigent/online_profiler.cc.o" "gcc" "src/CMakeFiles/dirigent_core.dir/dirigent/online_profiler.cc.o.d"
  "/root/repo/src/dirigent/predictor.cc" "src/CMakeFiles/dirigent_core.dir/dirigent/predictor.cc.o" "gcc" "src/CMakeFiles/dirigent_core.dir/dirigent/predictor.cc.o.d"
  "/root/repo/src/dirigent/profile.cc" "src/CMakeFiles/dirigent_core.dir/dirigent/profile.cc.o" "gcc" "src/CMakeFiles/dirigent_core.dir/dirigent/profile.cc.o.d"
  "/root/repo/src/dirigent/profiler.cc" "src/CMakeFiles/dirigent_core.dir/dirigent/profiler.cc.o" "gcc" "src/CMakeFiles/dirigent_core.dir/dirigent/profiler.cc.o.d"
  "/root/repo/src/dirigent/progress.cc" "src/CMakeFiles/dirigent_core.dir/dirigent/progress.cc.o" "gcc" "src/CMakeFiles/dirigent_core.dir/dirigent/progress.cc.o.d"
  "/root/repo/src/dirigent/reactive.cc" "src/CMakeFiles/dirigent_core.dir/dirigent/reactive.cc.o" "gcc" "src/CMakeFiles/dirigent_core.dir/dirigent/reactive.cc.o.d"
  "/root/repo/src/dirigent/runtime.cc" "src/CMakeFiles/dirigent_core.dir/dirigent/runtime.cc.o" "gcc" "src/CMakeFiles/dirigent_core.dir/dirigent/runtime.cc.o.d"
  "/root/repo/src/dirigent/scheme.cc" "src/CMakeFiles/dirigent_core.dir/dirigent/scheme.cc.o" "gcc" "src/CMakeFiles/dirigent_core.dir/dirigent/scheme.cc.o.d"
  "/root/repo/src/dirigent/trace.cc" "src/CMakeFiles/dirigent_core.dir/dirigent/trace.cc.o" "gcc" "src/CMakeFiles/dirigent_core.dir/dirigent/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dirigent_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
