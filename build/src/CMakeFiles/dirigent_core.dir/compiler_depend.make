# Empty compiler generated dependencies file for dirigent_core.
# This may be replaced when dependencies are built.
