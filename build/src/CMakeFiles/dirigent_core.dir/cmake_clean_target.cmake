file(REMOVE_RECURSE
  "libdirigent_core.a"
)
