file(REMOVE_RECURSE
  "CMakeFiles/dirigent_core.dir/dirigent/coarse_controller.cc.o"
  "CMakeFiles/dirigent_core.dir/dirigent/coarse_controller.cc.o.d"
  "CMakeFiles/dirigent_core.dir/dirigent/fine_controller.cc.o"
  "CMakeFiles/dirigent_core.dir/dirigent/fine_controller.cc.o.d"
  "CMakeFiles/dirigent_core.dir/dirigent/online_profiler.cc.o"
  "CMakeFiles/dirigent_core.dir/dirigent/online_profiler.cc.o.d"
  "CMakeFiles/dirigent_core.dir/dirigent/predictor.cc.o"
  "CMakeFiles/dirigent_core.dir/dirigent/predictor.cc.o.d"
  "CMakeFiles/dirigent_core.dir/dirigent/profile.cc.o"
  "CMakeFiles/dirigent_core.dir/dirigent/profile.cc.o.d"
  "CMakeFiles/dirigent_core.dir/dirigent/profiler.cc.o"
  "CMakeFiles/dirigent_core.dir/dirigent/profiler.cc.o.d"
  "CMakeFiles/dirigent_core.dir/dirigent/progress.cc.o"
  "CMakeFiles/dirigent_core.dir/dirigent/progress.cc.o.d"
  "CMakeFiles/dirigent_core.dir/dirigent/reactive.cc.o"
  "CMakeFiles/dirigent_core.dir/dirigent/reactive.cc.o.d"
  "CMakeFiles/dirigent_core.dir/dirigent/runtime.cc.o"
  "CMakeFiles/dirigent_core.dir/dirigent/runtime.cc.o.d"
  "CMakeFiles/dirigent_core.dir/dirigent/scheme.cc.o"
  "CMakeFiles/dirigent_core.dir/dirigent/scheme.cc.o.d"
  "CMakeFiles/dirigent_core.dir/dirigent/trace.cc.o"
  "CMakeFiles/dirigent_core.dir/dirigent/trace.cc.o.d"
  "libdirigent_core.a"
  "libdirigent_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirigent_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
