# Empty compiler generated dependencies file for dirigent_harness.
# This may be replaced when dependencies are built.
