
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/arrivals.cc" "src/CMakeFiles/dirigent_harness.dir/harness/arrivals.cc.o" "gcc" "src/CMakeFiles/dirigent_harness.dir/harness/arrivals.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/dirigent_harness.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/dirigent_harness.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/metrics.cc" "src/CMakeFiles/dirigent_harness.dir/harness/metrics.cc.o" "gcc" "src/CMakeFiles/dirigent_harness.dir/harness/metrics.cc.o.d"
  "/root/repo/src/harness/report.cc" "src/CMakeFiles/dirigent_harness.dir/harness/report.cc.o" "gcc" "src/CMakeFiles/dirigent_harness.dir/harness/report.cc.o.d"
  "/root/repo/src/harness/reservation.cc" "src/CMakeFiles/dirigent_harness.dir/harness/reservation.cc.o" "gcc" "src/CMakeFiles/dirigent_harness.dir/harness/reservation.cc.o.d"
  "/root/repo/src/harness/timeline.cc" "src/CMakeFiles/dirigent_harness.dir/harness/timeline.cc.o" "gcc" "src/CMakeFiles/dirigent_harness.dir/harness/timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dirigent_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dirigent_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
