file(REMOVE_RECURSE
  "CMakeFiles/dirigent_harness.dir/harness/arrivals.cc.o"
  "CMakeFiles/dirigent_harness.dir/harness/arrivals.cc.o.d"
  "CMakeFiles/dirigent_harness.dir/harness/experiment.cc.o"
  "CMakeFiles/dirigent_harness.dir/harness/experiment.cc.o.d"
  "CMakeFiles/dirigent_harness.dir/harness/metrics.cc.o"
  "CMakeFiles/dirigent_harness.dir/harness/metrics.cc.o.d"
  "CMakeFiles/dirigent_harness.dir/harness/report.cc.o"
  "CMakeFiles/dirigent_harness.dir/harness/report.cc.o.d"
  "CMakeFiles/dirigent_harness.dir/harness/reservation.cc.o"
  "CMakeFiles/dirigent_harness.dir/harness/reservation.cc.o.d"
  "CMakeFiles/dirigent_harness.dir/harness/timeline.cc.o"
  "CMakeFiles/dirigent_harness.dir/harness/timeline.cc.o.d"
  "libdirigent_harness.a"
  "libdirigent_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirigent_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
