file(REMOVE_RECURSE
  "libdirigent_harness.a"
)
