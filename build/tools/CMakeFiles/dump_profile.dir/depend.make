# Empty dependencies file for dump_profile.
# This may be replaced when dependencies are built.
