file(REMOVE_RECURSE
  "CMakeFiles/dump_profile.dir/dump_profile.cc.o"
  "CMakeFiles/dump_profile.dir/dump_profile.cc.o.d"
  "dump_profile"
  "dump_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
