# Empty compiler generated dependencies file for ablation_heartbeats.
# This may be replaced when dependencies are built.
