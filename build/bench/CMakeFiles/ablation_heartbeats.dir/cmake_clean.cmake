file(REMOVE_RECURSE
  "CMakeFiles/ablation_heartbeats.dir/ablation_heartbeats.cc.o"
  "CMakeFiles/ablation_heartbeats.dir/ablation_heartbeats.cc.o.d"
  "ablation_heartbeats"
  "ablation_heartbeats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heartbeats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
