file(REMOVE_RECURSE
  "CMakeFiles/fig09a_single_bg.dir/fig09a_single_bg.cc.o"
  "CMakeFiles/fig09a_single_bg.dir/fig09a_single_bg.cc.o.d"
  "fig09a_single_bg"
  "fig09a_single_bg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09a_single_bg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
