# Empty compiler generated dependencies file for fig09a_single_bg.
# This may be replaced when dependencies are built.
