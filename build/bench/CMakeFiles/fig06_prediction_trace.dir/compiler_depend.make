# Empty compiler generated dependencies file for fig06_prediction_trace.
# This may be replaced when dependencies are built.
