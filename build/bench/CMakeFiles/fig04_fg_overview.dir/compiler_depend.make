# Empty compiler generated dependencies file for fig04_fg_overview.
# This may be replaced when dependencies are built.
