file(REMOVE_RECURSE
  "CMakeFiles/fig04_fg_overview.dir/fig04_fg_overview.cc.o"
  "CMakeFiles/fig04_fg_overview.dir/fig04_fg_overview.cc.o.d"
  "fig04_fg_overview"
  "fig04_fg_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_fg_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
