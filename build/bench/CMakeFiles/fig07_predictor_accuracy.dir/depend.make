# Empty dependencies file for fig07_predictor_accuracy.
# This may be replaced when dependencies are built.
