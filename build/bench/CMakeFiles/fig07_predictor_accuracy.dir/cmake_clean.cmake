file(REMOVE_RECURSE
  "CMakeFiles/fig07_predictor_accuracy.dir/fig07_predictor_accuracy.cc.o"
  "CMakeFiles/fig07_predictor_accuracy.dir/fig07_predictor_accuracy.cc.o.d"
  "fig07_predictor_accuracy"
  "fig07_predictor_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_predictor_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
