file(REMOVE_RECURSE
  "CMakeFiles/fig02_reservation_sched.dir/fig02_reservation_sched.cc.o"
  "CMakeFiles/fig02_reservation_sched.dir/fig02_reservation_sched.cc.o.d"
  "fig02_reservation_sched"
  "fig02_reservation_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_reservation_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
