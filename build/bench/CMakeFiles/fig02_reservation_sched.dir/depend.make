# Empty dependencies file for fig02_reservation_sched.
# This may be replaced when dependencies are built.
