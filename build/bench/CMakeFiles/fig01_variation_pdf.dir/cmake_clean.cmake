file(REMOVE_RECURSE
  "CMakeFiles/fig01_variation_pdf.dir/fig01_variation_pdf.cc.o"
  "CMakeFiles/fig01_variation_pdf.dir/fig01_variation_pdf.cc.o.d"
  "fig01_variation_pdf"
  "fig01_variation_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_variation_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
