# Empty compiler generated dependencies file for fig01_variation_pdf.
# This may be replaced when dependencies are built.
