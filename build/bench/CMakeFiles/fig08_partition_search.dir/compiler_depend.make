# Empty compiler generated dependencies file for fig08_partition_search.
# This may be replaced when dependencies are built.
