file(REMOVE_RECURSE
  "CMakeFiles/fig08_partition_search.dir/fig08_partition_search.cc.o"
  "CMakeFiles/fig08_partition_search.dir/fig08_partition_search.cc.o.d"
  "fig08_partition_search"
  "fig08_partition_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_partition_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
