# Empty compiler generated dependencies file for fig05_bg_overview.
# This may be replaced when dependencies are built.
