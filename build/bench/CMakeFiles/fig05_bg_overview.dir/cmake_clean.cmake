file(REMOVE_RECURSE
  "CMakeFiles/fig05_bg_overview.dir/fig05_bg_overview.cc.o"
  "CMakeFiles/fig05_bg_overview.dir/fig05_bg_overview.cc.o.d"
  "fig05_bg_overview"
  "fig05_bg_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_bg_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
