file(REMOVE_RECURSE
  "CMakeFiles/ablation_openloop.dir/ablation_openloop.cc.o"
  "CMakeFiles/ablation_openloop.dir/ablation_openloop.cc.o.d"
  "ablation_openloop"
  "ablation_openloop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_openloop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
