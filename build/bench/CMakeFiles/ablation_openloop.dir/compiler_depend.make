# Empty compiler generated dependencies file for ablation_openloop.
# This may be replaced when dependencies are built.
