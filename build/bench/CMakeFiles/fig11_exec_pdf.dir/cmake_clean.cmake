file(REMOVE_RECURSE
  "CMakeFiles/fig11_exec_pdf.dir/fig11_exec_pdf.cc.o"
  "CMakeFiles/fig11_exec_pdf.dir/fig11_exec_pdf.cc.o.d"
  "fig11_exec_pdf"
  "fig11_exec_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_exec_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
