# Empty dependencies file for fig11_exec_pdf.
# This may be replaced when dependencies are built.
