# Empty dependencies file for fig09b_rotate_bg.
# This may be replaced when dependencies are built.
