file(REMOVE_RECURSE
  "CMakeFiles/fig09b_rotate_bg.dir/fig09b_rotate_bg.cc.o"
  "CMakeFiles/fig09b_rotate_bg.dir/fig09b_rotate_bg.cc.o.d"
  "fig09b_rotate_bg"
  "fig09b_rotate_bg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09b_rotate_bg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
