file(REMOVE_RECURSE
  "CMakeFiles/ablation_coarse_only.dir/ablation_coarse_only.cc.o"
  "CMakeFiles/ablation_coarse_only.dir/ablation_coarse_only.cc.o.d"
  "ablation_coarse_only"
  "ablation_coarse_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coarse_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
