# Empty compiler generated dependencies file for ablation_coarse_only.
# This may be replaced when dependencies are built.
