# Empty compiler generated dependencies file for fig13_summary_multi_fg.
# This may be replaced when dependencies are built.
