file(REMOVE_RECURSE
  "CMakeFiles/fig13_summary_multi_fg.dir/fig13_summary_multi_fg.cc.o"
  "CMakeFiles/fig13_summary_multi_fg.dir/fig13_summary_multi_fg.cc.o.d"
  "fig13_summary_multi_fg"
  "fig13_summary_multi_fg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_summary_multi_fg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
