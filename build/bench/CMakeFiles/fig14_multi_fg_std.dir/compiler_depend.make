# Empty compiler generated dependencies file for fig14_multi_fg_std.
# This may be replaced when dependencies are built.
