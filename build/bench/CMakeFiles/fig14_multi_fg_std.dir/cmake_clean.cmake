file(REMOVE_RECURSE
  "CMakeFiles/fig14_multi_fg_std.dir/fig14_multi_fg_std.cc.o"
  "CMakeFiles/fig14_multi_fg_std.dir/fig14_multi_fg_std.cc.o.d"
  "fig14_multi_fg_std"
  "fig14_multi_fg_std.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_multi_fg_std.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
