# Empty compiler generated dependencies file for fig15_tradeoff.
# This may be replaced when dependencies are built.
