file(REMOVE_RECURSE
  "CMakeFiles/fig09c_multi_fg.dir/fig09c_multi_fg.cc.o"
  "CMakeFiles/fig09c_multi_fg.dir/fig09c_multi_fg.cc.o.d"
  "fig09c_multi_fg"
  "fig09c_multi_fg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09c_multi_fg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
