# Empty dependencies file for fig09c_multi_fg.
# This may be replaced when dependencies are built.
