file(REMOVE_RECURSE
  "CMakeFiles/fig12_freq_distribution.dir/fig12_freq_distribution.cc.o"
  "CMakeFiles/fig12_freq_distribution.dir/fig12_freq_distribution.cc.o.d"
  "fig12_freq_distribution"
  "fig12_freq_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_freq_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
