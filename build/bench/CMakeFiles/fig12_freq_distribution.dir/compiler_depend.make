# Empty compiler generated dependencies file for fig12_freq_distribution.
# This may be replaced when dependencies are built.
