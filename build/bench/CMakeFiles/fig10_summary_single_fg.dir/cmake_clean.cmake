file(REMOVE_RECURSE
  "CMakeFiles/fig10_summary_single_fg.dir/fig10_summary_single_fg.cc.o"
  "CMakeFiles/fig10_summary_single_fg.dir/fig10_summary_single_fg.cc.o.d"
  "fig10_summary_single_fg"
  "fig10_summary_single_fg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_summary_single_fg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
