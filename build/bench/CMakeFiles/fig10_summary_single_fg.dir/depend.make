# Empty dependencies file for fig10_summary_single_fg.
# This may be replaced when dependencies are built.
