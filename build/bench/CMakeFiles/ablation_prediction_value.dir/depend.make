# Empty dependencies file for ablation_prediction_value.
# This may be replaced when dependencies are built.
