file(REMOVE_RECURSE
  "CMakeFiles/ablation_prediction_value.dir/ablation_prediction_value.cc.o"
  "CMakeFiles/ablation_prediction_value.dir/ablation_prediction_value.cc.o.d"
  "ablation_prediction_value"
  "ablation_prediction_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prediction_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
