# Empty dependencies file for introspection.
# This may be replaced when dependencies are built.
