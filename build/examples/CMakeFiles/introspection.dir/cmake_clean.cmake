file(REMOVE_RECURSE
  "CMakeFiles/introspection.dir/introspection.cpp.o"
  "CMakeFiles/introspection.dir/introspection.cpp.o.d"
  "introspection"
  "introspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/introspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
