file(REMOVE_RECURSE
  "CMakeFiles/video_offload.dir/video_offload.cpp.o"
  "CMakeFiles/video_offload.dir/video_offload.cpp.o.d"
  "video_offload"
  "video_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
