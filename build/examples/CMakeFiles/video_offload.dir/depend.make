# Empty dependencies file for video_offload.
# This may be replaced when dependencies are built.
