#include "obs/recorder.h"

#include <cmath>

#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent::obs {

Recorder::Recorder(RecorderConfig config) : config_(config)
{
    DIRIGENT_ASSERT(config.samplePeriod.sec() > 0.0,
                    "sample period must be positive");
    events_.reserve(config.reserveEvents);
    slices_.reserve(config.reserveSlices);
    manifest_.version = buildVersion();
}

size_t
Recorder::addSeries(const std::string &name, const std::string &unit)
{
    Series s;
    s.name = name;
    s.unit = unit;
    s.times.reserve(config_.reserveSamples);
    s.values.reserve(config_.reserveSamples);
    series_.push_back(std::move(s));
    return series_.size() - 1;
}

void
Recorder::addEvent(InstantEvent event)
{
    events_.push_back(std::move(event));
}

void
Recorder::addSlice(ExecutionSlice slice)
{
    slices_.push_back(std::move(slice));
}

void
Recorder::addRequest(RequestRecord request)
{
    requests_.push_back(std::move(request));
}

const Series *
Recorder::findSeries(const std::string &name) const
{
    for (const auto &s : series_)
        if (s.name == name)
            return &s;
    return nullptr;
}

void
Recorder::clearData()
{
    for (auto &s : series_) {
        s.times.clear();
        s.values.clear();
    }
    events_.clear();
    slices_.clear();
    requests_.clear();
}

RunProbe::RunProbe(Recorder &recorder, Sources sources)
    : recorder_(recorder), src_(std::move(sources))
{
    DIRIGENT_ASSERT(src_.machine != nullptr, "probe needs a machine");
    DIRIGENT_ASSERT(src_.governor != nullptr, "probe needs a governor");
    DIRIGENT_ASSERT(src_.cat != nullptr, "probe needs a CAT controller");

    const unsigned nCores = src_.machine->numCores();
    lastInstr_.assign(nCores, 0.0);
    lastMisses_.assign(nCores, 0.0);
    for (unsigned c = 0; c < nCores; ++c) {
        coreFreq_.push_back(recorder_.addSeries(
            strfmt("core%u.freq_ghz", c), "GHz"));
        corePaused_.push_back(recorder_.addSeries(
            strfmt("core%u.paused", c), "bool"));
        coreMpki_.push_back(recorder_.addSeries(
            strfmt("core%u.llc_mpki", c), "misses/kinstr"));
    }
    catWays_ = recorder_.addSeries("cat.fg_ways", "ways");
    dramUtil_ = recorder_.addSeries("dram.utilization", "fraction");
    dramBw_ = recorder_.addSeries("dram.bandwidth_gbps", "GB/s");

    for (size_t i = 0; i < src_.fgPids.size(); ++i) {
        fgSlot_[src_.fgPids[i]] = unsigned(i);
        fgPredicted_.push_back(recorder_.addSeries(
            strfmt("fg%zu.predicted_total_ms", i), "ms"));
        fgSlack_.push_back(recorder_.addSeries(
            strfmt("fg%zu.slack_ratio", i), "predicted/deadline"));
        fgAlpha_.push_back(recorder_.addSeries(
            strfmt("fg%zu.alpha_ma", i), "ratio"));
        fgProgress_.push_back(recorder_.addSeries(
            strfmt("fg%zu.progress_fraction", i), "fraction"));
        fgDegraded_.push_back(recorder_.addSeries(
            strfmt("fg%zu.degraded", i), "bool"));
        fgPredError_.push_back(recorder_.addSeries(
            strfmt("fg%zu.prediction_error", i), "fraction"));
    }
}

void
RunProbe::beforeQuantum(Time, Time)
{
}

void
RunProbe::afterQuantum(Time start, Time dt)
{
    Time now = start + dt;
    if (now < nextSample_)
        return;
    takeSample(now);
    // Advance past `now` in whole periods so a long quantum does not
    // produce a burst of make-up samples.
    Time period = recorder_.config().samplePeriod;
    while (nextSample_ <= now)
        nextSample_ += period;
}

void
RunProbe::takeSample(Time now)
{
    machine::Machine &m = *src_.machine;
    const unsigned nCores = m.numCores();

    for (unsigned c = 0; c < nCores; ++c) {
        recorder_.sample(coreFreq_[c], now, m.core(c).frequency().ghz());
        const machine::Process *proc = m.os().processOnCore(c);
        bool paused = proc != nullptr &&
                      proc->state == machine::ProcState::Paused;
        recorder_.sample(corePaused_[c], now, paused ? 1.0 : 0.0);
        const auto &ctr = m.readCounters(c);
        double dInstr = ctr.instructions - lastInstr_[c];
        double dMiss = ctr.llcMisses - lastMisses_[c];
        double mpki = dInstr > 0.0 ? dMiss / dInstr * 1000.0 : 0.0;
        recorder_.sample(coreMpki_[c], now, mpki);
        lastInstr_[c] = ctr.instructions;
        lastMisses_[c] = ctr.llcMisses;
    }

    recorder_.sample(catWays_, now, double(src_.cat->fgWays()));
    recorder_.sample(dramUtil_, now, m.dram().utilization());
    double dramBytes = m.dram().totalBytes();
    double interval = (now - lastSampleTime_).sec();
    double bw = interval > 0.0
                    ? (dramBytes - lastDramBytes_) / interval / 1e9
                    : 0.0;
    recorder_.sample(dramBw_, now, bw);
    lastDramBytes_ = dramBytes;
    lastSampleTime_ = now;

    if (src_.runtime != nullptr) {
        for (size_t i = 0; i < src_.fgPids.size(); ++i) {
            machine::Pid pid = src_.fgPids[i];
            const core::CompletionPredictor &pred =
                src_.runtime->predictor(pid);
            double predictedSec = pred.predictTotal().sec();
            lastPredictedSec_[pid] = predictedSec;
            recorder_.sample(fgPredicted_[i], now, predictedSec * 1e3);
            auto it = src_.fgDeadlineSec.find(pid);
            double deadline = it != src_.fgDeadlineSec.end()
                                  ? it->second
                                  : 0.0;
            recorder_.sample(fgSlack_[i], now,
                             deadline > 0.0 ? predictedSec / deadline
                                            : 0.0);
            recorder_.sample(fgAlpha_[i], now, pred.alphaMa());
            recorder_.sample(fgProgress_[i], now,
                             pred.progressFraction());
            recorder_.sample(fgDegraded_[i], now,
                             src_.runtime->degradedMode(pid) ? 1.0
                                                             : 0.0);
            recorder_.sample(fgPredError_[i], now,
                             pred.errorEstimate());
        }
    }

    if (src_.faults != nullptr) {
        const fault::FaultStats &cur = src_.faults->stats();
        auto emit = [&](uint64_t now_, uint64_t last,
                        const char *name) {
            if (now_ > last) {
                InstantEvent ev;
                ev.when = now;
                ev.category = "fault";
                ev.name = name;
                ev.value = double(now_ - last);
                recorder_.addEvent(std::move(ev));
            }
        };
        emit(cur.counterDrops, lastFaults_.counterDrops,
             "counter-drop");
        emit(cur.counterGlitches, lastFaults_.counterGlitches,
             "counter-glitch");
        emit(cur.counterSaturations, lastFaults_.counterSaturations,
             "counter-saturate");
        emit(cur.samplerStalls, lastFaults_.samplerStalls,
             "sampler-stall");
        emit(cur.samplerMisses, lastFaults_.samplerMisses,
             "sampler-miss");
        emit(cur.samplerOverruns, lastFaults_.samplerOverruns,
             "sampler-overrun");
        emit(cur.dvfsFailures, lastFaults_.dvfsFailures, "dvfs-fail");
        emit(cur.dvfsSpikes, lastFaults_.dvfsSpikes, "dvfs-spike");
        emit(cur.catFailures, lastFaults_.catFailures, "cat-fail");
        lastFaults_ = cur;
    }
}

void
RunProbe::onCompletion(const machine::CompletionRecord &rec)
{
    if (!rec.foreground) {
        ++bgCompletions_;
        return;
    }
    ++fgCompletions_;
    auto slotIt = fgSlot_.find(rec.pid);
    ExecutionSlice slice;
    slice.fgSlot = slotIt != fgSlot_.end() ? slotIt->second : 0;
    slice.pid = rec.pid;
    slice.program = rec.program;
    slice.start = rec.started;
    slice.end = rec.finished;
    slice.executionIndex = rec.executionIndex;
    auto dl = src_.fgDeadlineSec.find(rec.pid);
    slice.deadlineSec = dl != src_.fgDeadlineSec.end() ? dl->second : 0.0;
    auto pred = lastPredictedSec_.find(rec.pid);
    slice.predictedSec =
        pred != lastPredictedSec_.end() ? pred->second : 0.0;
    slice.missed = slice.deadlineSec > 0.0 &&
                   rec.duration().sec() >
                       slice.deadlineSec * (1.0 + 1e-9);
    if (slice.missed)
        ++fgMisses_;
    recorder_.metrics()
        .histogram("fg.duration_ms",
                   HistogramConfig{1e-2, 20, 160})
        .observe(rec.duration().ms());
    // Relative error of the last prediction taken before completion;
    // absent for executions the probe never sampled mid-flight.
    double actualSec = rec.duration().sec();
    if (pred != lastPredictedSec_.end() && pred->second > 0.0 &&
        actualSec > 0.0) {
        recorder_.metrics()
            .histogram("fg.prediction_error",
                       HistogramConfig{1e-4, 20, 120})
            .observe(std::fabs(pred->second - actualSec) / actualSec);
    }
    recorder_.addSlice(std::move(slice));
}

void
RunProbe::onDecision(const core::TraceEvent &event)
{
    InstantEvent ev;
    ev.when = event.when;
    ev.category = event.action == core::TraceAction::FaultObserved
                      ? "fault"
                      : "decision";
    ev.name = core::traceActionName(event.action);
    ev.pid = event.fgPid;
    ev.value = event.slackRatio;
    ev.detail = event.detail;
    recorder_.addEvent(std::move(ev));
}

void
RunProbe::finish()
{
    MetricsRegistry &reg = recorder_.metrics();
    reg.counter("run.fg_completions").add(fgCompletions_);
    reg.counter("run.bg_completions").add(bgCompletions_);
    reg.counter("run.fg_deadline_misses").add(fgMisses_);
    reg.gauge("dram.total_gb")
        .set(src_.machine->dram().totalBytes() / 1e9);
    reg.gauge("cat.final_fg_ways").set(double(src_.cat->fgWays()));
    reg.counter("cat.failed_reconfigs")
        .add(src_.cat->failedReconfigs());
    reg.counter("dvfs.write_failures")
        .add(src_.governor->writeFailures());
    reg.counter("dvfs.retries_scheduled")
        .add(src_.governor->retriesScheduled());
    reg.counter("dvfs.abandoned_writes")
        .add(src_.governor->abandonedWrites());
    if (src_.runtime != nullptr) {
        reg.counter("runtime.invocations")
            .add(src_.runtime->invocations());
        reg.counter("runtime.sanitized_samples")
            .add(src_.runtime->sanitizedSamples());
    }
    if (src_.faults != nullptr) {
        const fault::FaultStats &fs = src_.faults->stats();
        reg.counter("faults.total").add(fs.total());
        reg.counter("faults.counter_drops").add(fs.counterDrops);
        reg.counter("faults.counter_glitches").add(fs.counterGlitches);
        reg.counter("faults.sampler_stalls").add(fs.samplerStalls);
        reg.counter("faults.dvfs_failures").add(fs.dvfsFailures);
        reg.counter("faults.cat_failures").add(fs.catFailures);
    }
}

} // namespace dirigent::obs
