#include "obs/span.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/hash.h"
#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent::obs {

namespace {

/** Deterministic 64-bit id over the span's identity tuple. @p kind
 *  salts trace vs span ids apart. */
uint64_t
spanHash(const char *kind, uint64_t seed, unsigned node,
         unsigned fgSlot, uint64_t requestId)
{
    std::string key =
        strfmt("%s/%llu/%u/%u/%llu", kind, (unsigned long long)seed,
               node, fgSlot, (unsigned long long)requestId);
    uint64_t h = fnv1a64(key);
    // Never emit id 0: downstream treats 0 as "unset".
    return h != 0 ? h : 1;
}

} // namespace

double
Span::e2eSec() const
{
    if (outcome != "completed" || std::isnan(finishedSec))
        return std::nan("");
    return finishedSec - arrivedSec;
}

const SpanStage *
Span::dominantStage() const
{
    const SpanStage *best = nullptr;
    for (const SpanStage &stage : stages)
        if (best == nullptr ||
            stage.durationSec() > best->durationSec())
            best = &stage;
    return best;
}

double
Span::endSec() const
{
    return std::isnan(finishedSec) ? arrivedSec : finishedSec;
}

SpanCollector::SpanCollector(uint64_t runSeed, unsigned nodeIndex)
    : runSeed_(runSeed), nodeIndex_(nodeIndex)
{
}

void
SpanCollector::recordRequest(unsigned fgSlot, machine::Pid pid,
                             uint64_t requestId, Time arrived,
                             Time started, Time finished,
                             size_t queueDepth,
                             const std::string &outcome,
                             double admitLimit)
{
    DIRIGENT_ASSERT(!finalized_,
                    "span collector is finalized; no more requests");
    Span span;
    span.traceId =
        spanHash("trace", runSeed_, nodeIndex_, fgSlot, requestId);
    span.spanId =
        spanHash("span", runSeed_, nodeIndex_, fgSlot, requestId);
    span.node = nodeIndex_;
    span.fgSlot = fgSlot;
    span.pid = pid;
    span.requestId = requestId;
    span.arrivedSec = arrived.sec();
    span.startedSec = started.isNever() ? std::nan("") : started.sec();
    span.finishedSec =
        finished.isNever() ? std::nan("") : finished.sec();
    span.queueDepth = queueDepth;
    span.admitLimit = admitLimit;
    span.outcome = outcome;
    spans_.push_back(std::move(span));
}

void
SpanCollector::recordDecision(const core::TraceEvent &event)
{
    if (finalized_)
        return;
    SpanLink link;
    link.tSec = event.when.sec();
    link.action = core::traceActionName(event.action);
    link.pid = event.fgPid;
    link.value = event.slackRatio;
    link.detail = event.detail;
    decisions_.push_back(std::move(link));
}

void
SpanCollector::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;

    // Decisions arrive in simulation order; make the window scan below
    // robust to ties and any out-of-order sink delivery.
    std::stable_sort(decisions_.begin(), decisions_.end(),
                     [](const SpanLink &a, const SpanLink &b) {
                         return a.tSec < b.tSec;
                     });

    for (Span &span : spans_) {
        // Stage decomposition. Rejected requests have no stages — the
        // outcome alone names the terminal verdict.
        if (!std::isnan(span.startedSec)) {
            span.stages.push_back(
                {"queue_wait", span.arrivedSec, span.startedSec});
            if (!std::isnan(span.finishedSec))
                span.stages.push_back(
                    {"service", span.startedSec, span.finishedSec});
        }

        // Causal links: decisions for this FG pid (or global pid 0)
        // inside [arrived, end].
        const double end = span.endSec();
        auto first = std::lower_bound(
            decisions_.begin(), decisions_.end(), span.arrivedSec,
            [](const SpanLink &link, double t) { return link.tSec < t; });
        for (auto it = first;
             it != decisions_.end() && it->tSec <= end; ++it) {
            if (it->pid != 0 && it->pid != span.pid)
                continue;
            span.links.push_back(*it);
        }
    }

    std::sort(spans_.begin(), spans_.end(),
              [](const Span &a, const Span &b) {
                  if (a.node != b.node)
                      return a.node < b.node;
                  if (a.fgSlot != b.fgSlot)
                      return a.fgSlot < b.fgSlot;
                  return a.requestId < b.requestId;
              });
}

void
SpanCollector::merge(SpanCollector &other)
{
    // The target is a pure aggregator: it must not carry raw data of
    // its own, or finalize() would re-derive stages over the already
    // finalized merged spans.
    DIRIGENT_ASSERT(decisions_.empty(),
                    "merge target must be a pure aggregator");
    other.finalize();
    finalized_ = true;
    spans_.insert(spans_.end(), other.spans_.begin(),
                  other.spans_.end());
}

namespace {

std::string
optionalTime(double sec)
{
    return std::isnan(sec) ? "null" : jsonDouble(sec);
}

} // namespace

std::string
spansToJson(const std::vector<Span> &spans, uint64_t runSeed)
{
    std::string out = "{\"schema\":\"dirigent-spans-v1\"";
    out += strfmt(",\"seed\":\"%llu\"", (unsigned long long)runSeed);
    out += ",\"spans\":[";
    bool firstSpan = true;
    for (const Span &span : spans) {
        if (!firstSpan)
            out += ",\n";
        firstSpan = false;
        out += strfmt("{\"trace_id\":\"%llu\",\"span_id\":\"%llu\"",
                      (unsigned long long)span.traceId,
                      (unsigned long long)span.spanId);
        out += strfmt(",\"node\":%u,\"fg_slot\":%u,\"pid\":%u",
                      span.node, span.fgSlot, span.pid);
        out += strfmt(",\"request_id\":\"%llu\"",
                      (unsigned long long)span.requestId);
        out += ",\"arrived\":" + jsonDouble(span.arrivedSec);
        out += ",\"started\":" + optionalTime(span.startedSec);
        out += ",\"finished\":" + optionalTime(span.finishedSec);
        out += strfmt(",\"queue_depth\":%zu", span.queueDepth);
        out += ",\"admit_limit\":" + jsonDouble(span.admitLimit);
        out += ",\"outcome\":" + jsonQuote(span.outcome);
        out += ",\"e2e_s\":" + optionalTime(span.e2eSec());
        out += ",\"stages\":[";
        bool firstStage = true;
        for (const SpanStage &stage : span.stages) {
            if (!firstStage)
                out += ",";
            firstStage = false;
            out += "{\"name\":" + jsonQuote(stage.name) +
                   ",\"start\":" + jsonDouble(stage.startSec) +
                   ",\"end\":" + jsonDouble(stage.endSec) + "}";
        }
        out += "],\"links\":[";
        bool firstLink = true;
        for (const SpanLink &link : span.links) {
            if (!firstLink)
                out += ",";
            firstLink = false;
            out += "{\"t\":" + jsonDouble(link.tSec) +
                   ",\"action\":" + jsonQuote(link.action) +
                   strfmt(",\"pid\":%u", link.pid) +
                   ",\"value\":" + jsonDouble(link.value) +
                   ",\"detail\":" + jsonQuote(link.detail) + "}";
        }
        out += "]}";
    }
    out += "]}\n";
    return out;
}

namespace {

uint64_t
decimalId(const JsonValue &value, const std::string &key)
{
    const JsonValue *member = value.find(key);
    if (member == nullptr)
        return 0;
    if (member->isString())
        return std::strtoull(member->string.c_str(), nullptr, 10);
    if (member->isNumber())
        return uint64_t(member->number);
    return 0;
}

double
optionalNumber(const JsonValue &value, const std::string &key)
{
    const JsonValue *member = value.find(key);
    if (member == nullptr || !member->isNumber())
        return std::nan("");
    return member->number;
}

} // namespace

std::optional<std::vector<Span>>
parseSpans(const JsonValue &root, std::string *error)
{
    auto fail =
        [&](const std::string &what) -> std::optional<std::vector<Span>> {
        if (error != nullptr)
            *error = what;
        return std::nullopt;
    };
    if (!root.isObject())
        return fail("spans document is not an object");
    const JsonValue *spans = root.find("spans");
    if (spans == nullptr || !spans->isArray())
        return fail("'spans' missing or not an array");

    std::vector<Span> out;
    out.reserve(spans->array.size());
    for (const JsonValue &sv : spans->array) {
        if (!sv.isObject())
            return fail("span entry is not an object");
        Span span;
        span.traceId = decimalId(sv, "trace_id");
        span.spanId = decimalId(sv, "span_id");
        span.node = unsigned(sv.numberOr("node", 0.0));
        span.fgSlot = unsigned(sv.numberOr("fg_slot", 0.0));
        span.pid = machine::Pid(sv.numberOr("pid", 0.0));
        span.requestId = decimalId(sv, "request_id");
        span.arrivedSec = sv.numberOr("arrived", 0.0);
        span.startedSec = optionalNumber(sv, "started");
        span.finishedSec = optionalNumber(sv, "finished");
        span.queueDepth = size_t(sv.numberOr("queue_depth", 0.0));
        span.admitLimit = sv.numberOr("admit_limit", 0.0);
        span.outcome = sv.stringOr("outcome", "");
        if (const JsonValue *stages = sv.find("stages");
            stages != nullptr && stages->isArray()) {
            for (const JsonValue &stv : stages->array) {
                SpanStage stage;
                stage.name = stv.stringOr("name", "");
                stage.startSec = stv.numberOr("start", 0.0);
                stage.endSec = stv.numberOr("end", 0.0);
                span.stages.push_back(std::move(stage));
            }
        }
        if (const JsonValue *links = sv.find("links");
            links != nullptr && links->isArray()) {
            for (const JsonValue &lv : links->array) {
                SpanLink link;
                link.tSec = lv.numberOr("t", 0.0);
                link.action = lv.stringOr("action", "");
                link.pid = machine::Pid(lv.numberOr("pid", 0.0));
                link.value = lv.numberOr("value", 0.0);
                link.detail = lv.stringOr("detail", "");
                span.links.push_back(std::move(link));
            }
        }
        out.push_back(std::move(span));
    }
    return out;
}

std::optional<std::vector<Span>>
loadSpansFile(const std::string &path, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr)
            *error = "cannot open '" + path + "'";
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string parseError;
    auto root = parseJson(buf.str(), &parseError);
    if (!root) {
        if (error != nullptr)
            *error = "parse error in '" + path + "': " + parseError;
        return std::nullopt;
    }
    return parseSpans(*root, error);
}

bool
writeSpansFile(const std::string &path, const SpanCollector &collector)
{
    DIRIGENT_ASSERT(collector.finalized(),
                    "finalize the span collector before writing");
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        warn("cannot open span output '" + path + "'");
        return false;
    }
    os << spansToJson(collector.spans(), collector.runSeed());
    return bool(os);
}

} // namespace dirigent::obs
