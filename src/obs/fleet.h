/**
 * @file
 * Fleet-level telemetry: deterministic aggregation of per-node
 * MetricsRegistry snapshots, Prometheus text exposition (with a
 * round-trip parser used by the tests), and the SLO error-budget /
 * burn-rate engine.
 *
 * Layering note: this header is obs-only on purpose. The burn-rate
 * engine consumes obs::RequestRecord plus plain (quantile, target)
 * doubles rather than serve::SloTarget, because dirigent_serve links
 * *against* dirigent_obs — obs must never reach upward.
 *
 * Determinism contract: snapshots copy instruments in sorted-name
 * order, nodes are folded in node-index order, and every renderer uses
 * %.17g — so fleet artifacts are byte-identical at any executor
 * thread count.
 */

#ifndef DIRIGENT_OBS_FLEET_H
#define DIRIGENT_OBS_FLEET_H

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/recorder.h"

namespace dirigent::obs {

/** Plain-data copy of one histogram (count, sum, populated bins). */
struct HistogramSnapshot
{
    uint64_t count = 0;
    double sum = 0.0;
    std::vector<Histogram::Bin> bins; //!< ascending, non-empty only
};

/** Plain-data copy of one MetricsRegistry, sorted by name. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

    /** Copy every instrument out of @p registry (sorted order). */
    static MetricsSnapshot capture(const MetricsRegistry &registry);
};

/**
 * Per-node snapshots plus the fleet rollup. Mirrors the cluster
 * ResourceAccountant fold: nodes are added in index order and the
 * rollup is a pure function of the snapshots, so two sweeps that ran
 * the same cells produce byte-identical fleet artifacts.
 */
struct FleetMetrics
{
    std::vector<std::pair<unsigned, MetricsSnapshot>> perNode;

    /**
     * Fleet rollup: counters summed across nodes; histograms merged
     * bin-wise (configs match by construction — every node runs the
     * same probe). Gauges are instantaneous per-node readings with no
     * meaningful fleet sum, so the rollup carries none.
     */
    MetricsSnapshot fleet;

    /** Append @p registry as node @p nodeIndex and refold the rollup.
     *  Call in ascending node order. */
    void addNode(unsigned nodeIndex, const MetricsRegistry &registry);
    void addNode(unsigned nodeIndex, MetricsSnapshot snapshot);
};

/**
 * Write Prometheus text exposition format: one `# TYPE` line per
 * family (sorted by name), per-node samples labelled {node="N"}, and
 * unlabelled fleet-rollup samples for counters/histograms. Metric
 * names are sanitized to [a-zA-Z0-9_:] and prefixed `dirigent_`;
 * histograms expand to cumulative `_bucket{le=...}` samples plus
 * `_sum`/`_count`.
 */
void writePrometheus(std::ostream &os, const FleetMetrics &fleet);

/** Render to a string (exactly what writePrometheus streams). */
std::string renderPrometheus(const FleetMetrics &fleet);

/** Write to @p path; warn + return false on I/O failure. */
bool writePrometheusFile(const std::string &path,
                         const FleetMetrics &fleet);

/** One parsed Prometheus sample: name{labels...} value. */
struct PromSample
{
    std::string name;
    std::vector<std::pair<std::string, std::string>> labels;
    double value = 0.0;
};

/** One metric family: the `# TYPE` line and its samples in order. */
struct PromFamily
{
    std::string name;
    std::string type; //!< "counter", "gauge", or "histogram"
    std::vector<PromSample> samples;
};

/** A parsed exposition document (family order preserved). */
struct PromDocument
{
    std::vector<PromFamily> families;

    /** Samples of @p name across all families (exact name match). */
    std::vector<const PromSample *> find(const std::string &name) const;
};

/**
 * Parse Prometheus text exposition (the subset writePrometheus
 * emits: # TYPE comments, escaped label values, %.17g numbers).
 */
std::optional<PromDocument> parsePrometheus(const std::string &text,
                                            std::string *error = nullptr);

/**
 * Re-render a parsed document. For documents produced by
 * writePrometheus this is a byte-identical round trip (the tests
 * assert it), since %.17g → strtod → %.17g is the identity.
 */
std::string renderPrometheus(const PromDocument &doc);

// ---------------------------------------------------------------------------
// SLO error budgets and burn rates.

/** One burn-rate evaluation: an SLO target over a request window. */
struct BurnRateConfig
{
    /** SLO: "quantile of response time ≤ targetSec". The error budget
     *  is 1 − quantile (e.g. p99 → 1 % of requests may exceed). */
    double quantile = 0.99;
    double targetSec = 0.0;

    /** Fixed-width accounting windows over [startSec, endSec). */
    double windowSec = 1.0;
    double startSec = 0.0;
    double endSec = 0.0;

    /** Restrict to one FG slot; any slot when negative. */
    int fgSlot = -1;
};

/** One accounting window's budget consumption. */
struct BurnWindow
{
    double startSec = 0.0;
    uint64_t total = 0;
    uint64_t errors = 0;

    /** (errors/total) / budget; 0 for empty windows. Burn 1.0 = budget
     *  consumed exactly at the sustainable rate. */
    double burnRate = 0.0;
};

/** Burn-rate verdict for one (scope, SLO target) pair. */
struct BurnRateReport
{
    std::string scope; //!< "fg0", "node3/fg0", "fleet", ...
    double quantile = 0.0;
    double targetSec = 0.0;
    double budget = 0.0; //!< 1 − quantile

    uint64_t total = 0;
    uint64_t errors = 0;

    double maxBurnRate = 0.0;  //!< worst window
    double meanBurnRate = 0.0; //!< overall (errors/total)/budget
    bool exhausted = false;    //!< overall error rate > budget

    std::vector<BurnWindow> windows;
};

/**
 * Evaluate one burn-rate report over @p requests. A request errors
 * when it was shed/dropped or completed slower than targetSec; it is
 * charged to the window holding its *arrival* (arrival time is the
 * only timestamp every outcome has).
 */
BurnRateReport computeBurnRate(const std::vector<RequestRecord> &requests,
                               const BurnRateConfig &config,
                               const std::string &scope);

/**
 * Fleet rollup: sum totals/errors and merge windows index-wise across
 * @p reports (which must share quantile/target/window geometry).
 * Burn rates are recomputed from the merged counts.
 */
BurnRateReport combineBurnRates(const std::vector<BurnRateReport> &reports,
                                const std::string &scope);

} // namespace dirigent::obs

#endif // DIRIGENT_OBS_FLEET_H
