/**
 * @file
 * Run exporters and loaders.
 *
 * The primary format is Chrome trace-event JSON (openable directly in
 * ui.perfetto.dev or chrome://tracing): every recorded series becomes
 * a counter track ("ph":"C"), every FG execution a complete slice
 * ("ph":"X") on its FG slot's track, and every decision/fault an
 * instant event ("ph":"i"). Because the traceEvents encoding is lossy
 * (timestamps in µs), the same document also embeds a "dirigent"
 * object holding the exact %.17g series, events, slices, manifest,
 * and metrics — dirigent-inspect and the round-trip tests read that
 * section back losslessly.
 */

#ifndef DIRIGENT_OBS_EXPORT_H
#define DIRIGENT_OBS_EXPORT_H

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/recorder.h"

namespace dirigent::obs {

/** Everything parsed back from an exported trace. */
struct RunData
{
    RunManifest manifest;
    std::vector<Series> series;
    std::vector<InstantEvent> events;
    std::vector<ExecutionSlice> slices;
    std::vector<RequestRecord> requests; //!< serving-mode runs only

    const Series *findSeries(const std::string &name) const;
};

/** Write the combined Perfetto/exact document to @p os. */
void writePerfettoTrace(std::ostream &os, const Recorder &recorder);

/** Write to @p path; warn + return false on I/O failure. */
bool writePerfettoTraceFile(const std::string &path,
                            const Recorder &recorder);

/** Emit every series as "series,unit,time_s,value" CSV rows. */
void writeSeriesCsv(std::ostream &os, const Recorder &recorder);
void writeSeriesCsv(std::ostream &os, const RunData &run);

/** RFC 4180 field escaping: quote fields containing a comma, quote,
 *  or line break, doubling embedded quotes; others pass through. */
std::string csvEscape(const std::string &field);

/** Parse the "dirigent" section of an exported trace document. */
std::optional<RunData> parseRun(const JsonValue &root,
                                std::string *error = nullptr);

/** Load + parse a trace file. */
std::optional<RunData> loadRunFile(const std::string &path,
                                   std::string *error = nullptr);

/**
 * Validate @p value against a JSON-Schema subset: `type` (string or
 * array of strings), `required`, `properties`, `items`, `minItems`,
 * and `enum` of strings. Returns "" when valid, else the first
 * violation with a JSON-pointer-style path.
 */
std::string validateAgainstSchema(const JsonValue &value,
                                  const JsonValue &schema);

/** DIRIGENT_TRACE_OUT environment override for the trace path. */
std::string envTraceOutPath(const std::string &fallback = "");

} // namespace dirigent::obs

#endif // DIRIGENT_OBS_EXPORT_H
