#include "obs/export.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent::obs {

namespace {

/** Append a traceEvents counter event (ts in µs). */
void
counterEvent(std::string &out, const std::string &name, double timeSec,
             double value)
{
    out += "{\"name\":" + jsonQuote(name) +
           ",\"ph\":\"C\",\"pid\":1,\"ts\":" + jsonDouble(timeSec * 1e6) +
           ",\"args\":{\"value\":" + jsonDouble(value) + "}},\n";
}

/** Exact series/events/slices section, %.17g throughout. */
std::string
exactSection(const Recorder &rec)
{
    std::string out = "{\"manifest\":" + rec.manifest().toJson();

    out += ",\"series\":[";
    bool firstSeries = true;
    for (const auto &s : rec.series()) {
        if (!firstSeries)
            out += ",";
        firstSeries = false;
        out += "{\"name\":" + jsonQuote(s.name) +
               ",\"unit\":" + jsonQuote(s.unit) + ",\"times\":[";
        for (size_t i = 0; i < s.times.size(); ++i) {
            if (i)
                out += ",";
            out += jsonDouble(s.times[i]);
        }
        out += "],\"values\":[";
        for (size_t i = 0; i < s.values.size(); ++i) {
            if (i)
                out += ",";
            out += jsonDouble(s.values[i]);
        }
        out += "]}";
    }
    out += "]";

    out += ",\"events\":[";
    bool firstEvent = true;
    for (const auto &e : rec.events()) {
        if (!firstEvent)
            out += ",";
        firstEvent = false;
        out += "{\"t\":" + jsonDouble(e.when.sec()) +
               ",\"category\":" + jsonQuote(e.category) +
               ",\"name\":" + jsonQuote(e.name) +
               strfmt(",\"pid\":%u", e.pid) +
               ",\"value\":" + jsonDouble(e.value) +
               ",\"detail\":" + jsonQuote(e.detail) + "}";
    }
    out += "]";

    out += ",\"slices\":[";
    bool firstSlice = true;
    for (const auto &s : rec.slices()) {
        if (!firstSlice)
            out += ",";
        firstSlice = false;
        out += strfmt("{\"fg_slot\":%u,\"pid\":%u", s.fgSlot, s.pid) +
               ",\"program\":" + jsonQuote(s.program) +
               ",\"start\":" + jsonDouble(s.start.sec()) +
               ",\"end\":" + jsonDouble(s.end.sec()) +
               strfmt(",\"execution\":%llu",
                      (unsigned long long)s.executionIndex) +
               ",\"deadline_s\":" + jsonDouble(s.deadlineSec) +
               ",\"predicted_s\":" + jsonDouble(s.predictedSec) +
               ",\"missed\":" + (s.missed ? "true" : "false") + "}";
    }
    out += "]";

    // Serving-mode requests; omitted entirely for batch runs so their
    // exported traces stay byte-identical to earlier releases.
    if (!rec.requests().empty()) {
        out += ",\"requests\":[";
        bool firstReq = true;
        for (const auto &r : rec.requests()) {
            if (!firstReq)
                out += ",";
            firstReq = false;
            out += strfmt("{\"fg_slot\":%u,\"pid\":%u,\"id\":%llu",
                          r.fgSlot, r.pid, (unsigned long long)r.id) +
                   ",\"arrived\":" + jsonDouble(r.arrived.sec()) +
                   ",\"started\":" +
                   (r.started.isNever() ? "null"
                                        : jsonDouble(r.started.sec())) +
                   ",\"finished\":" +
                   (r.finished.isNever()
                        ? "null"
                        : jsonDouble(r.finished.sec())) +
                   strfmt(",\"queue_depth\":%zu", r.queueDepth) +
                   ",\"outcome\":" + jsonQuote(r.outcome) +
                   ",\"response_s\":" + jsonDouble(r.responseSec) + "}";
        }
        out += "]";
    }

    out += ",\"metrics\":" + rec.metrics().toJson();
    out += "}";
    return out;
}

} // namespace

const Series *
RunData::findSeries(const std::string &name) const
{
    for (const auto &s : series)
        if (s.name == name)
            return &s;
    return nullptr;
}

void
writePerfettoTrace(std::ostream &os, const Recorder &rec)
{
    std::string out;
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";

    // Track metadata: process 1 is the machine, one thread per FG slot
    // for the execution slices.
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
           "\"args\":{\"name\":\"dirigent\"}},\n";
    unsigned maxSlot = 0;
    for (const auto &s : rec.slices())
        maxSlot = std::max(maxSlot, s.fgSlot);
    for (unsigned slot = 0; slot <= maxSlot; ++slot) {
        out += strfmt("{\"name\":\"thread_name\",\"ph\":\"M\","
                      "\"pid\":1,\"tid\":%u,\"args\":{\"name\":"
                      "\"fg%u executions\"}},\n",
                      slot + 1, slot);
    }

    for (const auto &s : rec.series())
        for (size_t i = 0; i < s.times.size(); ++i)
            counterEvent(out, s.name, s.times[i], s.values[i]);

    for (const auto &s : rec.slices()) {
        out += strfmt("{\"name\":%s,\"ph\":\"X\",\"pid\":1,"
                      "\"tid\":%u,\"ts\":%s,\"dur\":%s,"
                      "\"args\":{\"execution\":%llu,\"deadline_s\":%s,"
                      "\"predicted_s\":%s,\"missed\":%s}},\n",
                      jsonQuote(s.missed ? s.program + " MISS"
                                         : s.program)
                          .c_str(),
                      s.fgSlot + 1,
                      jsonDouble(s.start.sec() * 1e6).c_str(),
                      jsonDouble(s.duration().sec() * 1e6).c_str(),
                      (unsigned long long)s.executionIndex,
                      jsonDouble(s.deadlineSec).c_str(),
                      jsonDouble(s.predictedSec).c_str(),
                      s.missed ? "true" : "false");
    }

    for (const auto &e : rec.events()) {
        out += strfmt("{\"name\":%s,\"ph\":\"i\",\"s\":\"g\","
                      "\"pid\":1,\"ts\":%s,\"cat\":%s,"
                      "\"args\":{\"fg_pid\":%u,\"value\":%s,"
                      "\"detail\":%s}},\n",
                      jsonQuote(e.name).c_str(),
                      jsonDouble(e.when.sec() * 1e6).c_str(),
                      jsonQuote(e.category).c_str(), e.pid,
                      jsonDouble(e.value).c_str(),
                      jsonQuote(e.detail).c_str());
    }

    // Close the array with a final metadata event so every line above
    // can end in an unconditional comma.
    out += "{\"name\":\"trace_end\",\"ph\":\"M\",\"pid\":1,"
           "\"args\":{}}\n],\n";

    out += "\"dirigent\":" + exactSection(rec) + "}\n";
    os << out;
}

bool
writePerfettoTraceFile(const std::string &path, const Recorder &rec)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        warn("cannot open trace output '" + path + "'");
        return false;
    }
    writePerfettoTrace(os, rec);
    return bool(os);
}

namespace {

void
csvHeader(std::ostream &os)
{
    os << "series,unit,time_s,value\n";
}

void
csvSeries(std::ostream &os, const Series &s)
{
    for (size_t i = 0; i < s.times.size(); ++i)
        os << csvEscape(s.name) << "," << csvEscape(s.unit) << ","
           << strfmt("%.17g", s.times[i]) << ","
           << strfmt("%.17g", s.values[i]) << "\n";
}

} // namespace

std::string
csvEscape(const std::string &field)
{
    // RFC 4180: quote a field containing a comma, quote, or line
    // break, doubling embedded quotes; anything else passes through.
    bool needsQuoting = false;
    for (char c : field)
        if (c == ',' || c == '"' || c == '\n' || c == '\r') {
            needsQuoting = true;
            break;
        }
    if (!needsQuoting)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
writeSeriesCsv(std::ostream &os, const Recorder &rec)
{
    csvHeader(os);
    for (const auto &s : rec.series())
        csvSeries(os, s);
}

void
writeSeriesCsv(std::ostream &os, const RunData &run)
{
    csvHeader(os);
    for (const auto &s : run.series)
        csvSeries(os, s);
}

std::optional<RunData>
parseRun(const JsonValue &root, std::string *error)
{
    auto fail = [&](const std::string &what) -> std::optional<RunData> {
        if (error != nullptr)
            *error = what;
        return std::nullopt;
    };

    const JsonValue *section = root.find("dirigent");
    if (section == nullptr || !section->isObject())
        return fail("document has no 'dirigent' section");

    RunData run;
    if (const JsonValue *m = section->find("manifest");
        m != nullptr && m->isObject())
        run.manifest = RunManifest::fromJson(*m);

    const JsonValue *series = section->find("series");
    if (series == nullptr || !series->isArray())
        return fail("'dirigent.series' missing or not an array");
    for (const JsonValue &sv : series->array) {
        Series s;
        s.name = sv.stringOr("name", "");
        s.unit = sv.stringOr("unit", "");
        const JsonValue *times = sv.find("times");
        const JsonValue *values = sv.find("values");
        if (times == nullptr || !times->isArray() || values == nullptr ||
            !values->isArray() ||
            times->array.size() != values->array.size())
            return fail("series '" + s.name + "' has malformed columns");
        s.times.reserve(times->array.size());
        s.values.reserve(values->array.size());
        for (const JsonValue &t : times->array)
            s.times.push_back(t.number);
        for (const JsonValue &v : values->array)
            s.values.push_back(v.number);
        run.series.push_back(std::move(s));
    }

    if (const JsonValue *events = section->find("events");
        events != nullptr && events->isArray()) {
        for (const JsonValue &ev : events->array) {
            InstantEvent e;
            e.when = Time::sec(ev.numberOr("t", 0.0));
            e.category = ev.stringOr("category", "");
            e.name = ev.stringOr("name", "");
            e.pid = machine::Pid(ev.numberOr("pid", 0.0));
            e.value = ev.numberOr("value", 0.0);
            e.detail = ev.stringOr("detail", "");
            run.events.push_back(std::move(e));
        }
    }

    if (const JsonValue *slices = section->find("slices");
        slices != nullptr && slices->isArray()) {
        for (const JsonValue &sv : slices->array) {
            ExecutionSlice s;
            s.fgSlot = unsigned(sv.numberOr("fg_slot", 0.0));
            s.pid = machine::Pid(sv.numberOr("pid", 0.0));
            s.program = sv.stringOr("program", "");
            s.start = Time::sec(sv.numberOr("start", 0.0));
            s.end = Time::sec(sv.numberOr("end", 0.0));
            s.executionIndex =
                uint64_t(sv.numberOr("execution", 0.0));
            s.deadlineSec = sv.numberOr("deadline_s", 0.0);
            s.predictedSec = sv.numberOr("predicted_s", 0.0);
            const JsonValue *missed = sv.find("missed");
            s.missed = missed != nullptr && missed->isBool() &&
                       missed->boolean;
            run.slices.push_back(std::move(s));
        }
    }

    if (const JsonValue *requests = section->find("requests");
        requests != nullptr && requests->isArray()) {
        for (const JsonValue &rv : requests->array) {
            RequestRecord r;
            r.fgSlot = unsigned(rv.numberOr("fg_slot", 0.0));
            r.pid = machine::Pid(rv.numberOr("pid", 0.0));
            r.id = uint64_t(rv.numberOr("id", 0.0));
            r.arrived = Time::sec(rv.numberOr("arrived", 0.0));
            const JsonValue *started = rv.find("started");
            r.started = started != nullptr && started->isNumber()
                            ? Time::sec(started->number)
                            : Time::never();
            const JsonValue *finished = rv.find("finished");
            r.finished = finished != nullptr && finished->isNumber()
                             ? Time::sec(finished->number)
                             : Time::never();
            r.queueDepth = size_t(rv.numberOr("queue_depth", 0.0));
            r.outcome = rv.stringOr("outcome", "");
            r.responseSec = rv.numberOr("response_s", std::nan(""));
            run.requests.push_back(std::move(r));
        }
    }
    return run;
}

std::optional<RunData>
loadRunFile(const std::string &path, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr)
            *error = "cannot open '" + path + "'";
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string parseError;
    auto root = parseJson(buf.str(), &parseError);
    if (!root) {
        if (error != nullptr)
            *error = "parse error in '" + path + "': " + parseError;
        return std::nullopt;
    }
    return parseRun(*root, error);
}

namespace {

const char *
kindName(JsonValue::Kind kind)
{
    switch (kind) {
      case JsonValue::Kind::Null: return "null";
      case JsonValue::Kind::Bool: return "boolean";
      case JsonValue::Kind::Number: return "number";
      case JsonValue::Kind::String: return "string";
      case JsonValue::Kind::Array: return "array";
      case JsonValue::Kind::Object: return "object";
    }
    return "?";
}

bool
matchesType(const JsonValue &value, const std::string &type)
{
    if (type == "null")
        return value.isNull();
    if (type == "boolean")
        return value.isBool();
    if (type == "number")
        return value.isNumber();
    if (type == "integer")
        return value.isNumber() &&
               value.number == std::floor(value.number);
    if (type == "string")
        return value.isString();
    if (type == "array")
        return value.isArray();
    if (type == "object")
        return value.isObject();
    return false; // unknown type names never match
}

std::string
validateAt(const JsonValue &value, const JsonValue &schema,
           const std::string &path)
{
    if (!schema.isObject())
        return {}; // "true"-style permissive schema

    if (const JsonValue *type = schema.find("type")) {
        bool ok = false;
        if (type->isString()) {
            ok = matchesType(value, type->string);
        } else if (type->isArray()) {
            for (const JsonValue &t : type->array)
                if (t.isString() && matchesType(value, t.string))
                    ok = true;
        }
        if (!ok)
            return strfmt("%s: expected type %s, got %s", path.c_str(),
                          type->isString() ? type->string.c_str()
                                           : "(union)",
                          kindName(value.kind));
    }

    if (const JsonValue *anEnum = schema.find("enum");
        anEnum != nullptr && anEnum->isArray() && value.isString()) {
        bool ok = false;
        for (const JsonValue &option : anEnum->array)
            if (option.isString() && option.string == value.string)
                ok = true;
        if (!ok)
            return strfmt("%s: '%s' not in enum", path.c_str(),
                          value.string.c_str());
    }

    if (value.isObject()) {
        if (const JsonValue *required = schema.find("required");
            required != nullptr && required->isArray()) {
            for (const JsonValue &name : required->array) {
                if (name.isString() &&
                    value.find(name.string) == nullptr)
                    return strfmt("%s: missing required member '%s'",
                                  path.c_str(), name.string.c_str());
            }
        }
        if (const JsonValue *props = schema.find("properties");
            props != nullptr && props->isObject()) {
            for (const auto &[name, sub] : props->object) {
                const JsonValue *member = value.find(name);
                if (member == nullptr)
                    continue;
                std::string err =
                    validateAt(*member, sub, path + "/" + name);
                if (!err.empty())
                    return err;
            }
        }
    }

    if (value.isArray()) {
        if (const JsonValue *minItems = schema.find("minItems");
            minItems != nullptr && minItems->isNumber() &&
            double(value.array.size()) < minItems->number) {
            return strfmt("%s: array has %zu items, needs >= %.0f",
                          path.c_str(), value.array.size(),
                          minItems->number);
        }
        if (const JsonValue *items = schema.find("items")) {
            for (size_t i = 0; i < value.array.size(); ++i) {
                std::string err = validateAt(value.array[i], *items,
                                             strfmt("%s/%zu",
                                                    path.c_str(), i));
                if (!err.empty())
                    return err;
            }
        }
    }
    return {};
}

} // namespace

std::string
validateAgainstSchema(const JsonValue &value, const JsonValue &schema)
{
    return validateAt(value, schema, "#");
}

std::string
envTraceOutPath(const std::string &fallback)
{
    const char *env = std::getenv("DIRIGENT_TRACE_OUT");
    if (env != nullptr && env[0] != '\0')
        return env;
    return fallback;
}

} // namespace dirigent::obs
