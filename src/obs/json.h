/**
 * @file
 * Minimal JSON value model, parser, and formatting helpers for the
 * telemetry subsystem. The exporters need to *read back* what they
 * wrote (round-trip tests, dirigent-inspect) and validate documents
 * against a schema subset, without any external dependency.
 *
 * Numbers are stored as doubles and formatted with %.17g, which
 * round-trips every finite double exactly through strtod — the
 * authoritative series in exported traces rely on this.
 */

#ifndef DIRIGENT_OBS_JSON_H
#define DIRIGENT_OBS_JSON_H

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace dirigent::obs {

/** A parsed JSON value (tree-owning). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Insertion-ordered members (duplicate keys keep the last). */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Member lookup on objects; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Number value of member @p key, or @p fallback. */
    double numberOr(const std::string &key, double fallback) const;

    /** String value of member @p key, or @p fallback. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;
};

/**
 * Parse a complete JSON document. Returns nullopt and sets @p error
 * (with a byte offset) on malformed input; trailing garbage after the
 * top-level value is an error.
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *error = nullptr);

/** Escape @p text for inclusion inside a JSON string literal. */
std::string jsonQuote(const std::string &text);

/**
 * Format a double as a JSON number with full round-trip precision
 * (%.17g). NaN and infinities are not representable and render as
 * null.
 */
std::string jsonDouble(double value);

} // namespace dirigent::obs

#endif // DIRIGENT_OBS_JSON_H
