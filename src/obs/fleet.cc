#include "obs/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent::obs {

MetricsSnapshot
MetricsSnapshot::capture(const MetricsRegistry &registry)
{
    MetricsSnapshot snap;
    snap.counters = registry.counterValues();
    snap.gauges = registry.gaugeValues();
    for (const auto &[name, h] : registry.histogramViews()) {
        HistogramSnapshot hs;
        hs.count = h->count();
        hs.sum = h->sum();
        hs.bins = h->bins();
        snap.histograms.emplace_back(name, std::move(hs));
    }
    return snap;
}

namespace {

/** Rebuild the fleet rollup from the per-node snapshots. */
MetricsSnapshot
foldFleet(const std::vector<std::pair<unsigned, MetricsSnapshot>> &nodes)
{
    // std::map keys keep every fold in sorted-name order regardless of
    // which nodes carry which instruments.
    std::map<std::string, uint64_t> counters;
    struct HistAcc
    {
        uint64_t count = 0;
        double sum = 0.0;
        // Bin edges are a pure function of the histogram config, which
        // every node shares (same probe code) — keying on (lo, hi)
        // merges aligned bins exactly.
        std::map<std::pair<double, double>, uint64_t> bins;
    };
    std::map<std::string, HistAcc> hists;

    for (const auto &[node, snap] : nodes) {
        (void)node;
        for (const auto &[name, v] : snap.counters)
            counters[name] += v;
        for (const auto &[name, hs] : snap.histograms) {
            HistAcc &acc = hists[name];
            acc.count += hs.count;
            acc.sum += hs.sum;
            for (const Histogram::Bin &bin : hs.bins)
                acc.bins[{bin.lo, bin.hi}] += bin.count;
        }
    }

    MetricsSnapshot fleet;
    for (const auto &[name, v] : counters)
        fleet.counters.emplace_back(name, v);
    for (const auto &[name, acc] : hists) {
        HistogramSnapshot hs;
        hs.count = acc.count;
        hs.sum = acc.sum;
        for (const auto &[edges, count] : acc.bins)
            hs.bins.push_back({edges.first, edges.second, count});
        fleet.histograms.emplace_back(name, std::move(hs));
    }
    return fleet;
}

} // namespace

void
FleetMetrics::addNode(unsigned nodeIndex, const MetricsRegistry &registry)
{
    addNode(nodeIndex, MetricsSnapshot::capture(registry));
}

void
FleetMetrics::addNode(unsigned nodeIndex, MetricsSnapshot snapshot)
{
    DIRIGENT_ASSERT(perNode.empty() || perNode.back().first < nodeIndex,
                    "fleet nodes must be added in ascending index order");
    perNode.emplace_back(nodeIndex, std::move(snapshot));
    fleet = foldFleet(perNode);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition.

namespace {

/** Metric-name charset is [a-zA-Z0-9_:]; everything else becomes '_'
 *  (dots in registry names, mainly). */
std::string
promName(const std::string &name)
{
    std::string out = "dirigent_";
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

std::string
promEscape(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

std::string
promNumber(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    return strfmt("%.17g", v);
}

std::string
nodeLabel(unsigned node)
{
    return strfmt("{node=\"%u\"}", node);
}

/** Emit one histogram's cumulative buckets + _sum/_count. @p labels is
 *  "" for the fleet rollup or a {node="N"} prefix set. */
void
promHistogram(std::ostream &os, const std::string &name,
              const HistogramSnapshot &hs, const std::string &labels)
{
    auto bucket = [&](const std::string &le, uint64_t cum) {
        os << name << "_bucket{";
        if (!labels.empty())
            os << labels << ",";
        os << "le=\"" << le << "\"} " << promNumber(double(cum)) << "\n";
    };
    uint64_t cum = 0;
    for (const Histogram::Bin &bin : hs.bins) {
        cum += bin.count;
        if (std::isinf(bin.hi))
            break; // folded into the +Inf bucket below
        bucket(promNumber(bin.hi), cum);
    }
    bucket("+Inf", hs.count);
    std::string suffix = labels.empty() ? "" : ("{" + labels + "}");
    os << name << "_sum" << suffix << " " << promNumber(hs.sum) << "\n";
    os << name << "_count" << suffix << " "
       << promNumber(double(hs.count)) << "\n";
}

} // namespace

void
writePrometheus(std::ostream &os, const FleetMetrics &fleet)
{
    // Family = one registry name; per-node samples first (index order),
    // then the unlabelled fleet rollup. Union the names through a map
    // so a name owned by only some nodes still renders once.
    std::map<std::string, std::vector<std::pair<unsigned, uint64_t>>>
        counters;
    std::map<std::string, std::vector<std::pair<unsigned, double>>> gauges;
    std::map<std::string,
             std::vector<std::pair<unsigned, const HistogramSnapshot *>>>
        hists;
    for (const auto &[node, snap] : fleet.perNode) {
        for (const auto &[name, v] : snap.counters)
            counters[name].emplace_back(node, v);
        for (const auto &[name, v] : snap.gauges)
            gauges[name].emplace_back(node, v);
        for (const auto &[name, hs] : snap.histograms)
            hists[name].emplace_back(node, &hs);
    }

    for (const auto &[name, samples] : counters) {
        std::string p = promName(name);
        os << "# TYPE " << p << " counter\n";
        for (const auto &[node, v] : samples)
            os << p << nodeLabel(node) << " " << promNumber(double(v))
               << "\n";
        for (const auto &[fname, v] : fleet.fleet.counters)
            if (fname == name)
                os << p << " " << promNumber(double(v)) << "\n";
    }
    for (const auto &[name, samples] : gauges) {
        std::string p = promName(name);
        os << "# TYPE " << p << " gauge\n";
        for (const auto &[node, v] : samples)
            os << p << nodeLabel(node) << " " << promNumber(v) << "\n";
    }
    for (const auto &[name, samples] : hists) {
        std::string p = promName(name);
        os << "# TYPE " << p << " histogram\n";
        for (const auto &[node, hs] : samples)
            promHistogram(os, p, *hs, strfmt("node=\"%u\"", node));
        for (const auto &[fname, hs] : fleet.fleet.histograms)
            if (fname == name)
                promHistogram(os, p, hs, "");
    }
}

std::string
renderPrometheus(const FleetMetrics &fleet)
{
    std::ostringstream os;
    writePrometheus(os, fleet);
    return os.str();
}

bool
writePrometheusFile(const std::string &path, const FleetMetrics &fleet)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        warn("cannot open metrics output '" + path + "'");
        return false;
    }
    writePrometheus(os, fleet);
    return bool(os);
}

// ---------------------------------------------------------------------------
// Exposition parser (round-trip checks + dirigent-inspect prom).

std::vector<const PromSample *>
PromDocument::find(const std::string &name) const
{
    std::vector<const PromSample *> out;
    for (const PromFamily &family : families)
        for (const PromSample &sample : family.samples)
            if (sample.name == name)
                out.push_back(&sample);
    return out;
}

namespace {

bool
parsePromSample(const std::string &line, PromSample *out,
                std::string *error)
{
    size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ')
        ++i;
    out->name = line.substr(0, i);
    if (out->name.empty()) {
        *error = "empty metric name";
        return false;
    }
    if (i < line.size() && line[i] == '{') {
        ++i;
        while (i < line.size() && line[i] != '}') {
            size_t eq = line.find('=', i);
            if (eq == std::string::npos || eq + 1 >= line.size() ||
                line[eq + 1] != '"') {
                *error = "malformed label in '" + line + "'";
                return false;
            }
            std::string key = line.substr(i, eq - i);
            std::string value;
            size_t j = eq + 2;
            while (j < line.size() && line[j] != '"') {
                if (line[j] == '\\' && j + 1 < line.size()) {
                    char e = line[j + 1];
                    value += e == 'n' ? '\n' : e;
                    j += 2;
                } else {
                    value += line[j++];
                }
            }
            if (j >= line.size()) {
                *error = "unterminated label value in '" + line + "'";
                return false;
            }
            out->labels.emplace_back(std::move(key), std::move(value));
            i = j + 1;
            if (i < line.size() && line[i] == ',')
                ++i;
        }
        if (i >= line.size() || line[i] != '}') {
            *error = "unterminated label set in '" + line + "'";
            return false;
        }
        ++i;
    }
    while (i < line.size() && line[i] == ' ')
        ++i;
    if (i >= line.size()) {
        *error = "missing value in '" + line + "'";
        return false;
    }
    const char *start = line.c_str() + i;
    char *end = nullptr;
    out->value = std::strtod(start, &end);
    if (end == start) {
        *error = "bad value in '" + line + "'";
        return false;
    }
    return true;
}

} // namespace

std::optional<PromDocument>
parsePrometheus(const std::string &text, std::string *error)
{
    auto fail = [&](const std::string &what) -> std::optional<PromDocument> {
        if (error != nullptr)
            *error = what;
        return std::nullopt;
    };
    PromDocument doc;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream ls(line);
            std::string hash, kind, name, type;
            ls >> hash >> kind;
            if (kind != "TYPE")
                continue; // HELP or free-form comment
            if (!(ls >> name >> type))
                return fail("malformed TYPE line: '" + line + "'");
            doc.families.push_back({name, type, {}});
            continue;
        }
        PromSample sample;
        std::string sampleError;
        if (!parsePromSample(line, &sample, &sampleError))
            return fail(sampleError);
        if (doc.families.empty())
            return fail("sample before any # TYPE line: '" + line + "'");
        doc.families.back().samples.push_back(std::move(sample));
    }
    return doc;
}

std::string
renderPrometheus(const PromDocument &doc)
{
    std::string out;
    for (const PromFamily &family : doc.families) {
        out += "# TYPE " + family.name + " " + family.type + "\n";
        for (const PromSample &sample : family.samples) {
            out += sample.name;
            if (!sample.labels.empty()) {
                out += "{";
                bool first = true;
                for (const auto &[key, value] : sample.labels) {
                    if (!first)
                        out += ",";
                    first = false;
                    out += key + "=\"" + promEscape(value) + "\"";
                }
                out += "}";
            }
            out += " " + promNumber(sample.value) + "\n";
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// Burn rates.

BurnRateReport
computeBurnRate(const std::vector<RequestRecord> &requests,
                const BurnRateConfig &config, const std::string &scope)
{
    DIRIGENT_ASSERT(config.quantile > 0.0 && config.quantile < 1.0,
                    "burn-rate quantile must be in (0, 1)");
    DIRIGENT_ASSERT(config.windowSec > 0.0,
                    "burn-rate window must be positive");

    BurnRateReport report;
    report.scope = scope;
    report.quantile = config.quantile;
    report.targetSec = config.targetSec;
    report.budget = 1.0 - config.quantile;

    double start = config.startSec;
    double end = config.endSec;
    if (end <= start) {
        // No explicit horizon: span the observed arrivals.
        end = start + config.windowSec;
        for (const RequestRecord &req : requests)
            end = std::max(end, req.arrived.sec() + config.windowSec);
    }
    size_t windowCount =
        size_t(std::ceil((end - start) / config.windowSec));
    windowCount = std::max<size_t>(windowCount, 1);
    report.windows.resize(windowCount);
    for (size_t i = 0; i < windowCount; ++i)
        report.windows[i].startSec = start + double(i) * config.windowSec;

    for (const RequestRecord &req : requests) {
        if (config.fgSlot >= 0 && int(req.fgSlot) != config.fgSlot)
            continue;
        double arrived = req.arrived.sec();
        double rel = (arrived - start) / config.windowSec;
        size_t idx = rel <= 0.0 ? 0 : size_t(rel);
        idx = std::min(idx, windowCount - 1);
        BurnWindow &win = report.windows[idx];
        win.total += 1;
        report.total += 1;
        bool errored = req.outcome != "completed" ||
                       req.responseSec > config.targetSec;
        if (errored) {
            win.errors += 1;
            report.errors += 1;
        }
    }

    for (BurnWindow &win : report.windows) {
        win.burnRate =
            win.total > 0
                ? (double(win.errors) / double(win.total)) / report.budget
                : 0.0;
        report.maxBurnRate = std::max(report.maxBurnRate, win.burnRate);
    }
    report.meanBurnRate =
        report.total > 0
            ? (double(report.errors) / double(report.total)) / report.budget
            : 0.0;
    report.exhausted =
        report.total > 0 &&
        double(report.errors) / double(report.total) > report.budget;
    return report;
}

BurnRateReport
combineBurnRates(const std::vector<BurnRateReport> &reports,
                 const std::string &scope)
{
    DIRIGENT_ASSERT(!reports.empty(), "nothing to combine");
    BurnRateReport out;
    out.scope = scope;
    out.quantile = reports.front().quantile;
    out.targetSec = reports.front().targetSec;
    out.budget = reports.front().budget;

    size_t windowCount = 0;
    for (const BurnRateReport &r : reports)
        windowCount = std::max(windowCount, r.windows.size());
    out.windows.resize(windowCount);
    for (const BurnRateReport &r : reports) {
        DIRIGENT_ASSERT(r.quantile == out.quantile &&
                            r.targetSec == out.targetSec,
                        "combined burn rates must share the SLO target");
        out.total += r.total;
        out.errors += r.errors;
        for (size_t i = 0; i < r.windows.size(); ++i) {
            out.windows[i].startSec = r.windows[i].startSec;
            out.windows[i].total += r.windows[i].total;
            out.windows[i].errors += r.windows[i].errors;
        }
    }
    for (BurnWindow &win : out.windows) {
        win.burnRate =
            win.total > 0
                ? (double(win.errors) / double(win.total)) / out.budget
                : 0.0;
        out.maxBurnRate = std::max(out.maxBurnRate, win.burnRate);
    }
    out.meanBurnRate =
        out.total > 0
            ? (double(out.errors) / double(out.total)) / out.budget
            : 0.0;
    out.exhausted = out.total > 0 &&
                    double(out.errors) / double(out.total) > out.budget;
    return out;
}

} // namespace dirigent::obs
