#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.h"
#include "obs/json.h"

namespace dirigent::obs {

Histogram::Histogram(HistogramConfig config)
    : config_(config), counts_(config.maxBins)
{
    DIRIGENT_ASSERT(config.min > 0.0, "histogram min must be positive");
    DIRIGENT_ASSERT(config.binsPerDecade > 0, "need bins per decade");
    DIRIGENT_ASSERT(config.maxBins > 0, "need at least one bin");
}

double
Histogram::edge(unsigned i) const
{
    return config_.min *
           std::pow(10.0, double(i) / double(config_.binsPerDecade));
}

unsigned
Histogram::binIndex(double value) const
{
    // bin = floor(binsPerDecade · log10(value/min)); callers have
    // already excluded under/overflow.
    double rel = std::log10(value / config_.min);
    double idx = std::floor(rel * double(config_.binsPerDecade));
    if (idx < 0.0)
        return 0;
    if (idx >= double(config_.maxBins))
        return config_.maxBins - 1;
    return unsigned(idx);
}

void
Histogram::observe(double value)
{
    if (!std::isfinite(value))
        return;
    // sum_ uses a CAS loop: atomic<double>::fetch_add is C++20 but not
    // universally lock-free; the loop is equivalent and portable.
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + value,
                                       std::memory_order_relaxed)) {
    }
    if (value < config_.min) {
        underflow_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (value >= edge(config_.maxBins)) {
        overflow_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    counts_[binIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

uint64_t
Histogram::count() const
{
    uint64_t n = underflow_.load(std::memory_order_relaxed) +
                 overflow_.load(std::memory_order_relaxed);
    for (const auto &c : counts_)
        n += c.load(std::memory_order_relaxed);
    return n;
}

double
Histogram::mean() const
{
    uint64_t n = count();
    return n > 0 ? sum() / double(n) : 0.0;
}

double
Histogram::quantile(double q) const
{
    q = std::clamp(q, 0.0, 1.0);
    uint64_t n = count();
    if (n == 0)
        return 0.0;
    // Rank of the q-th observation, 1-based, then walk the bins.
    uint64_t rank = uint64_t(std::ceil(q * double(n)));
    rank = std::max<uint64_t>(rank, 1);
    uint64_t seen = underflow_.load(std::memory_order_relaxed);
    if (rank <= seen)
        return config_.min; // inside the underflow bin
    for (unsigned i = 0; i < config_.maxBins; ++i) {
        seen += counts_[i].load(std::memory_order_relaxed);
        if (rank <= seen)
            return edge(i + 1);
    }
    return std::numeric_limits<double>::infinity(); // overflow bin
}

std::vector<Histogram::Bin>
Histogram::bins() const
{
    std::vector<Bin> out;
    uint64_t u = underflow_.load(std::memory_order_relaxed);
    if (u > 0)
        out.push_back({0.0, config_.min, u});
    for (unsigned i = 0; i < config_.maxBins; ++i) {
        uint64_t c = counts_[i].load(std::memory_order_relaxed);
        if (c > 0)
            out.push_back({edge(i), edge(i + 1), c});
    }
    uint64_t o = overflow_.load(std::memory_order_relaxed);
    if (o > 0)
        out.push_back({edge(config_.maxBins),
                       std::numeric_limits<double>::infinity(), o});
    return out;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name, HistogramConfig config)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(config);
    return *slot;
}

std::string
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{";
    bool first = true;
    auto comma = [&] {
        if (!first)
            out += ",";
        first = false;
    };
    // std::map iterates in sorted key order, so output is deterministic.
    for (const auto &[name, c] : counters_) {
        comma();
        out += jsonQuote(name) + ":" + strfmt("%llu",
                       (unsigned long long)c->value());
    }
    for (const auto &[name, g] : gauges_) {
        comma();
        out += jsonQuote(name) + ":" + jsonDouble(g->value());
    }
    for (const auto &[name, h] : histograms_) {
        comma();
        out += jsonQuote(name) + ":{\"count\":" +
               strfmt("%llu", (unsigned long long)h->count()) +
               ",\"sum\":" + jsonDouble(h->sum()) + ",\"bins\":[";
        bool firstBin = true;
        for (const auto &bin : h->bins()) {
            if (!firstBin)
                out += ",";
            firstBin = false;
            out += "{\"lo\":" + jsonDouble(bin.lo) +
                   ",\"hi\":" + jsonDouble(bin.hi) + ",\"count\":" +
                   strfmt("%llu", (unsigned long long)bin.count) + "}";
        }
        out += "]}";
    }
    out += "}";
    return out;
}

void
MetricsRegistry::writeCsv(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "name,kind,value\n";
    for (const auto &[name, c] : counters_)
        os << name << ",counter," << c->value() << "\n";
    for (const auto &[name, g] : gauges_)
        os << name << ",gauge," << strfmt("%.17g", g->value()) << "\n";
    for (const auto &[name, h] : histograms_) {
        os << name << ",histogram_count," << h->count() << "\n";
        os << name << ",histogram_sum," << strfmt("%.17g", h->sum())
           << "\n";
        for (const auto &bin : h->bins())
            os << name << ",bin[" << strfmt("%.6g", bin.lo) << ":"
               << strfmt("%.6g", bin.hi) << "]," << bin.count << "\n";
    }
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::counterValues() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        out.emplace_back(name, c->value());
    return out;
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::gaugeValues() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(gauges_.size());
    for (const auto &[name, g] : gauges_)
        out.emplace_back(name, g->value());
    return out;
}

std::vector<std::pair<std::string, const Histogram *>>
MetricsRegistry::histogramViews() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, const Histogram *>> out;
    out.reserve(histograms_.size());
    for (const auto &[name, h] : histograms_)
        out.emplace_back(name, h.get());
    return out;
}

} // namespace dirigent::obs
