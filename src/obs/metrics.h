/**
 * @file
 * Low-overhead metrics registry: named counters, gauges, and
 * bounded-error histograms that subsystems (controllers, predictor,
 * sampler, fault injector, sweep executor) publish into.
 *
 * Design constraints, in order:
 *  - cheap updates: counters/gauges are single atomic ops; a histogram
 *    observation is one log10 and one relaxed fetch_add;
 *  - deterministic output: histograms use *fixed* log-linear bin edges
 *    (a function of the config only, never of the data), and the
 *    registry renders in sorted-name order — two runs that observe the
 *    same values serialize byte-identically regardless of thread
 *    interleaving;
 *  - stable addresses: instruments are heap-allocated and never move,
 *    so callers may cache `Counter &` across registrations.
 */

#ifndef DIRIGENT_OBS_METRICS_H
#define DIRIGENT_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace dirigent::obs {

/** A monotonically increasing count. */
class Counter
{
  public:
    void add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** A last-writer-wins instantaneous value. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Histogram shape: fixed log-linear bins over [min, ∞). */
struct HistogramConfig
{
    /** Lower edge of the first bin; observations below land in an
     *  underflow bin. */
    double min = 1e-6;

    /** Bins per factor-of-10; relative bin width (error bound) is
     *  10^(1/binsPerDecade) − 1 (~26 % at the default 10). */
    unsigned binsPerDecade = 10;

    /** Bin count cap; observations past the last edge overflow. */
    unsigned maxBins = 120;
};

/**
 * A fixed-bin log-linear histogram. Bin edges depend only on the
 * config, so two histograms with equal configs and equal observation
 * multisets serialize identically — no per-run rebinning.
 */
class Histogram
{
  public:
    explicit Histogram(HistogramConfig config = HistogramConfig{});

    /** Record one observation (thread-safe, wait-free). */
    void observe(double value);

    uint64_t count() const;
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    double mean() const;

    /**
     * Quantile estimate from the bins (upper edge of the bin holding
     * the q-th observation); error bounded by the relative bin width.
     */
    double quantile(double q) const;

    const HistogramConfig &config() const { return config_; }

    /** One populated bin: [lo, hi) and its count. */
    struct Bin
    {
        double lo = 0.0;
        double hi = 0.0;
        uint64_t count = 0;
    };

    /** Non-empty bins in ascending order (under/overflow included,
     *  with lo=0 for underflow and hi=inf for overflow). */
    std::vector<Bin> bins() const;

  private:
    /** Lower edge of bin @p i (i in [0, maxBins]). */
    double edge(unsigned i) const;
    unsigned binIndex(double value) const;

    HistogramConfig config_;
    std::atomic<double> sum_{0.0};
    std::atomic<uint64_t> underflow_{0};
    std::atomic<uint64_t> overflow_{0};
    std::vector<std::atomic<uint64_t>> counts_;
};

/**
 * The registry: a name → instrument map with deterministic (sorted)
 * serialization. Registration takes a lock; updates through returned
 * references are lock-free.
 */
class MetricsRegistry
{
  public:
    /** The counter named @p name (created on first use). */
    Counter &counter(const std::string &name);

    /** The gauge named @p name (created on first use). */
    Gauge &gauge(const std::string &name);

    /**
     * The histogram named @p name. The config applies on first use;
     * later calls with a different config keep the original shape.
     */
    Histogram &histogram(const std::string &name,
                         HistogramConfig config = HistogramConfig{});

    /**
     * Serialize every instrument as one JSON object, keys sorted:
     * counters as integers, gauges as numbers, histograms as
     * {count,sum,bins:[{lo,hi,count}...]} objects.
     */
    std::string toJson() const;

    /** Emit "name,kind,value" CSV (histograms expand to bin rows). */
    void writeCsv(std::ostream &os) const;

    /** Sorted (name, value) snapshot of every counter. */
    std::vector<std::pair<std::string, uint64_t>> counterValues() const;

    /** Sorted (name, value) snapshot of every gauge. */
    std::vector<std::pair<std::string, double>> gaugeValues() const;

    /**
     * Sorted (name, histogram) views. The pointers stay valid for the
     * registry's lifetime (instruments never move); used by the fleet
     * aggregation in obs/fleet.h.
     */
    std::vector<std::pair<std::string, const Histogram *>>
    histogramViews() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace dirigent::obs

#endif // DIRIGENT_OBS_METRICS_H
