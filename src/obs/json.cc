#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/strfmt.h"

namespace dirigent::obs {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    const JsonValue *found = nullptr;
    for (const auto &[k, v] : object)
        if (k == key)
            found = &v; // duplicates keep the last, like most parsers
    return found;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v != nullptr && v->isNumber() ? v->number : fallback;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v != nullptr && v->isString() ? v->string : fallback;
}

namespace {

/** Recursive-descent parser over a byte string. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    std::optional<JsonValue>
    parse()
    {
        skipWs();
        JsonValue v;
        if (!parseValue(v))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after top-level value");
            return std::nullopt;
        }
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    fail(const std::string &what)
    {
        if (error_ != nullptr && error_->empty())
            *error_ = strfmt("%s at offset %zu", what.c_str(), pos_);
        return false;
    }

    bool
    literal(const char *word, JsonValue &out, JsonValue value)
    {
        size_t len = std::char_traits<char>::length(word);
        if (text_.compare(pos_, len, word) != 0)
            return fail("invalid literal");
        pos_ += len;
        out = std::move(value);
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case 't': {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return literal("true", out, std::move(v));
          }
          case 'f': {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = false;
            return literal("false", out, std::move(v));
          }
          case 'n':
            return literal("null", out, JsonValue{});
          default:
            return parseNumber(out);
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start)
            return fail("invalid number");
        pos_ += size_t(end - start);
        out.kind = JsonValue::Kind::Number;
        out.number = v;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        return fail("invalid \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs are
                // passed through as two 3-byte sequences; the exporters
                // never emit them).
                if (code < 0x80) {
                    out.push_back(char(code));
                } else if (code < 0x800) {
                    out.push_back(char(0xC0 | (code >> 6)));
                    out.push_back(char(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(char(0xE0 | (code >> 12)));
                    out.push_back(char(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(char(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                return fail("invalid escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseArray(JsonValue &out)
    {
        ++pos_; // '['
        out.kind = JsonValue::Kind::Array;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue item;
            skipWs();
            if (!parseValue(item))
                return false;
            out.array.push_back(std::move(item));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            char c = text_[pos_++];
            if (c == ']')
                return true;
            if (c != ',')
                return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        ++pos_; // '{'
        out.kind = JsonValue::Kind::Object;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_++] != ':')
                return fail("expected ':' after object key");
            JsonValue value;
            skipWs();
            if (!parseValue(value))
                return false;
            out.object.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            char c = text_[pos_++];
            if (c == '}')
                return true;
            if (c != ',')
                return fail("expected ',' or '}' in object");
        }
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    if (error != nullptr)
        error->clear();
    return Parser(text, error).parse();
}

std::string
jsonQuote(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out.push_back('"');
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", unsigned(c));
            else
                out.push_back(c);
        }
    }
    out.push_back('"');
    return out;
}

std::string
jsonDouble(double value)
{
    if (!std::isfinite(value))
        return "null";
    return strfmt("%.17g", value);
}

} // namespace dirigent::obs
