/**
 * @file
 * The run manifest: everything needed to reproduce and attribute a
 * recorded run — seed, scheme, mix, fault-plan hash, build version,
 * and harness knobs. Written next to every trace/JSONL export so a
 * file found on disk months later is self-describing.
 */

#ifndef DIRIGENT_OBS_MANIFEST_H
#define DIRIGENT_OBS_MANIFEST_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"

namespace dirigent::obs {

struct JsonValue;

/**
 * One burn-rate verdict (obs::BurnRateReport minus the window detail):
 * how fast the SLO's error budget was consumed over the run. Serialized
 * only when present, so pre-burn-rate manifests stay byte-identical.
 */
struct ManifestBurnRate
{
    std::string scope;      //!< "fg0", "node3/fg0", "fleet", ...
    std::string label;      //!< "p99" style quantile label
    double targetSec = 0.0;
    double budget = 0.0;    //!< 1 − quantile
    uint64_t windows = 0;   //!< accounting-window count
    uint64_t errors = 0;    //!< SLO-violating requests (late/shed/drop)
    uint64_t total = 0;
    double maxBurn = 0.0;   //!< worst single-window burn rate
    double meanBurn = 0.0;  //!< whole-run burn rate
    bool exhausted = false; //!< overall error rate exceeded the budget
};

/** One SLO target's outcome, as recorded in a manifest. */
struct ManifestSloVerdict
{
    std::string label;       //!< "p99" style quantile label
    double targetSec = 0.0;  //!< response-time bound
    double achievedSec = 0.0; //!< measured quantile; NaN = no samples
    bool met = false;
};

/**
 * Serving-run request summary. Present only for serving-mode runs
 * (present == false omits the section from JSON entirely, keeping
 * batch-run manifests byte-identical to earlier releases).
 *
 * Quantiles are NaN when no requests completed; they serialize as
 * JSON null, so "no data" is distinguishable from "zero latency".
 */
struct RequestSummary
{
    bool present = false;
    uint64_t arrivals = 0;
    uint64_t completed = 0;
    uint64_t dropped = 0; //!< rejected: queue at capacity
    uint64_t shed = 0;    //!< rejected by admission control
    double meanSec = 0.0;
    double p50Sec = 0.0;
    double p95Sec = 0.0;
    double p99Sec = 0.0;
    double p999Sec = 0.0;
    std::vector<ManifestSloVerdict> slos;
    bool sloMet = true; //!< every SLO target met (vacuously true)

    /** Burn-rate verdicts (one per SLO target per scope); empty when
     *  the run was not instrumented for burn rates. */
    std::vector<ManifestBurnRate> burnRates;
};

/** One node's line in a cluster manifest. */
struct ClusterNodeSummary
{
    unsigned node = 0;
    std::string mix;    //!< mix label ("fg[,fg]/bg")
    std::string scheme; //!< scheme-spec name
    double speed = 1.0;
    uint64_t arrivals = 0;
    uint64_t completed = 0;
    uint64_t dropped = 0;
    uint64_t shed = 0;
    double utilization = 0.0;
    double p99Sec = 0.0; //!< NaN = nothing completed
    bool degraded = false;

    /** FNV-1a of the node's canonical fault-plan text; 0 = no faults.
     *  Identifies a chaos cell's faulted node without opening the
     *  per-node JSONL rows. */
    uint64_t faultPlanHash = 0;

    /** Fault-plan file the node ran ("" = none). */
    std::string faultsFile;
};

/**
 * Cluster-run fleet summary. Present only for cluster-mode runs
 * (present == false omits the section, like RequestSummary).
 */
struct ClusterSummary
{
    bool present = false;
    std::string policy; //!< dispatch policy name ("rr", "jsq", ...)
    unsigned nodes = 0;
    uint64_t generated = 0; //!< cluster arrival-process total
    uint64_t arrivals = 0;  //!< Σ node arrivals (== generated)
    uint64_t completed = 0;
    uint64_t dropped = 0;
    uint64_t shed = 0;
    double meanSec = 0.0;
    double p50Sec = 0.0;
    double p95Sec = 0.0;
    double p99Sec = 0.0;
    double p999Sec = 0.0;
    std::vector<ManifestSloVerdict> slos;
    bool sloMet = true;
    bool degraded = false;
    double utilizationMean = 0.0;
    double utilizationMin = 0.0;
    double utilizationMax = 0.0;
    double imbalance = 0.0; //!< max/mean node arrivals
    std::vector<ClusterNodeSummary> perNode;

    /** Fleet + per-node burn-rate verdicts (empty when the cell was
     *  not instrumented). */
    std::vector<ManifestBurnRate> burnRates;
};

/** Identity and configuration of one recorded run. */
struct RunManifest
{
    /** Producing tool ("run_experiment", "sweep", a test name). */
    std::string tool;

    /** Build version (git describe at configure time). */
    std::string version;

    std::string mixName;
    std::string scheme;
    uint64_t seed = 0;

    /** FNV-1a of the assembled scheme spec's canonical text; 0 = none
     *  recorded (pre-spec producers, sweeps). */
    uint64_t schemeSpecHash = 0;

    /** Canonical scheme-spec INI text ("" = none recorded). */
    std::string schemeSpecText;

    /** FNV-1a of the canonical fault-plan text; 0 = no faults. */
    uint64_t faultPlanHash = 0;

    /** Canonical fault-plan DSL text ("" = no faults). */
    std::string faultPlanText;

    unsigned warmup = 0;
    unsigned executions = 0;
    Time samplingPeriod;
    unsigned decisionPeriodTicks = 0;

    /** Completion-predictor kind the runtime ran with ("" = no runtime
     *  attached / pre-predictor-seam producers; omitted from JSON so
     *  older manifests stay byte-identical). */
    std::string predictor;

    /** FNV-1a of the canonical [predictor] section text; 0 = none
     *  recorded. */
    uint64_t predictorSpecHash = 0;

    /** Serving-run request summary (absent for batch runs). */
    RequestSummary requests;

    /** Cluster-run fleet summary (absent for single-node runs). */
    ClusterSummary cluster;

    /** Free-form extra configuration (sorted on serialization). */
    std::map<std::string, std::string> extra;

    /** Serialize as one JSON object (deterministic key order). */
    std::string toJson() const;

    /** Parse back what toJson produced (unknown keys ignored). */
    static RunManifest fromJson(const JsonValue &value);
};

/** Build version: git describe captured at configure time. */
std::string buildVersion();

} // namespace dirigent::obs

#endif // DIRIGENT_OBS_MANIFEST_H
