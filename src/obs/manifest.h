/**
 * @file
 * The run manifest: everything needed to reproduce and attribute a
 * recorded run — seed, scheme, mix, fault-plan hash, build version,
 * and harness knobs. Written next to every trace/JSONL export so a
 * file found on disk months later is self-describing.
 */

#ifndef DIRIGENT_OBS_MANIFEST_H
#define DIRIGENT_OBS_MANIFEST_H

#include <cstdint>
#include <map>
#include <string>

#include "common/units.h"

namespace dirigent::obs {

struct JsonValue;

/** Identity and configuration of one recorded run. */
struct RunManifest
{
    /** Producing tool ("run_experiment", "sweep", a test name). */
    std::string tool;

    /** Build version (git describe at configure time). */
    std::string version;

    std::string mixName;
    std::string scheme;
    uint64_t seed = 0;

    /** FNV-1a of the assembled scheme spec's canonical text; 0 = none
     *  recorded (pre-spec producers, sweeps). */
    uint64_t schemeSpecHash = 0;

    /** Canonical scheme-spec INI text ("" = none recorded). */
    std::string schemeSpecText;

    /** FNV-1a of the canonical fault-plan text; 0 = no faults. */
    uint64_t faultPlanHash = 0;

    /** Canonical fault-plan DSL text ("" = no faults). */
    std::string faultPlanText;

    unsigned warmup = 0;
    unsigned executions = 0;
    Time samplingPeriod;
    unsigned decisionPeriodTicks = 0;

    /** Free-form extra configuration (sorted on serialization). */
    std::map<std::string, std::string> extra;

    /** Serialize as one JSON object (deterministic key order). */
    std::string toJson() const;

    /** Parse back what toJson produced (unknown keys ignored). */
    static RunManifest fromJson(const JsonValue &value);
};

/** Build version: git describe captured at configure time. */
std::string buildVersion();

} // namespace dirigent::obs

#endif // DIRIGENT_OBS_MANIFEST_H
