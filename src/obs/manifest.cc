#include "obs/manifest.h"

#include <cmath>
#include <cstdlib>

#include "common/strfmt.h"
#include "obs/json.h"

namespace dirigent::obs {

std::string
buildVersion()
{
#ifdef DIRIGENT_GIT_DESCRIBE
    return DIRIGENT_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

namespace {

/** ",\"burn_rates\":[...]" — or "" when there are none, keeping
 *  pre-burn-rate manifests byte-identical. */
std::string
burnRatesJson(const std::vector<ManifestBurnRate> &rates)
{
    if (rates.empty())
        return "";
    std::string out = ",\"burn_rates\":[";
    for (size_t i = 0; i < rates.size(); ++i) {
        const ManifestBurnRate &b = rates[i];
        if (i > 0)
            out += ",";
        out += "{\"scope\":" + jsonQuote(b.scope);
        out += ",\"label\":" + jsonQuote(b.label);
        out += ",\"target_s\":" + jsonDouble(b.targetSec);
        out += ",\"budget\":" + jsonDouble(b.budget);
        out += strfmt(",\"windows\":%llu,\"errors\":%llu,\"total\":%llu",
                      (unsigned long long)b.windows,
                      (unsigned long long)b.errors,
                      (unsigned long long)b.total);
        out += ",\"max_burn\":" + jsonDouble(b.maxBurn);
        out += ",\"mean_burn\":" + jsonDouble(b.meanBurn);
        out += std::string(",\"exhausted\":") +
               (b.exhausted ? "true" : "false") + "}";
    }
    out += "]";
    return out;
}

std::vector<ManifestBurnRate>
burnRatesFromJson(const JsonValue &parent)
{
    std::vector<ManifestBurnRate> rates;
    const JsonValue *arr = parent.find("burn_rates");
    if (arr == nullptr || !arr->isArray())
        return rates;
    for (const JsonValue &entry : arr->array) {
        ManifestBurnRate b;
        b.scope = entry.stringOr("scope", "");
        b.label = entry.stringOr("label", "");
        b.targetSec = entry.numberOr("target_s", 0.0);
        b.budget = entry.numberOr("budget", 0.0);
        b.windows = uint64_t(entry.numberOr("windows", 0.0));
        b.errors = uint64_t(entry.numberOr("errors", 0.0));
        b.total = uint64_t(entry.numberOr("total", 0.0));
        b.maxBurn = entry.numberOr("max_burn", 0.0);
        b.meanBurn = entry.numberOr("mean_burn", 0.0);
        const JsonValue *ex = entry.find("exhausted");
        b.exhausted = ex != nullptr && ex->isBool() && ex->boolean;
        rates.push_back(std::move(b));
    }
    return rates;
}

} // namespace

std::string
RunManifest::toJson() const
{
    std::string out = "{";
    out += "\"tool\":" + jsonQuote(tool);
    out += ",\"version\":" + jsonQuote(version);
    out += ",\"mix\":" + jsonQuote(mixName);
    out += ",\"scheme\":" + jsonQuote(scheme);
    // 64-bit values exceed a JSON number's exact double range; encode
    // as decimal strings so parse → serialize is lossless.
    out += ",\"seed\":" + jsonQuote(strfmt("%llu",
                                           (unsigned long long)seed));
    out += ",\"scheme_spec_hash\":" +
           jsonQuote(strfmt("%llu", (unsigned long long)schemeSpecHash));
    out += ",\"scheme_spec\":" + jsonQuote(schemeSpecText);
    out += ",\"fault_plan_hash\":" +
           jsonQuote(strfmt("%llu", (unsigned long long)faultPlanHash));
    out += ",\"fault_plan\":" + jsonQuote(faultPlanText);
    out += strfmt(",\"warmup\":%u", warmup);
    out += strfmt(",\"executions\":%u", executions);
    out += ",\"sampling_period_s\":" + jsonDouble(samplingPeriod.sec());
    out += strfmt(",\"decision_period_ticks\":%u", decisionPeriodTicks);
    // Predictor identity: emitted only when a runtime ran, so
    // pre-predictor-seam manifests stay byte-identical.
    if (!predictor.empty()) {
        out += ",\"predictor\":" + jsonQuote(predictor);
        out += ",\"predictor_spec_hash\":" +
               jsonQuote(strfmt("%llu",
                                (unsigned long long)predictorSpecHash));
    }
    if (requests.present) {
        out += strfmt(",\"requests\":{\"arrivals\":%llu"
                      ",\"completed\":%llu,\"dropped\":%llu"
                      ",\"shed\":%llu",
                      (unsigned long long)requests.arrivals,
                      (unsigned long long)requests.completed,
                      (unsigned long long)requests.dropped,
                      (unsigned long long)requests.shed);
        out += ",\"mean_s\":" + jsonDouble(requests.meanSec);
        out += ",\"p50_s\":" + jsonDouble(requests.p50Sec);
        out += ",\"p95_s\":" + jsonDouble(requests.p95Sec);
        out += ",\"p99_s\":" + jsonDouble(requests.p99Sec);
        out += ",\"p999_s\":" + jsonDouble(requests.p999Sec);
        out += ",\"slo\":[";
        for (size_t i = 0; i < requests.slos.size(); ++i) {
            const ManifestSloVerdict &v = requests.slos[i];
            if (i > 0)
                out += ",";
            out += "{\"label\":" + jsonQuote(v.label);
            out += ",\"target_s\":" + jsonDouble(v.targetSec);
            out += ",\"achieved_s\":" + jsonDouble(v.achievedSec);
            out += std::string(",\"met\":") +
                   (v.met ? "true" : "false") + "}";
        }
        out += std::string("],\"slo_met\":") +
               (requests.sloMet ? "true" : "false");
        out += burnRatesJson(requests.burnRates);
        out += "}";
    }
    if (cluster.present) {
        out += ",\"cluster\":{\"policy\":" + jsonQuote(cluster.policy);
        out += strfmt(",\"nodes\":%u", cluster.nodes);
        out += strfmt(",\"generated\":%llu,\"arrivals\":%llu"
                      ",\"completed\":%llu,\"dropped\":%llu"
                      ",\"shed\":%llu",
                      (unsigned long long)cluster.generated,
                      (unsigned long long)cluster.arrivals,
                      (unsigned long long)cluster.completed,
                      (unsigned long long)cluster.dropped,
                      (unsigned long long)cluster.shed);
        out += ",\"mean_s\":" + jsonDouble(cluster.meanSec);
        out += ",\"p50_s\":" + jsonDouble(cluster.p50Sec);
        out += ",\"p95_s\":" + jsonDouble(cluster.p95Sec);
        out += ",\"p99_s\":" + jsonDouble(cluster.p99Sec);
        out += ",\"p999_s\":" + jsonDouble(cluster.p999Sec);
        out += ",\"slo\":[";
        for (size_t i = 0; i < cluster.slos.size(); ++i) {
            const ManifestSloVerdict &v = cluster.slos[i];
            if (i > 0)
                out += ",";
            out += "{\"label\":" + jsonQuote(v.label);
            out += ",\"target_s\":" + jsonDouble(v.targetSec);
            out += ",\"achieved_s\":" + jsonDouble(v.achievedSec);
            out += std::string(",\"met\":") +
                   (v.met ? "true" : "false") + "}";
        }
        out += std::string("],\"slo_met\":") +
               (cluster.sloMet ? "true" : "false");
        out += std::string(",\"degraded\":") +
               (cluster.degraded ? "true" : "false");
        out += ",\"utilization_mean\":" +
               jsonDouble(cluster.utilizationMean);
        out += ",\"utilization_min\":" +
               jsonDouble(cluster.utilizationMin);
        out += ",\"utilization_max\":" +
               jsonDouble(cluster.utilizationMax);
        out += ",\"imbalance\":" + jsonDouble(cluster.imbalance);
        out += ",\"per_node\":[";
        for (size_t i = 0; i < cluster.perNode.size(); ++i) {
            const ClusterNodeSummary &n = cluster.perNode[i];
            if (i > 0)
                out += ",";
            out += strfmt("{\"node\":%u", n.node);
            out += ",\"mix\":" + jsonQuote(n.mix);
            out += ",\"scheme\":" + jsonQuote(n.scheme);
            out += ",\"speed\":" + jsonDouble(n.speed);
            out += strfmt(",\"arrivals\":%llu,\"completed\":%llu"
                          ",\"dropped\":%llu,\"shed\":%llu",
                          (unsigned long long)n.arrivals,
                          (unsigned long long)n.completed,
                          (unsigned long long)n.dropped,
                          (unsigned long long)n.shed);
            out += ",\"utilization\":" + jsonDouble(n.utilization);
            out += ",\"p99_s\":" + jsonDouble(n.p99Sec);
            out += std::string(",\"degraded\":") +
                   (n.degraded ? "true" : "false");
            // Chaos provenance: emitted only for faulted nodes so
            // fault-free manifests stay byte-identical.
            if (n.faultPlanHash != 0)
                out += ",\"fault_plan_hash\":" +
                       jsonQuote(strfmt(
                           "%llu",
                           (unsigned long long)n.faultPlanHash));
            if (!n.faultsFile.empty())
                out += ",\"faults_file\":" + jsonQuote(n.faultsFile);
            out += "}";
        }
        out += "]";
        out += burnRatesJson(cluster.burnRates);
        out += "}";
    }
    out += ",\"extra\":{";
    bool first = true;
    for (const auto &[k, v] : extra) { // std::map: sorted, deterministic
        if (!first)
            out += ",";
        first = false;
        out += jsonQuote(k) + ":" + jsonQuote(v);
    }
    out += "}}";
    return out;
}

RunManifest
RunManifest::fromJson(const JsonValue &value)
{
    RunManifest m;
    m.tool = value.stringOr("tool", "");
    m.version = value.stringOr("version", "");
    m.mixName = value.stringOr("mix", "");
    m.scheme = value.stringOr("scheme", "");
    m.seed = std::strtoull(value.stringOr("seed", "0").c_str(),
                           nullptr, 10);
    m.schemeSpecHash = std::strtoull(
        value.stringOr("scheme_spec_hash", "0").c_str(), nullptr, 10);
    m.schemeSpecText = value.stringOr("scheme_spec", "");
    m.faultPlanHash = std::strtoull(
        value.stringOr("fault_plan_hash", "0").c_str(), nullptr, 10);
    m.faultPlanText = value.stringOr("fault_plan", "");
    m.warmup = unsigned(value.numberOr("warmup", 0.0));
    m.executions = unsigned(value.numberOr("executions", 0.0));
    m.samplingPeriod =
        Time::sec(value.numberOr("sampling_period_s", 0.0));
    m.decisionPeriodTicks =
        unsigned(value.numberOr("decision_period_ticks", 0.0));
    m.predictor = value.stringOr("predictor", "");
    m.predictorSpecHash = std::strtoull(
        value.stringOr("predictor_spec_hash", "0").c_str(), nullptr, 10);
    if (const JsonValue *req = value.find("requests");
        req != nullptr && req->isObject()) {
        const double nan = std::nan("");
        m.requests.present = true;
        m.requests.arrivals = uint64_t(req->numberOr("arrivals", 0.0));
        m.requests.completed =
            uint64_t(req->numberOr("completed", 0.0));
        m.requests.dropped = uint64_t(req->numberOr("dropped", 0.0));
        m.requests.shed = uint64_t(req->numberOr("shed", 0.0));
        m.requests.meanSec = req->numberOr("mean_s", nan);
        m.requests.p50Sec = req->numberOr("p50_s", nan);
        m.requests.p95Sec = req->numberOr("p95_s", nan);
        m.requests.p99Sec = req->numberOr("p99_s", nan);
        m.requests.p999Sec = req->numberOr("p999_s", nan);
        if (const JsonValue *slo = req->find("slo");
            slo != nullptr && slo->isArray()) {
            for (const JsonValue &entry : slo->array) {
                ManifestSloVerdict v;
                v.label = entry.stringOr("label", "");
                v.targetSec = entry.numberOr("target_s", 0.0);
                v.achievedSec = entry.numberOr("achieved_s", nan);
                const JsonValue *met = entry.find("met");
                v.met = met != nullptr && met->isBool() && met->boolean;
                m.requests.slos.push_back(std::move(v));
            }
        }
        const JsonValue *sloMet = req->find("slo_met");
        m.requests.sloMet =
            sloMet == nullptr || !sloMet->isBool() || sloMet->boolean;
        m.requests.burnRates = burnRatesFromJson(*req);
    }
    if (const JsonValue *cl = value.find("cluster");
        cl != nullptr && cl->isObject()) {
        const double nan = std::nan("");
        m.cluster.present = true;
        m.cluster.policy = cl->stringOr("policy", "");
        m.cluster.nodes = unsigned(cl->numberOr("nodes", 0.0));
        m.cluster.generated = uint64_t(cl->numberOr("generated", 0.0));
        m.cluster.arrivals = uint64_t(cl->numberOr("arrivals", 0.0));
        m.cluster.completed = uint64_t(cl->numberOr("completed", 0.0));
        m.cluster.dropped = uint64_t(cl->numberOr("dropped", 0.0));
        m.cluster.shed = uint64_t(cl->numberOr("shed", 0.0));
        m.cluster.meanSec = cl->numberOr("mean_s", nan);
        m.cluster.p50Sec = cl->numberOr("p50_s", nan);
        m.cluster.p95Sec = cl->numberOr("p95_s", nan);
        m.cluster.p99Sec = cl->numberOr("p99_s", nan);
        m.cluster.p999Sec = cl->numberOr("p999_s", nan);
        if (const JsonValue *slo = cl->find("slo");
            slo != nullptr && slo->isArray()) {
            for (const JsonValue &entry : slo->array) {
                ManifestSloVerdict v;
                v.label = entry.stringOr("label", "");
                v.targetSec = entry.numberOr("target_s", 0.0);
                v.achievedSec = entry.numberOr("achieved_s", nan);
                const JsonValue *met = entry.find("met");
                v.met = met != nullptr && met->isBool() && met->boolean;
                m.cluster.slos.push_back(std::move(v));
            }
        }
        const JsonValue *sloMet = cl->find("slo_met");
        m.cluster.sloMet =
            sloMet == nullptr || !sloMet->isBool() || sloMet->boolean;
        const JsonValue *degraded = cl->find("degraded");
        m.cluster.degraded = degraded != nullptr &&
                             degraded->isBool() && degraded->boolean;
        m.cluster.utilizationMean =
            cl->numberOr("utilization_mean", 0.0);
        m.cluster.utilizationMin = cl->numberOr("utilization_min", 0.0);
        m.cluster.utilizationMax = cl->numberOr("utilization_max", 0.0);
        m.cluster.imbalance = cl->numberOr("imbalance", 0.0);
        if (const JsonValue *perNode = cl->find("per_node");
            perNode != nullptr && perNode->isArray()) {
            for (const JsonValue &entry : perNode->array) {
                ClusterNodeSummary n;
                n.node = unsigned(entry.numberOr("node", 0.0));
                n.mix = entry.stringOr("mix", "");
                n.scheme = entry.stringOr("scheme", "");
                n.speed = entry.numberOr("speed", 1.0);
                n.arrivals = uint64_t(entry.numberOr("arrivals", 0.0));
                n.completed =
                    uint64_t(entry.numberOr("completed", 0.0));
                n.dropped = uint64_t(entry.numberOr("dropped", 0.0));
                n.shed = uint64_t(entry.numberOr("shed", 0.0));
                n.utilization = entry.numberOr("utilization", 0.0);
                n.p99Sec = entry.numberOr("p99_s", nan);
                const JsonValue *ndeg = entry.find("degraded");
                n.degraded =
                    ndeg != nullptr && ndeg->isBool() && ndeg->boolean;
                n.faultPlanHash = std::strtoull(
                    entry.stringOr("fault_plan_hash", "0").c_str(),
                    nullptr, 10);
                n.faultsFile = entry.stringOr("faults_file", "");
                m.cluster.perNode.push_back(std::move(n));
            }
        }
        m.cluster.burnRates = burnRatesFromJson(*cl);
    }
    if (const JsonValue *extra = value.find("extra");
        extra != nullptr && extra->isObject()) {
        for (const auto &[k, v] : extra->object)
            if (v.isString())
                m.extra[k] = v.string;
    }
    return m;
}

} // namespace dirigent::obs
