#include "obs/manifest.h"

#include <cstdlib>

#include "common/strfmt.h"
#include "obs/json.h"

namespace dirigent::obs {

std::string
buildVersion()
{
#ifdef DIRIGENT_GIT_DESCRIBE
    return DIRIGENT_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

std::string
RunManifest::toJson() const
{
    std::string out = "{";
    out += "\"tool\":" + jsonQuote(tool);
    out += ",\"version\":" + jsonQuote(version);
    out += ",\"mix\":" + jsonQuote(mixName);
    out += ",\"scheme\":" + jsonQuote(scheme);
    // 64-bit values exceed a JSON number's exact double range; encode
    // as decimal strings so parse → serialize is lossless.
    out += ",\"seed\":" + jsonQuote(strfmt("%llu",
                                           (unsigned long long)seed));
    out += ",\"scheme_spec_hash\":" +
           jsonQuote(strfmt("%llu", (unsigned long long)schemeSpecHash));
    out += ",\"scheme_spec\":" + jsonQuote(schemeSpecText);
    out += ",\"fault_plan_hash\":" +
           jsonQuote(strfmt("%llu", (unsigned long long)faultPlanHash));
    out += ",\"fault_plan\":" + jsonQuote(faultPlanText);
    out += strfmt(",\"warmup\":%u", warmup);
    out += strfmt(",\"executions\":%u", executions);
    out += ",\"sampling_period_s\":" + jsonDouble(samplingPeriod.sec());
    out += strfmt(",\"decision_period_ticks\":%u", decisionPeriodTicks);
    out += ",\"extra\":{";
    bool first = true;
    for (const auto &[k, v] : extra) { // std::map: sorted, deterministic
        if (!first)
            out += ",";
        first = false;
        out += jsonQuote(k) + ":" + jsonQuote(v);
    }
    out += "}}";
    return out;
}

RunManifest
RunManifest::fromJson(const JsonValue &value)
{
    RunManifest m;
    m.tool = value.stringOr("tool", "");
    m.version = value.stringOr("version", "");
    m.mixName = value.stringOr("mix", "");
    m.scheme = value.stringOr("scheme", "");
    m.seed = std::strtoull(value.stringOr("seed", "0").c_str(),
                           nullptr, 10);
    m.schemeSpecHash = std::strtoull(
        value.stringOr("scheme_spec_hash", "0").c_str(), nullptr, 10);
    m.schemeSpecText = value.stringOr("scheme_spec", "");
    m.faultPlanHash = std::strtoull(
        value.stringOr("fault_plan_hash", "0").c_str(), nullptr, 10);
    m.faultPlanText = value.stringOr("fault_plan", "");
    m.warmup = unsigned(value.numberOr("warmup", 0.0));
    m.executions = unsigned(value.numberOr("executions", 0.0));
    m.samplingPeriod =
        Time::sec(value.numberOr("sampling_period_s", 0.0));
    m.decisionPeriodTicks =
        unsigned(value.numberOr("decision_period_ticks", 0.0));
    if (const JsonValue *extra = value.find("extra");
        extra != nullptr && extra->isObject()) {
        for (const auto &[k, v] : extra->object)
            if (v.isString())
                m.extra[k] = v.string;
    }
    return m;
}

} // namespace dirigent::obs
