/**
 * @file
 * The time-series recorder: preallocated columnar storage for
 * per-quantum samples, instant events (controller decisions, faults),
 * and per-execution slices, plus the RunProbe that fills it from a
 * live simulation as a passive sim::Observer.
 *
 * Hot-path contract: once the probe has registered its series (at
 * attach time), taking a sample performs no allocation until the
 * preallocated capacity is exhausted — and a *detached* recorder is a
 * provable no-op: nothing is attached to the engine, the machine, or
 * the decision trace, so golden traces stay byte-identical.
 */

#ifndef DIRIGENT_OBS_RECORDER_H
#define DIRIGENT_OBS_RECORDER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "dirigent/runtime.h"
#include "dirigent/trace.h"
#include "fault/injector.h"
#include "machine/cat.h"
#include "machine/cpufreq.h"
#include "machine/machine.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "sim/engine.h"

namespace dirigent::obs {

/** Recorder sizing and cadence. */
struct RecorderConfig
{
    /** Series sampling cadence (quantum-aligned: the first quantum
     *  boundary at or after each due time takes the sample). */
    Time samplePeriod = Time::ms(1.0);

    /** Preallocated samples per series (grows beyond, with alloc). */
    size_t reserveSamples = 1 << 15;

    /** Preallocated instant events / slices. */
    size_t reserveEvents = 4096;
    size_t reserveSlices = 4096;
};

/** One named time series (parallel time/value columns, seconds). */
struct Series
{
    std::string name;
    std::string unit;
    std::vector<double> times;
    std::vector<double> values;
};

/** A point event: a controller decision or an injected fault. */
struct InstantEvent
{
    Time when;
    std::string category; //!< "decision" or "fault"
    std::string name;     //!< action / fault kind
    machine::Pid pid = 0;
    double value = 0.0;   //!< slack ratio (decisions), count (faults)
    std::string detail;
};

/**
 * Lifecycle of one serving-mode request (arrival → outcome), recorded
 * by serve::ServeDriver. started/finished are Time::never() for
 * requests that were rejected (dropped/shed) rather than served.
 */
struct RequestRecord
{
    unsigned fgSlot = 0; //!< FG index within the mix
    machine::Pid pid = 0;
    uint64_t id = 0;     //!< per-driver arrival sequence number
    Time arrived;
    Time started = Time::never();
    Time finished = Time::never();
    size_t queueDepth = 0;  //!< waiting requests at arrival
    std::string outcome;    //!< "completed", "dropped", or "shed"
    double responseSec = 0.0; //!< NaN unless completed
};

/** One completed foreground execution. */
struct ExecutionSlice
{
    unsigned fgSlot = 0; //!< FG index within the mix
    machine::Pid pid = 0;
    std::string program;
    Time start;
    Time end;
    uint64_t executionIndex = 0;
    double deadlineSec = 0.0;  //!< 0 when no deadline was configured
    double predictedSec = 0.0; //!< last prediction before completion
    bool missed = false;

    Time duration() const { return end - start; }
};

/**
 * Columnar run recording. One recorder captures one run; attach it via
 * harness::RunOptions::recorder, then export with obs/export.h.
 */
class Recorder
{
  public:
    explicit Recorder(RecorderConfig config = RecorderConfig{});

    const RecorderConfig &config() const { return config_; }

    /** Register a series; returns its id. Preallocates columns. */
    size_t addSeries(const std::string &name, const std::string &unit);

    /** Append one (time, value) sample to series @p id. */
    void
    sample(size_t id, Time when, double value)
    {
        Series &s = series_[id];
        s.times.push_back(when.sec());
        s.values.push_back(value);
    }

    void addEvent(InstantEvent event);
    void addSlice(ExecutionSlice slice);
    void addRequest(RequestRecord request);

    const std::vector<Series> &series() const { return series_; }
    const std::vector<InstantEvent> &events() const { return events_; }
    const std::vector<ExecutionSlice> &slices() const { return slices_; }
    const std::vector<RequestRecord> &requests() const
    {
        return requests_;
    }

    /** Series by name, or nullptr. */
    const Series *findSeries(const std::string &name) const;

    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    RunManifest &manifest() { return manifest_; }
    const RunManifest &manifest() const { return manifest_; }

    /** Drop all recorded data (series definitions survive). */
    void clearData();

  private:
    RecorderConfig config_;
    std::vector<Series> series_;
    std::vector<InstantEvent> events_;
    std::vector<ExecutionSlice> slices_;
    std::vector<RequestRecord> requests_;
    MetricsRegistry metrics_;
    RunManifest manifest_;
};

/**
 * Live telemetry probe: samples machine/runtime state into a Recorder
 * at every due quantum boundary. Strictly read-only with respect to
 * the simulation. The harness attaches it as an engine observer, a
 * completion listener, and a DecisionTrace sink; all three are passive
 * hooks, so attachment never changes simulated behaviour.
 */
class RunProbe : public sim::Observer
{
  public:
    /** What the probe reads (all borrowed; machine/governor/cat
     *  required, runtime and faults optional). */
    struct Sources
    {
        machine::Machine *machine = nullptr;
        machine::CpuFreqGovernor *governor = nullptr;
        machine::CatController *cat = nullptr;
        core::DirigentRuntime *runtime = nullptr;
        fault::FaultInjector *faults = nullptr;

        /** FG pids in slot order, with per-pid deadlines (seconds). */
        std::vector<machine::Pid> fgPids;
        std::map<machine::Pid, double> fgDeadlineSec;
    };

    RunProbe(Recorder &recorder, Sources sources);

    // sim::Observer
    void beforeQuantum(Time start, Time dt) override;
    void afterQuantum(Time start, Time dt) override;

    /** Wire into machine::Machine::addCompletionListener. */
    void onCompletion(const machine::CompletionRecord &rec);

    /** Wire into core::DecisionTrace::setSink. */
    void onDecision(const core::TraceEvent &event);

    /**
     * Publish end-of-run aggregates (fault stats, governor stats,
     * runtime counters, completion counts) into the recorder's metrics
     * registry. Call once after the run.
     */
    void finish();

  private:
    void takeSample(Time now);

    Recorder &recorder_;
    Sources src_;

    // Series ids, laid out at construction.
    std::vector<size_t> coreFreq_;   //!< per core, GHz
    std::vector<size_t> corePaused_; //!< per core, 0/1
    std::vector<size_t> coreMpki_;   //!< per core, misses/kilo-instr
    size_t catWays_ = 0;
    size_t dramUtil_ = 0;
    size_t dramBw_ = 0; //!< GB/s over the sample interval
    std::vector<size_t> fgPredicted_; //!< per FG slot, ms
    std::vector<size_t> fgSlack_;     //!< predicted/deadline
    std::vector<size_t> fgAlpha_;     //!< MA({α})
    std::vector<size_t> fgProgress_;  //!< profiled fraction 0..1
    std::vector<size_t> fgDegraded_;  //!< 0/1 reactive fallback
    std::vector<size_t> fgPredError_; //!< smoothed relative error

    // Delta state between samples.
    Time nextSample_;
    Time lastSampleTime_;
    std::vector<double> lastInstr_;
    std::vector<double> lastMisses_;
    double lastDramBytes_ = 0.0;
    fault::FaultStats lastFaults_;

    // Per-pid bookkeeping for slices.
    std::map<machine::Pid, unsigned> fgSlot_;
    std::map<machine::Pid, double> lastPredictedSec_;

    uint64_t fgCompletions_ = 0;
    uint64_t bgCompletions_ = 0;
    uint64_t fgMisses_ = 0;
};

} // namespace dirigent::obs

#endif // DIRIGENT_OBS_RECORDER_H
