/**
 * @file
 * Per-request trace spans: the distributed-tracing substrate for the
 * serving and cluster layers. One span covers one request's lifecycle
 * (arrival → queue wait → service → completion, or arrival → shed/
 * drop), with deterministic trace/span IDs derived purely from
 * (run seed, node index, FG slot, request id) and causal links to the
 * DecisionTrace events (admission-limit updates, sheds, throttle/DVFS
 * actions) that fired inside the request's window.
 *
 * Passive-telemetry contract, like the Recorder: a run with no
 * SpanCollector attached performs zero span work — golden traces stay
 * byte-identical. With a collector attached, the finalized span list
 * is a pure function of the simulated run (canonical order: node, FG
 * slot, request id), so span artifacts are byte-identical at any
 * executor thread count.
 */

#ifndef DIRIGENT_OBS_SPAN_H
#define DIRIGENT_OBS_SPAN_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "dirigent/trace.h"
#include "machine/machine.h"
#include "obs/json.h"

namespace dirigent::obs {

/** One timed stage inside a span ("queue_wait", "service"). */
struct SpanStage
{
    std::string name;
    double startSec = 0.0;
    double endSec = 0.0;

    double durationSec() const { return endSec - startSec; }
};

/** A causally linked controller decision inside the span's window. */
struct SpanLink
{
    double tSec = 0.0;
    std::string action; //!< core::traceActionName of the decision
    machine::Pid pid = 0;
    double value = 0.0; //!< slack ratio / admission limit
    std::string detail;
};

/** One request's trace span. */
struct Span
{
    uint64_t traceId = 0; //!< deterministic: fnv1a(seed,node,slot,id)
    uint64_t spanId = 0;  //!< distinct hash over the same tuple
    unsigned node = 0;    //!< cluster node index (0 for single-node)
    unsigned fgSlot = 0;
    machine::Pid pid = 0;
    uint64_t requestId = 0; //!< per-driver arrival sequence number

    double arrivedSec = 0.0;
    /** NaN for rejected (shed/dropped) requests. */
    double startedSec = 0.0;
    double finishedSec = 0.0;

    size_t queueDepth = 0;  //!< waiting requests at arrival
    double admitLimit = 0.0; //!< admission limit at arrival (0 = none)
    std::string outcome;     //!< "completed", "dropped", or "shed"

    std::vector<SpanStage> stages;
    std::vector<SpanLink> links;

    /** End-to-end latency; NaN unless completed. */
    double e2eSec() const;

    /** Longest stage, or nullptr when the span has none. */
    const SpanStage *dominantStage() const;

    /** End of the span's window (arrival time for rejections). */
    double endSec() const;
};

/**
 * Collects spans for one run (one node). ServeDriver reports each
 * request's terminal outcome via recordRequest; the harness mirrors
 * DecisionTrace events via recordDecision. finalize() derives stages,
 * attaches causal links, and sorts canonically.
 */
class SpanCollector
{
  public:
    /**
     * @param runSeed the run's base seed — the *cluster-level* seed in
     *        cluster runs, so a node's IDs do not depend on its salted
     *        harness seed.
     * @param nodeIndex cluster node index (0 for single-node runs).
     */
    explicit SpanCollector(uint64_t runSeed, unsigned nodeIndex = 0);

    uint64_t runSeed() const { return runSeed_; }
    unsigned nodeIndex() const { return nodeIndex_; }

    /** One terminal request outcome (called once per request). */
    void recordRequest(unsigned fgSlot, machine::Pid pid,
                       uint64_t requestId, Time arrived, Time started,
                       Time finished, size_t queueDepth,
                       const std::string &outcome, double admitLimit);

    /** Mirror of one DecisionTrace event (causal-link candidate). */
    void recordDecision(const core::TraceEvent &event);

    /**
     * Derive stages, attach links (decisions for the span's pid — or
     * pid 0 == global — inside [arrived, end]), and sort spans by
     * (node, fgSlot, requestId). Idempotent.
     */
    void finalize();

    bool finalized() const { return finalized_; }

    const std::vector<Span> &spans() const { return spans_; }

    /**
     * Fleet fold: append @p other's spans (finalizing it first if
     * needed) and mark this collector finalized. The target must be a
     * pure aggregator (no raw data of its own); call in node-index
     * order for a canonical fleet list.
     */
    void merge(SpanCollector &other);

  private:
    uint64_t runSeed_;
    unsigned nodeIndex_;
    bool finalized_ = false;
    std::vector<Span> spans_;
    std::vector<SpanLink> decisions_; //!< in record order (time order)
};

/**
 * Serialize spans as a standalone JSON document:
 * {"schema":"dirigent-spans-v1","seed":"...","spans":[...]} with
 * %.17g doubles and 64-bit ids as decimal strings (the repo-wide
 * manifest convention). Deterministic given the span list.
 */
std::string spansToJson(const std::vector<Span> &spans,
                        uint64_t runSeed);

/** Parse back what spansToJson produced. */
std::optional<std::vector<Span>> parseSpans(const JsonValue &root,
                                            std::string *error = nullptr);

/** Load + parse a spans file. */
std::optional<std::vector<Span>>
loadSpansFile(const std::string &path, std::string *error = nullptr);

/** Write the spans document; warn + return false on I/O failure. */
bool writeSpansFile(const std::string &path,
                    const SpanCollector &collector);

} // namespace dirigent::obs

#endif // DIRIGENT_OBS_SPAN_H
