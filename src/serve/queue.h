/**
 * @file
 * Per-FG request queue: bounded capacity, FIFO/LIFO discipline, and
 * drop/shed accounting. The queue holds request ids (indices into the
 * driver's per-request record store); the Request record itself carries
 * the full lifecycle of one request — arrival, service start, finish,
 * queue depth at arrival, and final outcome.
 *
 * Terminology follows load-shedding practice: a *drop* is a request
 * rejected because the queue is full (a capacity limit), a *shed* is a
 * request rejected by the admission controller (a policy limit).
 */

#ifndef DIRIGENT_SERVE_QUEUE_H
#define DIRIGENT_SERVE_QUEUE_H

#include <cstdint>
#include <deque>
#include <optional>

#include "common/units.h"

namespace dirigent::serve {

/** Final state of one request. */
enum class RequestOutcome
{
    Pending,   //!< queued or in service
    Completed, //!< served to completion
    Dropped,   //!< rejected: queue at capacity
    Shed       //!< rejected: admission controller refused it
};

/** Printable outcome name ("pending", "completed", ...). */
const char *outcomeName(RequestOutcome outcome);

/** Lifecycle record of one request. */
struct Request
{
    uint64_t id = 0;     //!< per-driver sequence number (arrival order)
    Time arrived;        //!< request arrival time
    Time started = Time::never();  //!< service start (dequeue) time
    Time finished = Time::never(); //!< completion time
    size_t queueDepth = 0; //!< waiting requests at arrival (excl. this)
    RequestOutcome outcome = RequestOutcome::Pending;

    /** Arrival-to-completion latency (queueing + service). */
    Time responseTime() const { return finished - arrived; }

    /** Service-only latency. */
    Time serviceTime() const { return finished - started; }
};

/** Service order of waiting requests. */
enum class QueueDiscipline
{
    Fifo, //!< oldest request first
    Lifo  //!< newest request first (adversarial-tail stack)
};

/** Printable discipline name ("fifo" / "lifo"). */
const char *disciplineName(QueueDiscipline discipline);

/**
 * Bounded queue of waiting request ids with rejection accounting.
 */
class RequestQueue
{
  public:
    /**
     * @param capacity maximum waiting requests; 0 = unbounded.
     * @param discipline service order of waiting requests.
     */
    explicit RequestQueue(size_t capacity = 0,
                          QueueDiscipline discipline =
                              QueueDiscipline::Fifo);

    /**
     * Enqueue request @p id; false (and one more drop accounted) when
     * the queue is at capacity.
     */
    bool push(uint64_t id);

    /** Next request id to serve per discipline; nullopt when empty. */
    std::optional<uint64_t> pop();

    /** Account one admission-controller rejection. */
    void noteShed() { ++shed_; }

    size_t capacity() const { return capacity_; }
    QueueDiscipline discipline() const { return discipline_; }

    /** Currently waiting requests. */
    size_t depth() const { return waiting_.size(); }
    bool empty() const { return waiting_.empty(); }

    /** Largest depth ever observed (after a push). */
    size_t maxDepth() const { return maxDepth_; }

    /** Successfully enqueued requests. */
    uint64_t accepted() const { return accepted_; }

    /** Requests rejected because the queue was full. */
    uint64_t dropped() const { return dropped_; }

    /** Requests rejected by admission control (via noteShed()). */
    uint64_t shed() const { return shed_; }

  private:
    size_t capacity_;
    QueueDiscipline discipline_;
    std::deque<uint64_t> waiting_;
    size_t maxDepth_ = 0;
    uint64_t accepted_ = 0;
    uint64_t dropped_ = 0;
    uint64_t shed_ = 0;
};

} // namespace dirigent::serve

#endif // DIRIGENT_SERVE_QUEUE_H
