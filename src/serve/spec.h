/**
 * @file
 * Declarative serving-workload description: a ServeSpec bundles the
 * arrival process, queue sizing, SLO targets, and measurement window
 * of one request-serving run as data — the serving analogue of
 * core::SchemeSpec, in the same INI Config format, round-trippable
 * through formatServeSpec() and fingerprinted with FNV-1a so a run
 * manifest can reproduce its exact workload.
 *
 *   [arrivals]
 *   kind = mmpp            # poisson | mmpp | diurnal | trace
 *   rate = 1.2             # requests/second (base / mean rate)
 *   burst_rate = 6.0       # mmpp burst-state rate
 *   dwell_s = 10           # mmpp base-state mean dwell
 *   burst_dwell_s = 2      # mmpp burst-state mean dwell
 *   period_s = 60          # diurnal period
 *   amplitude = 0.5        # diurnal relative amplitude [0, 1]
 *   trace_file =           # trace replay CSV
 *
 *   [queue]
 *   capacity = 64          # waiting requests; 0 = unbounded
 *   discipline = fifo      # fifo | lifo
 *
 *   [slo]
 *   p99 = 1.5              # response-time targets in seconds;
 *   p95 = 0                # 0 / absent = no target at that quantile
 *
 *   [serve]
 *   horizon_s = 40         # arrivals stop after this simulated time
 *   warmup_s = 4           # requests arriving earlier are not measured
 *   rates = 1,2,4          # optional load-sweep rate grid (req/s)
 */

#ifndef DIRIGENT_SERVE_SPEC_H
#define DIRIGENT_SERVE_SPEC_H

#include <optional>
#include <string>
#include <vector>

#include "common/config.h"
#include "serve/arrival.h"
#include "serve/queue.h"
#include "serve/slo.h"

namespace dirigent::serve {

/** One request-serving workload as data. */
struct ServeSpec
{
    ArrivalSpec arrivals;

    /** Waiting-request capacity; 0 = unbounded. */
    size_t queueCapacity = 64;

    QueueDiscipline discipline = QueueDiscipline::Fifo;

    /** Response-time targets, ascending by quantile. */
    std::vector<SloTarget> slos;

    /** Arrivals stop after this much simulated time. */
    double horizonSec = 40.0;

    /** Requests arriving before this offset are excluded from stats. */
    double warmupSec = 4.0;

    /** Optional load-sweep grid overriding arrivals.rate (req/s). */
    std::vector<double> sweepRates;

    bool operator==(const ServeSpec &) const = default;
};

/** Structural validation; nullopt when well-formed. */
std::optional<std::string> validateServeSpec(const ServeSpec &spec);

/**
 * Parse a spec from a Config / INI text / file. fatal() on unknown
 * keys, out-of-range values, or kind/field mismatches (specs are user
 * input).
 */
ServeSpec parseServeSpec(const Config &config);
ServeSpec parseServeSpec(const std::string &text);
ServeSpec loadServeSpec(const std::string &path);

/** Serialize to DSL text; parseServeSpec() round-trips it. */
std::string formatServeSpec(const ServeSpec &spec);

/** FNV-1a fingerprint of the spec's canonical (formatted) text. */
uint64_t serveSpecHash(const ServeSpec &spec);

/**
 * Path from the DIRIGENT_SERVE_FILE environment variable, or nullopt
 * when unset/empty. The CLI flag `--serve-file` overrides it.
 */
std::optional<std::string> envServeFilePath();

} // namespace dirigent::serve

#endif // DIRIGENT_SERVE_SPEC_H
