#include "serve/spec.h"

#include <cmath>
#include <cstdlib>

#include "common/hash.h"
#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent::serve {

namespace {

/** The fixed SLO quantile keys of the [slo] section. */
struct SloKey
{
    const char *key;
    double quantile;
};

constexpr SloKey kSloKeys[] = {
    {"p50", 0.50},
    {"p95", 0.95},
    {"p99", 0.99},
    {"p999", 0.999},
};

std::vector<double>
parseRateList(const std::string &text)
{
    std::vector<double> rates;
    const char *p = text.c_str();
    while (*p != '\0') {
        char *end = nullptr;
        double r = std::strtod(p, &end);
        if (end == p)
            fatal(strfmt("serve spec: bad rate list '%s'",
                         text.c_str()));
        rates.push_back(r);
        p = end;
        while (*p == ' ' || *p == '\t')
            ++p;
        if (*p == ',')
            ++p;
        else if (*p != '\0')
            fatal(strfmt("serve spec: bad rate list '%s'",
                         text.c_str()));
    }
    return rates;
}

std::string
formatRateList(const std::vector<double> &rates)
{
    std::string out;
    for (size_t i = 0; i < rates.size(); ++i) {
        if (i > 0)
            out += ",";
        out += strfmt("%.9g", rates[i]);
    }
    return out;
}

} // namespace

std::optional<std::string>
validateServeSpec(const ServeSpec &spec)
{
    if (auto error = validateArrivalSpec(spec.arrivals))
        return error;
    if (!std::isfinite(spec.horizonSec) || spec.horizonSec <= 0.0)
        return strfmt("serve spec: serve.horizon_s must be > 0, "
                      "got %.9g",
                      spec.horizonSec);
    if (!std::isfinite(spec.warmupSec) || spec.warmupSec < 0.0 ||
        spec.warmupSec >= spec.horizonSec)
        return strfmt("serve spec: serve.warmup_s %.9g out of "
                      "[0, horizon_s)",
                      spec.warmupSec);
    for (const SloTarget &t : spec.slos) {
        if (!(t.quantile > 0.0 && t.quantile < 1.0))
            return strfmt("serve spec: SLO quantile %.9g out of (0, 1)",
                          t.quantile);
        if (!std::isfinite(t.targetSec) || t.targetSec <= 0.0)
            return strfmt("serve spec: SLO target for %s must be > 0, "
                          "got %.9g",
                          t.label().c_str(), t.targetSec);
    }
    for (double r : spec.sweepRates)
        if (!std::isfinite(r) || r <= 0.0)
            return strfmt("serve spec: serve.rates entry %.9g must be "
                          "> 0",
                          r);
    return std::nullopt;
}

ServeSpec
parseServeSpec(const Config &config)
{
    SpecFields fields(config, "serve spec");
    fields.requireSections({"arrivals", "queue", "slo", "serve"});

    ServeSpec spec;
    std::string kind = config.getString("arrivals.kind", "poisson");
    auto parsedKind = arrivalKindFromName(kind);
    if (!parsedKind)
        fatal(strfmt("serve spec: arrivals.kind '%s' unknown (known: "
                     "poisson, mmpp, diurnal, trace)",
                     kind.c_str()));
    spec.arrivals.kind = *parsedKind;
    spec.arrivals.rate = config.getDouble("arrivals.rate", 1.0);
    spec.arrivals.burstRate =
        config.getDouble("arrivals.burst_rate", 0.0);
    spec.arrivals.dwellSec = config.getDouble("arrivals.dwell_s", 10.0);
    spec.arrivals.burstDwellSec =
        config.getDouble("arrivals.burst_dwell_s", 2.0);
    spec.arrivals.periodSec =
        config.getDouble("arrivals.period_s", 60.0);
    spec.arrivals.amplitude =
        config.getDouble("arrivals.amplitude", 0.5);
    spec.arrivals.traceFile =
        config.getString("arrivals.trace_file", "");

    spec.queueCapacity = size_t(config.getUint("queue.capacity", 64));
    std::string disc = config.getString("queue.discipline", "fifo");
    if (disc == "fifo")
        spec.discipline = QueueDiscipline::Fifo;
    else if (disc == "lifo")
        spec.discipline = QueueDiscipline::Lifo;
    else
        fatal(strfmt("serve spec: queue.discipline '%s' unknown "
                     "(known: fifo, lifo)",
                     disc.c_str()));

    for (const SloKey &k : kSloKeys) {
        double target =
            config.getDouble(std::string("slo.") + k.key, 0.0);
        if (target > 0.0)
            spec.slos.push_back({k.quantile, target});
    }

    spec.horizonSec = config.getDouble("serve.horizon_s", 40.0);
    spec.warmupSec = config.getDouble("serve.warmup_s", 4.0);
    spec.sweepRates =
        parseRateList(config.getString("serve.rates", ""));

    if (auto error = validateServeSpec(spec))
        fatal(*error);
    return spec;
}

ServeSpec
parseServeSpec(const std::string &text)
{
    return parseServeSpec(Config::parse(text));
}

ServeSpec
loadServeSpec(const std::string &path)
{
    return parseServeSpec(Config::load(path));
}

std::string
formatServeSpec(const ServeSpec &spec)
{
    std::string out;
    out += "[arrivals]\n";
    out += strfmt("kind = %s\n", arrivalKindName(spec.arrivals.kind));
    out += strfmt("rate = %.9g\n", spec.arrivals.rate);
    out += strfmt("burst_rate = %.9g\n", spec.arrivals.burstRate);
    out += strfmt("dwell_s = %.9g\n", spec.arrivals.dwellSec);
    out += strfmt("burst_dwell_s = %.9g\n",
                  spec.arrivals.burstDwellSec);
    out += strfmt("period_s = %.9g\n", spec.arrivals.periodSec);
    out += strfmt("amplitude = %.9g\n", spec.arrivals.amplitude);
    if (!spec.arrivals.traceFile.empty())
        out += strfmt("trace_file = %s\n",
                      spec.arrivals.traceFile.c_str());
    out += "\n[queue]\n";
    out += strfmt("capacity = %zu\n", spec.queueCapacity);
    out += strfmt("discipline = %s\n", disciplineName(spec.discipline));
    out += "\n[slo]\n";
    for (const SloKey &k : kSloKeys) {
        for (const SloTarget &t : spec.slos)
            if (t.quantile == k.quantile)
                out += strfmt("%s = %.9g\n", k.key, t.targetSec);
    }
    out += "\n[serve]\n";
    out += strfmt("horizon_s = %.9g\n", spec.horizonSec);
    out += strfmt("warmup_s = %.9g\n", spec.warmupSec);
    if (!spec.sweepRates.empty())
        out += strfmt("rates = %s\n",
                      formatRateList(spec.sweepRates).c_str());
    return out;
}

uint64_t
serveSpecHash(const ServeSpec &spec)
{
    return fnv1a64(formatServeSpec(spec));
}

std::optional<std::string>
envServeFilePath()
{
    const char *env = std::getenv("DIRIGENT_SERVE_FILE");
    if (env == nullptr || env[0] == '\0')
        return std::nullopt;
    return std::string(env);
}

} // namespace dirigent::serve
