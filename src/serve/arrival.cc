#include "serve/arrival.h"

#include <cmath>
#include <fstream>

#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent::serve {

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
    case ArrivalKind::Poisson: return "poisson";
    case ArrivalKind::Mmpp: return "mmpp";
    case ArrivalKind::Diurnal: return "diurnal";
    case ArrivalKind::Trace: return "trace";
    }
    return "?";
}

std::optional<ArrivalKind>
arrivalKindFromName(const std::string &name)
{
    for (ArrivalKind k : {ArrivalKind::Poisson, ArrivalKind::Mmpp,
                          ArrivalKind::Diurnal, ArrivalKind::Trace})
        if (name == arrivalKindName(k))
            return k;
    return std::nullopt;
}

double
ArrivalSpec::meanRate() const
{
    switch (kind) {
    case ArrivalKind::Poisson:
    case ArrivalKind::Diurnal:
        // The sinusoid integrates to zero over a period.
        return rate;
    case ArrivalKind::Mmpp:
        return (rate * dwellSec + burstRate * burstDwellSec) /
               (dwellSec + burstDwellSec);
    case ArrivalKind::Trace:
        return std::nan("");
    }
    return std::nan("");
}

PoissonArrivals::PoissonArrivals(double rate, Rng rng)
    : rate_(rate), rng_(rng)
{
    DIRIGENT_ASSERT(rate > 0.0, "poisson rate must be > 0, got %.9g",
                    rate);
}

Time
PoissonArrivals::next()
{
    t_ += rng_.exponential(1.0 / rate_);
    return Time::sec(t_);
}

MmppArrivals::MmppArrivals(double rate, double burstRate,
                           double dwellSec, double burstDwellSec,
                           Rng rng)
    : rate_(rate), burstRate_(burstRate), dwellSec_(dwellSec),
      burstDwellSec_(burstDwellSec), rng_(rng)
{
    DIRIGENT_ASSERT(rate > 0.0 && burstRate > 0.0,
                    "mmpp rates must be > 0");
    DIRIGENT_ASSERT(dwellSec > 0.0 && burstDwellSec > 0.0,
                    "mmpp dwells must be > 0");
}

Time
MmppArrivals::next()
{
    if (!primed_) {
        primed_ = true;
        stateEnd_ = rng_.exponential(dwellSec_);
    }
    for (;;) {
        double r = burst_ ? burstRate_ : rate_;
        double step = rng_.exponential(1.0 / r);
        if (t_ + step <= stateEnd_) {
            t_ += step;
            return Time::sec(t_);
        }
        // The candidate crossed a state boundary: advance to the
        // boundary, flip state, and re-draw — exact because the
        // exponential is memoryless.
        t_ = stateEnd_;
        burst_ = !burst_;
        stateEnd_ =
            t_ + rng_.exponential(burst_ ? burstDwellSec_ : dwellSec_);
    }
}

DiurnalArrivals::DiurnalArrivals(double rate, double periodSec,
                                 double amplitude, Rng rng)
    : rate_(rate), periodSec_(periodSec), amplitude_(amplitude),
      rng_(rng)
{
    DIRIGENT_ASSERT(rate > 0.0, "diurnal rate must be > 0");
    DIRIGENT_ASSERT(periodSec > 0.0, "diurnal period must be > 0");
    DIRIGENT_ASSERT(amplitude >= 0.0 && amplitude <= 1.0,
                    "diurnal amplitude %.9g out of [0, 1]", amplitude);
}

Time
DiurnalArrivals::next()
{
    const double peak = rate_ * (1.0 + amplitude_);
    for (;;) {
        t_ += rng_.exponential(1.0 / peak);
        double instantaneous =
            rate_ *
            (1.0 + amplitude_ *
                       std::sin(2.0 * M_PI * t_ / periodSec_));
        if (rng_.uniform() * peak <= instantaneous)
            return Time::sec(t_);
    }
}

TraceArrivals::TraceArrivals(std::vector<Time> arrivals)
    : arrivals_(std::move(arrivals))
{
    for (size_t i = 1; i < arrivals_.size(); ++i)
        DIRIGENT_ASSERT(arrivals_[i] >= arrivals_[i - 1],
                        "trace timestamps must be nondecreasing "
                        "(index %zu)",
                        i);
}

Time
TraceArrivals::next()
{
    if (index_ >= arrivals_.size())
        return Time::never();
    return arrivals_[index_++];
}

std::vector<Time>
loadArrivalTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal(strfmt("cannot open arrival trace '%s'", path.c_str()));
    std::vector<Time> out;
    std::string line;
    size_t lineNo = 0;
    double prev = -1.0;
    while (std::getline(in, line)) {
        ++lineNo;
        size_t start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#')
            continue;
        char *end = nullptr;
        double t = std::strtod(line.c_str() + start, &end);
        if (end == line.c_str() + start || !std::isfinite(t) || t < 0.0)
            fatal(strfmt("%s:%zu: bad arrival timestamp '%s'",
                         path.c_str(), lineNo, line.c_str()));
        if (t < prev)
            fatal(strfmt("%s:%zu: timestamps must be nondecreasing "
                         "(%.9g after %.9g)",
                         path.c_str(), lineNo, t, prev));
        prev = t;
        out.push_back(Time::sec(t));
    }
    return out;
}

std::optional<std::string>
validateArrivalSpec(const ArrivalSpec &spec)
{
    if (!std::isfinite(spec.rate) || spec.rate <= 0.0)
        return strfmt("arrival spec: rate must be > 0, got %.9g",
                      spec.rate);
    switch (spec.kind) {
    case ArrivalKind::Poisson:
        break;
    case ArrivalKind::Mmpp:
        if (!std::isfinite(spec.burstRate) ||
            spec.burstRate <= spec.rate)
            return strfmt("arrival spec: mmpp burst_rate %.9g must "
                          "exceed rate %.9g",
                          spec.burstRate, spec.rate);
        if (spec.dwellSec <= 0.0 || spec.burstDwellSec <= 0.0)
            return "arrival spec: mmpp dwells must be > 0";
        break;
    case ArrivalKind::Diurnal:
        if (spec.periodSec <= 0.0)
            return "arrival spec: diurnal period must be > 0";
        if (!(spec.amplitude >= 0.0 && spec.amplitude <= 1.0))
            return strfmt("arrival spec: diurnal amplitude %.9g out of "
                          "[0, 1]",
                          spec.amplitude);
        break;
    case ArrivalKind::Trace:
        if (spec.traceFile.empty())
            return "arrival spec: trace kind requires trace_file";
        break;
    }
    return std::nullopt;
}

std::unique_ptr<ArrivalProcess>
makeArrivalProcess(const ArrivalSpec &spec, uint64_t seed)
{
    if (auto error = validateArrivalSpec(spec))
        fatal(*error);
    Rng rng = Rng(seed).fork(0x5E12E);
    switch (spec.kind) {
    case ArrivalKind::Poisson:
        return std::make_unique<PoissonArrivals>(spec.rate, rng);
    case ArrivalKind::Mmpp:
        return std::make_unique<MmppArrivals>(
            spec.rate, spec.burstRate, spec.dwellSec,
            spec.burstDwellSec, rng);
    case ArrivalKind::Diurnal:
        return std::make_unique<DiurnalArrivals>(
            spec.rate, spec.periodSec, spec.amplitude, rng);
    case ArrivalKind::Trace:
        return std::make_unique<TraceArrivals>(
            loadArrivalTrace(spec.traceFile));
    }
    fatal("unreachable arrival kind");
}

ArrivalSpec
scaledToRate(const ArrivalSpec &spec, double targetMeanRate)
{
    if (spec.kind == ArrivalKind::Trace)
        fatal("arrival spec: cannot rescale a trace-replay process");
    if (!std::isfinite(targetMeanRate) || targetMeanRate <= 0.0)
        fatal(strfmt("arrival spec: target rate must be > 0, got %.9g",
                     targetMeanRate));
    ArrivalSpec scaled = spec;
    double factor = targetMeanRate / spec.meanRate();
    scaled.rate = spec.rate * factor;
    if (spec.kind == ArrivalKind::Mmpp)
        scaled.burstRate = spec.burstRate * factor;
    return scaled;
}

} // namespace dirigent::serve
