/**
 * @file
 * Admission control: the narrow actuator seam that decides whether a
 * newly-arrived request may enter service (mirroring the style of the
 * machine actuator interfaces in machine/actuator.h — one small pure
 * interface per knob, concrete policies behind it).
 *
 * Two registry-visible policies exist, selected declaratively through
 * the SchemeSpec [admission] section:
 *
 *   static    a fixed cap on outstanding (queued + in-service)
 *             requests
 *   gradient  Envoy-style adaptive concurrency: the limit follows the
 *             gradient minRTT·tolerance / sampleRTT with a √limit
 *             headroom term, and minRTT is re-measured by periodically
 *             pinning the limit to its floor (the probe window)
 *
 * Both are deterministic: all state advances on simulated-time calls
 * (admit / onResponse), never on wall clocks or unseeded randomness.
 */

#ifndef DIRIGENT_SERVE_ADMISSION_H
#define DIRIGENT_SERVE_ADMISSION_H

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"

namespace dirigent::core {
struct SchemeSpec;
} // namespace dirigent::core

namespace dirigent::serve {

/**
 * Decides whether an arriving request may be accepted given the
 * current number of outstanding requests.
 */
class AdmissionController
{
  public:
    virtual ~AdmissionController() = default;

    /** Policy name ("static" / "gradient"). */
    virtual const char *name() const = 0;

    /**
     * May a request arriving at @p now be accepted while
     * @p outstanding requests are queued or in service?
     */
    virtual bool admit(Time now, size_t outstanding) = 0;

    /** Record one completed request's response time @p rtt. */
    virtual void onResponse(Time now, Time rtt) = 0;

    /** The concurrency limit currently enforced. */
    virtual double limit() const = 0;
};

/** Fixed cap on outstanding requests. */
class StaticAdmission : public AdmissionController
{
  public:
    /** @param cap maximum outstanding requests (≥ 1). */
    explicit StaticAdmission(unsigned cap);

    const char *name() const override { return "static"; }
    bool admit(Time now, size_t outstanding) override;
    void onResponse(Time, Time) override {}
    double limit() const override { return double(cap_); }

  private:
    unsigned cap_;
};

/** Gradient controller knobs (defaults per the SchemeSpec fields). */
struct GradientConfig
{
    unsigned minLimit = 1;    //!< limit floor; also the probe limit
    unsigned maxLimit = 64;   //!< limit ceiling
    double tolerance = 1.1;   //!< sample-RTT budget vs. minRTT
    double updatePeriodSec = 2.0; //!< RTT aggregation window length
    /** Every Nth window re-measures minRTT (0 = never re-probe). */
    unsigned probeEvery = 5;
};

/**
 * Latency-gradient adaptive concurrency limiter.
 *
 * Responses aggregate into fixed-length windows; at each window close
 * the limit is updated from the gradient between the window's median
 * RTT and the most recent minRTT measurement:
 *
 *   gradient = clamp(minRTT·tolerance / sampleRTT, 0.5, 2.0)
 *   limit'   = clamp(limit·gradient + √(limit·gradient),
 *                    minLimit, maxLimit)
 *
 * The controller starts in a probe window (limit pinned to minLimit)
 * so the first measurement establishes minRTT, and re-enters a probe
 * window every probeEvery windows to track drift.
 */
class GradientAdmission : public AdmissionController
{
  public:
    explicit GradientAdmission(GradientConfig config = GradientConfig{});

    const char *name() const override { return "gradient"; }
    bool admit(Time now, size_t outstanding) override;
    void onResponse(Time now, Time rtt) override;
    double limit() const override;

    /** True while a minRTT probe window is open (for tests). */
    bool probing() const { return probing_; }

    /** Latest minRTT measurement in seconds (NaN before the first). */
    double minRttSec() const { return minRttSec_; }

    /** Closed aggregation windows so far. */
    unsigned windowsClosed() const { return windowsClosed_; }

  private:
    void closeWindow();

    GradientConfig config_;
    double limit_;
    double minRttSec_;
    std::vector<double> window_;
    Time windowEnd_ = Time::never();
    bool probing_ = true;
    unsigned windowsClosed_ = 0;
};

/**
 * Build the admission controller requested by @p spec's [admission]
 * section; nullptr for "none" (no admission control). fatal() on an
 * unknown policy name (specs are user input, but validateSchemeSpec
 * rejects bad names before assembly normally reaches this).
 */
std::unique_ptr<AdmissionController>
makeAdmissionController(const core::SchemeSpec &spec);

/** Registry of admission policy names: {"none", "static", "gradient"}. */
const std::vector<std::string> &admissionSchemeNames();

} // namespace dirigent::serve

#endif // DIRIGENT_SERVE_ADMISSION_H
