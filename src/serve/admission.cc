#include "serve/admission.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/stats.h"
#include "common/strfmt.h"
#include "dirigent/scheme_spec.h"

namespace dirigent::serve {

StaticAdmission::StaticAdmission(unsigned cap) : cap_(cap)
{
    DIRIGENT_ASSERT(cap >= 1, "static admission cap must be >= 1");
}

bool
StaticAdmission::admit(Time, size_t outstanding)
{
    return outstanding < cap_;
}

GradientAdmission::GradientAdmission(GradientConfig config)
    : config_(config), limit_(double(config.minLimit)),
      minRttSec_(std::nan(""))
{
    DIRIGENT_ASSERT(config.minLimit >= 1,
                    "gradient min_limit must be >= 1");
    DIRIGENT_ASSERT(config.maxLimit >= config.minLimit,
                    "gradient max_limit %u below min_limit %u",
                    config.maxLimit, config.minLimit);
    DIRIGENT_ASSERT(config.tolerance >= 1.0,
                    "gradient tolerance must be >= 1");
    DIRIGENT_ASSERT(config.updatePeriodSec > 0.0,
                    "gradient update period must be > 0");
}

double
GradientAdmission::limit() const
{
    return probing_ ? double(config_.minLimit) : limit_;
}

bool
GradientAdmission::admit(Time now, size_t outstanding)
{
    // A stalled window (no responses arriving because everything is
    // queued behind a slow service) still closes on arrivals, so the
    // controller cannot wedge at a stale limit.
    if (!windowEnd_.isNever() && now >= windowEnd_ &&
        !window_.empty())
        closeWindow();
    return double(outstanding) < limit();
}

void
GradientAdmission::onResponse(Time now, Time rtt)
{
    if (windowEnd_.isNever())
        windowEnd_ = now + Time::sec(config_.updatePeriodSec);
    window_.push_back(rtt.sec());
    if (now >= windowEnd_)
        closeWindow();
}

void
GradientAdmission::closeWindow()
{
    double sampleRtt = percentile(window_, 0.5);
    window_.clear();
    windowEnd_ = Time::never();
    ++windowsClosed_;

    if (probing_ || std::isnan(minRttSec_)) {
        // The probe window ran at minLimit: its median is the new
        // uncontended-RTT baseline.
        minRttSec_ = sampleRtt;
        probing_ = false;
        return;
    }

    double gradient =
        std::clamp(minRttSec_ * config_.tolerance / sampleRtt, 0.5,
                   2.0);
    double raw = limit_ * gradient;
    double next = raw + std::sqrt(raw); // headroom to discover capacity
    limit_ = std::clamp(next, double(config_.minLimit),
                        double(config_.maxLimit));

    if (config_.probeEvery > 0 &&
        windowsClosed_ % config_.probeEvery == 0)
        probing_ = true;
}

std::unique_ptr<AdmissionController>
makeAdmissionController(const core::SchemeSpec &spec)
{
    if (spec.admission == "none" || spec.admission.empty())
        return nullptr;
    if (spec.admission == "static")
        return std::make_unique<StaticAdmission>(spec.admitCapacity);
    if (spec.admission == "gradient") {
        GradientConfig gcfg;
        gcfg.minLimit = spec.admitMinLimit;
        gcfg.maxLimit = spec.admitMaxLimit;
        gcfg.tolerance = spec.admitTolerance;
        gcfg.updatePeriodSec = spec.admitUpdatePeriodSec;
        gcfg.probeEvery = spec.admitProbeEvery;
        return std::make_unique<GradientAdmission>(gcfg);
    }
    fatal(strfmt("unknown admission scheme '%s' (known: none, static, "
                 "gradient)",
                 spec.admission.c_str()));
}

const std::vector<std::string> &
admissionSchemeNames()
{
    static const std::vector<std::string> names = {"none", "static",
                                                   "gradient"};
    return names;
}

} // namespace dirigent::serve
