#include "serve/slo.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent::serve {

void
LatencyStats::add(double seconds)
{
    samples_.push_back(seconds);
    if (histogram_ != nullptr)
        histogram_->observe(seconds);
}

double
LatencyStats::quantile(double q) const
{
    DIRIGENT_ASSERT(q >= 0.0 && q <= 1.0, "quantile %f out of [0, 1]",
                    q);
    if (samples_.empty())
        return std::nan("");
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted[0];
    double pos = q * double(sorted.size() - 1);
    size_t idx = size_t(pos);
    double frac = pos - double(idx);
    if (idx + 1 >= sorted.size())
        return sorted.back();
    return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

double
LatencyStats::mean() const
{
    if (samples_.empty())
        return std::nan("");
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / double(samples_.size());
}

double
LatencyStats::max() const
{
    if (samples_.empty())
        return std::nan("");
    return *std::max_element(samples_.begin(), samples_.end());
}

std::string
SloTarget::label() const
{
    // p999 reads better than p99.9 in column headers and JSON keys.
    double pct = quantile * 100.0;
    if (std::abs(pct - std::round(pct)) < 1e-9)
        return strfmt("p%.0f", pct);
    if (std::abs(pct * 10.0 - std::round(pct * 10.0)) < 1e-9)
        return strfmt("p%.0f", pct * 10.0);
    return strfmt("p%.3f", pct);
}

std::vector<SloVerdict>
evaluateSlos(const std::vector<SloTarget> &targets,
             const LatencyStats &stats)
{
    std::vector<SloVerdict> verdicts;
    verdicts.reserve(targets.size());
    for (const SloTarget &t : targets) {
        SloVerdict v;
        v.target = t;
        v.achievedSec = stats.quantile(t.quantile);
        // NaN compares false: no samples ⇒ not met.
        v.met = v.achievedSec <= t.targetSec;
        verdicts.push_back(v);
    }
    return verdicts;
}

bool
allSlosMet(const std::vector<SloVerdict> &verdicts)
{
    for (const SloVerdict &v : verdicts)
        if (!v.met)
            return false;
    return true;
}

} // namespace dirigent::serve
