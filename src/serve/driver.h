/**
 * @file
 * The request-serving driver for one foreground process: an arrival
 * process feeds a bounded RequestQueue, an optional AdmissionController
 * sheds load, and every request's lifecycle is recorded.
 *
 * The FG process is paused whenever the queue is empty (no work) and
 * resumed at the next accepted arrival; each service period is one FG
 * task execution, so the Dirigent runtime's per-execution prediction
 * and control apply unchanged — its prediction clock is re-armed at
 * dequeue (not at the previous completion) via restartPredictionClock.
 * Because queueing amplifies service-time variance (the paper's Fig. 2
 * argument), Dirigent's variance reduction translates directly into
 * shorter response-time tails here.
 *
 * Determinism: the driver's behaviour is a pure function of (arrival
 * process, config, simulation); it draws no randomness of its own.
 */

#ifndef DIRIGENT_SERVE_DRIVER_H
#define DIRIGENT_SERVE_DRIVER_H

#include <functional>
#include <memory>
#include <vector>

#include "common/units.h"
#include "dirigent/runtime.h"
#include "dirigent/trace.h"
#include "machine/machine.h"
#include "serve/admission.h"
#include "serve/arrival.h"
#include "serve/queue.h"
#include "serve/slo.h"
#include "sim/engine.h"

namespace dirigent::obs {
class Recorder;
class SpanCollector;
} // namespace dirigent::obs

namespace dirigent::serve {

/** Per-driver wiring. */
struct ServeDriverConfig
{
    machine::Pid fgPid = 0;
    unsigned fgSlot = 0; //!< FG index within the mix (for records)

    /** Waiting-request capacity; 0 = unbounded. */
    size_t queueCapacity = 0;

    QueueDiscipline discipline = QueueDiscipline::Fifo;

    /** Stop injecting arrivals this long after start(); never() = no
     *  horizon (the driver runs until stop()). */
    Time horizon = Time::never();

    /** Requests arriving within this offset of start() are served but
     *  excluded from measuredStats(). */
    Time warmup;
};

/**
 * Open-loop request server for one foreground process.
 */
class ServeDriver
{
  public:
    /**
     * @param engine engine for scheduling arrivals (not owned).
     * @param machine the machine running the FG process (not owned).
     * @param process arrival-time generator (owned).
     * @param config queue/window wiring.
     * @param runtime optional Dirigent runtime to notify at service
     *        starts (not owned; may be null).
     * @param admission optional admission controller (owned; may be
     *        null = accept everything the queue can hold).
     */
    ServeDriver(sim::Engine &engine, machine::Machine &machine,
                std::unique_ptr<ArrivalProcess> process,
                ServeDriverConfig config,
                core::DirigentRuntime *runtime = nullptr,
                std::unique_ptr<AdmissionController> admission = nullptr);

    ~ServeDriver();

    ServeDriver(const ServeDriver &) = delete;
    ServeDriver &operator=(const ServeDriver &) = delete;

    /**
     * Begin injecting arrivals. The FG process is paused until the
     * first accepted arrival; call at the start of the run.
     */
    void start();

    /** Stop injecting; the FG process is left paused if idle. */
    void stop();

    /**
     * True once the horizon passed (or the trace exhausted) and every
     * accepted request completed — the driver will produce no further
     * work.
     */
    bool done() const
    {
        return exhausted_ && !busy_ && queue_.empty();
    }

    /** Record serving decisions into this trace (not owned). */
    void setTrace(core::DecisionTrace *trace) { trace_ = trace; }

    /**
     * Mirror per-request records (and a response-time histogram) into
     * this telemetry recorder (not owned). Set before start().
     */
    void setRecorder(obs::Recorder *recorder);

    /**
     * Emit one trace span per terminal request outcome into this
     * collector (not owned). Independent of the recorder — spans work
     * with or without one attached. Set before start().
     */
    void setSpans(obs::SpanCollector *spans);

    /** Invoke @p fn at every completed request (after recording). */
    void setOnComplete(std::function<void(const Request &)> fn)
    {
        onComplete_ = std::move(fn);
    }

    /** Every request in arrival order (all outcomes). */
    const std::vector<Request> &requests() const { return requests_; }

    /** Response times of completed requests arriving at or after the
     *  warmup offset. */
    const LatencyStats &measuredStats() const { return stats_; }

    const RequestQueue &queue() const { return queue_; }
    const AdmissionController *admission() const
    {
        return admission_.get();
    }

    uint64_t arrivals() const { return arrivals_; }
    uint64_t completed() const { return completed_; }
    uint64_t dropped() const { return queue_.dropped(); }
    uint64_t shed() const { return queue_.shed(); }
    size_t maxQueueDepth() const { return queue_.maxDepth(); }

  private:
    void scheduleNextArrival();
    void onArrival(Time now);
    void onCompletion(const machine::CompletionRecord &rec);
    void beginService(Time now);
    void recordRejection(Request &req, core::TraceAction action,
                         size_t outstanding);
    void noteAdmissionResponse(Time now, Time rtt);
    void emitRequestRecord(const Request &req);

    sim::Engine &engine_;
    machine::Machine &machine_;
    std::unique_ptr<ArrivalProcess> process_;
    ServeDriverConfig config_;
    core::DirigentRuntime *runtime_;
    std::unique_ptr<AdmissionController> admission_;
    core::DecisionTrace *trace_ = nullptr;
    obs::Recorder *recorder_ = nullptr;
    obs::SpanCollector *spans_ = nullptr;
    std::function<void(const Request &)> onComplete_;

    RequestQueue queue_;
    std::vector<Request> requests_; //!< indexed by request id
    LatencyStats stats_;

    Time origin_;                //!< engine time of start()
    uint64_t inService_ = 0;     //!< request id being served
    bool busy_ = false;
    bool running_ = false;
    bool exhausted_ = false;     //!< no further arrivals will come
    uint64_t arrivals_ = 0;
    uint64_t completed_ = 0;
    double lastLimit_ = 0.0;     //!< last traced admission limit
    size_t listener_ = 0;
    sim::EventId pendingArrival_;
};

/**
 * Render a request log as text for golden/replay comparison: one line
 * per request, "R id=... t=ARRIVED q=DEPTH OUTCOME [s=START f=FINISH]".
 * @p precise selects %.17g (bit-exact across thread counts) over the
 * default µs-rounded rendering (stable across toolchains).
 */
std::string formatRequestLog(const std::vector<Request> &requests,
                             bool precise = false);

} // namespace dirigent::serve

#endif // DIRIGENT_SERVE_DRIVER_H
