#include "serve/queue.h"

#include "common/log.h"

namespace dirigent::serve {

const char *
outcomeName(RequestOutcome outcome)
{
    switch (outcome) {
    case RequestOutcome::Pending: return "pending";
    case RequestOutcome::Completed: return "completed";
    case RequestOutcome::Dropped: return "dropped";
    case RequestOutcome::Shed: return "shed";
    }
    return "?";
}

const char *
disciplineName(QueueDiscipline discipline)
{
    return discipline == QueueDiscipline::Fifo ? "fifo" : "lifo";
}

RequestQueue::RequestQueue(size_t capacity, QueueDiscipline discipline)
    : capacity_(capacity), discipline_(discipline)
{
}

bool
RequestQueue::push(uint64_t id)
{
    if (capacity_ > 0 && waiting_.size() >= capacity_) {
        ++dropped_;
        return false;
    }
    waiting_.push_back(id);
    ++accepted_;
    maxDepth_ = std::max(maxDepth_, waiting_.size());
    return true;
}

std::optional<uint64_t>
RequestQueue::pop()
{
    if (waiting_.empty())
        return std::nullopt;
    uint64_t id;
    if (discipline_ == QueueDiscipline::Fifo) {
        id = waiting_.front();
        waiting_.pop_front();
    } else {
        id = waiting_.back();
        waiting_.pop_back();
    }
    return id;
}

} // namespace dirigent::serve
