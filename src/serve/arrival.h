/**
 * @file
 * Deterministic arrival processes for open-loop request serving.
 *
 * An ArrivalProcess is a seeded generator of absolute arrival times:
 * successive next() calls return a nondecreasing stream, and the same
 * (spec, seed) pair always produces the same stream — byte-identical
 * regardless of which executor thread replays it. Four processes are
 * provided:
 *
 *   poisson  constant-rate memoryless arrivals
 *   mmpp     2-state Markov-modulated Poisson process (bursty traffic:
 *            a base state and a burst state with exponential dwells)
 *   diurnal  sinusoidally-modulated rate (thinning of a peak-rate
 *            Poisson stream), the classic day/night load curve
 *   trace    replay of a recorded CSV of absolute timestamps
 *
 * The ArrivalSpec describing a process round-trips through the same
 * INI text format as SchemeSpec (see serve/spec.h).
 */

#ifndef DIRIGENT_SERVE_ARRIVAL_H
#define DIRIGENT_SERVE_ARRIVAL_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/units.h"

namespace dirigent::serve {

/** Kinds of arrival process. */
enum class ArrivalKind
{
    Poisson,
    Mmpp,
    Diurnal,
    Trace
};

/** Printable kind name ("poisson", "mmpp", "diurnal", "trace"). */
const char *arrivalKindName(ArrivalKind kind);

/** Declarative description of one arrival process. */
struct ArrivalSpec
{
    ArrivalKind kind = ArrivalKind::Poisson;

    /**
     * Arrival rate in requests/second: the constant rate (poisson),
     * the base-state rate (mmpp), or the mean rate (diurnal).
     */
    double rate = 1.0;

    /** MMPP burst-state rate (requests/second; > rate). */
    double burstRate = 0.0;

    /** MMPP mean dwell in the base state (seconds). */
    double dwellSec = 10.0;

    /** MMPP mean dwell in the burst state (seconds). */
    double burstDwellSec = 2.0;

    /** Diurnal modulation period (seconds). */
    double periodSec = 60.0;

    /** Diurnal relative amplitude in [0, 1]: rate swings rate·(1±a). */
    double amplitude = 0.5;

    /** Trace replay: CSV file of absolute timestamps in seconds. */
    std::string traceFile;

    /**
     * Long-run mean arrival rate implied by the spec (requests/second);
     * NaN for trace replay (the trace alone defines it).
     */
    double meanRate() const;

    bool operator==(const ArrivalSpec &) const = default;
};

/**
 * A seeded generator of absolute arrival times.
 */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** The generating kind. */
    virtual ArrivalKind kind() const = 0;

    /**
     * Absolute time of the next arrival, starting from t = 0.
     * Nondecreasing across calls; Time::never() once exhausted
     * (only trace replay exhausts).
     */
    virtual Time next() = 0;
};

/** Constant-rate Poisson arrivals. */
class PoissonArrivals : public ArrivalProcess
{
  public:
    PoissonArrivals(double rate, Rng rng);
    ArrivalKind kind() const override { return ArrivalKind::Poisson; }
    Time next() override;

  private:
    double rate_;
    Rng rng_;
    double t_ = 0.0;
};

/**
 * 2-state Markov-modulated Poisson process: exponential dwells in a
 * base state (rate) and a burst state (burstRate). Memorylessness
 * makes the re-draw at each state boundary exact.
 */
class MmppArrivals : public ArrivalProcess
{
  public:
    MmppArrivals(double rate, double burstRate, double dwellSec,
                 double burstDwellSec, Rng rng);
    ArrivalKind kind() const override { return ArrivalKind::Mmpp; }
    Time next() override;

    /** True while in the burst state (for tests). */
    bool bursting() const { return burst_; }

  private:
    double rate_, burstRate_, dwellSec_, burstDwellSec_;
    Rng rng_;
    double t_ = 0.0;
    double stateEnd_ = 0.0;
    bool burst_ = false;
    bool primed_ = false;
};

/**
 * Sinusoidally-modulated rate via thinning: candidate arrivals are
 * drawn at the peak rate rate·(1+amplitude) and accepted with
 * probability rate(t)/peak, where
 * rate(t) = rate·(1 + amplitude·sin(2πt/period)).
 */
class DiurnalArrivals : public ArrivalProcess
{
  public:
    DiurnalArrivals(double rate, double periodSec, double amplitude,
                    Rng rng);
    ArrivalKind kind() const override { return ArrivalKind::Diurnal; }
    Time next() override;

  private:
    double rate_, periodSec_, amplitude_;
    Rng rng_;
    double t_ = 0.0;
};

/** Replay of a recorded timestamp trace. */
class TraceArrivals : public ArrivalProcess
{
  public:
    /** @param arrivals nondecreasing absolute times (validated). */
    explicit TraceArrivals(std::vector<Time> arrivals);
    ArrivalKind kind() const override { return ArrivalKind::Trace; }
    Time next() override;

    size_t remaining() const { return arrivals_.size() - index_; }

  private:
    std::vector<Time> arrivals_;
    size_t index_ = 0;
};

/**
 * Load a timestamp trace CSV: one absolute time (seconds) per line;
 * blank lines and '#' comments ignored. fatal() on unparsable or
 * decreasing timestamps (traces are user input).
 */
std::vector<Time> loadArrivalTrace(const std::string &path);

/** Structural validation; nullopt when well-formed. */
std::optional<std::string> validateArrivalSpec(const ArrivalSpec &spec);

/**
 * Instantiate the process described by @p spec with randomness derived
 * from @p seed (trace replay ignores the seed). fatal() on an invalid
 * spec.
 */
std::unique_ptr<ArrivalProcess>
makeArrivalProcess(const ArrivalSpec &spec, uint64_t seed);

/** Kind from its name; nullopt when unknown. */
std::optional<ArrivalKind> arrivalKindFromName(const std::string &name);

/**
 * Copy of @p spec rescaled so meanRate() == @p targetMeanRate: rate
 * (and, for mmpp, burstRate) are multiplied by the same factor, which
 * preserves the burst/base ratio and the dwell structure. fatal() for
 * trace replay (a trace's rate cannot be rescaled) or a non-positive
 * target. Load sweeps use this to drive one spec across a rate grid.
 */
ArrivalSpec scaledToRate(const ArrivalSpec &spec, double targetMeanRate);

} // namespace dirigent::serve

#endif // DIRIGENT_SERVE_ARRIVAL_H
