/**
 * @file
 * Tail-latency SLOs: exact response-time quantiles from sorted samples
 * plus an optional streaming log-linear histogram mirror (reusing
 * obs::MetricsRegistry), and per-run SLO verdicts of the form
 * "p99 ≤ target".
 *
 * Empty-sample semantics: a quantile of zero samples is NaN, never 0 —
 * downstream JSON serialization (the PR 2 NaN→null convention in
 * exec::jsonNumber / obs::jsonDouble) renders it as null, so "no
 * completed requests" is distinguishable from "zero latency".
 */

#ifndef DIRIGENT_SERVE_SLO_H
#define DIRIGENT_SERVE_SLO_H

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dirigent::serve {

/**
 * Response-time sample store: exact quantiles from a sorted copy, with
 * an optional obs::Histogram mirror for streaming/export consumers.
 */
class LatencyStats
{
  public:
    /** Mirror every sample into @p histogram (borrowed; may be null). */
    void attachHistogram(obs::Histogram *histogram)
    {
        histogram_ = histogram;
    }

    /** Record one response time in seconds. */
    void add(double seconds);

    size_t count() const { return samples_.size(); }

    /**
     * Exact quantile @p q in [0, 1] by linear interpolation of the
     * sorted samples; NaN when no samples were recorded.
     */
    double quantile(double q) const;

    /** Arithmetic mean; NaN when empty. */
    double mean() const;

    /** Maximum sample; NaN when empty. */
    double max() const;

    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
    obs::Histogram *histogram_ = nullptr;
};

/** One SLO target: "quantile of response time ≤ targetSec". */
struct SloTarget
{
    double quantile = 0.99;  //!< e.g. 0.99 for p99
    double targetSec = 0.0;  //!< response-time bound in seconds

    /** "p99" style label (p50/p95/p99/p999 and the general pNN.N). */
    std::string label() const;

    bool operator==(const SloTarget &) const = default;
};

/** Outcome of one SLO target against one run. */
struct SloVerdict
{
    SloTarget target;
    double achievedSec = 0.0; //!< measured quantile; NaN = no samples

    /**
     * True when the measured quantile met the bound. A run with zero
     * completed requests (NaN achieved) fails every target: serving
     * nothing never satisfies an SLO.
     */
    bool met = false;
};

/** Evaluate every target against the measured distribution. */
std::vector<SloVerdict> evaluateSlos(const std::vector<SloTarget> &targets,
                                     const LatencyStats &stats);

/** True when every verdict met its target (vacuously true if none). */
bool allSlosMet(const std::vector<SloVerdict> &verdicts);

} // namespace dirigent::serve

#endif // DIRIGENT_SERVE_SLO_H
