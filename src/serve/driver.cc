#include "serve/driver.h"

#include <cmath>

#include "common/log.h"
#include "common/strfmt.h"
#include "obs/recorder.h"
#include "obs/span.h"

namespace dirigent::serve {

namespace {

/** Histogram of served response times mirrored into the recorder. */
obs::HistogramConfig
responseHistogramConfig()
{
    // 1 ms .. ~10^5 s in 20 bins/decade; response times in these
    // experiments live in the 0.1 s .. 100 s range.
    return obs::HistogramConfig{1e-3, 20, 180};
}

} // namespace

ServeDriver::ServeDriver(sim::Engine &engine, machine::Machine &machine,
                         std::unique_ptr<ArrivalProcess> process,
                         ServeDriverConfig config,
                         core::DirigentRuntime *runtime,
                         std::unique_ptr<AdmissionController> admission)
    : engine_(engine), machine_(machine), process_(std::move(process)),
      config_(config), runtime_(runtime),
      admission_(std::move(admission)),
      queue_(config.queueCapacity, config.discipline)
{
    DIRIGENT_ASSERT(process_ != nullptr,
                    "serve driver needs an arrival process");
    DIRIGENT_ASSERT(machine.os().process(config_.fgPid).foreground,
                    "pid %u is not a foreground process", config_.fgPid);
    if (admission_ != nullptr)
        lastLimit_ = admission_->limit();
}

ServeDriver::~ServeDriver()
{
    stop();
}

void
ServeDriver::start()
{
    if (running_)
        return;
    running_ = true;
    origin_ = engine_.now();
    // No work yet: hold the FG process.
    machine_.os().pause(config_.fgPid);
    busy_ = false;
    listener_ = machine_.addCompletionListener(
        [this](const machine::CompletionRecord &rec) {
            onCompletion(rec);
        });
    if (recorder_ != nullptr)
        stats_.attachHistogram(&recorder_->metrics().histogram(
            strfmt("fg%u.response_s", config_.fgSlot),
            responseHistogramConfig()));
    scheduleNextArrival();
}

void
ServeDriver::stop()
{
    if (!running_)
        return;
    running_ = false;
    exhausted_ = true;
    machine_.removeCompletionListener(listener_);
    if (pendingArrival_.valid()) {
        engine_.events().cancel(pendingArrival_);
        pendingArrival_ = sim::EventId{};
    }
}

void
ServeDriver::setRecorder(obs::Recorder *recorder)
{
    DIRIGENT_ASSERT(!running_, "set the recorder before start()");
    recorder_ = recorder;
}

void
ServeDriver::setSpans(obs::SpanCollector *spans)
{
    DIRIGENT_ASSERT(!running_, "set the span collector before start()");
    spans_ = spans;
}

void
ServeDriver::scheduleNextArrival()
{
    Time offset = process_->next();
    if (offset.isNever() ||
        (!config_.horizon.isNever() && offset > config_.horizon)) {
        exhausted_ = true;
        return;
    }
    pendingArrival_ = engine_.at(origin_ + offset, [this] {
        pendingArrival_ = sim::EventId{};
        if (!running_)
            return;
        onArrival(engine_.now());
        scheduleNextArrival();
    });
}

void
ServeDriver::onArrival(Time now)
{
    ++arrivals_;
    Request req;
    req.id = requests_.size();
    req.arrived = now;
    req.queueDepth = queue_.depth();

    size_t outstanding = queue_.depth() + (busy_ ? 1 : 0);
    if (admission_ != nullptr && !admission_->admit(now, outstanding)) {
        queue_.noteShed();
        req.outcome = RequestOutcome::Shed;
        recordRejection(req, core::TraceAction::RequestShed,
                        outstanding);
        requests_.push_back(req);
        return;
    }
    if (!queue_.push(req.id)) {
        req.outcome = RequestOutcome::Dropped;
        recordRejection(req, core::TraceAction::RequestDropped,
                        outstanding);
        requests_.push_back(req);
        return;
    }
    requests_.push_back(req);
    if (!busy_) {
        auto id = queue_.pop();
        DIRIGENT_ASSERT(id.has_value(), "queue cannot be empty here");
        inService_ = *id;
        beginService(now);
    }
}

void
ServeDriver::beginService(Time now)
{
    busy_ = true;
    requests_[inService_].started = now;
    machine::Process &proc = machine_.os().process(config_.fgPid);
    if (!proc.runnable()) {
        // Fresh request after idle: new task starting now, cold input.
        machine_.switchProgram(config_.fgPid, proc.program);
        machine_.os().resume(config_.fgPid);
        if (runtime_ != nullptr)
            runtime_->restartPredictionClock(config_.fgPid, now);
    }
    // When continuing straight from a completion, the machine already
    // restarted the task (and the runtime re-armed its predictor) at
    // the completion instant == now.
}

void
ServeDriver::onCompletion(const machine::CompletionRecord &rec)
{
    if (rec.pid != config_.fgPid || !busy_)
        return;
    Request &req = requests_[inService_];
    req.finished = rec.finished;
    req.outcome = RequestOutcome::Completed;
    ++completed_;

    Time rtt = req.responseTime();
    if (req.arrived >= origin_ + config_.warmup)
        stats_.add(rtt.sec());
    noteAdmissionResponse(rec.finished, rtt);
    emitRequestRecord(req);
    if (onComplete_)
        onComplete_(req);

    auto id = queue_.pop();
    if (!id.has_value()) {
        busy_ = false;
        machine_.os().pause(config_.fgPid);
        return;
    }
    inService_ = *id;
    beginService(rec.finished);
}

void
ServeDriver::recordRejection(Request &req, core::TraceAction action,
                             size_t outstanding)
{
    if (trace_ != nullptr) {
        core::TraceEvent ev;
        ev.when = req.arrived;
        ev.action = action;
        ev.fgPid = config_.fgPid;
        ev.slackRatio = admission_ != nullptr ? admission_->limit()
                                              : double(queue_.capacity());
        ev.detail = strfmt("req=%llu outstanding=%zu",
                           (unsigned long long)req.id, outstanding);
        trace_->record(std::move(ev));
    }
    emitRequestRecord(req);
}

void
ServeDriver::noteAdmissionResponse(Time now, Time rtt)
{
    if (admission_ == nullptr)
        return;
    admission_->onResponse(now, rtt);
    double limit = admission_->limit();
    if (limit != lastLimit_) {
        if (trace_ != nullptr) {
            core::TraceEvent ev;
            ev.when = now;
            ev.action = core::TraceAction::AdmitLimitChanged;
            ev.fgPid = config_.fgPid;
            ev.slackRatio = limit;
            ev.detail = strfmt("limit %.6g -> %.6g", lastLimit_, limit);
            trace_->record(std::move(ev));
        }
        lastLimit_ = limit;
    }
}

void
ServeDriver::emitRequestRecord(const Request &req)
{
    if (spans_ != nullptr)
        spans_->recordRequest(config_.fgSlot, config_.fgPid, req.id,
                              req.arrived, req.started, req.finished,
                              req.queueDepth, outcomeName(req.outcome),
                              admission_ != nullptr ? admission_->limit()
                                                    : 0.0);
    if (recorder_ == nullptr)
        return;
    obs::RequestRecord rr;
    rr.fgSlot = config_.fgSlot;
    rr.pid = config_.fgPid;
    rr.id = req.id;
    rr.arrived = req.arrived;
    rr.started = req.started;
    rr.finished = req.finished;
    rr.queueDepth = req.queueDepth;
    rr.outcome = outcomeName(req.outcome);
    rr.responseSec = req.outcome == RequestOutcome::Completed
                         ? req.responseTime().sec()
                         : std::nan("");
    recorder_->addRequest(std::move(rr));
}

std::string
formatRequestLog(const std::vector<Request> &requests, bool precise)
{
    const char *timeFmt = precise ? "%.17g" : "%.6f";
    std::string out;
    for (const Request &req : requests) {
        out += strfmt("R id=%llu t=", (unsigned long long)req.id);
        out += strfmt(timeFmt, req.arrived.sec());
        out += strfmt(" q=%zu %s", req.queueDepth,
                      outcomeName(req.outcome));
        if (req.outcome == RequestOutcome::Completed) {
            out += " s=";
            out += strfmt(timeFmt, req.started.sec());
            out += " f=";
            out += strfmt(timeFmt, req.finished.sec());
        }
        out += "\n";
    }
    return out;
}

} // namespace dirigent::serve
