#include "machine/os.h"

#include "common/log.h"

namespace dirigent::machine {

Os::Os(unsigned numCores, Rng rng)
    : numCores_(numCores), rng_(rng), coreMap_(numCores, nullptr)
{
    DIRIGENT_ASSERT(numCores > 0, "OS needs at least one core");
}

Pid
Os::spawn(const ProcessSpec &spec)
{
    if (spec.core >= numCores_)
        fatal(strfmt("cannot pin '%s' to core %u of %u",
                     spec.name.c_str(), spec.core, numCores_));
    if (coreMap_[spec.core] != nullptr)
        fatal(strfmt("core %u already runs '%s'", spec.core,
                     coreMap_[spec.core]->name.c_str()));
    if (spec.program == nullptr || !spec.program->valid())
        fatal(strfmt("process '%s' has no valid program",
                     spec.name.c_str()));

    auto proc = std::make_unique<Process>();
    proc->pid = Pid(processes_.size());
    proc->name = spec.name;
    proc->program = spec.program;
    proc->core = spec.core;
    proc->foreground = spec.foreground;
    proc->niceness = spec.niceness;
    proc->task = std::make_unique<workload::Task>(
        spec.program, rng_.fork(proc->pid * 7919 + 1));
    proc->taskStart = Time();

    coreMap_[spec.core] = proc.get();
    processes_.push_back(std::move(proc));
    return processes_.back()->pid;
}

Process &
Os::process(Pid pid)
{
    DIRIGENT_ASSERT(pid < processes_.size(), "bad pid %u", pid);
    return *processes_[pid];
}

const Process &
Os::process(Pid pid) const
{
    DIRIGENT_ASSERT(pid < processes_.size(), "bad pid %u", pid);
    return *processes_[pid];
}

Process *
Os::processOnCore(unsigned core)
{
    DIRIGENT_ASSERT(core < numCores_, "bad core %u", core);
    return coreMap_[core];
}

const Process *
Os::processOnCore(unsigned core) const
{
    DIRIGENT_ASSERT(core < numCores_, "bad core %u", core);
    return coreMap_[core];
}

void
Os::pause(Pid pid)
{
    Process &proc = process(pid);
    if (proc.state != ProcState::Paused) {
        proc.state = ProcState::Paused;
        ++proc.stateTransitions;
    }
}

void
Os::resume(Pid pid)
{
    Process &proc = process(pid);
    if (proc.state != ProcState::Running) {
        proc.state = ProcState::Running;
        ++proc.stateTransitions;
    }
}

void
Os::setNextProgram(Pid pid, const workload::PhaseProgram *program)
{
    DIRIGENT_ASSERT(program != nullptr && program->valid(),
                    "invalid next program for pid %u", pid);
    process(pid).nextProgram = program;
}

void
Os::restartTask(Pid pid, Time now)
{
    Process &proc = process(pid);
    if (proc.nextProgram != nullptr) {
        proc.program = proc.nextProgram;
        proc.nextProgram = nullptr;
    }
    // Fork a fresh stream keyed by (pid, executions) so every task
    // instance draws independent, reproducible randomness.
    proc.task = std::make_unique<workload::Task>(
        proc.program,
        rng_.fork(uint64_t(pid) * 1000003 + proc.executions + 17));
    proc.taskStart = now;
}

std::vector<Pid>
Os::pids() const
{
    std::vector<Pid> out;
    out.reserve(processes_.size());
    for (const auto &p : processes_)
        out.push_back(p->pid);
    return out;
}

std::vector<Pid>
Os::foregroundPids() const
{
    std::vector<Pid> out;
    for (const auto &p : processes_)
        if (p->foreground)
            out.push_back(p->pid);
    return out;
}

std::vector<Pid>
Os::backgroundPids() const
{
    std::vector<Pid> out;
    for (const auto &p : processes_)
        if (!p->foreground)
            out.push_back(p->pid);
    return out;
}

} // namespace dirigent::machine
