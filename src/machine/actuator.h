/**
 * @file
 * Narrow actuation interfaces between Dirigent's controllers and the
 * machine's QoS knobs. Each interface exposes exactly one mechanism —
 * per-core DVFS grades, the FG/BG cache-way partition, task
 * pause/resume, and per-core memory-bandwidth budgets — so a controller
 * states *what* it actuates without naming the concrete device behind
 * it (machine/actuators.h holds the adapters over CpuFreqGovernor,
 * CatController, Os, and mem::BwGuard). CORD-style pluggable knobs:
 * new mechanisms slot in behind these interfaces, and scheme assembly
 * (dirigent/scheme_spec.h) composes them declaratively.
 */

#ifndef DIRIGENT_MACHINE_ACTUATOR_H
#define DIRIGENT_MACHINE_ACTUATOR_H

#include <vector>

#include "common/units.h"
#include "machine/os.h"

namespace dirigent::machine {

/**
 * Per-core DVFS actuation: discrete frequency grades, grade 0 the
 * minimum. Writes follow the underlying governor's semantics (applied
 * after a transition latency; retried on transient failure).
 */
class FrequencyActuator
{
  public:
    virtual ~FrequencyActuator() = default;

    /** Number of available grades. */
    virtual unsigned numGrades() const = 0;

    /** Highest grade index. */
    virtual unsigned maxGrade() const { return numGrades() - 1; }

    /** Frequency of grade @p grade. */
    virtual Freq gradeFreq(unsigned grade) const = 0;

    /** Request that @p core run at @p grade. */
    virtual void setGrade(unsigned core, unsigned grade) = 0;

    /** Last requested grade of @p core. */
    virtual unsigned grade(unsigned core) const = 0;

    /**
     * Indices of @p count equally spaced grades, always including the
     * minimum and maximum.
     */
    virtual std::vector<unsigned> equispacedGrades(unsigned count)
        const = 0;
};

/**
 * LLC way-partition actuation between the FG and BG process groups.
 */
class PartitionActuator
{
  public:
    virtual ~PartitionActuator() = default;

    /** Total ways in the LLC. */
    virtual unsigned numWays() const = 0;

    /**
     * Dedicate @p ways ways to foreground processes.
     * @return false when the reconfiguration failed (e.g. an injected
     *         MSR write failure); the previous partition stays.
     */
    virtual bool setFgWays(unsigned ways) = 0;

    /** Share the whole cache (see setFgWays for the return value). */
    virtual bool setShared() = 0;

    /** Current FG partition size; 0 when fully shared. */
    virtual unsigned fgWays() const = 0;
};

/**
 * Task pause/resume actuation (SIGSTOP/SIGCONT semantics).
 */
class PauseActuator
{
  public:
    virtual ~PauseActuator() = default;

    virtual void pause(Pid pid) = 0;
    virtual void resume(Pid pid) = 0;
};

/**
 * Per-core memory-bandwidth budget actuation (MemGuard-style).
 */
class BandwidthActuator
{
  public:
    virtual ~BandwidthActuator() = default;

    /** Budget @p core at @p bytesPerSec of miss traffic; 0 disables. */
    virtual void setBudget(unsigned core, double bytesPerSec) = 0;

    /** Budget of @p core (bytes/second; 0 = unregulated). */
    virtual double budget(unsigned core) const = 0;
};

/**
 * The bundle of actuators a run wires its controllers with. Pointers
 * are non-owning; a null entry means the mechanism is unavailable
 * (consumers assert on the ones they require).
 */
struct ActuatorSet
{
    FrequencyActuator *frequency = nullptr;
    PartitionActuator *partition = nullptr;
    PauseActuator *pause = nullptr;
    BandwidthActuator *bandwidth = nullptr;
};

} // namespace dirigent::machine

#endif // DIRIGENT_MACHINE_ACTUATOR_H
