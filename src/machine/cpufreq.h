/**
 * @file
 * Per-core DVFS interface modelled after the Linux CPUFreq userspace
 * governor the paper uses as its throttling mechanism. Frequencies are
 * exposed as discrete grades (the Xeon E5-2618L v3 exposes 9 steps,
 * 1.2–2.0 GHz); transitions take a small fixed latency, so control
 * actions are cheap but not instantaneous.
 *
 * Writes can fail transiently (an injected EBUSY); the governor retries
 * with bounded exponential backoff and, after the retry budget is
 * exhausted, abandons the write — the requested grade then stays
 * unapplied until the next request, which is visible to the invariant
 * checker via writeAbandoned().
 */

#ifndef DIRIGENT_MACHINE_CPUFREQ_H
#define DIRIGENT_MACHINE_CPUFREQ_H

#include <vector>

#include "common/units.h"
#include "machine/machine.h"
#include "sim/engine.h"

namespace dirigent::fault {
class FaultInjector;
} // namespace dirigent::fault

namespace dirigent::machine {

/**
 * The DVFS governor. Grade 0 is the minimum frequency; the highest
 * grade is the nominal maximum.
 */
class CpuFreqGovernor
{
  public:
    /**
     * @param machine machine whose cores are governed (not owned).
     * @param engine engine used to model transition latency (not owned).
     * @param numGrades number of equally spaced frequency steps.
     * @param transitionLatency delay before a setting takes effect.
     */
    CpuFreqGovernor(Machine &machine, sim::Engine &engine,
                    unsigned numGrades = 9,
                    Time transitionLatency = Time::us(50.0));

    /** Number of available grades. */
    unsigned numGrades() const { return unsigned(freqs_.size()); }

    /** Frequency of grade @p grade. */
    Freq gradeFreq(unsigned grade) const;

    /** Highest grade index. */
    unsigned maxGrade() const { return numGrades() - 1; }

    /**
     * Request that @p core run at @p grade. The change is applied after
     * the transition latency; the target is visible via grade()
     * immediately (matching sysfs semantics). Failed writes are retried
     * with exponential backoff up to maxRetries() times.
     */
    void setGrade(unsigned core, unsigned grade);

    /** Last requested grade of @p core. */
    unsigned grade(unsigned core) const;

    /** Set every core to the maximum grade. */
    void setAllMax();

    /**
     * Indices of @p count equally spaced grades, always including the
     * minimum and maximum — Dirigent uses 5 of the 9 available steps.
     */
    std::vector<unsigned> equispacedGrades(unsigned count) const;

    /**
     * Inject transient write failures and latency spikes from
     * @p faults (not owned; nullptr detaches and leaves behaviour
     * bit-identical).
     */
    void setFaultInjector(fault::FaultInjector *faults)
    {
        faults_ = faults;
    }

    /** Retry budget per grade write (attempts = 1 + maxRetries). */
    unsigned maxRetries() const { return maxRetries_; }
    void setMaxRetries(unsigned n) { maxRetries_ = n; }

    /** True while @p core has an unapplied write in flight. */
    bool transitionPending(unsigned core) const;

    /**
     * True when the most recent write to @p core exhausted its retry
     * budget: grade() and the core's real frequency disagree until the
     * next request. Cleared by setGrade().
     */
    bool writeAbandoned(unsigned core) const;

    /** @name Actuation-failure statistics. */
    /// @{
    uint64_t writeFailures() const { return writeFailures_; }
    uint64_t retriesScheduled() const { return retriesScheduled_; }
    uint64_t abandonedWrites() const { return abandonedWrites_; }
    /// @}

  private:
    void scheduleApply(unsigned core, uint64_t generation,
                       unsigned attempt);

    Machine &machine_;
    sim::Engine &engine_;
    Time transitionLatency_;
    std::vector<Freq> freqs_;
    std::vector<unsigned> targetGrade_;
    std::vector<uint64_t> generation_;
    std::vector<bool> pending_;
    std::vector<bool> abandoned_;
    fault::FaultInjector *faults_ = nullptr;
    unsigned maxRetries_ = 3;
    uint64_t writeFailures_ = 0;
    uint64_t retriesScheduled_ = 0;
    uint64_t abandonedWrites_ = 0;
};

} // namespace dirigent::machine

#endif // DIRIGENT_MACHINE_CPUFREQ_H
