/**
 * @file
 * Per-core DVFS interface modelled after the Linux CPUFreq userspace
 * governor the paper uses as its throttling mechanism. Frequencies are
 * exposed as discrete grades (the Xeon E5-2618L v3 exposes 9 steps,
 * 1.2–2.0 GHz); transitions take a small fixed latency, so control
 * actions are cheap but not instantaneous.
 */

#ifndef DIRIGENT_MACHINE_CPUFREQ_H
#define DIRIGENT_MACHINE_CPUFREQ_H

#include <vector>

#include "common/units.h"
#include "machine/machine.h"
#include "sim/engine.h"

namespace dirigent::machine {

/**
 * The DVFS governor. Grade 0 is the minimum frequency; the highest
 * grade is the nominal maximum.
 */
class CpuFreqGovernor
{
  public:
    /**
     * @param machine machine whose cores are governed (not owned).
     * @param engine engine used to model transition latency (not owned).
     * @param numGrades number of equally spaced frequency steps.
     * @param transitionLatency delay before a setting takes effect.
     */
    CpuFreqGovernor(Machine &machine, sim::Engine &engine,
                    unsigned numGrades = 9,
                    Time transitionLatency = Time::us(50.0));

    /** Number of available grades. */
    unsigned numGrades() const { return unsigned(freqs_.size()); }

    /** Frequency of grade @p grade. */
    Freq gradeFreq(unsigned grade) const;

    /** Highest grade index. */
    unsigned maxGrade() const { return numGrades() - 1; }

    /**
     * Request that @p core run at @p grade. The change is applied after
     * the transition latency; the target is visible via grade()
     * immediately (matching sysfs semantics).
     */
    void setGrade(unsigned core, unsigned grade);

    /** Last requested grade of @p core. */
    unsigned grade(unsigned core) const;

    /** Set every core to the maximum grade. */
    void setAllMax();

    /**
     * Indices of @p count equally spaced grades, always including the
     * minimum and maximum — Dirigent uses 5 of the 9 available steps.
     */
    std::vector<unsigned> equispacedGrades(unsigned count) const;

  private:
    Machine &machine_;
    sim::Engine &engine_;
    Time transitionLatency_;
    std::vector<Freq> freqs_;
    std::vector<unsigned> targetGrade_;
};

} // namespace dirigent::machine

#endif // DIRIGENT_MACHINE_CPUFREQ_H
