/**
 * @file
 * Sleep-based periodic sampling, as used by the Dirigent profiler and
 * runtime (the paper samples progress every ΔT = 5 ms with the sleep
 * method). Wake-ups overshoot the requested period by a small random
 * amount — the "errors in timers" the paper's predictor must absorb —
 * so consumers receive the *actual* wake time of every tick.
 */

#ifndef DIRIGENT_MACHINE_SAMPLER_H
#define DIRIGENT_MACHINE_SAMPLER_H

#include <functional>

#include "common/random.h"
#include "common/units.h"
#include "sim/engine.h"

namespace dirigent::fault {
class FaultInjector;
} // namespace dirigent::fault

namespace dirigent::machine {

/**
 * Periodic tick source with realistic sleep jitter.
 */
class PeriodicSampler
{
  public:
    /** One wake-up of the sampler. */
    struct Tick
    {
        uint64_t index = 0; //!< 0-based tick counter
        Time scheduled;     //!< nominal wake time (previous + period)
        Time actual;        //!< real wake time including sleep overshoot
        /** Ticks whose nominal wake passed while this one was pending
         *  (a stalled timer or an overrunning callback); their indices
         *  were consumed so index/scheduled stay consistent. */
        uint64_t skipped = 0;
    };

    using Callback = std::function<void(const Tick &)>;

    /**
     * @param engine engine used for scheduling (not owned).
     * @param period nominal sampling period.
     * @param meanOvershoot mean sleep overshoot per wake.
     * @param overshootSigma overshoot standard deviation.
     * @param rng private randomness stream.
     * @param callback invoked at every wake-up.
     */
    PeriodicSampler(sim::Engine &engine, Time period, Time meanOvershoot,
                    Time overshootSigma, Rng rng, Callback callback);

    /**
     * Inject wake-up faults (stalls, missed wakes, callback overruns)
     * from @p faults (not owned; nullptr detaches). Call before
     * start(); a null injector leaves behaviour bit-identical.
     */
    void setFaultInjector(fault::FaultInjector *faults)
    {
        faults_ = faults;
    }

    ~PeriodicSampler();

    PeriodicSampler(const PeriodicSampler &) = delete;
    PeriodicSampler &operator=(const PeriodicSampler &) = delete;

    /** Begin ticking one period from now. Idempotent. */
    void start();

    /** Stop ticking (pending wake-up cancelled). Idempotent. */
    void stop();

    /** True while ticking. */
    bool running() const { return running_; }

    /** Nominal period. */
    Time period() const { return period_; }

  private:
    void scheduleNext(Time from);

    sim::Engine &engine_;
    Time period_;
    Time meanOvershoot_;
    Time overshootSigma_;
    Rng rng_;
    Callback callback_;
    fault::FaultInjector *faults_ = nullptr;
    bool running_ = false;
    uint64_t tickIndex_ = 0;
    sim::EventId pending_;
};

} // namespace dirigent::machine

#endif // DIRIGENT_MACHINE_SAMPLER_H
