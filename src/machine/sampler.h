/**
 * @file
 * Sleep-based periodic sampling, as used by the Dirigent profiler and
 * runtime (the paper samples progress every ΔT = 5 ms with the sleep
 * method). Wake-ups overshoot the requested period by a small random
 * amount — the "errors in timers" the paper's predictor must absorb —
 * so consumers receive the *actual* wake time of every tick.
 */

#ifndef DIRIGENT_MACHINE_SAMPLER_H
#define DIRIGENT_MACHINE_SAMPLER_H

#include <functional>

#include "common/random.h"
#include "common/units.h"
#include "sim/engine.h"

namespace dirigent::machine {

/**
 * Periodic tick source with realistic sleep jitter.
 */
class PeriodicSampler
{
  public:
    /** One wake-up of the sampler. */
    struct Tick
    {
        uint64_t index = 0; //!< 0-based tick counter
        Time scheduled;     //!< nominal wake time (previous + period)
        Time actual;        //!< real wake time including sleep overshoot
    };

    using Callback = std::function<void(const Tick &)>;

    /**
     * @param engine engine used for scheduling (not owned).
     * @param period nominal sampling period.
     * @param meanOvershoot mean sleep overshoot per wake.
     * @param overshootSigma overshoot standard deviation.
     * @param rng private randomness stream.
     * @param callback invoked at every wake-up.
     */
    PeriodicSampler(sim::Engine &engine, Time period, Time meanOvershoot,
                    Time overshootSigma, Rng rng, Callback callback);

    ~PeriodicSampler();

    PeriodicSampler(const PeriodicSampler &) = delete;
    PeriodicSampler &operator=(const PeriodicSampler &) = delete;

    /** Begin ticking one period from now. Idempotent. */
    void start();

    /** Stop ticking (pending wake-up cancelled). Idempotent. */
    void stop();

    /** True while ticking. */
    bool running() const { return running_; }

    /** Nominal period. */
    Time period() const { return period_; }

  private:
    void scheduleNext(Time from);

    sim::Engine &engine_;
    Time period_;
    Time meanOvershoot_;
    Time overshootSigma_;
    Rng rng_;
    Callback callback_;
    bool running_ = false;
    uint64_t tickIndex_ = 0;
    sim::EventId pending_;
};

} // namespace dirigent::machine

#endif // DIRIGENT_MACHINE_SAMPLER_H
