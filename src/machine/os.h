/**
 * @file
 * A minimal OS model: a process table with core pinning, pause/resume
 * (SIGSTOP/SIGCONT), niceness, and task restart. Matches the paper's
 * runlevel-S setup: one pinned process per core, foreground tasks
 * restarted consecutively, background tasks looping forever.
 */

#ifndef DIRIGENT_MACHINE_OS_H
#define DIRIGENT_MACHINE_OS_H

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "workload/phase.h"
#include "workload/task.h"

namespace dirigent::machine {

/** Process identifier (dense, assigned by spawn order). */
using Pid = unsigned;

/** Process scheduling state. */
enum class ProcState
{
    Running, //!< eligible to execute on its core
    Paused,  //!< stopped (SIGSTOP); keeps cache residency
};

/** Everything needed to spawn a process. */
struct ProcessSpec
{
    std::string name;                            //!< display name
    const workload::PhaseProgram *program = nullptr; //!< initial program
    unsigned core = 0;                           //!< pinned core
    bool foreground = false;                     //!< latency-critical task
    int niceness = 0;                            //!< kept for fidelity
};

/**
 * A pinned process executing consecutive tasks of a phase program.
 */
struct Process
{
    Pid pid = 0;
    std::string name;
    const workload::PhaseProgram *program = nullptr;
    const workload::PhaseProgram *nextProgram = nullptr; //!< applied at restart
    unsigned core = 0;
    bool foreground = false;
    int niceness = 0;
    ProcState state = ProcState::Running;
    std::unique_ptr<workload::Task> task;
    Time taskStart;             //!< when the current task began
    uint64_t executions = 0;    //!< completed task count
    uint64_t stateTransitions = 0; //!< effective pause/resume count

    /** True when the process can retire instructions. */
    bool runnable() const { return state == ProcState::Running; }
};

/**
 * The process table. One process per core at most (pinned 1:1, matching
 * the paper's experimental setup).
 */
class Os
{
  public:
    /**
     * @param numCores cores available for pinning.
     * @param rng randomness source for per-task streams.
     */
    Os(unsigned numCores, Rng rng);

    /** Spawn a process; fatal() if the core is occupied or invalid. */
    Pid spawn(const ProcessSpec &spec);

    /** Process by pid (must exist). */
    Process &process(Pid pid);
    const Process &process(Pid pid) const;

    /** The process pinned to @p core, or nullptr. */
    Process *processOnCore(unsigned core);
    const Process *processOnCore(unsigned core) const;

    /** Stop a process (SIGSTOP). Idempotent. */
    void pause(Pid pid);

    /** Continue a paused process (SIGCONT). Idempotent. */
    void resume(Pid pid);

    /**
     * Select the program used from the *next* task restart onward
     * (rotating background pairs swap programs this way).
     */
    void setNextProgram(Pid pid, const workload::PhaseProgram *program);

    /**
     * Replace the completed task with a fresh one (applying any pending
     * program switch) starting at @p now.
     */
    void restartTask(Pid pid, Time now);

    /** All pids in spawn order. */
    std::vector<Pid> pids() const;

    /** Pids of foreground processes in spawn order. */
    std::vector<Pid> foregroundPids() const;

    /** Pids of background processes in spawn order. */
    std::vector<Pid> backgroundPids() const;

    /** Number of processes. */
    size_t processCount() const { return processes_.size(); }

  private:
    unsigned numCores_;
    Rng rng_;
    std::vector<std::unique_ptr<Process>> processes_;
    std::vector<Process *> coreMap_;
};

} // namespace dirigent::machine

#endif // DIRIGENT_MACHINE_OS_H
