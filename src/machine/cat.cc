#include "machine/cat.h"

#include <algorithm>

#include "common/log.h"
#include "fault/injector.h"

namespace dirigent::machine {

CatController::CatController(Machine &machine) : machine_(machine)
{
}

unsigned
CatController::numWays() const
{
    return machine_.cache().config().numWays;
}

bool
CatController::setFgWays(unsigned ways)
{
    unsigned clamped = std::clamp(ways, 1u, numWays() - 1);
    if (clamped != ways) {
        verbose(strfmt("CAT: clamping FG partition %u -> %u ways", ways,
                       clamped));
    }
    if (faults_ != nullptr && faults_->catApplyFails()) {
        ++failedReconfigs_;
        verbose(strfmt("CAT: mask write for %u FG ways failed; keeping "
                       "%u ways",
                       clamped, fgWays_));
        return false;
    }
    fgWays_ = clamped;
    apply();
    return true;
}

bool
CatController::setShared()
{
    if (faults_ != nullptr && faults_->catApplyFails()) {
        ++failedReconfigs_;
        verbose("CAT: mask write for shared mode failed");
        return false;
    }
    fgWays_ = 0;
    apply();
    return true;
}

void
CatController::apply()
{
    const unsigned ways = numWays();
    mem::WayMask fgMask, bgMask;
    if (fgWays_ == 0) {
        fgMask = bgMask = mem::wayRange(0, ways);
    } else {
        fgMask = mem::wayRange(0, fgWays_);
        bgMask = mem::wayRange(fgWays_, ways);
    }
    for (Pid pid : machine_.os().pids()) {
        const Process &proc = machine_.os().process(pid);
        machine_.cache().setWayMask(proc.core,
                                    proc.foreground ? fgMask : bgMask);
    }
}

} // namespace dirigent::machine
