/**
 * @file
 * The simulated machine: a 6-core Xeon-E5-2618L-v3-like node with
 * per-core DVFS, a 15 MiB way-partitionable LLC, shared DRAM, per-core
 * performance counters, and an OS process table. The machine is the
 * root sim::Component; the engine advances it quantum by quantum.
 */

#ifndef DIRIGENT_MACHINE_MACHINE_H
#define DIRIGENT_MACHINE_MACHINE_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "cpu/core.h"
#include "machine/os.h"
#include "mem/bwguard.h"
#include "mem/cache.h"
#include "mem/dram.h"
#include "sim/engine.h"

namespace dirigent::machine {

/** Machine parameters; defaults model the paper's evaluation system. */
struct MachineConfig
{
    unsigned numCores = 6;

    /** DVFS range: nominal 2.0 GHz, throttling down to 1.2 GHz. */
    Freq maxFreq = Freq::ghz(2.0);
    Freq minFreq = Freq::ghz(1.2);

    mem::CacheConfig cache;
    mem::DramConfig dram;

    /** MemGuard-style bandwidth-regulation window. */
    Time bwGuardPeriod = Time::ms(1.0);

    /** Upper bound on one co-simulation quantum. */
    Time maxQuantum = Time::us(100.0);

    /** @name OS noise: random short interruptions per core.
     *  Models timer ticks, kernel threads, and other runlevel-S noise. */
    /// @{
    double noiseEventsPerSec = 40.0;
    Time noiseMeanDuration = Time::us(60.0);
    /// @}

    /** Master seed; all simulator randomness derives from it. */
    uint64_t seed = 1;
};

/** Record of one completed foreground or background task execution. */
struct CompletionRecord
{
    Pid pid = 0;
    unsigned core = 0;
    std::string program;        //!< program name of the completed task
    bool foreground = false;
    Time started;
    Time finished;
    double instructions = 0.0;
    uint64_t executionIndex = 0; //!< 0-based completed-execution counter

    /** Task duration. */
    Time duration() const { return finished - started; }
};

/**
 * The simulated node.
 */
class Machine : public sim::Component
{
  public:
    explicit Machine(const MachineConfig &config = MachineConfig{});

    const MachineConfig &config() const { return config_; }
    unsigned numCores() const { return config_.numCores; }

    Os &os() { return os_; }
    const Os &os() const { return os_; }
    mem::SharedCache &cache() { return cache_; }
    const mem::SharedCache &cache() const { return cache_; }
    mem::DramModel &dram() { return dram_; }
    const mem::DramModel &dram() const { return dram_; }

    /** Per-core bandwidth regulator (budgets default to unregulated). */
    mem::BwGuard &bwGuard() { return bwGuard_; }
    const mem::BwGuard &bwGuard() const { return bwGuard_; }

    cpu::Core &core(unsigned id);
    const cpu::Core &core(unsigned id) const;

    /** Current simulated time (updated as the engine advances). */
    Time now() const { return now_; }

    /**
     * Spawn a process pinned to spec.core; its LLC client slot is the
     * core number (1:1 pinning).
     */
    Pid spawnProcess(const ProcessSpec &spec);

    /**
     * Immediately replace the program of @p pid: the in-flight task is
     * discarded, a fresh task of @p program starts now, and the
     * process's cache residency is dropped. Used by rotating background
     * pairs, which context-switch on every FG completion.
     */
    void switchProgram(Pid pid, const workload::PhaseProgram *program);

    /** Listener invoked at every task completion (FG and BG). */
    using CompletionListener = std::function<void(const CompletionRecord &)>;

    /** Register a completion listener; returns a handle for removal. */
    size_t addCompletionListener(CompletionListener listener);

    /** Remove a listener by handle (no-op if already removed). */
    void removeCompletionListener(size_t handle);

    /** Counters of the process pinned to @p core (== core counters). */
    const cpu::CounterSample &readCounters(unsigned core) const;

    // sim::Component
    void advance(Time start, Time dt) override;
    uint64_t advanceSpan(sim::Engine &engine, Time end) override;

  private:
    /** One quantum: cores, then cache/DRAM/bandwidth bookkeeping. */
    void advanceQuantum(Time start, Time dt);
    void advanceCore(unsigned coreId, Time start, Time dt);
    void fireCompletion(const CompletionRecord &rec);

    MachineConfig config_;
    Rng rng_;
    mem::SharedCache cache_;
    mem::DramModel dram_;
    mem::BwGuard bwGuard_;
    Os os_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::vector<std::pair<size_t, CompletionListener>> listeners_;
    size_t nextListener_ = 1;
    Time now_;
    std::vector<Bytes> wsCaps_; //!< per-quantum commit scratch
};

} // namespace dirigent::machine

#endif // DIRIGENT_MACHINE_MACHINE_H
