/**
 * @file
 * Concrete adapters binding the actuator interfaces (machine/actuator.h)
 * to the simulated machine's devices: CpuFreqGovernor behind
 * FrequencyActuator, CatController behind PartitionActuator, the OS
 * process table behind PauseActuator, and mem::BwGuard behind
 * BandwidthActuator. MachineActuators bundles all four for one machine
 * and centralises fault-injection wiring, so a run attaches an injector
 * in one place instead of poking each device.
 */

#ifndef DIRIGENT_MACHINE_ACTUATORS_H
#define DIRIGENT_MACHINE_ACTUATORS_H

#include "machine/actuator.h"
#include "machine/cat.h"
#include "machine/cpufreq.h"
#include "machine/machine.h"
#include "mem/bwguard.h"

namespace dirigent::machine {

/** CpuFreqGovernor as a FrequencyActuator. */
class GovernorFrequencyActuator final : public FrequencyActuator
{
  public:
    explicit GovernorFrequencyActuator(CpuFreqGovernor &governor)
        : governor_(governor)
    {
    }

    unsigned numGrades() const override { return governor_.numGrades(); }
    unsigned maxGrade() const override { return governor_.maxGrade(); }
    Freq gradeFreq(unsigned grade) const override
    {
        return governor_.gradeFreq(grade);
    }
    void setGrade(unsigned core, unsigned grade) override
    {
        governor_.setGrade(core, grade);
    }
    unsigned grade(unsigned core) const override
    {
        return governor_.grade(core);
    }
    std::vector<unsigned> equispacedGrades(unsigned count) const override
    {
        return governor_.equispacedGrades(count);
    }

    CpuFreqGovernor &governor() { return governor_; }

  private:
    CpuFreqGovernor &governor_;
};

/** CatController as a PartitionActuator. */
class CatPartitionActuator final : public PartitionActuator
{
  public:
    explicit CatPartitionActuator(CatController &cat) : cat_(cat) {}

    unsigned numWays() const override { return cat_.numWays(); }
    bool setFgWays(unsigned ways) override { return cat_.setFgWays(ways); }
    bool setShared() override { return cat_.setShared(); }
    unsigned fgWays() const override { return cat_.fgWays(); }

    CatController &cat() { return cat_; }

  private:
    CatController &cat_;
};

/** The OS process table as a PauseActuator (SIGSTOP/SIGCONT). */
class OsPauseActuator final : public PauseActuator
{
  public:
    explicit OsPauseActuator(Os &os) : os_(os) {}

    void pause(Pid pid) override { os_.pause(pid); }
    void resume(Pid pid) override { os_.resume(pid); }

  private:
    Os &os_;
};

/** mem::BwGuard as a BandwidthActuator. */
class BwGuardBandwidthActuator final : public BandwidthActuator
{
  public:
    explicit BwGuardBandwidthActuator(mem::BwGuard &guard) : guard_(guard)
    {
    }

    void setBudget(unsigned core, double bytesPerSec) override
    {
        guard_.setBudget(core, bytesPerSec);
    }
    double budget(unsigned core) const override
    {
        return guard_.budget(core);
    }

  private:
    mem::BwGuard &guard_;
};

/**
 * The full actuator bundle for one machine: owns the four adapters over
 * a governor, a CAT controller, and the machine's OS and bandwidth
 * guard. Fault injection attaches here — setFaultInjector() wires the
 * governor and the CAT controller in one call — so experiment assembly
 * never touches the concrete devices individually.
 */
class MachineActuators
{
  public:
    MachineActuators(Machine &machine, CpuFreqGovernor &governor,
                     CatController &cat)
        : frequency_(governor), partition_(cat), pause_(machine.os()),
          bandwidth_(machine.bwGuard())
    {
    }

    /**
     * Attach @p faults to every fault-capable actuator (nullptr
     * detaches; behaviour is then bit-identical to never attaching).
     */
    void setFaultInjector(fault::FaultInjector *faults)
    {
        frequency_.governor().setFaultInjector(faults);
        partition_.cat().setFaultInjector(faults);
    }

    FrequencyActuator &frequency() { return frequency_; }
    PartitionActuator &partition() { return partition_; }
    PauseActuator &pause() { return pause_; }
    BandwidthActuator &bandwidth() { return bandwidth_; }

    /** Non-owning view of all four actuators. */
    ActuatorSet set()
    {
        return ActuatorSet{&frequency_, &partition_, &pause_, &bandwidth_};
    }

  private:
    GovernorFrequencyActuator frequency_;
    CatPartitionActuator partition_;
    OsPauseActuator pause_;
    BwGuardBandwidthActuator bandwidth_;
};

} // namespace dirigent::machine

#endif // DIRIGENT_MACHINE_ACTUATORS_H
