/**
 * @file
 * Cache Allocation Technology interface: two classes of service (one for
 * foreground processes, one for background), each a contiguous way mask
 * over the shared LLC — mirroring how the paper partitions the cache
 * between the FG and BG groups with Intel CAT. Changing the partition
 * updates allocation masks immediately; resident data migrates only at
 * fill speed (cache inertia), which is modelled in mem::SharedCache.
 */

#ifndef DIRIGENT_MACHINE_CAT_H
#define DIRIGENT_MACHINE_CAT_H

#include <cstdint>

#include "machine/machine.h"
#include "mem/cache.h"

namespace dirigent::fault {
class FaultInjector;
} // namespace dirigent::fault

namespace dirigent::machine {

/**
 * Way-partition controller for the FG/BG process groups.
 */
class CatController
{
  public:
    /** @param machine machine whose cache is partitioned (not owned). */
    explicit CatController(Machine &machine);

    /** Total ways in the LLC. */
    unsigned numWays() const;

    /** The machine whose cache this controller partitions. */
    const Machine &machine() const { return machine_; }

    /**
     * Dedicate @p ways ways to foreground processes; background
     * processes receive the remaining ways. Clamped to
     * [1, numWays − 1]. Masks are applied to every currently spawned
     * process; call again after spawning new processes.
     *
     * @return false when the reconfiguration failed (injected MSR
     *         write failure); the previous partition stays in force.
     */
    bool setFgWays(unsigned ways);

    /**
     * Share the whole cache: every process may allocate anywhere.
     * @return false when the reconfiguration failed (see setFgWays).
     */
    bool setShared();

    /**
     * Inject mask-write failures from @p faults (not owned; nullptr
     * detaches and leaves behaviour bit-identical).
     */
    void setFaultInjector(fault::FaultInjector *faults)
    {
        faults_ = faults;
    }

    /** Reconfigurations that failed due to injected faults. */
    uint64_t failedReconfigs() const { return failedReconfigs_; }

    /** Current FG partition size; 0 when the cache is fully shared. */
    unsigned fgWays() const { return fgWays_; }

    /** True when a partition is active. */
    bool partitioned() const { return fgWays_ != 0; }

  private:
    void apply();

    Machine &machine_;
    unsigned fgWays_ = 0;
    fault::FaultInjector *faults_ = nullptr;
    uint64_t failedReconfigs_ = 0;
};

} // namespace dirigent::machine

#endif // DIRIGENT_MACHINE_CAT_H
