/**
 * @file
 * Cache Allocation Technology interface: two classes of service (one for
 * foreground processes, one for background), each a contiguous way mask
 * over the shared LLC — mirroring how the paper partitions the cache
 * between the FG and BG groups with Intel CAT. Changing the partition
 * updates allocation masks immediately; resident data migrates only at
 * fill speed (cache inertia), which is modelled in mem::SharedCache.
 */

#ifndef DIRIGENT_MACHINE_CAT_H
#define DIRIGENT_MACHINE_CAT_H

#include "machine/machine.h"
#include "mem/cache.h"

namespace dirigent::machine {

/**
 * Way-partition controller for the FG/BG process groups.
 */
class CatController
{
  public:
    /** @param machine machine whose cache is partitioned (not owned). */
    explicit CatController(Machine &machine);

    /** Total ways in the LLC. */
    unsigned numWays() const;

    /** The machine whose cache this controller partitions. */
    const Machine &machine() const { return machine_; }

    /**
     * Dedicate @p ways ways to foreground processes; background
     * processes receive the remaining ways. Clamped to
     * [1, numWays − 1]. Masks are applied to every currently spawned
     * process; call again after spawning new processes.
     */
    void setFgWays(unsigned ways);

    /** Share the whole cache: every process may allocate anywhere. */
    void setShared();

    /** Current FG partition size; 0 when the cache is fully shared. */
    unsigned fgWays() const { return fgWays_; }

    /** True when a partition is active. */
    bool partitioned() const { return fgWays_ != 0; }

  private:
    void apply();

    Machine &machine_;
    unsigned fgWays_ = 0;
};

} // namespace dirigent::machine

#endif // DIRIGENT_MACHINE_CAT_H
