#include "machine/sampler.h"

#include <algorithm>

#include "common/log.h"
#include "fault/injector.h"

namespace dirigent::machine {

PeriodicSampler::PeriodicSampler(sim::Engine &engine, Time period,
                                 Time meanOvershoot, Time overshootSigma,
                                 Rng rng, Callback callback)
    : engine_(engine), period_(period), meanOvershoot_(meanOvershoot),
      overshootSigma_(overshootSigma), rng_(rng),
      callback_(std::move(callback))
{
    DIRIGENT_ASSERT(period.sec() > 0.0, "sampler period must be > 0");
    DIRIGENT_ASSERT(callback_ != nullptr, "sampler needs a callback");
}

PeriodicSampler::~PeriodicSampler()
{
    stop();
}

void
PeriodicSampler::start()
{
    if (running_)
        return;
    running_ = true;
    scheduleNext(engine_.now());
}

void
PeriodicSampler::stop()
{
    if (!running_)
        return;
    running_ = false;
    if (pending_.valid()) {
        engine_.events().cancel(pending_);
        pending_ = sim::EventId{};
    }
}

void
PeriodicSampler::scheduleNext(Time from)
{
    Time scheduled = from + period_;
    double overshoot =
        std::max(0.0, rng_.normal(meanOvershoot_.sec(),
                                  overshootSigma_.sec()));
    Time wake = scheduled + Time::sec(overshoot);
    if (faults_ != nullptr)
        wake += faults_->samplerStall();
    pending_ = engine_.at(wake, [this, scheduled, wake] {
        pending_ = sim::EventId{};
        if (!running_)
            return;
        // A wake landing one or more whole periods late (stalled timer,
        // overrunning callback) consumes the intervening tick indices,
        // so Tick::index/Tick::scheduled stay consistent with the
        // nominal cadence.
        Time nominal = scheduled;
        uint64_t skipped = 0;
        while (wake - nominal >= period_) {
            nominal += period_;
            ++skipped;
        }
        tickIndex_ += skipped;
        Tick tick{tickIndex_++, nominal, wake, skipped};
        bool missed =
            faults_ != nullptr && faults_->samplerMissesWake();
        Time busy =
            (faults_ != nullptr && !missed) ? faults_->callbackOverrun()
                                            : Time{};
        // Reschedule from the actual wake (a sleep loop drifts), plus
        // any modeled callback overrun.
        scheduleNext(wake + busy);
        if (!missed)
            callback_(tick);
    });
}

} // namespace dirigent::machine
