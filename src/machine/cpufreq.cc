#include "machine/cpufreq.h"

#include "common/log.h"
#include "fault/injector.h"

namespace dirigent::machine {

CpuFreqGovernor::CpuFreqGovernor(Machine &machine, sim::Engine &engine,
                                 unsigned numGrades, Time transitionLatency)
    : machine_(machine), engine_(engine),
      transitionLatency_(transitionLatency)
{
    DIRIGENT_ASSERT(numGrades >= 2, "need at least min and max grades");
    double lo = machine.config().minFreq.hz();
    double hi = machine.config().maxFreq.hz();
    for (unsigned g = 0; g < numGrades; ++g) {
        double f = lo + (hi - lo) * double(g) / double(numGrades - 1);
        freqs_.push_back(Freq::hz(f));
    }
    targetGrade_.assign(machine.numCores(), numGrades - 1);
    generation_.assign(machine.numCores(), 0);
    pending_.assign(machine.numCores(), false);
    abandoned_.assign(machine.numCores(), false);
}

Freq
CpuFreqGovernor::gradeFreq(unsigned grade) const
{
    DIRIGENT_ASSERT(grade < freqs_.size(), "bad frequency grade %u", grade);
    return freqs_[grade];
}

void
CpuFreqGovernor::setGrade(unsigned core, unsigned grade)
{
    DIRIGENT_ASSERT(core < targetGrade_.size(), "bad core %u", core);
    DIRIGENT_ASSERT(grade < freqs_.size(), "bad frequency grade %u", grade);
    if (targetGrade_[core] == grade && !abandoned_[core])
        return;
    targetGrade_[core] = grade;
    abandoned_[core] = false;
    scheduleApply(core, ++generation_[core], 0);
}

void
CpuFreqGovernor::scheduleApply(unsigned core, uint64_t generation,
                               unsigned attempt)
{
    // Exponential backoff: the first attempt waits one transition
    // latency, each retry doubles it.
    Time delay = transitionLatency_ * double(1u << attempt);
    if (faults_ != nullptr)
        delay += faults_->dvfsLatencySpike();
    pending_[core] = true;
    engine_.after(delay, [this, core, generation, attempt] {
        // A later request supersedes an in-flight transition.
        if (generation_[core] != generation)
            return;
        if (faults_ == nullptr || !faults_->dvfsWriteFails()) {
            machine_.core(core).setFrequency(freqs_[targetGrade_[core]]);
            pending_[core] = false;
            return;
        }
        ++writeFailures_;
        if (attempt >= maxRetries_) {
            pending_[core] = false;
            abandoned_[core] = true;
            ++abandonedWrites_;
            verbose(strfmt("cpufreq: abandoning grade %u write on core "
                           "%u after %u attempts",
                           targetGrade_[core], core, attempt + 1));
            return;
        }
        ++retriesScheduled_;
        scheduleApply(core, generation, attempt + 1);
    });
}

unsigned
CpuFreqGovernor::grade(unsigned core) const
{
    DIRIGENT_ASSERT(core < targetGrade_.size(), "bad core %u", core);
    return targetGrade_[core];
}

bool
CpuFreqGovernor::transitionPending(unsigned core) const
{
    DIRIGENT_ASSERT(core < pending_.size(), "bad core %u", core);
    return pending_[core];
}

bool
CpuFreqGovernor::writeAbandoned(unsigned core) const
{
    DIRIGENT_ASSERT(core < abandoned_.size(), "bad core %u", core);
    return abandoned_[core];
}

void
CpuFreqGovernor::setAllMax()
{
    for (unsigned c = 0; c < targetGrade_.size(); ++c)
        setGrade(c, maxGrade());
}

std::vector<unsigned>
CpuFreqGovernor::equispacedGrades(unsigned count) const
{
    DIRIGENT_ASSERT(count >= 2 && count <= numGrades(),
                    "cannot pick %u of %u grades", count, numGrades());
    std::vector<unsigned> grades;
    for (unsigned i = 0; i < count; ++i) {
        double pos = double(i) * double(numGrades() - 1) / double(count - 1);
        grades.push_back(unsigned(pos + 0.5));
    }
    return grades;
}

} // namespace dirigent::machine
