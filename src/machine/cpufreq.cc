#include "machine/cpufreq.h"

#include "common/log.h"

namespace dirigent::machine {

CpuFreqGovernor::CpuFreqGovernor(Machine &machine, sim::Engine &engine,
                                 unsigned numGrades, Time transitionLatency)
    : machine_(machine), engine_(engine),
      transitionLatency_(transitionLatency)
{
    DIRIGENT_ASSERT(numGrades >= 2, "need at least min and max grades");
    double lo = machine.config().minFreq.hz();
    double hi = machine.config().maxFreq.hz();
    for (unsigned g = 0; g < numGrades; ++g) {
        double f = lo + (hi - lo) * double(g) / double(numGrades - 1);
        freqs_.push_back(Freq::hz(f));
    }
    targetGrade_.assign(machine.numCores(), numGrades - 1);
}

Freq
CpuFreqGovernor::gradeFreq(unsigned grade) const
{
    DIRIGENT_ASSERT(grade < freqs_.size(), "bad frequency grade %u", grade);
    return freqs_[grade];
}

void
CpuFreqGovernor::setGrade(unsigned core, unsigned grade)
{
    DIRIGENT_ASSERT(core < targetGrade_.size(), "bad core %u", core);
    DIRIGENT_ASSERT(grade < freqs_.size(), "bad frequency grade %u", grade);
    if (targetGrade_[core] == grade)
        return;
    targetGrade_[core] = grade;
    Freq f = freqs_[grade];
    engine_.after(transitionLatency_, [this, core, f] {
        // Apply only if this is still the most recent request for the
        // core (a later request supersedes an in-flight transition).
        if (freqs_[targetGrade_[core]].hz() == f.hz())
            machine_.core(core).setFrequency(f);
    });
}

unsigned
CpuFreqGovernor::grade(unsigned core) const
{
    DIRIGENT_ASSERT(core < targetGrade_.size(), "bad core %u", core);
    return targetGrade_[core];
}

void
CpuFreqGovernor::setAllMax()
{
    for (unsigned c = 0; c < targetGrade_.size(); ++c)
        setGrade(c, maxGrade());
}

std::vector<unsigned>
CpuFreqGovernor::equispacedGrades(unsigned count) const
{
    DIRIGENT_ASSERT(count >= 2 && count <= numGrades(),
                    "cannot pick %u of %u grades", count, numGrades());
    std::vector<unsigned> grades;
    for (unsigned i = 0; i < count; ++i) {
        double pos = double(i) * double(numGrades() - 1) / double(count - 1);
        grades.push_back(unsigned(pos + 0.5));
    }
    return grades;
}

} // namespace dirigent::machine
