#include "machine/machine.h"

#include <algorithm>

#include "common/log.h"

namespace dirigent::machine {

Machine::Machine(const MachineConfig &config)
    : config_(config),
      rng_(Rng(config.seed).fork(0xD151)),
      cache_(config.cache, config.numCores),
      dram_(config.dram),
      bwGuard_(config.numCores, config.bwGuardPeriod),
      os_(config.numCores, Rng(config.seed).fork(0x05F7))
{
    DIRIGENT_ASSERT(config.numCores > 0, "machine needs cores");
    DIRIGENT_ASSERT(config.minFreq.hz() > 0.0 &&
                    config.minFreq <= config.maxFreq,
                    "bad DVFS range");
    for (unsigned c = 0; c < config.numCores; ++c) {
        cores_.push_back(std::make_unique<cpu::Core>(
            c, c, cache_, dram_, config.maxFreq));
        cores_.back()->setBwGuard(&bwGuard_);
    }
}

cpu::Core &
Machine::core(unsigned id)
{
    DIRIGENT_ASSERT(id < cores_.size(), "bad core id %u", id);
    return *cores_[id];
}

const cpu::Core &
Machine::core(unsigned id) const
{
    DIRIGENT_ASSERT(id < cores_.size(), "bad core id %u", id);
    return *cores_[id];
}

Pid
Machine::spawnProcess(const ProcessSpec &spec)
{
    return os_.spawn(spec);
}

void
Machine::switchProgram(Pid pid, const workload::PhaseProgram *program)
{
    os_.setNextProgram(pid, program);
    os_.restartTask(pid, now_);
    cache_.flush(os_.process(pid).core);
}

size_t
Machine::addCompletionListener(CompletionListener listener)
{
    DIRIGENT_ASSERT(listener != nullptr, "null completion listener");
    size_t handle = nextListener_++;
    listeners_.emplace_back(handle, std::move(listener));
    return handle;
}

void
Machine::removeCompletionListener(size_t handle)
{
    std::erase_if(listeners_,
                  [handle](const auto &p) { return p.first == handle; });
}

const cpu::CounterSample &
Machine::readCounters(unsigned coreId) const
{
    return core(coreId).counters().read();
}

void
Machine::advance(Time start, Time dt)
{
    now_ = start;

    for (unsigned c = 0; c < config_.numCores; ++c)
        advanceCore(c, start, dt);

    // Close the quantum: apply cache occupancy flow and memory queueing.
    std::vector<Bytes> wsCaps(config_.numCores, 0.0);
    for (unsigned c = 0; c < config_.numCores; ++c) {
        const Process *proc = os_.processOnCore(c);
        if (proc != nullptr && proc->task != nullptr &&
            !proc->task->finished()) {
            wsCaps[c] = proc->task->currentPhase().workingSet;
        }
    }
    cache_.commit(wsCaps);
    dram_.update(dt);
    bwGuard_.tick(start + dt);

    now_ = start + dt;
}

void
Machine::advanceCore(unsigned coreId, Time start, Time dt)
{
    cpu::Core &core = *cores_[coreId];

    // OS noise: short random interruptions (timer ticks, kernel work).
    double eventProb = config_.noiseEventsPerSec * dt.sec();
    if (eventProb > 0.0 && rng_.chance(std::min(eventProb, 1.0))) {
        core.stealTime(Time::sec(
            rng_.exponential(config_.noiseMeanDuration.sec())));
    }

    Time offset;
    // A completed task's remaining quantum runs its successor, so loop.
    while (offset < dt) {
        Process *proc = os_.processOnCore(coreId);
        workload::Task *task = nullptr;
        if (proc != nullptr && proc->runnable())
            task = proc->task.get();

        Time span = dt - offset;
        auto res = core.advance(task, span);
        if (!res.completed)
            break;

        DIRIGENT_ASSERT(proc != nullptr, "completion without a process");
        CompletionRecord rec;
        rec.pid = proc->pid;
        rec.core = coreId;
        rec.program = proc->program->name;
        rec.foreground = proc->foreground;
        rec.started = proc->taskStart;
        rec.finished = start + offset + res.completionOffset;
        rec.instructions = proc->task->retired();
        rec.executionIndex = proc->executions;
        proc->executions += 1;

        // The next task of this process starts immediately; its data is
        // cold (fresh input), so drop the old residency.
        os_.restartTask(proc->pid, rec.finished);
        cache_.flush(coreId);

        fireCompletion(rec);
        offset += res.completionOffset;
        // Guard against zero-length completions looping forever.
        if (res.completionOffset.sec() <= 0.0)
            break;
    }
}

void
Machine::fireCompletion(const CompletionRecord &rec)
{
    // Copy: listeners may add/remove listeners while we iterate.
    auto snapshot = listeners_;
    for (auto &[handle, fn] : snapshot)
        fn(rec);
}

} // namespace dirigent::machine
