#include "machine/machine.h"

#include <algorithm>

#include "common/log.h"

namespace dirigent::machine {

Machine::Machine(const MachineConfig &config)
    : config_(config),
      rng_(Rng(config.seed).fork(0xD151)),
      cache_(config.cache, config.numCores),
      dram_(config.dram),
      bwGuard_(config.numCores, config.bwGuardPeriod),
      os_(config.numCores, Rng(config.seed).fork(0x05F7))
{
    DIRIGENT_ASSERT(config.numCores > 0, "machine needs cores");
    DIRIGENT_ASSERT(config.minFreq.hz() > 0.0 &&
                    config.minFreq <= config.maxFreq,
                    "bad DVFS range");
    for (unsigned c = 0; c < config.numCores; ++c) {
        cores_.push_back(std::make_unique<cpu::Core>(
            c, c, cache_, dram_, config.maxFreq));
        cores_.back()->setBwGuard(&bwGuard_);
    }
    wsCaps_.assign(config.numCores, 0.0);
}

cpu::Core &
Machine::core(unsigned id)
{
    DIRIGENT_ASSERT(id < cores_.size(), "bad core id %u", id);
    return *cores_[id];
}

const cpu::Core &
Machine::core(unsigned id) const
{
    DIRIGENT_ASSERT(id < cores_.size(), "bad core id %u", id);
    return *cores_[id];
}

Pid
Machine::spawnProcess(const ProcessSpec &spec)
{
    return os_.spawn(spec);
}

void
Machine::switchProgram(Pid pid, const workload::PhaseProgram *program)
{
    os_.setNextProgram(pid, program);
    os_.restartTask(pid, now_);
    cache_.flush(os_.process(pid).core);
}

size_t
Machine::addCompletionListener(CompletionListener listener)
{
    DIRIGENT_ASSERT(listener != nullptr, "null completion listener");
    size_t handle = nextListener_++;
    listeners_.emplace_back(handle, std::move(listener));
    return handle;
}

void
Machine::removeCompletionListener(size_t handle)
{
    std::erase_if(listeners_,
                  [handle](const auto &p) { return p.first == handle; });
}

const cpu::CounterSample &
Machine::readCounters(unsigned coreId) const
{
    return core(coreId).counters().read();
}

void
Machine::advance(Time start, Time dt)
{
    advanceQuantum(start, dt);
}

uint64_t
Machine::advanceSpan(sim::Engine &engine, Time end)
{
    // Same chunk grid as sim::Component::advanceSpan (and therefore as
    // the engine's reference loop); overridden so an event-free span's
    // quanta run back-to-back without per-quantum virtual dispatch.
    const Time quantum = engine.maxQuantum();
    sim::EventQueue &events = engine.events();
    uint64_t quanta = 0;
    while (true) {
        Time start = engine.now();
        if (start >= end)
            break;
        Time target = std::min(end, start + quantum);
        target = std::min(target, events.nextTime());
        if (target <= start)
            break;
        advanceQuantum(start, target - start);
        engine.spanAdvanced(target);
        ++quanta;
        if (events.nextTime() <= target)
            break;
    }
    return quanta;
}

void
Machine::advanceQuantum(Time start, Time dt)
{
    now_ = start;

    // OS noise: short random interruptions (timer ticks, kernel work).
    // Rolled here, in core order, so the noise stream is identical
    // whether or not a core ends up skipped below.
    const double eventProb = config_.noiseEventsPerSec * dt.sec();
    const double noiseChance = std::min(eventProb, 1.0);
    for (unsigned c = 0; c < config_.numCores; ++c) {
        cpu::Core &core = *cores_[c];
        if (eventProb > 0.0 && rng_.chance(noiseChance)) {
            core.stealTime(Time::sec(
                rng_.exponential(config_.noiseMeanDuration.sec())));
        }
        // An idle core with no stolen backlog retires nothing and
        // touches no counters: advancing it is a no-op, so skip the
        // dispatch. Any queued stolen time must still burn cycles.
        const Process *proc = os_.processOnCore(c);
        const bool hasTask = proc != nullptr && proc->runnable();
        if (!hasTask && core.stolenBacklog().sec() <= 0.0)
            continue;
        advanceCore(c, start, dt);
    }

    // Close the quantum: apply cache occupancy flow and memory queueing.
    // A provably empty, fill-free cache makes commit() a no-op for any
    // cap vector, so the caps need not even be gathered.
    if (!cache_.quiescent()) {
        for (unsigned c = 0; c < config_.numCores; ++c) {
            const Process *proc = os_.processOnCore(c);
            if (proc != nullptr && proc->task != nullptr &&
                !proc->task->finished()) {
                wsCaps_[c] = proc->task->currentPhase().workingSet;
            } else {
                wsCaps_[c] = 0.0;
            }
        }
        cache_.commit(wsCaps_);
    }
    dram_.update(dt);
    bwGuard_.tick(start + dt);

    now_ = start + dt;
}

void
Machine::advanceCore(unsigned coreId, Time start, Time dt)
{
    cpu::Core &core = *cores_[coreId];

    Time offset;
    // A completed task's remaining quantum runs its successor, so loop.
    while (offset < dt) {
        Process *proc = os_.processOnCore(coreId);
        workload::Task *task = nullptr;
        if (proc != nullptr && proc->runnable())
            task = proc->task.get();

        Time span = dt - offset;
        auto res = core.advance(task, span);
        if (!res.completed)
            break;

        DIRIGENT_ASSERT(proc != nullptr, "completion without a process");
        CompletionRecord rec;
        rec.pid = proc->pid;
        rec.core = coreId;
        rec.program = proc->program->name;
        rec.foreground = proc->foreground;
        rec.started = proc->taskStart;
        rec.finished = start + offset + res.completionOffset;
        rec.instructions = proc->task->retired();
        rec.executionIndex = proc->executions;
        proc->executions += 1;

        // The next task of this process starts immediately; its data is
        // cold (fresh input), so drop the old residency.
        os_.restartTask(proc->pid, rec.finished);
        cache_.flush(coreId);

        fireCompletion(rec);
        offset += res.completionOffset;
        // Guard against zero-length completions looping forever.
        if (res.completionOffset.sec() <= 0.0)
            break;
    }
}

void
Machine::fireCompletion(const CompletionRecord &rec)
{
    // Copy: listeners may add/remove listeners while we iterate.
    auto snapshot = listeners_;
    for (auto &[handle, fn] : snapshot)
        fn(rec);
}

} // namespace dirigent::machine
