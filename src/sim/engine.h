/**
 * @file
 * The co-simulation engine.
 *
 * The engine owns the simulated clock and an event queue, and advances a
 * root Component in variable-size quanta: each step runs until the next
 * pending event, the configured maximum quantum, or the requested end
 * time — whichever comes first. This keeps event timing exact (control
 * actions, samplers, frequency transitions) while the performance model
 * integrates continuously over each quantum.
 */

#ifndef DIRIGENT_SIM_ENGINE_H
#define DIRIGENT_SIM_ENGINE_H

#include <functional>
#include <vector>

#include "common/units.h"
#include "sim/event_queue.h"

namespace dirigent::sim {

/**
 * Anything the engine can advance through simulated time. The machine
 * model implements this; tests can supply mocks.
 */
class Component
{
  public:
    virtual ~Component() = default;

    /**
     * Advance the component from @p start for @p dt of simulated time.
     * @p dt is always > 0 and ≤ the engine's maximum quantum.
     */
    virtual void advance(Time start, Time dt) = 0;
};

/**
 * Passive hook invoked around every quantum the engine advances. The
 * invariant checker (check::InvariantChecker) observes the machine at
 * quantum boundaries this way; observers must not mutate simulation
 * state, only read it.
 */
class Observer
{
  public:
    virtual ~Observer() = default;

    /** Called immediately before the root advances over [start, start+dt). */
    virtual void beforeQuantum(Time start, Time dt) = 0;

    /** Called after the root advanced, before due events fire. */
    virtual void afterQuantum(Time start, Time dt) = 0;
};

/**
 * Drives a root component and an event queue through simulated time.
 */
class Engine
{
  public:
    /**
     * @param root component advanced each quantum (not owned).
     * @param maxQuantum upper bound on a single advance() span.
     */
    Engine(Component &root, Time maxQuantum);

    /** Current simulated time. */
    Time now() const { return now_; }

    /** The event queue; schedule against absolute times. */
    EventQueue &events() { return events_; }

    /** Schedule @p fn to run @p delay after the current time. */
    EventId after(Time delay, EventQueue::Callback fn);

    /** Schedule @p fn at absolute time @p when (clamped to now). */
    EventId at(Time when, EventQueue::Callback fn);

    /**
     * Run the simulation until absolute time @p end. Events scheduled
     * exactly at @p end fire before returning.
     */
    void runUntil(Time end);

    /** Run for @p span beyond the current time. */
    void runFor(Time span) { runUntil(now_ + span); }

    /** The configured maximum quantum. */
    Time maxQuantum() const { return maxQuantum_; }

    /**
     * Attach a quantum observer (not owned; must outlive attachment or
     * remove itself first). Observers are notified in attach order.
     */
    void addObserver(Observer *observer);

    /** Detach an observer (no-op when not attached). */
    void removeObserver(Observer *observer);

  private:
    Component &root_;
    Time maxQuantum_;
    Time now_;
    EventQueue events_;
    std::vector<Observer *> observers_;
};

} // namespace dirigent::sim

#endif // DIRIGENT_SIM_ENGINE_H
