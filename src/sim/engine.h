/**
 * @file
 * The co-simulation engine.
 *
 * The engine owns the simulated clock and an event queue, and advances a
 * root Component in variable-size quanta: each step runs until the next
 * pending event, the configured maximum quantum, or the requested end
 * time — whichever comes first. This keeps event timing exact (control
 * actions, samplers, frequency transitions) while the performance model
 * integrates continuously over each quantum.
 */

#ifndef DIRIGENT_SIM_ENGINE_H
#define DIRIGENT_SIM_ENGINE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"
#include "sim/event_queue.h"

namespace dirigent::sim {

class Engine;

/**
 * How the engine steps its root component through time.
 *
 * Reference mode advances exactly one quantum per loop iteration —
 * the historically verified stepping the golden traces were recorded
 * under. SkipAhead merges every event-free run of quanta into one
 * Component::advanceSpan() call, eliminating per-quantum engine
 * overhead (event-queue queries, observer dispatch, virtual calls)
 * while producing byte-identical behaviour: the span implementations
 * chunk time with arithmetic identical to reference stepping and
 * yield back to the engine the moment an event becomes due.
 */
enum class StepMode
{
    Reference, //!< one quantum per engine-loop iteration
    SkipAhead, //!< merge event-free quanta into advanceSpan() calls
};

/**
 * The step mode selected by the DIRIGENT_FAST_PATH environment
 * variable: 0/off/false/no → Reference; anything else (including
 * unset) → SkipAhead. Read once per Engine construction.
 */
StepMode stepModeFromEnv();

/** Cumulative stepping statistics of one engine. */
struct StepStats
{
    uint64_t quanta = 0;     //!< model quanta advanced (all paths)
    uint64_t spans = 0;      //!< merged spans executed by the fast path
    uint64_t spanQuanta = 0; //!< quanta advanced inside merged spans
};

/**
 * Process-wide count of model quanta advanced by all engines (flushed
 * at the end of every runUntil). The sim-rate benchmarks read this to
 * convert wall time into quanta/second without reaching into the
 * per-run engines the harness constructs internally.
 */
uint64_t totalQuantaAdvanced();

/**
 * Process-wide count of quanta advanced inside merged spans (the
 * skip-ahead fast path), flushed like totalQuantaAdvanced(). Zero
 * deltas under reference stepping; the equivalence suites use this to
 * prove the fast path actually engaged in the runs they compare.
 */
uint64_t totalSpanQuantaAdvanced();

/**
 * Anything the engine can advance through simulated time. The machine
 * model implements this; tests can supply mocks.
 */
class Component
{
  public:
    virtual ~Component() = default;

    /**
     * Advance the component from @p start for @p dt of simulated time.
     * @p dt is always > 0 and ≤ the engine's maximum quantum.
     */
    virtual void advance(Time start, Time dt) = 0;

    /**
     * Advance across the merged interval [engine.now(), end) in
     * quantum-sized chunks, calling engine.spanAdvanced() after each
     * chunk and returning as soon as a pending event becomes due (the
     * engine then fires it and resumes). The default implementation
     * chunks with arithmetic identical to the engine's reference loop
     * and calls advance() per chunk, so any component is span-safe;
     * the machine overrides it with a fused loop that hoists per-span
     * state. Returns the number of quanta advanced.
     *
     * Contract for overrides: chunk boundaries must be computed as
     * min(end, now + maxQuantum, events.nextTime()) — the identical
     * floating-point expressions reference stepping uses — and
     * engine.spanAdvanced(target) must be called after every chunk so
     * that callbacks scheduling events mid-span (completion listeners)
     * observe the same engine clock as under reference stepping.
     */
    virtual uint64_t advanceSpan(Engine &engine, Time end);
};

/**
 * Passive hook invoked around every quantum the engine advances. The
 * invariant checker (check::InvariantChecker) observes the machine at
 * quantum boundaries this way; observers must not mutate simulation
 * state, only read it.
 */
class Observer
{
  public:
    virtual ~Observer() = default;

    /** Called immediately before the root advances over [start, start+dt). */
    virtual void beforeQuantum(Time start, Time dt) = 0;

    /** Called after the root advanced, before due events fire. */
    virtual void afterQuantum(Time start, Time dt) = 0;
};

/**
 * Drives a root component and an event queue through simulated time.
 */
class Engine
{
  public:
    /**
     * @param root component advanced each quantum (not owned).
     * @param maxQuantum upper bound on a single advance() span.
     */
    Engine(Component &root, Time maxQuantum);

    /** Current simulated time. */
    Time now() const { return now_; }

    /** The event queue; schedule against absolute times. */
    EventQueue &events() { return events_; }

    /** Schedule @p fn to run @p delay after the current time. */
    EventId after(Time delay, EventQueue::Callback fn);

    /** Schedule @p fn at absolute time @p when (clamped to now). */
    EventId at(Time when, EventQueue::Callback fn);

    /**
     * Run the simulation until absolute time @p end. Events scheduled
     * exactly at @p end fire before returning.
     */
    void runUntil(Time end);

    /** Run for @p span beyond the current time. */
    void runFor(Time span) { runUntil(now_ + span); }

    /** The configured maximum quantum. */
    Time maxQuantum() const { return maxQuantum_; }

    /**
     * Stepping mode. Engines construct in stepModeFromEnv()'s mode
     * (SkipAhead unless DIRIGENT_FAST_PATH disables it); while any
     * observer is attached the engine automatically falls back to
     * reference stepping so per-quantum hooks keep firing.
     */
    StepMode stepMode() const { return mode_; }

    /** Override the stepping mode (tests, equivalence suites). */
    void setStepMode(StepMode mode) { mode_ = mode; }

    /** Stepping statistics accumulated so far. */
    const StepStats &stepStats() const { return stats_; }

    /**
     * Advance the engine clock to @p target from within an
     * advanceSpan() implementation. Part of the span contract: it
     * keeps after()/at() anchored to the current chunk exactly as
     * reference stepping would, where now() is the start of the
     * quantum being advanced.
     */
    void spanAdvanced(Time target) { now_ = target; }

    /**
     * Attach a quantum observer (not owned; must outlive attachment or
     * remove itself first). Observers are notified in attach order.
     */
    void addObserver(Observer *observer);

    /** Detach an observer (no-op when not attached). */
    void removeObserver(Observer *observer);

  private:
    Component &root_;
    Time maxQuantum_;
    Time now_;
    EventQueue events_;
    std::vector<Observer *> observers_;
    StepMode mode_;
    StepStats stats_;
    uint64_t flushedQuanta_ = 0; //!< stats_.quanta already published
    uint64_t flushedSpanQuanta_ = 0; //!< stats_.spanQuanta published
};

} // namespace dirigent::sim

#endif // DIRIGENT_SIM_ENGINE_H
