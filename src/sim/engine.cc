#include "sim/engine.h"

#include <algorithm>

#include "common/log.h"

namespace dirigent::sim {

Engine::Engine(Component &root, Time maxQuantum)
    : root_(root), maxQuantum_(maxQuantum)
{
    DIRIGENT_ASSERT(maxQuantum.sec() > 0.0, "engine quantum must be > 0");
}

EventId
Engine::after(Time delay, EventQueue::Callback fn)
{
    DIRIGENT_ASSERT(delay.sec() >= 0.0, "negative event delay");
    return events_.schedule(now_ + delay, std::move(fn));
}

EventId
Engine::at(Time when, EventQueue::Callback fn)
{
    return events_.schedule(std::max(when, now_), std::move(fn));
}

void
Engine::runUntil(Time end)
{
    // Fire anything already due (e.g., setup events at time zero).
    events_.runDue(now_);
    while (now_ < end) {
        Time target = std::min(end, now_ + maxQuantum_);
        target = std::min(target, events_.nextTime());
        if (target > now_) {
            Time start = now_;
            Time dt = target - start;
            for (Observer *obs : observers_)
                obs->beforeQuantum(start, dt);
            root_.advance(start, dt);
            now_ = target;
            for (Observer *obs : observers_)
                obs->afterQuantum(start, dt);
        }
        events_.runDue(now_);
    }
}

void
Engine::addObserver(Observer *observer)
{
    DIRIGENT_ASSERT(observer != nullptr, "null engine observer");
    observers_.push_back(observer);
}

void
Engine::removeObserver(Observer *observer)
{
    std::erase(observers_, observer);
}

} // namespace dirigent::sim
