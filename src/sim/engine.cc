#include "sim/engine.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/log.h"

namespace dirigent::sim {

namespace {
std::atomic<uint64_t> gTotalQuanta{0};
std::atomic<uint64_t> gTotalSpanQuanta{0};
} // namespace

uint64_t
totalQuantaAdvanced()
{
    return gTotalQuanta.load(std::memory_order_relaxed);
}

uint64_t
totalSpanQuantaAdvanced()
{
    return gTotalSpanQuanta.load(std::memory_order_relaxed);
}

StepMode
stepModeFromEnv()
{
    const char *env = std::getenv("DIRIGENT_FAST_PATH");
    if (env != nullptr &&
        (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
         std::strcmp(env, "false") == 0 || std::strcmp(env, "no") == 0)) {
        return StepMode::Reference;
    }
    return StepMode::SkipAhead;
}

uint64_t
Component::advanceSpan(Engine &engine, Time end)
{
    // Reference-identical chunking: each chunk boundary is the same
    // min(end, now + quantum, nextEvent) expression the reference loop
    // evaluates, queried fresh every chunk so callbacks that schedule
    // or cancel events mid-span shape the remaining chunks exactly as
    // they would under single-quantum stepping.
    const Time quantum = engine.maxQuantum();
    EventQueue &events = engine.events();
    uint64_t quanta = 0;
    while (true) {
        Time start = engine.now();
        if (start >= end)
            break;
        Time target = std::min(end, start + quantum);
        target = std::min(target, events.nextTime());
        if (target <= start)
            break; // an event is due; the engine fires it and resumes
        advance(start, target - start);
        engine.spanAdvanced(target);
        ++quanta;
        if (events.nextTime() <= target)
            break; // a callback scheduled an event now due
    }
    return quanta;
}

Engine::Engine(Component &root, Time maxQuantum)
    : root_(root), maxQuantum_(maxQuantum), mode_(stepModeFromEnv())
{
    DIRIGENT_ASSERT(maxQuantum.sec() > 0.0, "engine quantum must be > 0");
}

EventId
Engine::after(Time delay, EventQueue::Callback fn)
{
    DIRIGENT_ASSERT(delay.sec() >= 0.0, "negative event delay");
    return events_.schedule(now_ + delay, std::move(fn));
}

EventId
Engine::at(Time when, EventQueue::Callback fn)
{
    return events_.schedule(std::max(when, now_), std::move(fn));
}

void
Engine::runUntil(Time end)
{
    // Fire anything already due (e.g., setup events at time zero).
    events_.runDue(now_);
    while (now_ < end) {
        // Fast path: no observers need per-quantum hooks and at least
        // one full quantum is event-free — hand the whole event-free
        // span to the component in one call.
        if (mode_ == StepMode::SkipAhead && observers_.empty()) {
            Time spanEnd = std::min(end, events_.nextTime());
            if (spanEnd > now_ + maxQuantum_) {
                uint64_t n = root_.advanceSpan(*this, end);
                stats_.spans += 1;
                stats_.spanQuanta += n;
                stats_.quanta += n;
                events_.runDue(now_);
                continue;
            }
        }
        Time target = std::min(end, now_ + maxQuantum_);
        target = std::min(target, events_.nextTime());
        if (target > now_) {
            Time start = now_;
            Time dt = target - start;
            for (Observer *obs : observers_)
                obs->beforeQuantum(start, dt);
            root_.advance(start, dt);
            now_ = target;
            stats_.quanta += 1;
            for (Observer *obs : observers_)
                obs->afterQuantum(start, dt);
        }
        events_.runDue(now_);
    }
    gTotalQuanta.fetch_add(stats_.quanta - flushedQuanta_,
                           std::memory_order_relaxed);
    flushedQuanta_ = stats_.quanta;
    gTotalSpanQuanta.fetch_add(stats_.spanQuanta - flushedSpanQuanta_,
                               std::memory_order_relaxed);
    flushedSpanQuanta_ = stats_.spanQuanta;
}

void
Engine::addObserver(Observer *observer)
{
    DIRIGENT_ASSERT(observer != nullptr, "null engine observer");
    observers_.push_back(observer);
}

void
Engine::removeObserver(Observer *observer)
{
    std::erase(observers_, observer);
}

} // namespace dirigent::sim
