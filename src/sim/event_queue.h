/**
 * @file
 * Time-ordered event queue for the co-simulation engine.
 *
 * Events are arbitrary callbacks scheduled at absolute simulated times.
 * Ties are broken by insertion order so behaviour is deterministic.
 */

#ifndef DIRIGENT_SIM_EVENT_QUEUE_H
#define DIRIGENT_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <map>

#include "common/units.h"

namespace dirigent::sim {

/** Opaque handle identifying a scheduled event, usable for cancellation. */
struct EventId
{
    uint64_t seq = 0;

    bool valid() const { return seq != 0; }
    auto operator<=>(const EventId &) const = default;
};

/**
 * A deterministic time-ordered queue of callbacks.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Schedule @p fn at absolute time @p when.
     * @return A handle that can be passed to cancel().
     */
    EventId schedule(Time when, Callback fn);

    /**
     * Cancel a previously scheduled event. Cancelling an event that has
     * already fired (or was already cancelled) is a harmless no-op.
     * @return true if the event was found and removed.
     */
    bool cancel(EventId id);

    /** Absolute time of the earliest pending event; never() when empty. */
    Time nextTime() const;

    /**
     * Fire, in order, every event with time ≤ @p now. Callbacks may
     * schedule further events, including at @p now (they fire in the
     * same call).
     * @return Number of events fired.
     */
    size_t runDue(Time now);

    /** True when no events are pending. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    size_t size() const { return events_.size(); }

  private:
    struct Key
    {
        double when;
        uint64_t seq;

        bool
        operator<(const Key &o) const
        {
            if (when != o.when)
                return when < o.when;
            return seq < o.seq;
        }
    };

    std::map<Key, Callback> events_;
    std::map<uint64_t, Key> bySeq_;
    uint64_t nextSeq_ = 1;
};

} // namespace dirigent::sim

#endif // DIRIGENT_SIM_EVENT_QUEUE_H
