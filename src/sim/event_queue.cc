#include "sim/event_queue.h"

#include <utility>
#include <vector>

#include "common/log.h"

namespace dirigent::sim {

EventId
EventQueue::schedule(Time when, Callback fn)
{
    DIRIGENT_ASSERT(fn != nullptr, "scheduling a null event callback");
    Key key{when.sec(), nextSeq_++};
    events_.emplace(key, std::move(fn));
    bySeq_.emplace(key.seq, key);
    return EventId{key.seq};
}

bool
EventQueue::cancel(EventId id)
{
    auto it = bySeq_.find(id.seq);
    if (it == bySeq_.end())
        return false;
    events_.erase(it->second);
    bySeq_.erase(it);
    return true;
}

Time
EventQueue::nextTime() const
{
    if (events_.empty())
        return Time::never();
    return Time::sec(events_.begin()->first.when);
}

size_t
EventQueue::runDue(Time now)
{
    size_t fired = 0;
    while (!events_.empty() && events_.begin()->first.when <= now.sec()) {
        auto it = events_.begin();
        Callback fn = std::move(it->second);
        bySeq_.erase(it->first.seq);
        events_.erase(it);
        fn();
        ++fired;
    }
    return fired;
}

} // namespace dirigent::sim
