/**
 * @file
 * Global enable switch for the runtime invariant layer.
 *
 * Resolution order (first match wins):
 *   1. an explicit in-process override (setEnabled / --check);
 *   2. the DIRIGENT_CHECK environment variable (1/0, on/off, true/false,
 *      or the mode words "abort"/"collect", which also enable);
 *   3. the compiled default — ON in Debug and sanitizer builds via the
 *      DIRIGENT_CHECK CMake option, OFF in plain Release builds.
 */

#ifndef DIRIGENT_CHECK_CHECK_H
#define DIRIGENT_CHECK_CHECK_H

namespace dirigent::check {

/** True when invariant checking should be active. */
bool enabled();

/** Force checking on or off for this process (overrides env/default). */
void setEnabled(bool on);

/** Drop any explicit override; env/default resolution applies again. */
void clearOverride();

/** The build-time default (the DIRIGENT_CHECK CMake option). */
bool compiledDefault();

/**
 * Preferred violation handling for production wiring: true (abort on
 * the first violation) unless DIRIGENT_CHECK=collect asks for quiet
 * accumulation. DIRIGENT_CHECK=abort states the default explicitly —
 * CI chaos jobs use it to pin the contract down.
 */
bool abortPreferred();

} // namespace dirigent::check

#endif // DIRIGENT_CHECK_CHECK_H
