#include "check/invariants.h"

#include <cmath>

#include "common/log.h"
#include "fault/injector.h"
#include "machine/cpufreq.h"

namespace dirigent::check {

namespace {
// Absolute slack for counter/progress comparisons: counters only ever
// accumulate, so any decrease beyond FP dust is a real defect.
constexpr double kCounterSlack = 1e-6;
} // namespace

InvariantChecker::InvariantChecker(machine::Machine &machine,
                                   sim::Engine *engine, CheckerConfig config)
    : machine_(machine), engine_(engine), config_(config),
      before_(machine.numCores()), lastSeen_(machine.numCores())
{
}

void
InvariantChecker::checkMonotonic(Time when, unsigned core,
                                 const cpu::CounterSample &from,
                                 const cpu::CounterSample &to)
{
    const struct
    {
        const char *name;
        double before, after;
    } counters[] = {
        {"instructions", from.instructions, to.instructions},
        {"llcAccesses", from.llcAccesses, to.llcAccesses},
        {"llcMisses", from.llcMisses, to.llcMisses},
        {"cycles", from.cycles, to.cycles},
    };
    for (const auto &ctr : counters) {
        if (ctr.after < ctr.before - kCounterSlack) {
            fail(when, "counters-monotonic",
                 strfmt("core %u %s decreased from %.3f to %.3f", core,
                        ctr.name, ctr.before, ctr.after));
        }
    }
}

void
InvariantChecker::attachGovernor(const machine::CpuFreqGovernor *governor)
{
    governor_ = governor;
}

void
InvariantChecker::attachFaultInjector(const fault::FaultInjector *injector)
{
    faults_ = injector;
}

void
InvariantChecker::addCheck(std::string rule, CustomCheck fn)
{
    DIRIGENT_ASSERT(fn != nullptr, "null custom check '%s'", rule.c_str());
    customChecks_.emplace_back(std::move(rule), std::move(fn));
}

void
InvariantChecker::beforeQuantum(Time start, Time dt)
{
    (void)dt;
    for (unsigned c = 0; c < machine_.numCores(); ++c) {
        CoreSnapshot &snap = before_[c];
        snap.counters = machine_.readCounters(c);
        // Event callbacks run between quanta; they must not roll
        // counters back either.
        if (haveLastSeen_)
            checkMonotonic(start, c, lastSeen_[c], snap.counters);
        const machine::Process *proc = machine_.os().processOnCore(c);
        snap.hasProcess = proc != nullptr;
        snap.paused =
            proc != nullptr && proc->state == machine::ProcState::Paused;
        snap.stateTransitions = proc != nullptr ? proc->stateTransitions : 0;
    }
    snapshotValid_ = true;
}

void
InvariantChecker::afterQuantum(Time start, Time dt)
{
    if (!snapshotValid_)
        return;
    checkClock(start, dt);
    checkEventQueue(start);
    checkCores(start);
    checkDvfsConverged(start);
    checkCache(start);
    checkDram(start);
    checkBwGuard(start);
    for (const auto &[rule, fn] : customChecks_) {
        if (auto detail = fn())
            fail(start, rule, std::move(*detail));
    }
    lastEnd_ = start + dt;
    haveLast_ = true;
    haveLastSeen_ = true;
    snapshotValid_ = false;
    quantaChecked_ += 1;
}

void
InvariantChecker::fail(Time when, const std::string &rule,
                       std::string detail)
{
    if (config_.abortOnViolation) {
        DIRIGENT_PANIC("invariant '%s' violated at t=%.9fs: %s",
                       rule.c_str(), when.sec(), detail.c_str());
    }
    if (violations_.size() < config_.maxViolations)
        violations_.push_back({when, rule, std::move(detail)});
}

void
InvariantChecker::checkClock(Time start, Time dt)
{
    if (dt.sec() <= 0.0) {
        fail(start, "clock-monotonic",
             strfmt("quantum length %.12g s is not positive", dt.sec()));
    }
    Time maxQuantum = engine_ != nullptr ? engine_->maxQuantum()
                                         : machine_.config().maxQuantum;
    if (dt.sec() > maxQuantum.sec() * (1.0 + config_.epsilon)) {
        fail(start, "clock-monotonic",
             strfmt("quantum length %.9fs exceeds the maximum %.9fs",
                    dt.sec(), maxQuantum.sec()));
    }
    if (haveLast_ && start.sec() < lastEnd_.sec() - config_.epsilon) {
        fail(start, "clock-monotonic",
             strfmt("quantum starts at %.9fs, before the previous end %.9fs",
                    start.sec(), lastEnd_.sec()));
    }
}

void
InvariantChecker::checkEventQueue(Time start)
{
    if (engine_ == nullptr)
        return;
    // Events due by the quantum start already fired; anything scheduled
    // mid-quantum (e.g. by completion listeners) lands at or after it.
    Time next = engine_->events().nextTime();
    if (next.sec() < start.sec() - config_.epsilon) {
        fail(start, "event-queue-monotonic",
             strfmt("pending event at %.9fs predates the quantum start %.9fs",
                    next.sec(), start.sec()));
    }
}

void
InvariantChecker::checkCores(Time start)
{
    const machine::MachineConfig &cfg = machine_.config();
    for (unsigned c = 0; c < machine_.numCores(); ++c) {
        const CoreSnapshot &snap = before_[c];
        cpu::CounterSample now = machine_.readCounters(c);
        checkMonotonic(start, c, snap.counters, now);
        lastSeen_[c] = now;

        double f = machine_.core(c).frequency().hz();
        double lo = cfg.minFreq.hz() * (1.0 - config_.epsilon);
        double hi = cfg.maxFreq.hz() * (1.0 + config_.epsilon);
        if (f < lo || f > hi) {
            fail(start, "dvfs-legal",
                 strfmt("core %u runs at %.0f Hz, outside [%.0f, %.0f]", c,
                        f, cfg.minFreq.hz(), cfg.maxFreq.hz()));
        } else if (governor_ != nullptr) {
            bool onGrade = false;
            for (unsigned g = 0; g < governor_->numGrades(); ++g) {
                double gf = governor_->gradeFreq(g).hz();
                if (std::abs(f - gf) <= gf * 1e-9) {
                    onGrade = true;
                    break;
                }
            }
            if (!onGrade) {
                fail(start, "dvfs-legal",
                     strfmt("core %u runs at %.0f Hz, which is not one of "
                            "the governor's %u grades",
                            c, f, governor_->numGrades()));
            }
        }

        // A task paused for the whole quantum must retire nothing.
        const machine::Process *proc = machine_.os().processOnCore(c);
        bool stillPaused =
            proc != nullptr && proc->state == machine::ProcState::Paused &&
            proc->stateTransitions == snap.stateTransitions;
        if (snap.hasProcess && snap.paused && stillPaused) {
            double retired = now.instructions - snap.counters.instructions;
            double accessed = now.llcAccesses - snap.counters.llcAccesses;
            if (retired > kCounterSlack || accessed > kCounterSlack) {
                fail(start, "paused-no-progress",
                     strfmt("paused pid %u on core %u retired %.3f "
                            "instructions (%.3f LLC accesses)",
                            proc->pid, c, retired, accessed));
            }
        }
    }
}

void
InvariantChecker::checkDvfsConverged(Time start)
{
    if (governor_ == nullptr)
        return;
    for (unsigned c = 0; c < machine_.numCores(); ++c) {
        if (governor_->transitionPending(c))
            continue;
        if (governor_->writeAbandoned(c)) {
            // Legal only when the run actually injects DVFS write
            // failures; otherwise an abandoned write is a governor bug.
            bool injected = faults_ != nullptr &&
                            faults_->plan().dvfs.failProb > 0.0;
            if (!injected) {
                fail(start, "dvfs-converged",
                     strfmt("core %u abandoned a grade write without "
                            "injected DVFS faults",
                            c));
            }
            continue;
        }
        double want = governor_->gradeFreq(governor_->grade(c)).hz();
        double have = machine_.core(c).frequency().hz();
        if (std::abs(have - want) > want * 1e-9) {
            fail(start, "dvfs-converged",
                 strfmt("core %u settled at %.0f Hz but grade %u wants "
                        "%.0f Hz",
                        c, have, governor_->grade(c), want));
        }
    }
}

void
InvariantChecker::checkCache(Time start)
{
    const mem::SharedCache &cache = machine_.cache();
    const mem::CacheConfig &cfg = cache.config();
    // One line of slack: fills land line-granular before eviction evens
    // the ways back out.
    double waySlack = cfg.bytesPerWay * config_.epsilon + cfg.lineSize;
    for (unsigned w = 0; w < cfg.numWays; ++w) {
        double occ = cache.wayOccupancy(w);
        if (occ < 0.0) {
            fail(start, "cache-way-capacity",
                 strfmt("way %u has negative occupancy %.1f B", w, occ));
        }
        if (occ > cfg.bytesPerWay + waySlack) {
            fail(start, "cache-way-capacity",
                 strfmt("way %u holds %.1f B, over its %.1f B capacity", w,
                        occ, double(cfg.bytesPerWay)));
        }
    }
    double total = 0.0;
    for (unsigned s = 0; s < cache.clients(); ++s) {
        double occ = cache.occupancy(s);
        if (occ < 0.0) {
            fail(start, "cache-total-capacity",
                 strfmt("client %u has negative occupancy %.1f B", s, occ));
        }
        total += occ;
    }
    double capacity = cfg.capacity();
    if (total > capacity + capacity * config_.epsilon +
                    double(cfg.numWays) * cfg.lineSize) {
        fail(start, "cache-total-capacity",
             strfmt("clients hold %.1f B total, over the %.1f B LLC",
                    total, capacity));
    }
}

void
InvariantChecker::checkDram(Time start)
{
    const mem::DramModel &dram = machine_.dram();
    const mem::DramConfig &cfg = dram.config();
    double util = dram.utilization();
    if (util < 0.0 || util > cfg.maxUtilization + config_.epsilon) {
        fail(start, "dram-bandwidth",
             strfmt("utilization %.6f outside [0, %.3f]", util,
                    cfg.maxUtilization));
    }
    double lat = dram.latency().sec();
    double base = cfg.baseLatency.sec();
    if (lat < base * (1.0 - config_.epsilon) ||
        lat > base * cfg.maxLatencyFactor * (1.0 + config_.epsilon)) {
        fail(start, "dram-latency",
             strfmt("latency %.9fs outside [%.9fs, %.9fs]", lat, base,
                    base * cfg.maxLatencyFactor));
    }
}

void
InvariantChecker::checkBwGuard(Time start)
{
    const mem::BwGuard &guard = machine_.bwGuard();
    double lineSize = machine_.cache().config().lineSize;
    for (unsigned c = 0; c < guard.cores(); ++c) {
        double budget = guard.budget(c);
        if (budget <= 0.0)
            continue;
        double windowBudget = budget * guard.period().sec();
        double used = guard.usedInWindow(c);
        // MemGuard-style regulation overshoots by at most one line (plus
        // the one-byte sentinel charge that marks exhaustion).
        double slack = lineSize + 1.0 + windowBudget * config_.epsilon;
        if (used > windowBudget + slack) {
            fail(start, "bwguard-budget",
                 strfmt("core %u used %.1f B of its %.1f B window budget",
                        c, used, windowBudget));
        }
    }
}

} // namespace dirigent::check
