/**
 * @file
 * Runtime invariant checker for the co-simulated machine.
 *
 * Attached to the engine as a sim::Observer, the checker snapshots the
 * machine before every quantum and verifies, after it, that the model
 * stayed physically sane: the clock and event queue are monotonic,
 * performance counters never decrease, cache occupancy respects way and
 * total capacity, DRAM utilization/latency stay within the configured
 * envelope, every core runs at a legal DVFS frequency, paused tasks
 * retire exactly zero instructions, and bandwidth budgets overshoot by
 * at most one cache line. Subsystems outside the machine (e.g. the
 * Dirigent predictors) register custom checks evaluated on the same
 * cadence.
 *
 * In abort mode (the default) the first violation panics with the rule
 * name and detail; in collect mode violations accumulate for tests to
 * inspect.
 */

#ifndef DIRIGENT_CHECK_INVARIANTS_H
#define DIRIGENT_CHECK_INVARIANTS_H

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "cpu/perf_counters.h"
#include "machine/machine.h"
#include "sim/engine.h"

namespace dirigent::machine {
class CpuFreqGovernor;
} // namespace dirigent::machine

namespace dirigent::fault {
class FaultInjector;
} // namespace dirigent::fault

namespace dirigent::check {

/** Checker behaviour knobs. */
struct CheckerConfig
{
    /** Panic on the first violation (CI mode); else collect quietly. */
    bool abortOnViolation = true;

    /** Cap on collected violations (collect mode only). */
    size_t maxViolations = 64;

    /** Relative slack for floating-point capacity comparisons. */
    double epsilon = 1e-9;
};

/** One recorded invariant violation. */
struct Violation
{
    Time when;          //!< quantum start time
    std::string rule;   //!< stable rule identifier, e.g. "dvfs-legal"
    std::string detail; //!< human-readable specifics
};

/**
 * The invariant checker. Attach with engine.addObserver(&checker); the
 * checker must outlive its attachment (or remove itself first).
 */
class InvariantChecker : public sim::Observer
{
  public:
    /**
     * @param machine machine under check (not owned).
     * @param engine engine whose clock/queue are checked (not owned;
     *        nullptr skips the event-queue invariant).
     * @param config behaviour knobs.
     */
    explicit InvariantChecker(machine::Machine &machine,
                              sim::Engine *engine = nullptr,
                              CheckerConfig config = {});

    /**
     * Also verify core frequencies against the governor's discrete
     * grade table, not just the [min, max] range (not owned).
     */
    void attachGovernor(const machine::CpuFreqGovernor *governor);

    /**
     * Declare that this run injects faults from @p injector (not
     * owned). Fault-aware expectations: an abandoned DVFS write —
     * normally a checker violation under the dvfs-converged rule — is
     * legal exactly when the attached plan injects DVFS failures.
     * Machine-level invariants are NOT relaxed: faults are injected at
     * the sensing/actuation boundary, so the machine itself must stay
     * physically sane under any plan.
     */
    void attachFaultInjector(const fault::FaultInjector *injector);

    /**
     * Custom check evaluated after every quantum: return a violation
     * detail string, or nullopt when the invariant holds.
     */
    using CustomCheck = std::function<std::optional<std::string>()>;

    /** Register a custom check under @p rule. */
    void addCheck(std::string rule, CustomCheck fn);

    /** Violations collected so far (empty in abort mode — it panics). */
    const std::vector<Violation> &violations() const { return violations_; }

    /** Total quanta observed. */
    uint64_t quantaChecked() const { return quantaChecked_; }

    // sim::Observer
    void beforeQuantum(Time start, Time dt) override;
    void afterQuantum(Time start, Time dt) override;

  private:
    struct CoreSnapshot
    {
        cpu::CounterSample counters;
        bool hasProcess = false;
        bool paused = false;
        uint64_t stateTransitions = 0;
    };

    void fail(Time when, const std::string &rule, std::string detail);
    void checkMonotonic(Time when, unsigned core,
                        const cpu::CounterSample &from,
                        const cpu::CounterSample &to);
    void checkClock(Time start, Time dt);
    void checkEventQueue(Time start);
    void checkCores(Time start);
    void checkDvfsConverged(Time start);
    void checkCache(Time start);
    void checkDram(Time start);
    void checkBwGuard(Time start);

    machine::Machine &machine_;
    sim::Engine *engine_;
    const machine::CpuFreqGovernor *governor_ = nullptr;
    const fault::FaultInjector *faults_ = nullptr;
    CheckerConfig config_;
    std::vector<std::pair<std::string, CustomCheck>> customChecks_;
    std::vector<CoreSnapshot> before_;
    /** Counters at the last afterQuantum, to catch decreases that
     *  happen between quanta (event callbacks run there). */
    std::vector<cpu::CounterSample> lastSeen_;
    bool haveLastSeen_ = false;
    Time lastEnd_;
    bool haveLast_ = false;
    bool snapshotValid_ = false;
    uint64_t quantaChecked_ = 0;
    std::vector<Violation> violations_;
};

} // namespace dirigent::check

#endif // DIRIGENT_CHECK_INVARIANTS_H
