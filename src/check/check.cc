#include "check/check.h"

#include <cstdlib>
#include <string_view>

#ifndef DIRIGENT_CHECK_DEFAULT
#define DIRIGENT_CHECK_DEFAULT 0
#endif

namespace dirigent::check {

namespace {

// -1 = no override, 0 = forced off, 1 = forced on.
int g_override = -1;

bool
parseBoolish(std::string_view text, bool fallback)
{
    if (text == "1" || text == "on" || text == "ON" || text == "true" ||
        text == "TRUE" || text == "yes" || text == "YES" ||
        text == "abort" || text == "collect") {
        return true;
    }
    if (text == "0" || text == "off" || text == "OFF" || text == "false" ||
        text == "FALSE" || text == "no" || text == "NO") {
        return false;
    }
    return fallback;
}

} // namespace

bool
enabled()
{
    if (g_override >= 0)
        return g_override != 0;
    if (const char *env = std::getenv("DIRIGENT_CHECK"))
        return parseBoolish(env, compiledDefault());
    return compiledDefault();
}

void
setEnabled(bool on)
{
    g_override = on ? 1 : 0;
}

void
clearOverride()
{
    g_override = -1;
}

bool
compiledDefault()
{
    return DIRIGENT_CHECK_DEFAULT != 0;
}

bool
abortPreferred()
{
    if (const char *env = std::getenv("DIRIGENT_CHECK"))
        return std::string_view(env) != "collect";
    return true;
}

} // namespace dirigent::check
