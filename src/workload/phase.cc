#include "workload/phase.h"

#include <cmath>

namespace dirigent::workload {

double
Phase::hitRatio(Bytes occupancy) const
{
    if (occupancy <= 0.0 || workingSet <= 0.0)
        return 0.0;
    double curve = 1.0 - std::exp(-occupancy / wsChar());
    return maxHitRatio * curve;
}

double
PhaseProgram::totalInstructions() const
{
    double total = 0.0;
    for (const auto &p : phases)
        total += p.instructions;
    return total;
}

bool
PhaseProgram::valid() const
{
    if (phases.empty())
        return false;
    for (const auto &p : phases)
        if (p.instructions <= 0.0 || p.cpiBase <= 0.0)
            return false;
    return true;
}

} // namespace dirigent::workload
