/**
 * @file
 * The benchmark library: phase-program models of the paper's Table 1
 * workloads (5 PARSEC-like foreground applications, 3 phase-heavy
 * standalone background applications, and 4 SPEC-like benchmarks used in
 * rotating background pairs).
 *
 * The models are synthetic but calibrated so that, on the simulated
 * 6-core machine, the foreground tasks span the paper's Fig. 4 ranges
 * (0.5–1.6 s standalone completion time, an order of magnitude of LLC
 * MPKI, and differing contention sensitivity) and the background
 * workloads span the Fig. 5 pressure spectrum with bwaves/PCA/RS showing
 * strong phase behaviour.
 */

#ifndef DIRIGENT_WORKLOAD_BENCHMARKS_H
#define DIRIGENT_WORKLOAD_BENCHMARKS_H

#include <deque>
#include <string>
#include <vector>

#include "workload/phase.h"

namespace dirigent::workload {

/** Workload classes from the paper's Table 1. */
enum class Category
{
    Foreground, //!< latency-critical, one-shot tasks (PARSEC-like)
    SingleBg,   //!< standalone background with strong phases
    RotateBg,   //!< members of rotating background pairs (SPEC-like)
};

/** Printable name of a category. */
const char *categoryName(Category c);

/**
 * A benchmark: a named, categorized phase program plus its Table 1
 * description line.
 */
struct Benchmark
{
    std::string name;
    std::string description;
    Category category;
    PhaseProgram program;
};

/**
 * Registry of all modelled benchmarks. The library is a process-wide
 * immutable singleton; Benchmark pointers remain valid for the process
 * lifetime.
 */
class BenchmarkLibrary
{
  public:
    /** The singleton instance. */
    static const BenchmarkLibrary &instance();

    /**
     * Register a user-defined benchmark (e.g. parsed from a workload
     * definition file; see workload/parser.h) so it can be used in
     * mixes, profiled, and evaluated exactly like a built-in one. The
     * category is derived from the program: looping programs register
     * as background, one-shot programs as foreground. fatal() on a
     * name collision. Pointers into the library remain stable.
     */
    static const Benchmark &registerCustom(std::string name,
                                           std::string description,
                                           workload::PhaseProgram program);

    /** Look up a benchmark by name; fatal() if unknown. */
    const Benchmark &get(const std::string &name) const;

    /** True if @p name is a known benchmark. */
    bool has(const std::string &name) const;

    /** All benchmarks: Table 1 order, then registered customs. */
    const std::deque<Benchmark> &all() const { return benchmarks_; }

    /** Names of all foreground benchmarks (built-in and custom). */
    std::vector<std::string> foregroundNames() const;

    /** Names of all standalone background benchmarks (built-in and custom). */
    std::vector<std::string> singleBgNames() const;

    /**
     * The four rotating background pairs, as (first, second) names:
     * (lbm, namd), (libquantum, namd), (lbm, soplex), (libquantum,
     * soplex) — the pairs evaluated in the paper.
     */
    std::vector<std::pair<std::string, std::string>> rotatePairs() const;

  private:
    BenchmarkLibrary();

    static BenchmarkLibrary &mutableInstance();

    // std::deque: references to registered benchmarks stay valid as
    // customs are appended.
    std::deque<Benchmark> benchmarks_;
};

} // namespace dirigent::workload

#endif // DIRIGENT_WORKLOAD_BENCHMARKS_H
