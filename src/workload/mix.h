/**
 * @file
 * Workload mixes: which benchmarks run on the 6 simulated cores. The
 * catalogue functions reproduce the paper's evaluated mixes — 15
 * single-BG mixes (Fig. 9a), 20 rotate-BG mixes (Fig. 9b), and 15
 * multi-FG mixes (Fig. 9c).
 */

#ifndef DIRIGENT_WORKLOAD_MIX_H
#define DIRIGENT_WORKLOAD_MIX_H

#include <string>
#include <vector>

namespace dirigent::workload {

/**
 * Background specification for a mix: one standalone benchmark on every
 * background core, or a rotating pair.
 */
struct BgSpec
{
    enum class Kind { Single, Rotate };

    Kind kind = Kind::Single;
    std::string first;  //!< single benchmark, or first pair member
    std::string second; //!< second pair member (Rotate only)

    /** Single-benchmark spec. */
    static BgSpec single(std::string name);

    /** Rotating-pair spec. */
    static BgSpec rotate(std::string a, std::string b);

    /** Display label: "bwaves" or "lbm+namd". */
    std::string label() const;
};

/**
 * A complete mix: the foreground benchmark on each foreground core
 * (entries may repeat for multi-FG mixes) plus the background spec.
 * All remaining cores (of the machine's 6) run background tasks.
 */
struct WorkloadMix
{
    std::string name;            //!< e.g. "ferret x2 bwaves"
    std::vector<std::string> fg; //!< one entry per FG core
    BgSpec bg;

    /** Number of foreground cores. */
    size_t fgCount() const { return fg.size(); }
};

/** Build a mix with a generated display name. */
WorkloadMix makeMix(std::vector<std::string> fg, BgSpec bg);

/** The 15 single-BG mixes: {5 FG} × {bwaves, pca, rs}, 1 FG core. */
std::vector<WorkloadMix> singleBgMixes();

/** The 20 rotate-BG mixes: {5 FG} × {4 rotate pairs}, 1 FG core. */
std::vector<WorkloadMix> rotateBgMixes();

/**
 * The 15 multi-FG mixes (paper Fig. 9c): five FG/BG combinations, each
 * with 1, 2, and 3 concurrent FG processes; FG + BG cores always
 * total 6.
 */
std::vector<WorkloadMix> multiFgMixes();

/** All 35 single-FG mixes (single-BG then rotate-BG). */
std::vector<WorkloadMix> allSingleFgMixes();

} // namespace dirigent::workload

#endif // DIRIGENT_WORKLOAD_MIX_H
