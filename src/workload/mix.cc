#include "workload/mix.h"

#include "common/log.h"
#include "common/strfmt.h"
#include "workload/benchmarks.h"

namespace dirigent::workload {

BgSpec
BgSpec::single(std::string name)
{
    BgSpec spec;
    spec.kind = Kind::Single;
    spec.first = std::move(name);
    return spec;
}

BgSpec
BgSpec::rotate(std::string a, std::string b)
{
    BgSpec spec;
    spec.kind = Kind::Rotate;
    spec.first = std::move(a);
    spec.second = std::move(b);
    return spec;
}

std::string
BgSpec::label() const
{
    if (kind == Kind::Single)
        return first;
    return first + "+" + second;
}

WorkloadMix
makeMix(std::vector<std::string> fg, BgSpec bg)
{
    DIRIGENT_ASSERT(!fg.empty(), "mix needs at least one FG task");
    const auto &lib = BenchmarkLibrary::instance();
    for (const auto &name : fg) {
        DIRIGENT_ASSERT(lib.get(name).category == Category::Foreground,
                        "'%s' is not a foreground benchmark", name.c_str());
    }
    // All FG entries in the paper's multi-FG mixes are the same
    // benchmark; name as "bench xN bg".
    bool homogeneous = true;
    for (const auto &name : fg)
        homogeneous = homogeneous && name == fg.front();

    WorkloadMix mix;
    mix.fg = fg;
    mix.bg = bg;
    if (homogeneous && fg.size() > 1) {
        mix.name = strfmt("%s x%zu %s", fg.front().c_str(), fg.size(),
                          bg.label().c_str());
    } else if (homogeneous) {
        mix.name = fg.front() + " " + bg.label();
    } else {
        std::string fgs;
        for (const auto &name : fg)
            fgs += (fgs.empty() ? "" : "+") + name;
        mix.name = fgs + " " + bg.label();
    }
    return mix;
}

namespace {

/** The paper's five FG and three single-BG benchmarks, in Fig. 9
 *  order. The evaluated catalogue is fixed even when custom
 *  benchmarks are registered. */
const std::vector<std::string> kPaperFg = {
    "bodytrack", "ferret", "fluidanimate", "raytrace", "streamcluster"};
const std::vector<std::string> kPaperSingleBg = {"bwaves", "pca", "rs"};

} // namespace

std::vector<WorkloadMix>
singleBgMixes()
{
    std::vector<WorkloadMix> mixes;
    for (const auto &fg : kPaperFg)
        for (const auto &bg : kPaperSingleBg)
            mixes.push_back(makeMix({fg}, BgSpec::single(bg)));
    return mixes;
}

std::vector<WorkloadMix>
rotateBgMixes()
{
    const auto &lib = BenchmarkLibrary::instance();
    std::vector<WorkloadMix> mixes;
    for (const auto &fg : kPaperFg)
        for (const auto &[a, b] : lib.rotatePairs())
            mixes.push_back(makeMix({fg}, BgSpec::rotate(a, b)));
    return mixes;
}

std::vector<WorkloadMix>
multiFgMixes()
{
    // The paper's five selected FG/BG combinations (Fig. 9c), spanning
    // low to high Baseline variation, each with 1..3 concurrent FGs.
    struct Combo
    {
        const char *fg;
        BgSpec bg;
    };
    const std::vector<Combo> combos = {
        {"bodytrack", BgSpec::rotate("libquantum", "soplex")},
        {"ferret", BgSpec::single("bwaves")},
        {"fluidanimate", BgSpec::rotate("lbm", "soplex")},
        {"raytrace", BgSpec::single("rs")},
        {"streamcluster", BgSpec::rotate("lbm", "namd")},
    };

    std::vector<WorkloadMix> mixes;
    for (const auto &combo : combos) {
        for (size_t n = 1; n <= 3; ++n) {
            std::vector<std::string> fg(n, combo.fg);
            auto mix = makeMix(fg, combo.bg);
            if (n == 1)
                mix.name = strfmt("%s x1 %s", combo.fg,
                                  combo.bg.label().c_str());
            mixes.push_back(std::move(mix));
        }
    }
    return mixes;
}

std::vector<WorkloadMix>
allSingleFgMixes()
{
    auto mixes = singleBgMixes();
    auto rotate = rotateBgMixes();
    mixes.insert(mixes.end(), rotate.begin(), rotate.end());
    return mixes;
}

} // namespace dirigent::workload
