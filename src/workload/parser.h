/**
 * @file
 * Textual workload definitions: build a PhaseProgram from an INI-style
 * Config, so users can model their own applications without
 * recompiling. Format:
 *
 * @code
 * [program]
 * name = mybench
 * loop = false
 *
 * [phase.0]
 * name = stage-a
 * instructions = 1.2e9
 * cpi = 0.9
 * apki = 8
 * working_set = 2MiB
 * locality = 3
 * max_hit = 0.92
 * cpi_jitter = 0.02
 * instr_jitter = 0.01
 * mlp = 2.0
 * @endcode
 *
 * Phases are numbered consecutively from 0; every key except
 * `instructions` has a sensible default.
 */

#ifndef DIRIGENT_WORKLOAD_PARSER_H
#define DIRIGENT_WORKLOAD_PARSER_H

#include <string>

#include "common/config.h"
#include "workload/phase.h"

namespace dirigent::workload {

/**
 * Build a PhaseProgram from @p config (see the file comment for the
 * expected keys). fatal() on a structurally invalid definition —
 * missing [program] name, no phases, or non-positive instruction
 * counts — since these are user-supplied files.
 */
PhaseProgram parsePhaseProgram(const Config &config);

/** Convenience: parse the INI text and build the program. */
PhaseProgram parsePhaseProgram(const std::string &text);

/** Serialize @p program back to parseable INI text. */
std::string formatPhaseProgram(const PhaseProgram &program);

} // namespace dirigent::workload

#endif // DIRIGENT_WORKLOAD_PARSER_H
