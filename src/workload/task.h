/**
 * @file
 * A Task is one executing instance of a PhaseProgram: it tracks the
 * current phase, instructions retired, and per-instance randomness
 * (phase-length jitter, CPI noise). Cores retire instructions into the
 * task; the task reports phase boundaries and completion.
 */

#ifndef DIRIGENT_WORKLOAD_TASK_H
#define DIRIGENT_WORKLOAD_TASK_H

#include <cstdint>

#include "common/random.h"
#include "workload/phase.h"

namespace dirigent::workload {

/**
 * One run of a phase program.
 *
 * For looping (background) programs, finished() never becomes true; the
 * phase list repeats and loopsCompleted() counts passes. For one-shot
 * (foreground) programs, finished() latches once all phases retire.
 */
class Task
{
  public:
    /**
     * @param program phase program to execute (not owned; must outlive
     *        the task).
     * @param rng private randomness stream for this instance.
     */
    Task(const PhaseProgram *program, Rng rng);

    /** The program being executed. */
    const PhaseProgram &program() const { return *program_; }

    /** True once a one-shot program has retired all phases. */
    bool finished() const { return finished_; }

    /** The phase instructions are currently retiring into. */
    const Phase &currentPhase() const;

    /** Index of the current phase within the program. */
    size_t phaseIndex() const { return phaseIdx_; }

    /** Instructions left in the current (jittered) phase pass. */
    double remainingInPhase() const;

    /** Total instructions retired by this task instance. */
    double retired() const { return totalRetired_; }

    /**
     * Application-Heartbeats-style progress: each phase contributes
     * exactly one beat regardless of its (possibly input-dependent)
     * instruction count, with fractional progress inside the current
     * phase. Robust to per-instance instruction jitter, which makes it
     * the better progress metric for strongly input-dependent tasks
     * (the paper's §7 future-work observation).
     */
    double beatProgress() const;

    /** Completed passes through a looping program's phase list. */
    uint64_t loopsCompleted() const { return loops_; }

    /**
     * Retire @p instructions into the task, advancing through phase
     * boundaries. Callers must not retire past the current phase
     * boundary in one call (use remainingInPhase() to clamp), so the
     * performance model can re-evaluate rates at each boundary.
     */
    void retire(double instructions);

    /**
     * Sample this task's CPI noise multiplier for the coming quantum
     * (lognormal, mean 1, sigma from the current phase).
     */
    double sampleCpiJitter();

  private:
    void enterPhase(size_t idx);

    const PhaseProgram *program_;
    Rng rng_;
    size_t phaseIdx_ = 0;
    double phaseTarget_ = 0.0;
    double phaseRetired_ = 0.0;
    double totalRetired_ = 0.0;
    bool finished_ = false;
    uint64_t loops_ = 0;

    /** @name Hot per-phase state, cached by enterPhase().
     *  The CPI-jitter draw happens once per core quantum; caching the
     *  phase pointer and the lognormal location parameter
     *  (log(1) − σ²/2, computed with the exact expression
     *  lognormalMean() would use) keeps the draw free of per-call
     *  lookups without changing a single emitted bit. */
    /// @{
    const Phase *phase_ = nullptr;
    double cpiJitterSigma_ = 0.0;
    double cpiJitterMu_ = 0.0;
    /// @}
};

} // namespace dirigent::workload

#endif // DIRIGENT_WORKLOAD_TASK_H
