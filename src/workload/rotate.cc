#include "workload/rotate.h"

#include "common/log.h"

namespace dirigent::workload {

RotatePair::RotatePair(const Benchmark *first, const Benchmark *second)
    : first_(first), second_(second)
{
    DIRIGENT_ASSERT(first != nullptr && second != nullptr,
                    "rotate pair needs two benchmarks");
    DIRIGENT_ASSERT(first->program.loop && second->program.loop,
                    "rotate members must be looping background programs");
}

const Benchmark &
RotatePair::pick(Rng &rng) const
{
    return rng.chance(0.5) ? *first_ : *second_;
}

std::string
RotatePair::name() const
{
    return first_->name + "+" + second_->name;
}

} // namespace dirigent::workload
