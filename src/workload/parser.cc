#include "workload/parser.h"

#include <cmath>

#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent::workload {

namespace {

// strtod happily parses "nan" and "inf", which would otherwise slip
// through the positivity/range checks below.
void
requireFinite(const PhaseProgram &program, unsigned phase,
              const char *key, double value)
{
    if (!std::isfinite(value))
        fatal(strfmt("workload '%s' phase %u: %s must be finite",
                     program.name.c_str(), phase, key));
}

} // namespace

PhaseProgram
parsePhaseProgram(const Config &config)
{
    PhaseProgram program;
    program.name = config.getString("program.name", "");
    if (program.name.empty())
        fatal("workload definition needs [program] name");
    program.loop = config.getBool("program.loop", false);

    for (unsigned i = 0;; ++i) {
        std::string prefix = strfmt("phase.%u.", i);
        if (!config.has(prefix + "instructions")) {
            // Phases must be consecutive; a gap means a typo.
            if (config.has(strfmt("phase.%u.instructions", i + 1)))
                fatal(strfmt("workload '%s': phase %u is missing but "
                             "phase %u exists",
                             program.name.c_str(), i, i + 1));
            break;
        }
        Phase phase;
        phase.name =
            config.getString(prefix + "name", strfmt("phase-%u", i));
        phase.instructions =
            config.getDouble(prefix + "instructions", 0.0);
        if (phase.instructions <= 0.0)
            fatal(strfmt("workload '%s' phase %u: instructions must be "
                         "positive",
                         program.name.c_str(), i));
        phase.instrJitterSigma =
            config.getDouble(prefix + "instr_jitter", 0.0);
        phase.cpiBase = config.getDouble(prefix + "cpi", 1.0);
        phase.llcApki = config.getDouble(prefix + "apki", 5.0);
        phase.workingSet =
            config.getBytes(prefix + "working_set", 2.0 * 1024 * 1024);
        phase.locality = config.getDouble(prefix + "locality", 3.0);
        phase.maxHitRatio = config.getDouble(prefix + "max_hit", 0.9);
        phase.cpiJitterSigma =
            config.getDouble(prefix + "cpi_jitter", 0.02);
        phase.mlp = config.getDouble(prefix + "mlp", 4.0);
        requireFinite(program, i, "instructions", phase.instructions);
        requireFinite(program, i, "instr_jitter", phase.instrJitterSigma);
        requireFinite(program, i, "cpi", phase.cpiBase);
        requireFinite(program, i, "apki", phase.llcApki);
        requireFinite(program, i, "working_set", phase.workingSet);
        requireFinite(program, i, "locality", phase.locality);
        requireFinite(program, i, "max_hit", phase.maxHitRatio);
        requireFinite(program, i, "cpi_jitter", phase.cpiJitterSigma);
        requireFinite(program, i, "mlp", phase.mlp);
        if (phase.cpiBase <= 0.0 || phase.mlp <= 0.0 ||
            phase.llcApki < 0.0 || phase.workingSet <= 0.0 ||
            phase.locality <= 0.0 || phase.cpiJitterSigma < 0.0 ||
            phase.instrJitterSigma < 0.0)
            fatal(strfmt("workload '%s' phase %u: invalid parameters",
                         program.name.c_str(), i));
        if (phase.maxHitRatio < 0.0 || phase.maxHitRatio > 1.0)
            fatal(strfmt("workload '%s' phase %u: max_hit must be in "
                         "[0, 1]",
                         program.name.c_str(), i));
        program.phases.push_back(std::move(phase));
    }

    if (program.phases.empty())
        fatal(strfmt("workload '%s' defines no phases",
                     program.name.c_str()));
    DIRIGENT_ASSERT(program.valid(), "parsed program failed validation");
    return program;
}

PhaseProgram
parsePhaseProgram(const std::string &text)
{
    return parsePhaseProgram(Config::parse(text));
}

std::string
formatPhaseProgram(const PhaseProgram &program)
{
    std::string out;
    out += "[program]\n";
    out += strfmt("name = %s\n", program.name.c_str());
    out += strfmt("loop = %s\n", program.loop ? "true" : "false");
    for (size_t i = 0; i < program.phases.size(); ++i) {
        const Phase &ph = program.phases[i];
        out += strfmt("\n[phase.%zu]\n", i);
        out += strfmt("name = %s\n", ph.name.c_str());
        out += strfmt("instructions = %.9g\n", ph.instructions);
        out += strfmt("instr_jitter = %.9g\n", ph.instrJitterSigma);
        out += strfmt("cpi = %.9g\n", ph.cpiBase);
        out += strfmt("apki = %.9g\n", ph.llcApki);
        out += strfmt("working_set = %.9gB\n", double(ph.workingSet));
        out += strfmt("locality = %.9g\n", ph.locality);
        out += strfmt("max_hit = %.9g\n", ph.maxHitRatio);
        out += strfmt("cpi_jitter = %.9g\n", ph.cpiJitterSigma);
        out += strfmt("mlp = %.9g\n", ph.mlp);
    }
    return out;
}

} // namespace dirigent::workload
