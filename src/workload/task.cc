#include "workload/task.h"

#include <cmath>

#include "common/log.h"

namespace dirigent::workload {

Task::Task(const PhaseProgram *program, Rng rng)
    : program_(program), rng_(rng)
{
    DIRIGENT_ASSERT(program != nullptr, "task needs a program");
    DIRIGENT_ASSERT(program->valid(), "program '%s' is not executable",
                    program->name.c_str());
    enterPhase(0);
}

const Phase &
Task::currentPhase() const
{
    DIRIGENT_ASSERT(!finished_, "finished task has no current phase");
    return *phase_;
}

double
Task::remainingInPhase() const
{
    if (finished_)
        return 0.0;
    return phaseTarget_ - phaseRetired_;
}

void
Task::retire(double instructions)
{
    DIRIGENT_ASSERT(!finished_, "retiring into a finished task");
    DIRIGENT_ASSERT(instructions >= 0.0, "negative retirement");
    // Allow a tiny overshoot from floating-point clamping at boundaries.
    DIRIGENT_ASSERT(instructions <= remainingInPhase() * (1.0 + 1e-9) + 1.0,
                    "retired %.17g past phase boundary (%.17g left)",
                    instructions, remainingInPhase());
    phaseRetired_ += instructions;
    totalRetired_ += instructions;
    if (phaseRetired_ + 1e-6 >= phaseTarget_) {
        size_t next = phaseIdx_ + 1;
        if (next >= program_->phases.size()) {
            if (program_->loop) {
                ++loops_;
                enterPhase(0);
            } else {
                finished_ = true;
            }
        } else {
            enterPhase(next);
        }
    }
}

double
Task::beatProgress() const
{
    double beats = double(loops_) * double(program_->phases.size()) +
                   double(phaseIdx_);
    if (!finished_ && phaseTarget_ > 0.0)
        beats += phaseRetired_ / phaseTarget_;
    else if (finished_)
        beats = double(program_->phases.size());
    return beats;
}

double
Task::sampleCpiJitter()
{
    if (finished_)
        return 1.0;
    if (cpiJitterSigma_ <= 0.0)
        return 1.0;
    return rng_.lognormalMu(cpiJitterMu_, cpiJitterSigma_);
}

void
Task::enterPhase(size_t idx)
{
    phaseIdx_ = idx;
    phaseRetired_ = 0.0;
    const Phase &p = program_->phases[idx];
    phase_ = &p;
    cpiJitterSigma_ = p.cpiJitterSigma;
    // The exact mu lognormalMean(1.0, sigma) would derive per draw.
    cpiJitterMu_ = std::log(1.0) - 0.5 * p.cpiJitterSigma * p.cpiJitterSigma;
    if (p.instrJitterSigma > 0.0)
        phaseTarget_ = rng_.lognormalMean(p.instructions, p.instrJitterSigma);
    else
        phaseTarget_ = p.instructions;
}

} // namespace dirigent::workload
