/**
 * @file
 * Rotating background pairs: the paper forms two-benchmark background
 * workloads and randomly switches each background core between the two
 * paired benchmarks every time a foreground task completes, mimicking
 * the interference changes caused by context switches.
 */

#ifndef DIRIGENT_WORKLOAD_ROTATE_H
#define DIRIGENT_WORKLOAD_ROTATE_H

#include <string>

#include "common/random.h"
#include "workload/benchmarks.h"

namespace dirigent::workload {

/**
 * A pair of background benchmarks that rotate on FG completions.
 */
class RotatePair
{
  public:
    /**
     * @param first,second members of the pair (not owned; typically
     *        BenchmarkLibrary entries, which live forever).
     */
    RotatePair(const Benchmark *first, const Benchmark *second);

    /** Uniformly pick one member using @p rng. */
    const Benchmark &pick(Rng &rng) const;

    const Benchmark &first() const { return *first_; }
    const Benchmark &second() const { return *second_; }

    /** Display name, e.g. "lbm+namd". */
    std::string name() const;

  private:
    const Benchmark *first_;
    const Benchmark *second_;
};

} // namespace dirigent::workload

#endif // DIRIGENT_WORKLOAD_ROTATE_H
