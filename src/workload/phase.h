/**
 * @file
 * The phase-based workload model.
 *
 * A benchmark is a PhaseProgram: an ordered list of execution phases,
 * optionally looped (background benchmarks run forever). Each phase
 * declares the parameters the performance model needs: instruction
 * volume, compute CPI, LLC access intensity, and cache-locality shape.
 * Progress is measured in retired instructions, matching the paper's use
 * of the retired-instruction performance counter as its progress metric.
 */

#ifndef DIRIGENT_WORKLOAD_PHASE_H
#define DIRIGENT_WORKLOAD_PHASE_H

#include <string>
#include <vector>

#include "common/units.h"

namespace dirigent::workload {

/**
 * One execution phase of a benchmark.
 *
 * The cache behaviour of a phase is a concave capacity curve: with
 * occupancy O bytes resident in the LLC, the hit ratio is
 *   hit(O) = maxHitRatio · (1 − exp(−O / wsChar))
 * where wsChar = workingSet / locality. Occupancy is capped at
 * workingSet — a task cannot productively cache more than it touches.
 */
struct Phase
{
    /** Human-readable phase name (for traces and tests). */
    std::string name;

    /** Instructions retired in one pass through this phase. */
    double instructions = 1e9;

    /**
     * Lognormal shape of per-pass instruction-count jitter; 0 disables.
     * Models input-dependent phase lengths.
     */
    double instrJitterSigma = 0.0;

    /** Cycles per instruction for the compute portion (no LLC misses). */
    double cpiBase = 1.0;

    /** LLC accesses per kilo-instruction. */
    double llcApki = 5.0;

    /** Total bytes this phase touches; caps useful LLC occupancy. */
    Bytes workingSet = 2_MiB;

    /**
     * Shape of the capacity curve: larger = steeper benefit from the
     * first bytes of occupancy. wsChar = workingSet / locality.
     */
    double locality = 3.0;

    /** Hit-ratio ceiling (captures compulsory/streaming misses). */
    double maxHitRatio = 0.9;

    /** Lognormal sigma of per-quantum CPI noise; 0 disables. */
    double cpiJitterSigma = 0.02;

    /**
     * Memory-level parallelism: how many misses overlap on average.
     * The per-miss stall seen by the core is latency / mlp. Streaming
     * codes (lbm, libquantum) overlap many misses; pointer-chasing
     * latency-critical code overlaps few.
     */
    double mlp = 4.0;

    /** Characteristic curve scale: workingSet / locality. */
    Bytes wsChar() const { return workingSet / locality; }

    /** Hit ratio at occupancy @p occupancy bytes. */
    double hitRatio(Bytes occupancy) const;
};

/**
 * An ordered sequence of phases; the executable description of a
 * benchmark. Background programs set @c loop so the sequence repeats
 * forever; foreground programs run once per task.
 */
struct PhaseProgram
{
    /** Program (benchmark) name. */
    std::string name;

    /** The phases, executed in order. */
    std::vector<Phase> phases;

    /** Repeat the phase list forever (background benchmarks). */
    bool loop = false;

    /** Sum of nominal phase instruction counts (one pass). */
    double totalInstructions() const;

    /** True when the program has at least one phase with instructions. */
    bool valid() const;
};

} // namespace dirigent::workload

#endif // DIRIGENT_WORKLOAD_PHASE_H
