#include "workload/benchmarks.h"

#include "common/log.h"

namespace dirigent::workload {

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::Foreground:
        return "FG";
      case Category::SingleBg:
        return "Single BG";
      case Category::RotateBg:
        return "Rotate BG";
    }
    return "?";
}

namespace {

/**
 * Foreground benchmark models.
 *
 * Calibration targets (standalone, all 20 LLC ways available, 2 GHz):
 * completion times ordered fluidanimate < raytrace < bodytrack < ferret
 * < streamcluster spanning roughly 0.5–1.6 s, with LLC MPKI spanning
 * roughly 0.15–1.5 and contention sensitivity rising in the same order
 * (paper Fig. 4).
 */

Benchmark
makeBodytrack()
{
    PhaseProgram prog;
    prog.name = "bodytrack";
    prog.loop = false;
    prog.phases = {
        // Particle-filter style alternation: image processing (memory
        // lean), likelihood evaluation (heavier), resampling (light).
        {"edge-maps", 0.35e9, 0.015, 1.00, 7.0, 2.0_MiB, 3.0, 0.93, 0.025, 2.2},
        {"likelihood", 0.75e9, 0.015, 0.92, 6.0, 2.5_MiB, 3.0, 0.92, 0.025, 2.2},
        {"resample", 0.40e9, 0.015, 1.05, 4.0, 1.0_MiB, 3.0, 0.95, 0.025, 2.5},
    };
    return {prog.name, "Body tracking of a person",
            Category::Foreground, prog};
}

Benchmark
makeFerret()
{
    PhaseProgram prog;
    prog.name = "ferret";
    prog.loop = false;
    prog.phases = {
        // Content-similarity pipeline: segment, extract, index query,
        // rank. The index query stage dominates and is cache hungry.
        {"segment", 0.40e9, 0.015, 0.95, 5.0, 1.5_MiB, 3.0, 0.94, 0.025, 2.0},
        {"extract", 0.45e9, 0.015, 0.90, 7.0, 2.0_MiB, 3.0, 0.93, 0.025, 2.0},
        {"index-query", 0.80e9, 0.020, 0.95, 12.0, 3.0_MiB, 3.0, 0.91, 0.03, 1.9},
        {"rank", 0.40e9, 0.015, 1.00, 8.0, 2.0_MiB, 3.0, 0.92, 0.025, 2.0},
    };
    return {prog.name, "Content similarity search",
            Category::Foreground, prog};
}

Benchmark
makeFluidanimate()
{
    PhaseProgram prog;
    prog.name = "fluidanimate";
    prog.loop = false;
    prog.phases = {
        // SPH fluid step: densities, forces, advance. Small working
        // set, compute bound, least contention sensitive of the FG set.
        {"densities", 0.42e9, 0.010, 0.88, 2.5, 1.0_MiB, 3.0, 0.97, 0.02, 3.0},
        {"forces", 0.47e9, 0.010, 0.90, 3.0, 1.2_MiB, 3.0, 0.96, 0.02, 3.0},
        {"advance", 0.20e9, 0.010, 0.95, 2.0, 0.8_MiB, 3.0, 0.97, 0.02, 3.0},
    };
    return {prog.name, "Fluid dynamic for animation",
            Category::Foreground, prog};
}

Benchmark
makeRaytrace()
{
    PhaseProgram prog;
    prog.name = "raytrace";
    prog.loop = false;
    prog.phases = {
        // BVH build then per-frame tracing; tracing has irregular but
        // cache-friendly access (high locality factor).
        {"bvh-build", 0.30e9, 0.012, 1.00, 5.0, 1.5_MiB, 3.0, 0.94, 0.02, 1.8},
        {"trace", 0.95e9, 0.015, 0.92, 3.5, 1.5_MiB, 4.0, 0.95, 0.025, 1.8},
    };
    return {prog.name, "Real-time raytracing", Category::Foreground, prog};
}

Benchmark
makeStreamcluster()
{
    PhaseProgram prog;
    prog.name = "streamcluster";
    prog.loop = false;
    prog.phases = {
        // Online clustering: distance evaluations stream over the point
        // set (big working set, high APKI) with periodic recluster
        // phases. Most memory sensitive of the FG set.
        {"dist-eval-1", 0.90e9, 0.02, 0.85, 14.0, 3.5_MiB, 3.0, 0.94, 0.03, 1.6},
        {"recluster-1", 0.30e9, 0.02, 0.95, 8.0, 2.0_MiB, 3.0, 0.94, 0.03, 1.7},
        {"dist-eval-2", 0.95e9, 0.02, 0.85, 15.0, 3.5_MiB, 3.0, 0.94, 0.03, 1.6},
        {"recluster-2", 0.35e9, 0.02, 0.95, 8.0, 2.0_MiB, 3.0, 0.94, 0.03, 1.7},
        {"final-pass", 0.45e9, 0.02, 0.88, 12.0, 3.0_MiB, 3.0, 0.94, 0.03, 1.6},
    };
    return {prog.name, "Online clustering of an input stream",
            Category::Foreground, prog};
}

/**
 * Standalone background models: long-running loops with strong phase
 * changes, the paper's chosen interference generators.
 */

Benchmark
makeBwaves()
{
    PhaseProgram prog;
    prog.name = "bwaves";
    prog.loop = true;
    prog.phases = {
        // Blast-wave solver: memory-heavy sweeps alternate with lighter
        // update phases at roughly the timescale of an FG task.
        {"sweep", 12.0e9, 0.25, 0.80, 30.0, 8.0_MiB, 3.0, 0.60, 0.03, 9.0},
        {"update", 9.0e9, 0.25, 0.75, 6.0, 2.0_MiB, 3.0, 0.92, 0.03, 5.0},
    };
    return {prog.name, "Simulation of blast waves in 3D",
            Category::SingleBg, prog};
}

Benchmark
makePca()
{
    PhaseProgram prog;
    prog.name = "pca";
    prog.loop = true;
    prog.phases = {
        // Covariance accumulation (streaming, heavy) then eigen solve
        // (compute bound, light).
        {"covariance", 10.0e9, 0.22, 0.75, 22.0, 6.0_MiB, 3.0, 0.70, 0.03, 9.0},
        {"eigen", 9.0e9, 0.22, 1.05, 4.0, 1.5_MiB, 3.0, 0.93, 0.03, 4.0},
    };
    return {prog.name, "Principal Component Analysis",
            Category::SingleBg, prog};
}

Benchmark
makeRangeSearch()
{
    PhaseProgram prog;
    prog.name = "rs";
    prog.loop = true;
    prog.phases = {
        // Tree build (light) and batched range queries (very heavy).
        // Long dwell times comparable to an FG execution make the
        // interference bimodal — the hardest predictor case.
        {"query-batch", 11.0e9, 0.28, 0.88, 28.0, 7.0_MiB, 3.0, 0.58, 0.035, 9.0},
        {"tree-build", 9.5e9, 0.28, 0.80, 4.0, 1.5_MiB, 3.0, 0.93, 0.03, 4.0},
    };
    return {prog.name, "Range Search", Category::SingleBg, prog};
}

/**
 * Rotate-pair members (SPEC-like): steady-state behaviours spanning a
 * wide memory-intensity range; pairs are switched randomly at each FG
 * task completion to mimic context-switch interference changes.
 */

Benchmark
makeNamd()
{
    PhaseProgram prog;
    prog.name = "namd";
    prog.loop = true;
    prog.phases = {
        {"md-step", 2.0e9, 0.05, 0.90, 3.0, 1.0_MiB, 3.0, 0.95, 0.02, 4.0},
    };
    return {prog.name, "Biomolecular system simulation",
            Category::RotateBg, prog};
}

Benchmark
makeSoplex()
{
    PhaseProgram prog;
    prog.name = "soplex";
    prog.loop = true;
    prog.phases = {
        {"simplex-iter", 1.6e9, 0.06, 0.85, 15.0, 5.0_MiB, 3.0, 0.78, 0.03, 7.0},
    };
    return {prog.name, "Linear program solver", Category::RotateBg, prog};
}

Benchmark
makeLibquantum()
{
    PhaseProgram prog;
    prog.name = "libquantum";
    prog.loop = true;
    prog.phases = {
        // Streaming over a huge quantum-register array: high APKI,
        // almost no reuse the LLC can capture.
        {"gate-stream", 2.2e9, 0.05, 0.70, 30.0, 32.0_MiB, 3.0, 0.30, 0.025, 10.0},
    };
    return {prog.name, "Simulation of a quantum computer",
            Category::RotateBg, prog};
}

Benchmark
makeLbm()
{
    PhaseProgram prog;
    prog.name = "lbm";
    prog.loop = true;
    prog.phases = {
        // Lattice-Boltzmann stencil: the heaviest steady memory load.
        {"stream-collide", 2.0e9, 0.05, 0.65, 32.0, 10.0_MiB, 3.0, 0.50,
         0.025, 10.0},
    };
    return {prog.name, "Simulation of fluids with free surfaces",
            Category::RotateBg, prog};
}

} // namespace

BenchmarkLibrary::BenchmarkLibrary()
{
    // Table 1 order: FG block, Single BG block, Rotate BG block.
    benchmarks_.push_back(makeBodytrack());
    benchmarks_.push_back(makeFerret());
    benchmarks_.push_back(makeFluidanimate());
    benchmarks_.push_back(makeRaytrace());
    benchmarks_.push_back(makeStreamcluster());
    benchmarks_.push_back(makeBwaves());
    benchmarks_.push_back(makePca());
    benchmarks_.push_back(makeRangeSearch());
    benchmarks_.push_back(makeNamd());
    benchmarks_.push_back(makeSoplex());
    benchmarks_.push_back(makeLibquantum());
    benchmarks_.push_back(makeLbm());

    for (const auto &b : benchmarks_) {
        DIRIGENT_ASSERT(b.program.valid(),
                        "benchmark '%s' has an invalid program",
                        b.name.c_str());
    }
}

const BenchmarkLibrary &
BenchmarkLibrary::instance()
{
    return mutableInstance();
}

BenchmarkLibrary &
BenchmarkLibrary::mutableInstance()
{
    static BenchmarkLibrary lib;
    return lib;
}

const Benchmark &
BenchmarkLibrary::registerCustom(std::string name,
                                 std::string description,
                                 workload::PhaseProgram program)
{
    BenchmarkLibrary &lib = mutableInstance();
    if (lib.has(name))
        fatal("benchmark '" + name + "' already exists");
    if (!program.valid())
        fatal("custom benchmark '" + name + "' has an invalid program");
    Benchmark bench;
    bench.name = std::move(name);
    bench.description = std::move(description);
    bench.category =
        program.loop ? Category::SingleBg : Category::Foreground;
    bench.program = std::move(program);
    lib.benchmarks_.push_back(std::move(bench));
    return lib.benchmarks_.back();
}

const Benchmark &
BenchmarkLibrary::get(const std::string &name) const
{
    for (const auto &b : benchmarks_)
        if (b.name == name)
            return b;
    fatal("unknown benchmark '" + name + "'");
}

bool
BenchmarkLibrary::has(const std::string &name) const
{
    for (const auto &b : benchmarks_)
        if (b.name == name)
            return true;
    return false;
}

std::vector<std::string>
BenchmarkLibrary::foregroundNames() const
{
    std::vector<std::string> names;
    for (const auto &b : benchmarks_)
        if (b.category == Category::Foreground)
            names.push_back(b.name);
    return names;
}

std::vector<std::string>
BenchmarkLibrary::singleBgNames() const
{
    std::vector<std::string> names;
    for (const auto &b : benchmarks_)
        if (b.category == Category::SingleBg)
            names.push_back(b.name);
    return names;
}

std::vector<std::pair<std::string, std::string>>
BenchmarkLibrary::rotatePairs() const
{
    return {
        {"lbm", "namd"},
        {"libquantum", "namd"},
        {"lbm", "soplex"},
        {"libquantum", "soplex"},
    };
}

} // namespace dirigent::workload
