#include "exec/progress.h"

#include <iostream>

#include "common/strfmt.h"

namespace dirigent::exec {

ProgressReporter::ProgressReporter(size_t totalJobs, bool enabled,
                                   std::ostream *os)
    : os_(os ? os : &std::cerr), enabled_(enabled), total_(totalJobs),
      start_(std::chrono::steady_clock::now())
{
}

void
ProgressReporter::jobStarted(const std::string &label)
{
    (void)label;
    std::lock_guard<std::mutex> lock(mutex_);
    ++running_;
}

void
ProgressReporter::jobFinished(const std::string &label,
                              double wallSeconds)
{
    std::string line;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++done_;
        if (running_ > 0)
            --running_;
        if (!enabled_)
            return;
        double elapsed = elapsedSeconds();
        size_t queued = total_ > done_ + running_
                            ? total_ - done_ - running_
                            : 0;
        double eta = done_ > 0
                         ? elapsed / double(done_) *
                               double(total_ > done_ ? total_ - done_ : 0)
                         : 0.0;
        line = strfmt("[exec] %zu/%zu done · %zu running · %zu queued "
                      "· %.1fs elapsed · eta %.0fs · %s (%.2fs)\n",
                      done_, total_, running_, queued, elapsed, eta,
                      label.c_str(), wallSeconds);
    }
    *os_ << line << std::flush;
}

double
ProgressReporter::elapsedSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

size_t
ProgressReporter::done() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return done_;
}

size_t
ProgressReporter::running() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return running_;
}

} // namespace dirigent::exec
