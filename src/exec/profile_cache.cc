#include "exec/profile_cache.h"

#include "workload/benchmarks.h"

namespace dirigent::exec {

SharedProfileCache::SharedProfileCache(
    const machine::MachineConfig &machineConfig,
    const core::ProfilerConfig &profilerConfig)
    : machineConfig_(machineConfig), profilerConfig_(profilerConfig)
{
}

const core::Profile &
SharedProfileCache::get(const std::string &benchmarkName)
{
    std::shared_future<core::Profile> future;
    std::shared_ptr<std::promise<core::Profile>> mine;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = futures_.find(benchmarkName);
        if (it != futures_.end()) {
            future = it->second;
        } else {
            mine = std::make_shared<std::promise<core::Profile>>();
            future = mine->get_future().share();
            futures_.emplace(benchmarkName, future);
        }
    }

    if (mine) {
        try {
            const auto &bench =
                workload::BenchmarkLibrary::instance().get(benchmarkName);
            core::OfflineProfiler profiler(profilerConfig_);
            mine->set_value(
                profiler.profileAlone(bench, machineConfig_));
            profiled_.fetch_add(1);
        } catch (...) {
            mine->set_exception(std::current_exception());
        }
    }

    // shared_future::get() returns a reference into the shared state,
    // which the futures_ map keeps alive for the cache's lifetime.
    return future.get();
}

} // namespace dirigent::exec
