/**
 * @file
 * Job identity for the parallel experiment executor: one job is one
 * (mix, stage, repeat) cell of a sweep, and its seed is a pure function
 * of the master seed and that key — independent of submission order,
 * worker count, and interleaving, so sharded sweeps replay bit-for-bit.
 */

#ifndef DIRIGENT_EXEC_JOB_H
#define DIRIGENT_EXEC_JOB_H

#include <cstdint>
#include <string>

namespace dirigent::exec {

/** Identity of one experiment job inside a sweep. */
struct JobKey
{
    /** Workload-mix (or configuration) name. */
    std::string mix;

    /** Stage within the mix: scheme name or ablation-config label. */
    std::string stage;

    /** Replication index for multi-seed sweeps. */
    uint32_t repeat = 0;

    bool
    operator==(const JobKey &o) const
    {
        return mix == o.mix && stage == o.stage && repeat == o.repeat;
    }
};

/** Human-readable job label: "mix/stage" or "mix/stage#repeat". */
std::string jobLabel(const JobKey &key);

/**
 * Deterministic per-job seed: a well-mixed pure function of
 * (@p masterSeed, @p key). Equal keys map to equal seeds regardless of
 * the order jobs are created, submitted, or executed in.
 */
uint64_t deriveJobSeed(uint64_t masterSeed, const JobKey &key);

} // namespace dirigent::exec

#endif // DIRIGENT_EXEC_JOB_H
