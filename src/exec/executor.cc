#include "exec/executor.h"

#include <chrono>
#include <fstream>
#include <mutex>
#include <thread>
#include <utility>

#include "common/hash.h"
#include "common/log.h"
#include "dirigent/scheme.h"
#include "dirigent/scheme_spec.h"
#include "exec/thread_pool.h"
#include "obs/fleet.h"
#include "obs/manifest.h"
#include "obs/recorder.h"
#include "obs/span.h"

namespace dirigent::exec {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

unsigned
resolveThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1u;
}

std::vector<core::SchemeSpec>
defaultServingSchemes()
{
    return {core::schemeSpec(core::Scheme::Baseline),
            core::schemeSpec(core::Scheme::Dirigent),
            *core::findSchemeSpec("DirigentGradient")};
}

SweepExecutor::SweepExecutor(harness::HarnessConfig config,
                             ExecutorConfig ecfg)
    : config_(config),
      threads_(resolveThreads(ecfg.threads ? ecfg.threads
                                           : config.threads)),
      progress_(ecfg.progress),
      sharedProfiles_(config.machine, config.profiler)
{
    if (!ecfg.jsonlPath.empty()) {
        jsonl_ = JsonlWriter::open(ecfg.jsonlPath);
        if (jsonl_)
            jsonlPath_ = ecfg.jsonlPath;
    }
    spanOutBase_ = ecfg.spanOutBase;
    metricsOutBase_ = ecfg.metricsOutBase;
}

SweepExecutor::~SweepExecutor() = default;

void
SweepExecutor::noteJob(double wallSeconds, bool ok)
{
    metrics_.counter(ok ? "sweep.jobs_ok" : "sweep.jobs_failed").add();
    metrics_
        .histogram("sweep.job_wall_seconds",
                   obs::HistogramConfig{1e-3, 10, 100})
        .observe(wallSeconds);
}

void
SweepExecutor::writeSweepManifest(const std::string &kind, size_t jobs)
{
    if (jsonlPath_.empty())
        return;
    obs::RunManifest manifest;
    manifest.tool = "sweep";
    manifest.version = obs::buildVersion();
    manifest.seed = config_.seed;
    manifest.warmup = config_.warmup;
    manifest.executions = config_.executions;
    manifest.samplingPeriod = config_.runtime.samplingPeriod;
    manifest.decisionPeriodTicks = config_.runtime.decisionPeriodTicks;
    if (!config_.faultPlan.empty()) {
        manifest.faultPlanText = fault::formatFaultPlan(config_.faultPlan);
        manifest.faultPlanHash = fnv1a64(manifest.faultPlanText);
    }
    manifest.extra["kind"] = kind;
    manifest.extra["jobs"] = strfmt("%zu", jobs);
    manifest.extra["threads"] = strfmt("%u", threads_);

    const std::string path = jsonlPath_ + ".manifest.json";
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
        warn("cannot write sweep manifest '" + path + "'");
        return;
    }
    os << "{\"manifest\":" << manifest.toJson()
       << ",\"metrics\":" << metrics_.toJson() << "}\n";
}

std::vector<std::vector<harness::SchemeRunResult>>
SweepExecutor::runSchemeSweep(
    const std::vector<workload::WorkloadMix> &mixes)
{
    const auto schemes = core::allSchemes();

    if (threads_ == 1) {
        // The exact legacy serial path: one runner, one mix at a time.
        harness::ExperimentRunner runner(config_, sharedProfiles_);
        ProgressReporter prog(mixes.size(), progress_);
        std::vector<std::vector<harness::SchemeRunResult>> perMix;
        perMix.reserve(mixes.size());
        for (const auto &mix : mixes) {
            std::string label = mix.name + "/allSchemes";
            LogTagScope tag(label);
            prog.jobStarted(label);
            auto t0 = Clock::now();
            perMix.push_back(runner.runAllSchemes(mix));
            double wall = secondsSince(t0);
            if (jsonl_) {
                for (const auto &res : perMix.back())
                    jsonl_->write(res, core::schemeName(res.scheme),
                                  runner.mixSeed(mix),
                                  wall / double(schemes.size()));
            }
            noteJob(wall, true);
            prog.jobFinished(label, wall);
        }
        writeSweepManifest("scheme-sweep", mixes.size());
        return perMix;
    }

    // Sharded path: one job per (mix, scheme). Stage dependencies
    // inside a mix — Baseline calibrates the deadlines, Dirigent's
    // converged partition seeds StaticBoth — are chained by submitting
    // the dependent job when its input is ready, so independent mixes
    // overlap freely while each mix reproduces the serial ordering.
    struct MixState
    {
        std::vector<harness::SchemeRunResult> results;
        std::map<std::string, Time> deadlines;
        unsigned staticFgWays = 0;
    };
    std::vector<MixState> states(mixes.size());
    for (auto &state : states)
        state.results.resize(schemes.size());

    ProgressReporter prog(mixes.size() * schemes.size(), progress_);
    ThreadPool pool(threads_);

    // Slots follow core::allSchemes() order.
    constexpr size_t kBaseline = 0, kStaticFreq = 1, kStaticBoth = 2,
                     kDirigentFreq = 3, kDirigent = 4;

    auto runScheme = [&](size_t i, core::Scheme scheme, size_t slot,
                         harness::RunOptions opts,
                         const std::function<void()> &andThen =
                             nullptr) {
        JobKey key{mixes[i].name, core::schemeName(scheme), 0};
        std::string label = jobLabel(key);
        LogTagScope tag(label);
        prog.jobStarted(label);
        auto t0 = Clock::now();
        harness::ExperimentRunner runner(config_, sharedProfiles_);
        // Shards run through the registry spec rather than the enum
        // shim; both funnel into the same assembled run, and the
        // thread-count golden test cross-checks the two paths.
        auto result = runner.run(mixes[i], core::schemeSpec(scheme),
                                 states[i].deadlines, opts);
        double wall = secondsSince(t0);
        if (jsonl_)
            jsonl_->write(result, key.stage, runner.mixSeed(mixes[i]),
                          wall);
        states[i].results[slot] = std::move(result);
        noteJob(wall, true);
        prog.jobFinished(label, wall);
        if (andThen)
            andThen();
    };

    for (size_t i = 0; i < mixes.size(); ++i) {
        pool.submit([&, i] {
            // Stage 1: Baseline doubles as the deadline calibration.
            JobKey key{mixes[i].name,
                       core::schemeName(core::Scheme::Baseline), 0};
            std::string label = jobLabel(key);
            LogTagScope tag(label);
            prog.jobStarted(label);
            auto t0 = Clock::now();
            harness::ExperimentRunner runner(config_, sharedProfiles_);
            auto baseline = runner.run(
                mixes[i], core::schemeSpec(core::Scheme::Baseline), {});
            states[i].deadlines =
                runner.deadlinesFromBaseline(baseline);
            harness::applyDeadlines(baseline, states[i].deadlines);
            double wall = secondsSince(t0);
            if (jsonl_)
                jsonl_->write(baseline, key.stage,
                              runner.mixSeed(mixes[i]), wall);
            states[i].results[kBaseline] = std::move(baseline);
            noteJob(wall, true);
            prog.jobFinished(label, wall);

            // Stage 2: Dirigent; its partition defines StaticBoth's.
            pool.submit([&, i] {
                runScheme(i, core::Scheme::Dirigent, kDirigent,
                          harness::RunOptions{}, [&, i] {
                    const auto &dirigent = states[i].results[kDirigent];
                    // 0 resolves to the harness default inside run().
                    states[i].staticFgWays = dirigent.finalFgWays;

                    // Stage 3: the remaining schemes are independent.
                    pool.submit([&, i] {
                        runScheme(i, core::Scheme::StaticFreq,
                                  kStaticFreq, harness::RunOptions{});
                    });
                    pool.submit([&, i] {
                        harness::RunOptions opts;
                        opts.staticFgWays = states[i].staticFgWays;
                        runScheme(i, core::Scheme::StaticBoth,
                                  kStaticBoth, opts);
                    });
                    pool.submit([&, i] {
                        runScheme(i, core::Scheme::DirigentFreq,
                                  kDirigentFreq, harness::RunOptions{});
                    });
                });
            });
        });
    }
    pool.wait();
    writeSweepManifest("scheme-sweep", mixes.size() * schemes.size());

    std::vector<std::vector<harness::SchemeRunResult>> perMix;
    perMix.reserve(mixes.size());
    for (auto &state : states)
        perMix.push_back(std::move(state.results));
    return perMix;
}

std::vector<std::vector<harness::ServingRunResult>>
SweepExecutor::runServingSweep(
    const std::vector<workload::WorkloadMix> &mixes,
    const serve::ServeSpec &serveSpec,
    const std::vector<core::SchemeSpec> &schemes)
{
    if (auto error = serve::validateServeSpec(serveSpec))
        fatal(*error);
    if (schemes.empty())
        fatal("serving sweep needs at least one scheme spec");
    for (const auto &spec : schemes)
        if (auto error = core::validateSchemeSpec(spec))
            fatal(*error);

    // The rate grid: each sweep rate rescales the spec's arrival
    // process to that mean rate (preserving the MMPP burst/base ratio
    // and the diurnal swing); an empty grid runs the spec unscaled as
    // a single column.
    struct RateColumn
    {
        serve::ArrivalSpec arrivals;
        std::string label; // "" for the unscaled single column
    };
    std::vector<RateColumn> grid;
    if (serveSpec.sweepRates.empty()) {
        grid.push_back({serveSpec.arrivals, ""});
    } else {
        for (double rate : serveSpec.sweepRates)
            grid.push_back({serve::scaledToRate(serveSpec.arrivals, rate),
                            strfmt("@%g", rate)});
    }

    const size_t cells = schemes.size() * grid.size();
    std::vector<std::vector<harness::ServingRunResult>> perMix(
        mixes.size());
    for (auto &row : perMix)
        row.resize(cells);
    std::vector<std::map<std::string, Time>> deadlines(mixes.size());

    ProgressReporter prog(mixes.size() * (1 + cells), progress_);

    // Stage 1 per mix: a Baseline batch run calibrates the FG
    // deadlines (µ + 0.3σ) exactly as the scheme sweep does, so the
    // Dirigent cells chase the same targets a batch comparison would.
    auto calibrate = [&](size_t i, harness::ExperimentRunner &runner) {
        JobKey key{mixes[i].name, "calibrate", 0};
        std::string label = jobLabel(key);
        LogTagScope tag(label);
        prog.jobStarted(label);
        auto t0 = Clock::now();
        auto baseline = runner.run(
            mixes[i], core::schemeSpec(core::Scheme::Baseline), {});
        deadlines[i] = runner.deadlinesFromBaseline(baseline);
        noteJob(secondsSince(t0), true);
        prog.jobFinished(label, secondsSince(t0));
    };

    // Stage 2: one serving run per (scheme × rate) cell, slotted into
    // a scheme-major result row so the output order never depends on
    // worker interleaving.
    auto runCell = [&](size_t i, size_t cell,
                       harness::ExperimentRunner &runner) {
        const size_t schemeIdx = cell / grid.size();
        const size_t rateIdx = cell % grid.size();
        serve::ServeSpec cellSpec = serveSpec;
        cellSpec.arrivals = grid[rateIdx].arrivals;
        cellSpec.sweepRates.clear();
        JobKey key{mixes[i].name,
                   schemes[schemeIdx].name + grid[rateIdx].label, 0};
        std::string label = jobLabel(key);
        LogTagScope tag(label);
        prog.jobStarted(label);
        auto t0 = Clock::now();
        auto result = runner.runServing(mixes[i], schemes[schemeIdx],
                                        cellSpec, deadlines[i]);
        double wall = secondsSince(t0);
        if (jsonl_)
            jsonl_->writeServing(result, key.stage,
                                 runner.mixSeed(mixes[i]), wall);
        perMix[i][cell] = std::move(result);
        noteJob(wall, true);
        prog.jobFinished(label, wall);
    };

    if (threads_ == 1) {
        harness::ExperimentRunner runner(config_, sharedProfiles_);
        for (size_t i = 0; i < mixes.size(); ++i) {
            calibrate(i, runner);
            for (size_t cell = 0; cell < cells; ++cell)
                runCell(i, cell, runner);
        }
    } else {
        ThreadPool pool(threads_);
        for (size_t i = 0; i < mixes.size(); ++i) {
            pool.submit([&, i] {
                harness::ExperimentRunner runner(config_,
                                                 sharedProfiles_);
                calibrate(i, runner);
                for (size_t cell = 0; cell < cells; ++cell) {
                    pool.submit([&, i, cell] {
                        harness::ExperimentRunner worker(
                            config_, sharedProfiles_);
                        runCell(i, cell, worker);
                    });
                }
            });
        }
        pool.wait();
    }

    writeSweepManifest("serving-sweep", mixes.size() * cells);
    return perMix;
}

void
SweepExecutor::writeClusterManifest(const cluster::ClusterSpec &spec,
                                    const ClusterCellResult &cell)
{
    if (jsonlPath_.empty())
        return;
    const cluster::FleetSummary &fleet = cell.fleet;

    obs::RunManifest manifest;
    manifest.tool = "cluster";
    manifest.version = obs::buildVersion();
    manifest.mixName = spec.mix;
    manifest.scheme = spec.scheme;
    manifest.seed = config_.seed;
    manifest.samplingPeriod = config_.runtime.samplingPeriod;
    manifest.decisionPeriodTicks = config_.runtime.decisionPeriodTicks;
    manifest.extra["cluster_spec"] = cluster::formatClusterSpec(spec);
    manifest.extra["cluster_spec_hash"] = strfmt(
        "%llu", (unsigned long long)cluster::clusterSpecHash(spec));
    manifest.extra["serve_spec"] = serve::formatServeSpec(spec.serve);

    obs::ClusterSummary &cl = manifest.cluster;
    cl.present = true;
    cl.policy = cluster::dispatchPolicyName(fleet.policy);
    cl.nodes = fleet.nodes;
    cl.generated = fleet.generated;
    cl.arrivals = fleet.arrivals;
    cl.completed = fleet.completed;
    cl.dropped = fleet.dropped;
    cl.shed = fleet.shed;
    cl.meanSec = fleet.meanSec;
    cl.p50Sec = fleet.p50Sec;
    cl.p95Sec = fleet.p95Sec;
    cl.p99Sec = fleet.p99Sec;
    cl.p999Sec = fleet.p999Sec;
    for (const serve::SloVerdict &v : fleet.verdicts) {
        obs::ManifestSloVerdict mv;
        mv.label = v.target.label();
        mv.targetSec = v.target.targetSec;
        mv.achievedSec = v.achievedSec;
        mv.met = v.met;
        cl.slos.push_back(std::move(mv));
    }
    cl.sloMet = fleet.sloMet();
    cl.degraded = fleet.degraded;
    cl.utilizationMean = fleet.utilizationMean;
    cl.utilizationMin = fleet.utilizationMin;
    cl.utilizationMax = fleet.utilizationMax;
    cl.imbalance = fleet.imbalance;
    for (const cluster::NodeResult &node : cell.nodes) {
        obs::ClusterNodeSummary n;
        n.node = node.index;
        n.mix = node.mixLabel;
        n.scheme = node.schemeName;
        n.speed = node.speed;
        n.arrivals = node.serving.arrivals;
        n.completed = node.serving.completed;
        n.dropped = node.serving.dropped;
        n.shed = node.serving.shed;
        n.utilization = node.health.utilization;
        n.p99Sec = node.serving.p99Sec;
        n.degraded = node.health.degraded;
        n.faultPlanHash = node.faultPlanHash;
        n.faultsFile = node.faultsFile;
        cl.perNode.push_back(std::move(n));
    }
    cl.burnRates = cell.burnRates;

    const std::string path =
        jsonlPath_ + "." + cl.policy + strfmt("%u", cl.nodes) +
        ".manifest.json";
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
        warn("cannot write cluster manifest '" + path + "'");
        return;
    }
    os << manifest.toJson() << "\n";
}

std::vector<ClusterCellResult>
SweepExecutor::runClusterSweep(const cluster::ClusterSpec &spec)
{
    if (auto error = cluster::validateClusterSpec(spec))
        fatal(*error);

    std::vector<cluster::DispatchPolicy> policies =
        spec.sweepPolicies.empty()
            ? std::vector<cluster::DispatchPolicy>{spec.policy}
            : spec.sweepPolicies;
    std::vector<unsigned> nodeGrid =
        spec.sweepNodes.empty() ? std::vector<unsigned>{spec.nodes}
                                : spec.sweepNodes;

    // One node set serves the whole grid: node i's configuration does
    // not depend on the cell (an override for node i applies exactly
    // when node i exists), so resolving and calibrating the largest
    // fleet once covers every smaller prefix.
    unsigned maxNodes = 0;
    for (unsigned n : nodeGrid)
        maxNodes = std::max(maxNodes, n);
    cluster::ClusterSpec fleetSpec = spec;
    fleetSpec.nodes = maxNodes;
    fleetSpec.sweepPolicies.clear();
    fleetSpec.sweepNodes.clear();
    for (auto it = fleetSpec.overrides.begin();
         it != fleetSpec.overrides.end();) {
        if (it->first >= maxNodes)
            it = fleetSpec.overrides.erase(it);
        else
            ++it;
    }
    const std::vector<cluster::NodeConfig> nodeConfigs =
        cluster::resolveNodes(fleetSpec);
    std::vector<cluster::Node> nodes;
    nodes.reserve(nodeConfigs.size());
    for (const cluster::NodeConfig &nc : nodeConfigs)
        nodes.emplace_back(nc, config_);

    size_t serveJobs = 0;
    for (unsigned n : nodeGrid)
        serveJobs += size_t(n) * policies.size();
    ProgressReporter prog(nodes.size() + serveJobs, progress_);

    auto runJobs = [&](std::vector<std::function<void()>> jobs) {
        if (threads_ == 1) {
            for (auto &job : jobs)
                job();
        } else {
            ThreadPool pool(threads_);
            for (auto &job : jobs)
                pool.submit(std::move(job));
            pool.wait();
        }
    };

    // Phase A: calibrate every node (fault-free Baseline batch runs).
    std::vector<cluster::NodeCalibration> calibrations(nodes.size());
    {
        std::vector<std::function<void()>> jobs;
        for (size_t i = 0; i < nodes.size(); ++i) {
            jobs.push_back([&, i] {
                std::string label = strfmt("node%zu/calibrate", i);
                LogTagScope tag(label);
                prog.jobStarted(label);
                auto t0 = Clock::now();
                calibrations[i] = nodes[i].calibrate(&sharedProfiles_);
                double wall = secondsSince(t0);
                noteJob(wall, true);
                prog.jobFinished(label, wall);
            });
        }
        runJobs(std::move(jobs));
    }

    // The cluster arrival stream is seeded independently of the cell,
    // so every policy column routes the *same* request sequence.
    const uint64_t streamSeed = config_.seed ^ 0x57AE57;
    const uint64_t dispatchSeed = config_.seed ^ 0xD15F;
    serve::ServeSpec cellServe = spec.serve;
    cellServe.sweepRates.clear();
    const Time horizon = Time::sec(cellServe.horizonSec);

    std::vector<ClusterCellResult> cells;
    cells.reserve(nodeGrid.size() * policies.size());
    for (unsigned nodeCount : nodeGrid) {
        for (cluster::DispatchPolicy policy : policies) {
            // Phase B: route the stream serially against the modeled
            // fleet (no live simulation state touched).
            std::vector<cluster::NodeModel> models;
            for (unsigned i = 0; i < nodeCount; ++i)
                models.push_back(nodes[i].model(
                    calibrations[i], spec.serviceEstimateSec));
            auto dispatcher = cluster::makeDispatcher(
                policy, std::move(models), dispatchSeed);
            auto stream = serve::makeArrivalProcess(cellServe.arrivals,
                                                    streamSeed);
            cluster::DispatchPlan plan = cluster::splitArrivals(
                *stream, horizon, *dispatcher);

            // Phase C: each node replays its routed trace, one job
            // per node. When a span/metrics output is configured each
            // node gets its own collector + recorder (created here, in
            // node order, with the *cluster* seed so trace IDs do not
            // depend on the node's salted harness seed); the fold
            // below merges them deterministically.
            const bool instrument =
                !spanOutBase_.empty() || !metricsOutBase_.empty();
            ClusterCellResult cell;
            cell.nodes.resize(nodeCount);
            std::vector<std::unique_ptr<obs::SpanCollector>> nodeSpans;
            std::vector<std::unique_ptr<obs::Recorder>> nodeRecorders;
            if (instrument) {
                for (unsigned i = 0; i < nodeCount; ++i) {
                    nodeSpans.push_back(
                        std::make_unique<obs::SpanCollector>(
                            config_.seed, i));
                    nodeRecorders.push_back(
                        std::make_unique<obs::Recorder>());
                }
            }
            const char *policyName =
                cluster::dispatchPolicyName(policy);
            std::vector<std::function<void()>> jobs;
            for (unsigned i = 0; i < nodeCount; ++i) {
                jobs.push_back([&, i] {
                    std::string label = strfmt(
                        "%s%u/node%u", policyName, nodeCount, i);
                    LogTagScope tag(label);
                    prog.jobStarted(label);
                    auto t0 = Clock::now();
                    cluster::NodeResult result;
                    result.index = i;
                    result.mixLabel = cluster::formatMixLabel(
                        nodes[i].config().mix);
                    result.schemeName = nodes[i].config().scheme.name;
                    result.speed = nodes[i].config().speed;
                    if (!nodes[i].config().faultPlan.empty()) {
                        result.faultsFile = nodes[i].config().faultsFile;
                        result.faultPlanHash =
                            fnv1a64(fault::formatFaultPlan(
                                nodes[i].config().faultPlan));
                    }
                    result.calibration = calibrations[i];
                    result.serving = nodes[i].serve(
                        cellServe, plan.slotArrivals[i],
                        calibrations[i], &sharedProfiles_,
                        instrument ? nodeSpans[i].get() : nullptr,
                        instrument ? nodeRecorders[i].get() : nullptr);
                    result.health = cluster::Node::healthFrom(
                        nodes[i].config(), calibrations[i],
                        result.serving, cellServe.horizonSec);
                    cell.nodes[i] = std::move(result);
                    double wall = secondsSince(t0);
                    noteJob(wall, true);
                    prog.jobFinished(label, wall);
                });
            }
            runJobs(std::move(jobs));

            // Fold in node-index order regardless of which worker
            // finished first.
            cluster::ResourceAccountant accountant(policy, nodeCount,
                                                   cellServe.slos);
            for (const cluster::NodeResult &node : cell.nodes)
                accountant.add(node);
            cell.fleet = accountant.finish(plan.generated);

            if (instrument) {
                const std::string cellTag =
                    std::string(policyName) + strfmt("%u", nodeCount);
                // Fleet span artifact: node collectors merged in index
                // order (each already canonically sorted).
                obs::SpanCollector fleetSpans(config_.seed, 0);
                for (unsigned i = 0; i < nodeCount; ++i)
                    fleetSpans.merge(*nodeSpans[i]);
                fleetSpans.finalize();
                if (!spanOutBase_.empty())
                    obs::writeSpansFile(spanOutBase_ + "." + cellTag +
                                            ".spans.json",
                                        fleetSpans);
                if (!metricsOutBase_.empty()) {
                    obs::FleetMetrics fm;
                    for (unsigned i = 0; i < nodeCount; ++i)
                        fm.addNode(i, nodeRecorders[i]->metrics());
                    obs::writePrometheusFile(
                        metricsOutBase_ + "." + cellTag + ".prom", fm);
                }
                // Burn rates: per node per FG slot per SLO target,
                // plus the fleet rollup.
                for (const serve::SloTarget &t : cellServe.slos) {
                    std::vector<obs::BurnRateReport> parts;
                    for (unsigned i = 0; i < nodeCount; ++i) {
                        unsigned nFg = unsigned(
                            nodes[i].config().mix.fgCount());
                        for (unsigned j = 0; j < nFg; ++j) {
                            obs::BurnRateConfig bc;
                            bc.quantile = t.quantile;
                            bc.targetSec = t.targetSec;
                            bc.windowSec = 1.0;
                            bc.startSec = 0.0;
                            bc.endSec = cellServe.horizonSec;
                            bc.fgSlot = int(j);
                            parts.push_back(obs::computeBurnRate(
                                nodeRecorders[i]->requests(), bc,
                                strfmt("node%u/fg%u", i, j)));
                        }
                    }
                    if (parts.empty())
                        continue;
                    parts.push_back(
                        obs::combineBurnRates(parts, "fleet"));
                    for (const obs::BurnRateReport &r : parts) {
                        obs::ManifestBurnRate mb;
                        mb.scope = r.scope;
                        mb.label = t.label();
                        mb.targetSec = r.targetSec;
                        mb.budget = r.budget;
                        mb.windows = r.windows.size();
                        mb.errors = r.errors;
                        mb.total = r.total;
                        mb.maxBurn = r.maxBurnRate;
                        mb.meanBurn = r.meanBurnRate;
                        mb.exhausted = r.exhausted;
                        if (jsonl_)
                            jsonl_->writeBurnRate(mb, spec.name,
                                                  policy, nodeCount);
                        cell.burnRates.push_back(std::move(mb));
                    }
                }
            }

            if (jsonl_) {
                jsonl_->writeClusterFleet(cell.fleet, spec.name,
                                          config_.seed);
                for (const cluster::NodeResult &node : cell.nodes)
                    jsonl_->writeClusterNode(
                        node, spec.name, policy, nodeCount,
                        nodes[node.index].harnessConfig().seed);
            }
            writeClusterManifest(spec, cell);
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

ClusterCellResult
SweepExecutor::runCluster(const cluster::ClusterSpec &spec)
{
    cluster::ClusterSpec single = spec;
    single.sweepPolicies.clear();
    single.sweepNodes.clear();
    auto cells = runClusterSweep(single);
    DIRIGENT_ASSERT(cells.size() == 1,
                    "single cluster run produced multiple cells");
    return std::move(cells.front());
}

void
SweepExecutor::forEach(const std::vector<JobKey> &keys, const JobFn &fn)
{
    ProgressReporter prog(keys.size(), progress_);

    // Job failures are isolated: a throwing job must not take its
    // siblings' results down with it (a sweep that dies on cell 3 of
    // 100 still owes the caller the other 99 JSONL records). The first
    // exception is remembered and rethrown once every job finished.
    std::mutex errorMutex;
    std::exception_ptr firstError;
    size_t failed = 0;

    auto guarded = [&](size_t i, harness::ExperimentRunner &runner) {
        std::string label = jobLabel(keys[i]);
        LogTagScope tag(label);
        prog.jobStarted(label);
        auto t0 = Clock::now();
        bool ok = true;
        try {
            fn(i, keys[i], runner);
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
                ++failed;
            }
            ok = false;
            warn("sweep job '" + label + "' failed; siblings continue");
        }
        double wall = secondsSince(t0);
        noteJob(wall, ok);
        prog.jobFinished(label, wall);
    };

    if (threads_ == 1) {
        harness::ExperimentRunner runner(config_, sharedProfiles_);
        for (size_t i = 0; i < keys.size(); ++i)
            guarded(i, runner);
    } else {
        ThreadPool pool(threads_);
        for (size_t i = 0; i < keys.size(); ++i) {
            pool.submit([&, i] {
                harness::ExperimentRunner runner(config_,
                                                 sharedProfiles_);
                guarded(i, runner);
            });
        }
        pool.wait();
    }

    writeSweepManifest("for-each", keys.size());

    if (firstError) {
        warn(strfmt("%zu of %zu sweep jobs failed", failed, keys.size()));
        std::rethrow_exception(firstError);
    }
}

} // namespace dirigent::exec
