#include "exec/executor.h"

#include <chrono>
#include <fstream>
#include <mutex>
#include <thread>
#include <utility>

#include "common/hash.h"
#include "common/log.h"
#include "dirigent/scheme.h"
#include "dirigent/scheme_spec.h"
#include "exec/thread_pool.h"
#include "obs/manifest.h"

namespace dirigent::exec {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

unsigned
resolveThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1u;
}

std::vector<core::SchemeSpec>
defaultServingSchemes()
{
    return {core::schemeSpec(core::Scheme::Baseline),
            core::schemeSpec(core::Scheme::Dirigent),
            *core::findSchemeSpec("DirigentGradient")};
}

SweepExecutor::SweepExecutor(harness::HarnessConfig config,
                             ExecutorConfig ecfg)
    : config_(config),
      threads_(resolveThreads(ecfg.threads ? ecfg.threads
                                           : config.threads)),
      progress_(ecfg.progress),
      sharedProfiles_(config.machine, config.profiler)
{
    if (!ecfg.jsonlPath.empty()) {
        jsonl_ = JsonlWriter::open(ecfg.jsonlPath);
        if (jsonl_)
            jsonlPath_ = ecfg.jsonlPath;
    }
}

SweepExecutor::~SweepExecutor() = default;

void
SweepExecutor::noteJob(double wallSeconds, bool ok)
{
    metrics_.counter(ok ? "sweep.jobs_ok" : "sweep.jobs_failed").add();
    metrics_
        .histogram("sweep.job_wall_seconds",
                   obs::HistogramConfig{1e-3, 10, 100})
        .observe(wallSeconds);
}

void
SweepExecutor::writeSweepManifest(const std::string &kind, size_t jobs)
{
    if (jsonlPath_.empty())
        return;
    obs::RunManifest manifest;
    manifest.tool = "sweep";
    manifest.version = obs::buildVersion();
    manifest.seed = config_.seed;
    manifest.warmup = config_.warmup;
    manifest.executions = config_.executions;
    manifest.samplingPeriod = config_.runtime.samplingPeriod;
    manifest.decisionPeriodTicks = config_.runtime.decisionPeriodTicks;
    if (!config_.faultPlan.empty()) {
        manifest.faultPlanText = fault::formatFaultPlan(config_.faultPlan);
        manifest.faultPlanHash = fnv1a64(manifest.faultPlanText);
    }
    manifest.extra["kind"] = kind;
    manifest.extra["jobs"] = strfmt("%zu", jobs);
    manifest.extra["threads"] = strfmt("%u", threads_);

    const std::string path = jsonlPath_ + ".manifest.json";
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
        warn("cannot write sweep manifest '" + path + "'");
        return;
    }
    os << "{\"manifest\":" << manifest.toJson()
       << ",\"metrics\":" << metrics_.toJson() << "}\n";
}

std::vector<std::vector<harness::SchemeRunResult>>
SweepExecutor::runSchemeSweep(
    const std::vector<workload::WorkloadMix> &mixes)
{
    const auto schemes = core::allSchemes();

    if (threads_ == 1) {
        // The exact legacy serial path: one runner, one mix at a time.
        harness::ExperimentRunner runner(config_, sharedProfiles_);
        ProgressReporter prog(mixes.size(), progress_);
        std::vector<std::vector<harness::SchemeRunResult>> perMix;
        perMix.reserve(mixes.size());
        for (const auto &mix : mixes) {
            std::string label = mix.name + "/allSchemes";
            LogTagScope tag(label);
            prog.jobStarted(label);
            auto t0 = Clock::now();
            perMix.push_back(runner.runAllSchemes(mix));
            double wall = secondsSince(t0);
            if (jsonl_) {
                for (const auto &res : perMix.back())
                    jsonl_->write(res, core::schemeName(res.scheme),
                                  runner.mixSeed(mix),
                                  wall / double(schemes.size()));
            }
            noteJob(wall, true);
            prog.jobFinished(label, wall);
        }
        writeSweepManifest("scheme-sweep", mixes.size());
        return perMix;
    }

    // Sharded path: one job per (mix, scheme). Stage dependencies
    // inside a mix — Baseline calibrates the deadlines, Dirigent's
    // converged partition seeds StaticBoth — are chained by submitting
    // the dependent job when its input is ready, so independent mixes
    // overlap freely while each mix reproduces the serial ordering.
    struct MixState
    {
        std::vector<harness::SchemeRunResult> results;
        std::map<std::string, Time> deadlines;
        unsigned staticFgWays = 0;
    };
    std::vector<MixState> states(mixes.size());
    for (auto &state : states)
        state.results.resize(schemes.size());

    ProgressReporter prog(mixes.size() * schemes.size(), progress_);
    ThreadPool pool(threads_);

    // Slots follow core::allSchemes() order.
    constexpr size_t kBaseline = 0, kStaticFreq = 1, kStaticBoth = 2,
                     kDirigentFreq = 3, kDirigent = 4;

    auto runScheme = [&](size_t i, core::Scheme scheme, size_t slot,
                         harness::RunOptions opts,
                         const std::function<void()> &andThen =
                             nullptr) {
        JobKey key{mixes[i].name, core::schemeName(scheme), 0};
        std::string label = jobLabel(key);
        LogTagScope tag(label);
        prog.jobStarted(label);
        auto t0 = Clock::now();
        harness::ExperimentRunner runner(config_, sharedProfiles_);
        // Shards run through the registry spec rather than the enum
        // shim; both funnel into the same assembled run, and the
        // thread-count golden test cross-checks the two paths.
        auto result = runner.run(mixes[i], core::schemeSpec(scheme),
                                 states[i].deadlines, opts);
        double wall = secondsSince(t0);
        if (jsonl_)
            jsonl_->write(result, key.stage, runner.mixSeed(mixes[i]),
                          wall);
        states[i].results[slot] = std::move(result);
        noteJob(wall, true);
        prog.jobFinished(label, wall);
        if (andThen)
            andThen();
    };

    for (size_t i = 0; i < mixes.size(); ++i) {
        pool.submit([&, i] {
            // Stage 1: Baseline doubles as the deadline calibration.
            JobKey key{mixes[i].name,
                       core::schemeName(core::Scheme::Baseline), 0};
            std::string label = jobLabel(key);
            LogTagScope tag(label);
            prog.jobStarted(label);
            auto t0 = Clock::now();
            harness::ExperimentRunner runner(config_, sharedProfiles_);
            auto baseline = runner.run(
                mixes[i], core::schemeSpec(core::Scheme::Baseline), {});
            states[i].deadlines =
                runner.deadlinesFromBaseline(baseline);
            harness::applyDeadlines(baseline, states[i].deadlines);
            double wall = secondsSince(t0);
            if (jsonl_)
                jsonl_->write(baseline, key.stage,
                              runner.mixSeed(mixes[i]), wall);
            states[i].results[kBaseline] = std::move(baseline);
            noteJob(wall, true);
            prog.jobFinished(label, wall);

            // Stage 2: Dirigent; its partition defines StaticBoth's.
            pool.submit([&, i] {
                runScheme(i, core::Scheme::Dirigent, kDirigent,
                          harness::RunOptions{}, [&, i] {
                    const auto &dirigent = states[i].results[kDirigent];
                    // 0 resolves to the harness default inside run().
                    states[i].staticFgWays = dirigent.finalFgWays;

                    // Stage 3: the remaining schemes are independent.
                    pool.submit([&, i] {
                        runScheme(i, core::Scheme::StaticFreq,
                                  kStaticFreq, harness::RunOptions{});
                    });
                    pool.submit([&, i] {
                        harness::RunOptions opts;
                        opts.staticFgWays = states[i].staticFgWays;
                        runScheme(i, core::Scheme::StaticBoth,
                                  kStaticBoth, opts);
                    });
                    pool.submit([&, i] {
                        runScheme(i, core::Scheme::DirigentFreq,
                                  kDirigentFreq, harness::RunOptions{});
                    });
                });
            });
        });
    }
    pool.wait();
    writeSweepManifest("scheme-sweep", mixes.size() * schemes.size());

    std::vector<std::vector<harness::SchemeRunResult>> perMix;
    perMix.reserve(mixes.size());
    for (auto &state : states)
        perMix.push_back(std::move(state.results));
    return perMix;
}

std::vector<std::vector<harness::ServingRunResult>>
SweepExecutor::runServingSweep(
    const std::vector<workload::WorkloadMix> &mixes,
    const serve::ServeSpec &serveSpec,
    const std::vector<core::SchemeSpec> &schemes)
{
    if (auto error = serve::validateServeSpec(serveSpec))
        fatal(*error);
    if (schemes.empty())
        fatal("serving sweep needs at least one scheme spec");
    for (const auto &spec : schemes)
        if (auto error = core::validateSchemeSpec(spec))
            fatal(*error);

    // The rate grid: each sweep rate rescales the spec's arrival
    // process to that mean rate (preserving the MMPP burst/base ratio
    // and the diurnal swing); an empty grid runs the spec unscaled as
    // a single column.
    struct RateColumn
    {
        serve::ArrivalSpec arrivals;
        std::string label; // "" for the unscaled single column
    };
    std::vector<RateColumn> grid;
    if (serveSpec.sweepRates.empty()) {
        grid.push_back({serveSpec.arrivals, ""});
    } else {
        for (double rate : serveSpec.sweepRates)
            grid.push_back({serve::scaledToRate(serveSpec.arrivals, rate),
                            strfmt("@%g", rate)});
    }

    const size_t cells = schemes.size() * grid.size();
    std::vector<std::vector<harness::ServingRunResult>> perMix(
        mixes.size());
    for (auto &row : perMix)
        row.resize(cells);
    std::vector<std::map<std::string, Time>> deadlines(mixes.size());

    ProgressReporter prog(mixes.size() * (1 + cells), progress_);

    // Stage 1 per mix: a Baseline batch run calibrates the FG
    // deadlines (µ + 0.3σ) exactly as the scheme sweep does, so the
    // Dirigent cells chase the same targets a batch comparison would.
    auto calibrate = [&](size_t i, harness::ExperimentRunner &runner) {
        JobKey key{mixes[i].name, "calibrate", 0};
        std::string label = jobLabel(key);
        LogTagScope tag(label);
        prog.jobStarted(label);
        auto t0 = Clock::now();
        auto baseline = runner.run(
            mixes[i], core::schemeSpec(core::Scheme::Baseline), {});
        deadlines[i] = runner.deadlinesFromBaseline(baseline);
        noteJob(secondsSince(t0), true);
        prog.jobFinished(label, secondsSince(t0));
    };

    // Stage 2: one serving run per (scheme × rate) cell, slotted into
    // a scheme-major result row so the output order never depends on
    // worker interleaving.
    auto runCell = [&](size_t i, size_t cell,
                       harness::ExperimentRunner &runner) {
        const size_t schemeIdx = cell / grid.size();
        const size_t rateIdx = cell % grid.size();
        serve::ServeSpec cellSpec = serveSpec;
        cellSpec.arrivals = grid[rateIdx].arrivals;
        cellSpec.sweepRates.clear();
        JobKey key{mixes[i].name,
                   schemes[schemeIdx].name + grid[rateIdx].label, 0};
        std::string label = jobLabel(key);
        LogTagScope tag(label);
        prog.jobStarted(label);
        auto t0 = Clock::now();
        auto result = runner.runServing(mixes[i], schemes[schemeIdx],
                                        cellSpec, deadlines[i]);
        double wall = secondsSince(t0);
        if (jsonl_)
            jsonl_->writeServing(result, key.stage,
                                 runner.mixSeed(mixes[i]), wall);
        perMix[i][cell] = std::move(result);
        noteJob(wall, true);
        prog.jobFinished(label, wall);
    };

    if (threads_ == 1) {
        harness::ExperimentRunner runner(config_, sharedProfiles_);
        for (size_t i = 0; i < mixes.size(); ++i) {
            calibrate(i, runner);
            for (size_t cell = 0; cell < cells; ++cell)
                runCell(i, cell, runner);
        }
    } else {
        ThreadPool pool(threads_);
        for (size_t i = 0; i < mixes.size(); ++i) {
            pool.submit([&, i] {
                harness::ExperimentRunner runner(config_,
                                                 sharedProfiles_);
                calibrate(i, runner);
                for (size_t cell = 0; cell < cells; ++cell) {
                    pool.submit([&, i, cell] {
                        harness::ExperimentRunner worker(
                            config_, sharedProfiles_);
                        runCell(i, cell, worker);
                    });
                }
            });
        }
        pool.wait();
    }

    writeSweepManifest("serving-sweep", mixes.size() * cells);
    return perMix;
}

void
SweepExecutor::forEach(const std::vector<JobKey> &keys, const JobFn &fn)
{
    ProgressReporter prog(keys.size(), progress_);

    // Job failures are isolated: a throwing job must not take its
    // siblings' results down with it (a sweep that dies on cell 3 of
    // 100 still owes the caller the other 99 JSONL records). The first
    // exception is remembered and rethrown once every job finished.
    std::mutex errorMutex;
    std::exception_ptr firstError;
    size_t failed = 0;

    auto guarded = [&](size_t i, harness::ExperimentRunner &runner) {
        std::string label = jobLabel(keys[i]);
        LogTagScope tag(label);
        prog.jobStarted(label);
        auto t0 = Clock::now();
        bool ok = true;
        try {
            fn(i, keys[i], runner);
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
                ++failed;
            }
            ok = false;
            warn("sweep job '" + label + "' failed; siblings continue");
        }
        double wall = secondsSince(t0);
        noteJob(wall, ok);
        prog.jobFinished(label, wall);
    };

    if (threads_ == 1) {
        harness::ExperimentRunner runner(config_, sharedProfiles_);
        for (size_t i = 0; i < keys.size(); ++i)
            guarded(i, runner);
    } else {
        ThreadPool pool(threads_);
        for (size_t i = 0; i < keys.size(); ++i) {
            pool.submit([&, i] {
                harness::ExperimentRunner runner(config_,
                                                 sharedProfiles_);
                guarded(i, runner);
            });
        }
        pool.wait();
    }

    writeSweepManifest("for-each", keys.size());

    if (firstError) {
        warn(strfmt("%zu of %zu sweep jobs failed", failed, keys.size()));
        std::rethrow_exception(firstError);
    }
}

} // namespace dirigent::exec
