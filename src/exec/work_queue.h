/**
 * @file
 * A minimal thread-safe FIFO work queue: producers push until the queue
 * is closed, consumers block in pop() until an item arrives or the
 * queue is closed and drained. clear() supports cancellation (drop
 * everything not yet started).
 */

#ifndef DIRIGENT_EXEC_WORK_QUEUE_H
#define DIRIGENT_EXEC_WORK_QUEUE_H

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace dirigent::exec {

/** Unbounded MPMC FIFO queue with close/drain semantics. */
template <typename T>
class WorkQueue
{
  public:
    /** Enqueue @p item; false (item dropped) once closed. */
    bool
    push(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_)
                return false;
            items_.push_back(std::move(item));
        }
        ready_.notify_one();
        return true;
    }

    /**
     * Dequeue the oldest item, blocking while the queue is open and
     * empty. std::nullopt once the queue is closed and drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    /** Refuse new items; blocked pops drain the backlog, then return. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    /** Drop all queued items; returns how many were dropped. */
    size_t
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        size_t dropped = items_.size();
        items_.clear();
        return dropped;
    }

    /** Items currently queued. */
    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    /** True once close() was called. */
    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace dirigent::exec

#endif // DIRIGENT_EXEC_WORK_QUEUE_H
