/**
 * @file
 * The sharded experiment executor: fans independent simulation runs
 * (one job = one mix × stage, each owning its own machine::Machine and
 * sim::Engine) across a fixed-size thread pool. Results are
 * byte-identical to the serial path and independent of worker count —
 * every run is a pure function of (HarnessConfig, mix, scheme, inputs),
 * stage dependencies inside a mix (Baseline calibrates deadlines,
 * Dirigent's converged partition seeds StaticBoth) are chained by
 * submitting the dependent job from the finishing one, and profiles
 * come from a SharedProfileCache that profiles each FG benchmark
 * exactly once. A thread count of 1 takes the exact legacy serial
 * path.
 */

#ifndef DIRIGENT_EXEC_EXECUTOR_H
#define DIRIGENT_EXEC_EXECUTOR_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/accountant.h"
#include "cluster/node.h"
#include "cluster/spec.h"
#include "exec/job.h"
#include "exec/jsonl.h"
#include "exec/profile_cache.h"
#include "exec/progress.h"
#include "harness/experiment.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "workload/mix.h"

namespace dirigent::exec {

/** Executor knobs, separate from the simulated-experiment config. */
struct ExecutorConfig
{
    /**
     * Worker threads; 0 defers to HarnessConfig::threads and then to
     * hardware concurrency. 1 = exact legacy serial path.
     */
    unsigned threads = 0;

    /** Emit live progress lines to stderr. */
    bool progress = true;

    /** Append per-run JSONL records to this path ("" = disabled). */
    std::string jsonlPath;

    /**
     * Cluster sweeps: write per-cell fleet span artifacts to
     * <spanOutBase>.<policy><nodes>.spans.json ("" = spans detached —
     * the provable-no-op default).
     */
    std::string spanOutBase;

    /**
     * Cluster sweeps: write per-cell Prometheus fleet metrics to
     * <metricsOutBase>.<policy><nodes>.prom ("" = disabled).
     */
    std::string metricsOutBase;
};

/** 0 → hardware concurrency (at least 1); otherwise @p requested. */
unsigned resolveThreads(unsigned requested);

/**
 * The default serving comparison: Baseline, Dirigent, and
 * "DirigentGradient" — the Dirigent spec with Envoy-style gradient
 * admission control layered on top.
 */
std::vector<core::SchemeSpec> defaultServingSchemes();

/** One cluster cell (policy × node count): fleet + per-node detail. */
struct ClusterCellResult
{
    cluster::FleetSummary fleet;
    std::vector<cluster::NodeResult> nodes;

    /** Burn-rate verdicts (per node per FG per SLO target + fleet
     *  rollup); empty when the cell was not instrumented. */
    std::vector<obs::ManifestBurnRate> burnRates;
};

/**
 * Runs sweeps of independent experiment jobs across worker threads.
 */
class SweepExecutor
{
  public:
    explicit SweepExecutor(harness::HarnessConfig config,
                           ExecutorConfig ecfg = ExecutorConfig{});
    ~SweepExecutor();

    /** Resolved worker count. */
    unsigned threads() const { return threads_; }

    /** JSONL writer, if an export path was configured. */
    JsonlWriter *jsonl() { return jsonl_.get(); }

    /**
     * Sweep-level telemetry: jobs ok/failed counters and a wall-time
     * histogram per job, published under "sweep.*". When a JSONL path
     * is configured the registry is dumped into the sweep manifest
     * written next to it (<jsonlPath>.manifest.json).
     */
    obs::MetricsRegistry &metrics() { return metrics_; }
    const obs::MetricsRegistry &metrics() const { return metrics_; }

    /**
     * Run all five schemes on every mix (the Fig. 9/10/13 shape) and
     * return per-mix results in mix order, core::allSchemes() order
     * within a mix — exactly what the serial
     * ExperimentRunner::runAllSchemes loop produces.
     */
    std::vector<std::vector<harness::SchemeRunResult>>
    runSchemeSweep(const std::vector<workload::WorkloadMix> &mixes);

    /**
     * Serving-mode load sweep: for every mix, a Baseline batch run
     * first calibrates the FG deadlines (µ + 0.3σ, exactly as the
     * scheme sweep does), then every (scheme × rate) cell runs
     * ExperimentRunner::runServing with the serve spec's arrival
     * process rescaled to that cell's mean rate. The rate grid is
     * @p serveSpec's `rates` list; when empty the spec's own arrival
     * process runs unscaled as a single-rate column. Results come back
     * per mix in (scheme-major, rate-minor) order regardless of worker
     * count; each cell also lands in the JSONL export (stage
     * "<scheme>@<rate>") when a path is configured.
     */
    std::vector<std::vector<harness::ServingRunResult>>
    runServingSweep(const std::vector<workload::WorkloadMix> &mixes,
                    const serve::ServeSpec &serveSpec,
                    const std::vector<core::SchemeSpec> &schemes);

    /**
     * Run one cluster cell: @p spec's own policy × node count (the
     * sweep lists are ignored). Phase A resolves and calibrates every
     * node (one parallel job per node, fault-free Baseline batch
     * runs); phase B generates the cluster arrival stream and routes
     * it serially through the dispatch policy against modeled node
     * queues; phase C replays each node's routed trace as one parallel
     * serving job. Every phase is a pure function of (spec, seed) —
     * results, JSONL rows, and the per-cell manifest are
     * byte-identical at any thread count.
     */
    ClusterCellResult runCluster(const cluster::ClusterSpec &spec);

    /**
     * The policy × node-count grid: sweep_policies (default: the
     * spec's policy) crossed with sweep_nodes (default: the spec's
     * node count). Node calibrations are shared across policies —
     * node i's configuration does not depend on the cell — so every
     * policy column routes the *same* arrival stream across the
     * *same* calibrated fleet, which is what makes JSQ-vs-RR columns
     * directly comparable. Cells run serially (each internally
     * parallel over nodes) in (node-count-major, policy-minor) order;
     * per-cell manifests land at
     * <jsonlPath>.<policy><nodes>.manifest.json.
     */
    std::vector<ClusterCellResult>
    runClusterSweep(const cluster::ClusterSpec &spec);

    /** One generic sweep job: its index and key plus a worker body. */
    using JobFn =
        std::function<void(size_t index, const JobKey &key,
                           harness::ExperimentRunner &runner)>;

    /**
     * Generic fan-out for custom sweeps (ablations, sensitivity
     * grids): invoke @p fn once per key, each call on a worker with a
     * runner wired to the shared profile cache. Calls run in key order
     * when threads() == 1. Job failures are isolated: a throwing job
     * never drops or reorders its siblings' results — every other job
     * still runs to completion, and the first exception is rethrown
     * only after the whole sweep finished.
     */
    void forEach(const std::vector<JobKey> &keys, const JobFn &fn);

  private:
    /** Record one finished job into the sweep metrics. */
    void noteJob(double wallSeconds, bool ok);

    /** Write <jsonlPath>.manifest.json (no-op without a JSONL path). */
    void writeSweepManifest(const std::string &kind, size_t jobs);

    /**
     * Write the cell's bare RunManifest (cluster section filled) to
     * <jsonlPath>.<policy><nodes>.manifest.json. Unlike the sweep
     * manifest it embeds no thread count and no wall-time metrics, so
     * the file is byte-identical at any thread count.
     */
    void writeClusterManifest(const cluster::ClusterSpec &spec,
                              const ClusterCellResult &cell);

    harness::HarnessConfig config_;
    unsigned threads_;
    bool progress_;
    SharedProfileCache sharedProfiles_;
    std::unique_ptr<JsonlWriter> jsonl_;
    std::string jsonlPath_;
    std::string spanOutBase_;
    std::string metricsOutBase_;
    obs::MetricsRegistry metrics_;
};

} // namespace dirigent::exec

#endif // DIRIGENT_EXEC_EXECUTOR_H
