/**
 * @file
 * Thread-safe standalone-profile cache shared by all sweep shards:
 * each foreground benchmark is profiled exactly once (by the first
 * worker to ask); concurrent requesters block on a shared future until
 * the profile is ready. Drop-in harness::ProfileSource, so a worker's
 * ExperimentRunner uses it transparently.
 */

#ifndef DIRIGENT_EXEC_PROFILE_CACHE_H
#define DIRIGENT_EXEC_PROFILE_CACHE_H

#include <atomic>
#include <future>
#include <map>
#include <mutex>
#include <string>

#include "dirigent/profiler.h"
#include "harness/experiment.h"
#include "machine/machine.h"

namespace dirigent::exec {

/** Concurrent profile-once cache (see file comment). */
class SharedProfileCache : public harness::ProfileSource
{
  public:
    SharedProfileCache(const machine::MachineConfig &machineConfig,
                       const core::ProfilerConfig &profilerConfig);

    /**
     * Profile of @p benchmarkName. The first caller profiles (outside
     * the lock); concurrent callers block until the result is ready.
     * The returned reference stays valid for the cache's lifetime.
     */
    const core::Profile &get(const std::string &benchmarkName) override;

    /** Number of profiling runs actually performed. */
    size_t profileCount() const { return profiled_.load(); }

  private:
    machine::MachineConfig machineConfig_;
    core::ProfilerConfig profilerConfig_;

    std::mutex mutex_;
    std::map<std::string, std::shared_future<core::Profile>> futures_;
    std::atomic<size_t> profiled_{0};
};

} // namespace dirigent::exec

#endif // DIRIGENT_EXEC_PROFILE_CACHE_H
