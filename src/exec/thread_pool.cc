#include "exec/thread_pool.h"

#include "common/log.h"

namespace dirigent::exec {

ThreadPool::ThreadPool(unsigned threads)
{
    DIRIGENT_ASSERT(threads > 0, "thread pool needs at least one worker");
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    queue_.close();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    if (cancelled_.load())
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++unfinished_;
    }
    if (!queue_.push(std::move(job)))
        finishOne(); // closed: nothing will run it
}

void
ThreadPool::wait()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [&] { return unfinished_ == 0; });
        std::swap(error, firstError_);
    }
    if (error)
        std::rethrow_exception(error);
}

size_t
ThreadPool::cancel()
{
    cancelled_.store(true);
    size_t dropped = queue_.clear();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        DIRIGENT_ASSERT(unfinished_ >= dropped, "job accounting broke");
        unfinished_ -= dropped;
    }
    idle_.notify_all();
    return dropped;
}

void
ThreadPool::workerLoop()
{
    while (auto job = queue_.pop()) {
        if (!cancelled_.load()) {
            try {
                (*job)();
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    if (!firstError_)
                        firstError_ = std::current_exception();
                }
                cancel(); // drop the backlog; peers finish their job
            }
        }
        finishOne();
    }
}

void
ThreadPool::finishOne()
{
    bool idle = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        DIRIGENT_ASSERT(unfinished_ > 0, "job accounting broke");
        idle = --unfinished_ == 0;
    }
    if (idle)
        idle_.notify_all();
}

} // namespace dirigent::exec
