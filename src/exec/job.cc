#include "exec/job.h"

#include "common/strfmt.h"

namespace dirigent::exec {

namespace {

/** FNV-1a over a byte range, continuing from @p hash. */
uint64_t
fnv1a(uint64_t hash, const void *data, size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ULL;
    }
    return hash;
}

/** splitmix64 finalizer: diffuses low-entropy hash outputs. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

} // namespace

std::string
jobLabel(const JobKey &key)
{
    std::string label = key.mix + "/" + key.stage;
    if (key.repeat != 0)
        label += strfmt("#%u", key.repeat);
    return label;
}

uint64_t
deriveJobSeed(uint64_t masterSeed, const JobKey &key)
{
    uint64_t hash = 1469598103934665603ULL;
    // '\0' separators keep ("ab","c") and ("a","bc") distinct.
    hash = fnv1a(hash, key.mix.data(), key.mix.size() + 1);
    hash = fnv1a(hash, key.stage.data(), key.stage.size() + 1);
    hash = fnv1a(hash, &key.repeat, sizeof(key.repeat));
    return mix64(masterSeed ^ hash);
}

} // namespace dirigent::exec
