/**
 * @file
 * A fixed-size worker thread pool over a WorkQueue. Jobs may submit
 * further jobs (the sweep executor chains per-mix stages this way);
 * wait() blocks until every transitively submitted job has finished.
 * The first job exception cancels the queued backlog and is rethrown
 * from wait() — bailout in one shard stops the whole sweep.
 */

#ifndef DIRIGENT_EXEC_THREAD_POOL_H
#define DIRIGENT_EXEC_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/work_queue.h"

namespace dirigent::exec {

/** Fixed-size thread pool with nested submission and cancellation. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /**
     * Close the queue, finish the queued backlog (unless cancelled)
     * and join the workers. A pending job error that was never
     * collected via wait() is discarded.
     */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count. */
    unsigned threads() const { return unsigned(workers_.size()); }

    /**
     * Enqueue @p job. Safe from any thread, including pool workers.
     * Jobs submitted after cancel() or shutdown are dropped.
     */
    void submit(std::function<void()> job);

    /**
     * Block until all submitted jobs (including jobs they submitted)
     * have finished, then rethrow the first job exception, if any.
     */
    void wait();

    /**
     * Drop every queued (not yet started) job; running jobs finish.
     * Returns the number of jobs dropped.
     */
    size_t cancel();

    /** True once cancel() was called (or a job threw). */
    bool cancelled() const { return cancelled_.load(); }

  private:
    void workerLoop();
    void finishOne();

    WorkQueue<std::function<void()>> queue_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable idle_;
    size_t unfinished_ = 0; //!< submitted but not yet finished
    std::exception_ptr firstError_;
    std::atomic<bool> cancelled_{false};
};

} // namespace dirigent::exec

#endif // DIRIGENT_EXEC_THREAD_POOL_H
