/**
 * @file
 * Live progress for sharded sweeps: jobs done/running/queued, elapsed
 * wall time, an ETA extrapolated from completed jobs, and the last
 * finished job's wall time. Written to stderr so the stdout tables
 * stay byte-identical across thread counts.
 */

#ifndef DIRIGENT_EXEC_PROGRESS_H
#define DIRIGENT_EXEC_PROGRESS_H

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>

namespace dirigent::exec {

/** Thread-safe sweep progress reporter (one line per finished job). */
class ProgressReporter
{
  public:
    /**
     * @param totalJobs jobs expected over the sweep's lifetime.
     * @param enabled false silences all output (e.g. under tests).
     * @param os destination stream; defaults to std::cerr.
     */
    explicit ProgressReporter(size_t totalJobs, bool enabled = true,
                              std::ostream *os = nullptr);

    /** Record (and count) a job entering a worker. */
    void jobStarted(const std::string &label);

    /** Record a finished job and print the progress line. */
    void jobFinished(const std::string &label, double wallSeconds);

    /** Wall seconds since construction. */
    double elapsedSeconds() const;

    size_t done() const;
    size_t running() const;

  private:
    std::ostream *os_;
    bool enabled_;
    size_t total_;
    std::chrono::steady_clock::time_point start_;

    mutable std::mutex mutex_;
    size_t done_ = 0;
    size_t running_ = 0;
};

} // namespace dirigent::exec

#endif // DIRIGENT_EXEC_PROGRESS_H
