/**
 * @file
 * Machine-readable sweep export: one JSON object per finished job,
 * appended as a line (JSONL). Lines are written in completion order —
 * each record is self-describing (mix, stage, seed), so downstream
 * tooling must not rely on file order.
 */

#ifndef DIRIGENT_EXEC_JSONL_H
#define DIRIGENT_EXEC_JSONL_H

#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "cluster/accountant.h"
#include "harness/metrics.h"
#include "harness/serving.h"
#include "obs/manifest.h"

namespace dirigent::exec {

/** Escape @p text for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &text);

/**
 * Format @p value as a JSON number with @p decimals fractional digits
 * ("%g" style when @p decimals is negative). NaN and infinities are not
 * representable in JSON and render as null.
 */
std::string jsonNumber(double value, int decimals = 6);

/** Thread-safe JSONL appender for sweep results. */
class JsonlWriter
{
  public:
    /** Write to @p os (not owned; must outlive the writer). */
    explicit JsonlWriter(std::ostream &os);

    /**
     * Open @p path for appending; returns null (with a warning) when
     * the file cannot be opened.
     */
    static std::unique_ptr<JsonlWriter> open(const std::string &path);

    /**
     * Append one result record: identity (mix, stage, seed), the
     * paper's metrics, and the job's host wall time.
     */
    void write(const harness::SchemeRunResult &result,
               const std::string &stage, uint64_t seed,
               double wallSeconds);

    /**
     * Append one serving-run record: identity, offered rate,
     * request accounting, NaN-capable response-time quantiles (null
     * when nothing completed), and the SLO verdict.
     */
    void writeServing(const harness::ServingRunResult &result,
                      const std::string &stage, uint64_t seed,
                      double wallSeconds);

    /**
     * Append one cluster-cell fleet record. Cluster records carry no
     * wall time and no thread count: every field is a pure function of
     * (cluster spec, seed), which is what makes cluster JSONL exports
     * byte-identical at any executor thread count.
     */
    void writeClusterFleet(const cluster::FleetSummary &fleet,
                           const std::string &clusterName,
                           uint64_t seed);

    /** Append one per-node record of a cluster cell. */
    void writeClusterNode(const cluster::NodeResult &node,
                          const std::string &clusterName,
                          cluster::DispatchPolicy policy,
                          unsigned nodes, uint64_t seed);

    /**
     * Append one burn-rate verdict row of an instrumented cluster
     * cell (record "burn_rate"; like the other cluster rows it is a
     * pure function of the cell, never of the thread count).
     */
    void writeBurnRate(const obs::ManifestBurnRate &burn,
                       const std::string &clusterName,
                       cluster::DispatchPolicy policy, unsigned nodes);

  private:
    std::mutex mutex_;
    std::unique_ptr<std::ostream> owned_;
    std::ostream &os_;

    JsonlWriter(std::unique_ptr<std::ostream> owned);
};

/** DIRIGENT_JSONL environment override for the export path. */
std::string envJsonlPath(const std::string &fallback = "");

} // namespace dirigent::exec

#endif // DIRIGENT_EXEC_JSONL_H
