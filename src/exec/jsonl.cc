#include "exec/jsonl.h"

#include <cmath>
#include <cstdlib>
#include <fstream>

#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent::exec {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += char(c);
        }
    }
    return out;
}

std::string
jsonNumber(double value, int decimals)
{
    // JSON has no NaN/Infinity literals; "%f" would emit "nan"/"inf"
    // and corrupt the line, so emit null instead.
    if (!std::isfinite(value))
        return "null";
    if (decimals < 0)
        return strfmt("%g", value);
    return strfmt("%.*f", decimals, value);
}

JsonlWriter::JsonlWriter(std::ostream &os) : os_(os) {}

JsonlWriter::JsonlWriter(std::unique_ptr<std::ostream> owned)
    : owned_(std::move(owned)), os_(*owned_)
{
}

std::unique_ptr<JsonlWriter>
JsonlWriter::open(const std::string &path)
{
    auto file = std::make_unique<std::ofstream>(path, std::ios::app);
    if (!*file) {
        warn("cannot open JSONL export file '" + path + "'");
        return nullptr;
    }
    return std::unique_ptr<JsonlWriter>(
        new JsonlWriter(std::move(file)));
}

void
JsonlWriter::write(const harness::SchemeRunResult &result,
                   const std::string &stage, uint64_t seed,
                   double wallSeconds)
{
    // "scheme" is the assembled spec's name (enum name for builtin
    // runs); "spec_hash" is its canonical-text FNV-1a fingerprint as a
    // decimal string, matching the run manifest's scheme_spec_hash.
    std::string line = strfmt(
        "{\"mix\":\"%s\",\"stage\":\"%s\",\"scheme\":\"%s\","
        "\"spec_hash\":\"%llu\","
        "\"seed\":%llu,\"fg_success\":%s,\"on_time\":%llu,"
        "\"total\":%llu,\"fg_mean_s\":%s,\"fg_std_s\":%s,"
        "\"fg_mpki\":%s,\"bg_throughput\":%s,\"span_s\":%s,"
        "\"final_fg_ways\":%u,\"wall_s\":%s}\n",
        jsonEscape(result.mixName).c_str(), jsonEscape(stage).c_str(),
        jsonEscape(result.label()).c_str(),
        static_cast<unsigned long long>(result.specHash),
        static_cast<unsigned long long>(seed),
        jsonNumber(result.fgSuccessRatio()).c_str(),
        static_cast<unsigned long long>(result.onTime),
        static_cast<unsigned long long>(result.total),
        jsonNumber(result.fgDurationMean()).c_str(),
        jsonNumber(result.fgDurationStd()).c_str(),
        jsonNumber(result.fgMpki(), 4).c_str(),
        jsonNumber(result.bgThroughput(), -1).c_str(),
        jsonNumber(result.span.sec()).c_str(), result.finalFgWays,
        jsonNumber(wallSeconds, 3).c_str());

    std::lock_guard<std::mutex> lock(mutex_);
    os_ << line << std::flush;
}

std::string
envJsonlPath(const std::string &fallback)
{
    const char *env = std::getenv("DIRIGENT_JSONL");
    return env ? std::string(env) : fallback;
}

} // namespace dirigent::exec
