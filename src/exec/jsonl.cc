#include "exec/jsonl.h"

#include <cmath>
#include <cstdlib>
#include <fstream>

#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent::exec {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += char(c);
        }
    }
    return out;
}

std::string
jsonNumber(double value, int decimals)
{
    // JSON has no NaN/Infinity literals; "%f" would emit "nan"/"inf"
    // and corrupt the line, so emit null instead.
    if (!std::isfinite(value))
        return "null";
    if (decimals < 0)
        return strfmt("%g", value);
    return strfmt("%.*f", decimals, value);
}

JsonlWriter::JsonlWriter(std::ostream &os) : os_(os) {}

JsonlWriter::JsonlWriter(std::unique_ptr<std::ostream> owned)
    : owned_(std::move(owned)), os_(*owned_)
{
}

std::unique_ptr<JsonlWriter>
JsonlWriter::open(const std::string &path)
{
    auto file = std::make_unique<std::ofstream>(path, std::ios::app);
    if (!*file) {
        warn("cannot open JSONL export file '" + path + "'");
        return nullptr;
    }
    return std::unique_ptr<JsonlWriter>(
        new JsonlWriter(std::move(file)));
}

void
JsonlWriter::write(const harness::SchemeRunResult &result,
                   const std::string &stage, uint64_t seed,
                   double wallSeconds)
{
    // "scheme" is the assembled spec's name (enum name for builtin
    // runs); "spec_hash" is its canonical-text FNV-1a fingerprint as a
    // decimal string, matching the run manifest's scheme_spec_hash.
    // "predictor" appears only for runs with a runtime attached.
    std::string predictor =
        result.predictorName.empty()
            ? ""
            : strfmt("\"predictor\":\"%s\",",
                     jsonEscape(result.predictorName).c_str());
    std::string line = strfmt(
        "{\"mix\":\"%s\",\"stage\":\"%s\",\"scheme\":\"%s\","
        "\"spec_hash\":\"%llu\",%s"
        "\"seed\":%llu,\"fg_success\":%s,\"on_time\":%llu,"
        "\"total\":%llu,\"fg_mean_s\":%s,\"fg_std_s\":%s,"
        "\"fg_mpki\":%s,\"bg_throughput\":%s,\"span_s\":%s,"
        "\"final_fg_ways\":%u,\"wall_s\":%s}\n",
        jsonEscape(result.mixName).c_str(), jsonEscape(stage).c_str(),
        jsonEscape(result.label()).c_str(),
        static_cast<unsigned long long>(result.specHash),
        predictor.c_str(),
        static_cast<unsigned long long>(seed),
        jsonNumber(result.fgSuccessRatio()).c_str(),
        static_cast<unsigned long long>(result.onTime),
        static_cast<unsigned long long>(result.total),
        jsonNumber(result.fgDurationMean()).c_str(),
        jsonNumber(result.fgDurationStd()).c_str(),
        jsonNumber(result.fgMpki(), 4).c_str(),
        jsonNumber(result.bgThroughput(), -1).c_str(),
        jsonNumber(result.span.sec()).c_str(), result.finalFgWays,
        jsonNumber(wallSeconds, 3).c_str());

    std::lock_guard<std::mutex> lock(mutex_);
    os_ << line << std::flush;
}

void
JsonlWriter::writeServing(const harness::ServingRunResult &result,
                          const std::string &stage, uint64_t seed,
                          double wallSeconds)
{
    std::string predictor =
        result.predictorName.empty()
            ? ""
            : strfmt("\"predictor\":\"%s\",",
                     jsonEscape(result.predictorName).c_str());
    std::string line = strfmt(
        "{\"mix\":\"%s\",\"stage\":\"%s\",\"scheme\":\"%s\","
        "\"spec_hash\":\"%llu\",\"serve_hash\":\"%llu\",%s"
        "\"seed\":%llu,\"arrival_kind\":\"%s\",\"rate\":%s,"
        "\"arrivals\":%llu,\"completed\":%llu,\"dropped\":%llu,"
        "\"shed\":%llu,\"reject_rate\":%s,\"mean_s\":%s,"
        "\"p50_s\":%s,\"p95_s\":%s,\"p99_s\":%s,\"p999_s\":%s,"
        "\"slo_met\":%s,\"max_queue\":%zu,\"span_s\":%s,"
        "\"wall_s\":%s}\n",
        jsonEscape(result.mixName).c_str(), jsonEscape(stage).c_str(),
        jsonEscape(result.schemeLabel).c_str(),
        static_cast<unsigned long long>(result.specHash),
        static_cast<unsigned long long>(result.serveHash),
        predictor.c_str(),
        static_cast<unsigned long long>(seed),
        serve::arrivalKindName(result.arrivalKind),
        jsonNumber(result.offeredRate, -1).c_str(),
        static_cast<unsigned long long>(result.arrivals),
        static_cast<unsigned long long>(result.completed),
        static_cast<unsigned long long>(result.dropped),
        static_cast<unsigned long long>(result.shed),
        jsonNumber(result.rejectRate()).c_str(),
        jsonNumber(result.meanSec).c_str(),
        jsonNumber(result.p50Sec).c_str(),
        jsonNumber(result.p95Sec).c_str(),
        jsonNumber(result.p99Sec).c_str(),
        jsonNumber(result.p999Sec).c_str(),
        result.sloMet() ? "true" : "false", result.maxQueueDepth,
        jsonNumber(result.span.sec()).c_str(),
        jsonNumber(wallSeconds, 3).c_str());

    std::lock_guard<std::mutex> lock(mutex_);
    os_ << line << std::flush;
}

void
JsonlWriter::writeClusterFleet(const cluster::FleetSummary &fleet,
                               const std::string &clusterName,
                               uint64_t seed)
{
    // No wall_s, no thread count: cluster rows are byte-identical at
    // any executor thread count.
    std::string line = strfmt(
        "{\"record\":\"fleet\",\"cluster\":\"%s\",\"policy\":\"%s\","
        "\"nodes\":%u,\"seed\":%llu,\"generated\":%llu,"
        "\"arrivals\":%llu,\"completed\":%llu,\"dropped\":%llu,"
        "\"shed\":%llu,\"reject_rate\":%s,\"mean_s\":%s,"
        "\"p50_s\":%s,\"p95_s\":%s,\"p99_s\":%s,\"p999_s\":%s,"
        "\"slo_met\":%s,\"degraded\":%s,\"util_mean\":%s,"
        "\"util_min\":%s,\"util_max\":%s,\"imbalance\":%s,"
        "\"max_queue\":%zu}\n",
        jsonEscape(clusterName).c_str(),
        cluster::dispatchPolicyName(fleet.policy), fleet.nodes,
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(fleet.generated),
        static_cast<unsigned long long>(fleet.arrivals),
        static_cast<unsigned long long>(fleet.completed),
        static_cast<unsigned long long>(fleet.dropped),
        static_cast<unsigned long long>(fleet.shed),
        jsonNumber(fleet.rejectRate()).c_str(),
        jsonNumber(fleet.meanSec).c_str(),
        jsonNumber(fleet.p50Sec).c_str(),
        jsonNumber(fleet.p95Sec).c_str(),
        jsonNumber(fleet.p99Sec).c_str(),
        jsonNumber(fleet.p999Sec).c_str(),
        fleet.sloMet() ? "true" : "false",
        fleet.degraded ? "true" : "false",
        jsonNumber(fleet.utilizationMean).c_str(),
        jsonNumber(fleet.utilizationMin).c_str(),
        jsonNumber(fleet.utilizationMax).c_str(),
        jsonNumber(fleet.imbalance).c_str(), fleet.maxQueueDepth);

    std::lock_guard<std::mutex> lock(mutex_);
    os_ << line << std::flush;
}

void
JsonlWriter::writeClusterNode(const cluster::NodeResult &node,
                              const std::string &clusterName,
                              cluster::DispatchPolicy policy,
                              unsigned nodes, uint64_t seed)
{
    const harness::ServingRunResult &run = node.serving;
    std::string line = strfmt(
        "{\"record\":\"node\",\"cluster\":\"%s\",\"policy\":\"%s\","
        "\"nodes\":%u,\"node\":%u,\"mix\":\"%s\",\"scheme\":\"%s\","
        "\"speed\":%s,\"seed\":%llu,\"arrivals\":%llu,"
        "\"completed\":%llu,\"dropped\":%llu,\"shed\":%llu,"
        "\"mean_s\":%s,\"p99_s\":%s,\"utilization\":%s,"
        "\"max_queue\":%zu,\"degraded\":%s}\n",
        jsonEscape(clusterName).c_str(),
        cluster::dispatchPolicyName(policy), nodes, node.index,
        jsonEscape(node.mixLabel).c_str(),
        jsonEscape(node.schemeName).c_str(),
        jsonNumber(node.speed, -1).c_str(),
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(run.arrivals),
        static_cast<unsigned long long>(run.completed),
        static_cast<unsigned long long>(run.dropped),
        static_cast<unsigned long long>(run.shed),
        jsonNumber(run.meanSec).c_str(),
        jsonNumber(run.p99Sec).c_str(),
        jsonNumber(node.health.utilization).c_str(),
        run.maxQueueDepth,
        node.health.degraded ? "true" : "false");

    std::lock_guard<std::mutex> lock(mutex_);
    os_ << line << std::flush;
}

void
JsonlWriter::writeBurnRate(const obs::ManifestBurnRate &burn,
                           const std::string &clusterName,
                           cluster::DispatchPolicy policy,
                           unsigned nodes)
{
    std::string line = strfmt(
        "{\"record\":\"burn_rate\",\"cluster\":\"%s\","
        "\"policy\":\"%s\",\"nodes\":%u,\"scope\":\"%s\","
        "\"slo\":\"%s\",\"target_s\":%s,\"budget\":%s,"
        "\"windows\":%llu,\"errors\":%llu,\"total\":%llu,"
        "\"max_burn\":%s,\"mean_burn\":%s,\"exhausted\":%s}\n",
        jsonEscape(clusterName).c_str(),
        cluster::dispatchPolicyName(policy), nodes,
        jsonEscape(burn.scope).c_str(),
        jsonEscape(burn.label).c_str(),
        jsonNumber(burn.targetSec, -1).c_str(),
        jsonNumber(burn.budget, -1).c_str(),
        static_cast<unsigned long long>(burn.windows),
        static_cast<unsigned long long>(burn.errors),
        static_cast<unsigned long long>(burn.total),
        jsonNumber(burn.maxBurn, -1).c_str(),
        jsonNumber(burn.meanBurn, -1).c_str(),
        burn.exhausted ? "true" : "false");

    std::lock_guard<std::mutex> lock(mutex_);
    os_ << line << std::flush;
}

std::string
envJsonlPath(const std::string &fallback)
{
    const char *env = std::getenv("DIRIGENT_JSONL");
    return env ? std::string(env) : fallback;
}

} // namespace dirigent::exec
