#include "mem/bwguard.h"

#include <algorithm>
#include <limits>

#include "common/log.h"

namespace dirigent::mem {

BwGuard::BwGuard(unsigned cores, Time period)
    : period_(period), budgets_(cores, 0.0), usedInWindow_(cores, 0.0),
      exhausted_(cores, false), exhaustions_(cores, 0)
{
    DIRIGENT_ASSERT(cores > 0, "bandwidth guard needs cores");
    DIRIGENT_ASSERT(period.sec() > 0.0, "regulation period must be > 0");
}

void
BwGuard::setBudget(unsigned core, double bytesPerSec)
{
    DIRIGENT_ASSERT(core < cores(), "bad core %u", core);
    DIRIGENT_ASSERT(bytesPerSec >= 0.0, "budget must be non-negative");
    if (budgets_[core] == bytesPerSec)
        return;
    budgets_[core] = bytesPerSec;
    // A budget change starts a fresh accounting window for this core:
    // bytes charged under the old budget don't count against the new
    // one (a shrunk budget would otherwise report the core over-budget
    // through no fault of its own).
    usedInWindow_[core] = 0.0;
    exhausted_[core] = false;
}

double
BwGuard::budget(unsigned core) const
{
    DIRIGENT_ASSERT(core < cores(), "bad core %u", core);
    return budgets_[core];
}

void
BwGuard::clearBudgets()
{
    std::fill(budgets_.begin(), budgets_.end(), 0.0);
    std::fill(exhausted_.begin(), exhausted_.end(), false);
}

bool
BwGuard::allow(unsigned core) const
{
    DIRIGENT_ASSERT(core < cores(), "bad core %u", core);
    return budgets_[core] == 0.0 || !exhausted_[core];
}

double
BwGuard::remainingBytes(unsigned core) const
{
    DIRIGENT_ASSERT(core < cores(), "bad core %u", core);
    if (budgets_[core] == 0.0)
        return std::numeric_limits<double>::infinity();
    double windowBudget = budgets_[core] * period_.sec();
    return std::max(0.0, windowBudget - usedInWindow_[core]);
}

void
BwGuard::charge(unsigned core, Bytes bytes)
{
    DIRIGENT_ASSERT(core < cores(), "bad core %u", core);
    DIRIGENT_ASSERT(bytes >= 0.0, "negative charge");
    if (budgets_[core] == 0.0)
        return;
    usedInWindow_[core] += bytes;
    double windowBudget = budgets_[core] * period_.sec();
    if (!exhausted_[core] && usedInWindow_[core] >= windowBudget) {
        exhausted_[core] = true;
        exhaustions_[core] += 1;
    }
}

double
BwGuard::usedInWindow(unsigned core) const
{
    DIRIGENT_ASSERT(core < cores(), "bad core %u", core);
    return usedInWindow_[core];
}

void
BwGuard::tick(Time now)
{
    while (now - windowStart_ >= period_) {
        windowStart_ += period_;
        std::fill(usedInWindow_.begin(), usedInWindow_.end(), 0.0);
        std::fill(exhausted_.begin(), exhausted_.end(), false);
    }
}

uint64_t
BwGuard::exhaustions(unsigned core) const
{
    DIRIGENT_ASSERT(core < cores(), "bad core %u", core);
    return exhaustions_[core];
}

} // namespace dirigent::mem
