#include "mem/dram.h"

#include <algorithm>

#include "common/log.h"

namespace dirigent::mem {

DramModel::DramModel(const DramConfig &config)
    : config_(config), latency_(config.baseLatency)
{
    DIRIGENT_ASSERT(config.peakBandwidth > 0.0, "peak bandwidth must be > 0");
    DIRIGENT_ASSERT(config.baseLatency.sec() > 0.0, "base latency must be > 0");
    DIRIGENT_ASSERT(config.maxUtilization > 0.0 && config.maxUtilization < 1.0,
                    "utilization cap must be in (0, 1)");
    DIRIGENT_ASSERT(config.smoothing > 0.0 && config.smoothing <= 1.0,
                    "smoothing weight must be in (0, 1]");
}

void
DramModel::recordDemand(Bytes bytes)
{
    DIRIGENT_ASSERT(bytes >= 0.0, "negative memory demand");
    quantumDemand_ += bytes;
    totalBytes_ += bytes;
}

void
DramModel::update(Time dt)
{
    DIRIGENT_ASSERT(dt.sec() > 0.0, "quantum must be > 0");
    double instUtil =
        std::min(quantumDemand_ / (config_.peakBandwidth * dt.sec()),
                 config_.maxUtilization);
    quantumDemand_ = 0.0;

    double w = config_.smoothing;
    utilization_ = w * instUtil + (1.0 - w) * utilization_;

    double rho = std::min(utilization_, config_.maxUtilization);
    double queueing = config_.queueFactor * rho / (1.0 - rho);
    double factor = std::min(1.0 + queueing, config_.maxLatencyFactor);
    latency_ = config_.baseLatency * factor;
}

} // namespace dirigent::mem
