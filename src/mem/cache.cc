#include "mem/cache.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace dirigent::mem {

WayMask
wayRange(unsigned lo, unsigned hi)
{
    DIRIGENT_ASSERT(lo < hi && hi <= 32, "bad way range [%u, %u)", lo, hi);
    WayMask mask = 0;
    for (unsigned w = lo; w < hi; ++w)
        mask |= (WayMask(1) << w);
    return mask;
}

unsigned
wayCount(WayMask mask)
{
    return unsigned(__builtin_popcount(mask));
}

SharedCache::SharedCache(const CacheConfig &config, unsigned clients)
    : config_(config),
      clientWays_(clients, wayRange(0, config.numWays)),
      occ_(size_t(clients) * config.numWays, 0.0),
      pendingFill_(clients, 0.0),
      slotTotal_(clients, 0.0),
      hitMemo_(clients),
      perWayFill_(clients, 0.0)
{
    DIRIGENT_ASSERT(config.numWays >= 1 && config.numWays <= 32,
                    "cache must have 1..32 ways, got %u", config.numWays);
    DIRIGENT_ASSERT(config.bytesPerWay > 0.0, "way capacity must be > 0");
    DIRIGENT_ASSERT(clients > 0, "cache needs at least one client slot");
    active_.reserve(clients);
}

void
SharedCache::setWayMask(unsigned slot, WayMask mask)
{
    DIRIGENT_ASSERT(slot < clients(), "bad client slot %u", slot);
    DIRIGENT_ASSERT(mask != 0, "way mask must allow at least one way");
    DIRIGENT_ASSERT((mask >> config_.numWays) == 0,
                    "way mask 0x%x exceeds %u ways", mask, config_.numWays);
    clientWays_[slot] = mask;
}

WayMask
SharedCache::wayMask(unsigned slot) const
{
    DIRIGENT_ASSERT(slot < clients(), "bad client slot %u", slot);
    return clientWays_[slot];
}

Bytes
SharedCache::occupancy(unsigned slot) const
{
    DIRIGENT_ASSERT(slot < clients(), "bad client slot %u", slot);
    return slotTotal_[slot];
}

double
SharedCache::hitRatio(unsigned slot, const workload::Phase &phase) const
{
    DIRIGENT_ASSERT(slot < clients(), "bad client slot %u", slot);
    const Bytes occ = slotTotal_[slot];
    HitMemo &memo = hitMemo_[slot];
    if (memo.occ == occ && memo.workingSet == phase.workingSet &&
        memo.locality == phase.locality &&
        memo.maxHitRatio == phase.maxHitRatio) {
        return memo.hit;
    }
    memo.occ = occ;
    memo.workingSet = phase.workingSet;
    memo.locality = phase.locality;
    memo.maxHitRatio = phase.maxHitRatio;
    memo.hit = phase.hitRatio(occ);
    return memo.hit;
}

double
SharedCache::access(unsigned slot, const workload::Phase &phase,
                    double accesses)
{
    DIRIGENT_ASSERT(accesses >= 0.0, "negative access count");
    double misses = accesses * (1.0 - hitRatio(slot, phase));
    double fill = misses * config_.lineSize;
    // Adding an exact 0.0 leaves pendingFill_ bit-identical, so only a
    // real fill needs the store (and marks the cache non-quiescent).
    if (fill > 0.0) {
        pendingFill_[slot] += fill;
        fillPending_ = true;
    }
    return misses;
}

void
SharedCache::commit(const std::vector<Bytes> &workingSetCap)
{
    DIRIGENT_ASSERT(workingSetCap.size() == clients(),
                    "working-set cap vector size %zu != %u clients",
                    workingSetCap.size(), clients());

    const unsigned ways = config_.numWays;
    const unsigned n = clients();

    // Provably empty and fill-free: nothing below could change state.
    if (!fillPending_ && !anyResident_)
        return;

    // Slots with neither resident data nor queued fill contribute an
    // exact 0.0 everywhere below (x + 0.0 == x, 0.0 * scale == 0.0),
    // so skipping them leaves every sum and branch bit-identical.
    active_.clear();
    bool anyFill = false;
    for (unsigned s = 0; s < n; ++s) {
        perWayFill_[s] = 0.0;
        if (pendingFill_[s] > 0.0) {
            perWayFill_[s] =
                pendingFill_[s] / double(wayCount(clientWays_[s]));
            pendingFill_[s] = 0.0;
            anyFill = true;
        }
        if (slotTotal_[s] > 0.0 || perWayFill_[s] > 0.0)
            active_.push_back(s);
    }
    fillPending_ = false; // every queued fill was claimed above
    anyResident_ = !active_.empty();
    if (active_.empty())
        return;

    // Distribute each client's queued fill uniformly across its allowed
    // ways. Fills to a full way displace residents proportionally to
    // their share (random replacement flow model), which is the step
    // that transfers capacity between clients at fill speed. With no
    // queued fill anywhere the loop would add exact zeros and rebuild
    // the same totals, so it is skipped outright (ways never sit above
    // capacity between commits); only the working-set cap below can
    // still shrink a slot.
    const Bytes bytesPerWay = config_.bytesPerWay;
    if (anyFill && active_.size() == 1) {
        // One client with data: each way reduces to scalar arithmetic
        // on that client's lane (identical expressions, loops of one).
        const unsigned s = active_[0];
        const WayMask mask = clientWays_[s];
        const Bytes fill = perWayFill_[s];
        Bytes newTotal = 0.0;
        for (unsigned w = 0; w < ways; ++w) {
            Bytes &v = occ_[size_t(w) * n + s];
            Bytes total = v + (((mask >> w) & 1u) != 0 ? fill : 0.0);
            if (total > bytesPerWay) {
                double scale = bytesPerWay / total;
                total = total * scale;
            }
            v = total;
            newTotal += v;
        }
        slotTotal_[s] = newTotal;
    } else if (anyFill) {
        for (unsigned s : active_)
            slotTotal_[s] = 0.0; // rebuilt while committing each way
        for (unsigned w = 0; w < ways; ++w) {
            Bytes *row = &occ_[size_t(w) * n];
            const WayMask bit = WayMask(1) << w;
            Bytes total = 0.0;
            for (unsigned s : active_)
                total += row[s] +
                         ((clientWays_[s] & bit) != 0 ? perWayFill_[s] : 0.0);
            if (total <= bytesPerWay) {
                for (unsigned s : active_)
                    if ((clientWays_[s] & bit) != 0)
                        row[s] += perWayFill_[s];
            } else {
                double scale = bytesPerWay / total;
                for (unsigned s : active_) {
                    row[s] =
                        (row[s] +
                         ((clientWays_[s] & bit) != 0 ? perWayFill_[s]
                                                      : 0.0)) *
                        scale;
                }
            }
            // Ways ascend in this loop, so each slot's total accumulates
            // in the exact order a fresh occupancy() sum would use.
            for (unsigned s : active_)
                slotTotal_[s] += row[s];
        }
    }

    // A task cannot usefully cache more than its working set; re-fetches
    // of its own data displace its own older lines. Cap and rescale.
    for (unsigned s : active_) {
        Bytes cap = workingSetCap[s];
        if (cap <= 0.0)
            continue;
        Bytes total = slotTotal_[s];
        if (total > cap) {
            double scale = cap / total;
            Bytes rescaled = 0.0;
            for (unsigned w = 0; w < ways; ++w) {
                Bytes &v = occ_[size_t(w) * n + s];
                v *= scale;
                rescaled += v;
            }
            slotTotal_[s] = rescaled;
        }
    }
}

void
SharedCache::flush(unsigned slot)
{
    DIRIGENT_ASSERT(slot < clients(), "bad client slot %u", slot);
    for (unsigned w = 0; w < config_.numWays; ++w)
        occAt(slot, w) = 0.0;
    pendingFill_[slot] = 0.0;
    slotTotal_[slot] = 0.0;
}

Bytes
SharedCache::occupancyInWay(unsigned slot, unsigned way) const
{
    DIRIGENT_ASSERT(slot < clients() && way < config_.numWays,
                    "bad slot/way %u/%u", slot, way);
    return occAt(slot, way);
}

Bytes
SharedCache::wayOccupancy(unsigned way) const
{
    DIRIGENT_ASSERT(way < config_.numWays, "bad way %u", way);
    Bytes total = 0.0;
    for (unsigned s = 0; s < clients(); ++s)
        total += occAt(s, way);
    return total;
}

Bytes &
SharedCache::occAt(unsigned slot, unsigned way)
{
    return occ_[size_t(way) * clients() + slot];
}

Bytes
SharedCache::occAt(unsigned slot, unsigned way) const
{
    return occ_[size_t(way) * clients() + slot];
}

} // namespace dirigent::mem
