#include "mem/cache.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace dirigent::mem {

WayMask
wayRange(unsigned lo, unsigned hi)
{
    DIRIGENT_ASSERT(lo < hi && hi <= 32, "bad way range [%u, %u)", lo, hi);
    WayMask mask = 0;
    for (unsigned w = lo; w < hi; ++w)
        mask |= (WayMask(1) << w);
    return mask;
}

unsigned
wayCount(WayMask mask)
{
    return unsigned(__builtin_popcount(mask));
}

SharedCache::SharedCache(const CacheConfig &config, unsigned clients)
    : config_(config),
      clientWays_(clients, wayRange(0, config.numWays)),
      occ_(size_t(clients) * config.numWays, 0.0),
      pendingFill_(clients, 0.0)
{
    DIRIGENT_ASSERT(config.numWays >= 1 && config.numWays <= 32,
                    "cache must have 1..32 ways, got %u", config.numWays);
    DIRIGENT_ASSERT(config.bytesPerWay > 0.0, "way capacity must be > 0");
    DIRIGENT_ASSERT(clients > 0, "cache needs at least one client slot");
}

void
SharedCache::setWayMask(unsigned slot, WayMask mask)
{
    DIRIGENT_ASSERT(slot < clients(), "bad client slot %u", slot);
    DIRIGENT_ASSERT(mask != 0, "way mask must allow at least one way");
    DIRIGENT_ASSERT((mask >> config_.numWays) == 0,
                    "way mask 0x%x exceeds %u ways", mask, config_.numWays);
    clientWays_[slot] = mask;
}

WayMask
SharedCache::wayMask(unsigned slot) const
{
    DIRIGENT_ASSERT(slot < clients(), "bad client slot %u", slot);
    return clientWays_[slot];
}

Bytes
SharedCache::occupancy(unsigned slot) const
{
    DIRIGENT_ASSERT(slot < clients(), "bad client slot %u", slot);
    Bytes total = 0.0;
    for (unsigned w = 0; w < config_.numWays; ++w)
        total += occAt(slot, w);
    return total;
}

double
SharedCache::hitRatio(unsigned slot, const workload::Phase &phase) const
{
    return phase.hitRatio(occupancy(slot));
}

double
SharedCache::access(unsigned slot, const workload::Phase &phase,
                    double accesses)
{
    DIRIGENT_ASSERT(accesses >= 0.0, "negative access count");
    double misses = accesses * (1.0 - hitRatio(slot, phase));
    pendingFill_[slot] += misses * config_.lineSize;
    return misses;
}

void
SharedCache::commit(const std::vector<Bytes> &workingSetCap)
{
    DIRIGENT_ASSERT(workingSetCap.size() == clients(),
                    "working-set cap vector size %zu != %u clients",
                    workingSetCap.size(), clients());

    const unsigned ways = config_.numWays;
    const unsigned n = clients();

    // Distribute each client's queued fill uniformly across its allowed
    // ways. Fills to a full way displace residents proportionally to
    // their share (random replacement flow model), which is the step
    // that transfers capacity between clients at fill speed.
    std::vector<Bytes> fillIn(size_t(n) * ways, 0.0);
    for (unsigned s = 0; s < n; ++s) {
        if (pendingFill_[s] <= 0.0)
            continue;
        WayMask mask = clientWays_[s];
        unsigned allowed = wayCount(mask);
        Bytes perWay = pendingFill_[s] / double(allowed);
        for (unsigned w = 0; w < ways; ++w)
            if (mask & (WayMask(1) << w))
                fillIn[size_t(s) * ways + w] = perWay;
        pendingFill_[s] = 0.0;
    }

    for (unsigned w = 0; w < ways; ++w) {
        Bytes total = 0.0;
        for (unsigned s = 0; s < n; ++s)
            total += occAt(s, w) + fillIn[size_t(s) * ways + w];
        if (total <= config_.bytesPerWay) {
            for (unsigned s = 0; s < n; ++s)
                occAt(s, w) += fillIn[size_t(s) * ways + w];
        } else {
            double scale = config_.bytesPerWay / total;
            for (unsigned s = 0; s < n; ++s) {
                occAt(s, w) =
                    (occAt(s, w) + fillIn[size_t(s) * ways + w]) * scale;
            }
        }
    }

    // A task cannot usefully cache more than its working set; re-fetches
    // of its own data displace its own older lines. Cap and rescale.
    for (unsigned s = 0; s < n; ++s) {
        Bytes cap = workingSetCap[s];
        if (cap <= 0.0)
            continue;
        Bytes total = occupancy(s);
        if (total > cap) {
            double scale = cap / total;
            for (unsigned w = 0; w < ways; ++w)
                occAt(s, w) *= scale;
        }
    }
}

void
SharedCache::flush(unsigned slot)
{
    DIRIGENT_ASSERT(slot < clients(), "bad client slot %u", slot);
    for (unsigned w = 0; w < config_.numWays; ++w)
        occAt(slot, w) = 0.0;
    pendingFill_[slot] = 0.0;
}

Bytes
SharedCache::occupancyInWay(unsigned slot, unsigned way) const
{
    DIRIGENT_ASSERT(slot < clients() && way < config_.numWays,
                    "bad slot/way %u/%u", slot, way);
    return occAt(slot, way);
}

Bytes
SharedCache::wayOccupancy(unsigned way) const
{
    DIRIGENT_ASSERT(way < config_.numWays, "bad way %u", way);
    Bytes total = 0.0;
    for (unsigned s = 0; s < clients(); ++s)
        total += occAt(s, way);
    return total;
}

Bytes &
SharedCache::occAt(unsigned slot, unsigned way)
{
    return occ_[size_t(slot) * config_.numWays + way];
}

Bytes
SharedCache::occAt(unsigned slot, unsigned way) const
{
    return occ_[size_t(slot) * config_.numWays + way];
}

} // namespace dirigent::mem
