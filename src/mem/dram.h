/**
 * @file
 * Shared memory-system contention model.
 *
 * Off-chip memory is modelled as a shared service with an effective peak
 * bandwidth for LLC-miss traffic and a base (unloaded) latency. As
 * aggregate miss bandwidth approaches the peak, the effective per-miss
 * latency rises with an M/M/1-style queueing term. The latency observed
 * by cores lags demand by one quantum (with smoothing), which matches
 * how queueing builds physically and keeps the model stable.
 */

#ifndef DIRIGENT_MEM_DRAM_H
#define DIRIGENT_MEM_DRAM_H

#include "common/units.h"

namespace dirigent::mem {

/** DRAM model parameters. */
struct DramConfig
{
    /**
     * Effective peak bandwidth for random 64 B miss traffic. Far below
     * the pin bandwidth of 4×DDR4-2133 (~68 GB/s), as row misses and
     * scheduling overheads dominate for LLC-miss streams.
     */
    double peakBandwidth = 8.5e9; // bytes/second

    /** Unloaded LLC-miss latency. */
    Time baseLatency = Time::ns(80.0);

    /** Strength of the queueing-delay term. */
    double queueFactor = 1.2;

    /** Utilization cap; keeps the queueing term finite. */
    double maxUtilization = 0.96;

    /**
     * Upper bound on the latency amplification (effective/base).
     * Finite buffering (MSHRs, queues) bounds queueing delay on real
     * parts; without this cap the saturated regime becomes chaotic.
     */
    double maxLatencyFactor = 8.0;

    /** EMA weight for new-quantum latency (damps oscillation). */
    double smoothing = 0.5;
};

/**
 * The shared memory system.
 */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config);

    /** Parameters. */
    const DramConfig &config() const { return config_; }

    /** Effective per-miss latency cores see this quantum. */
    Time latency() const { return latency_; }

    /** Smoothed utilization in [0, maxUtilization]. */
    double utilization() const { return utilization_; }

    /** Record miss traffic (bytes) issued during the current quantum. */
    void recordDemand(Bytes bytes);

    /**
     * Close the quantum of length @p dt: fold recorded demand into the
     * utilization estimate and update the effective latency.
     */
    void update(Time dt);

    /** Total bytes transferred since construction. */
    Bytes totalBytes() const { return totalBytes_; }

  private:
    DramConfig config_;
    Bytes quantumDemand_ = 0.0;
    double utilization_ = 0.0;
    Time latency_;
    Bytes totalBytes_ = 0.0;
};

} // namespace dirigent::mem

#endif // DIRIGENT_MEM_DRAM_H
