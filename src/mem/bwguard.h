/**
 * @file
 * Per-core memory-bandwidth regulation, modelled on MemGuard (Yun et
 * al., RTAS'13), which the paper discusses (§3.2) as an alternative QoS
 * mechanism to DVFS throttling and cache partitioning.
 *
 * Each core receives a miss-bandwidth budget per regulation period;
 * once a core exhausts its budget it stalls until the period rolls
 * over. Budgets of zero mean unregulated. The machine charges each
 * core's LLC-miss traffic against its budget and rolls the window as
 * simulated time advances.
 */

#ifndef DIRIGENT_MEM_BWGUARD_H
#define DIRIGENT_MEM_BWGUARD_H

#include <vector>

#include "common/units.h"

namespace dirigent::mem {

/**
 * MemGuard-style per-core bandwidth budgets.
 */
class BwGuard
{
  public:
    /**
     * @param cores number of regulated cores.
     * @param period regulation window (MemGuard uses 1 ms).
     */
    explicit BwGuard(unsigned cores, Time period = Time::ms(1.0));

    /** Number of regulated cores. */
    unsigned cores() const { return unsigned(budgets_.size()); }

    /** Regulation period. */
    Time period() const { return period_; }

    /**
     * Set @p core's budget in bytes/second of miss traffic; 0 disables
     * regulation for the core.
     */
    void setBudget(unsigned core, double bytesPerSec);

    /** Budget of @p core (bytes/second; 0 = unregulated). */
    double budget(unsigned core) const;

    /** Remove all budgets. */
    void clearBudgets();

    /** True when @p core may issue miss traffic right now. */
    bool allow(unsigned core) const;

    /**
     * Bytes left in @p core's current window; +infinity when the core
     * is unregulated. Cores bound their execution by this so budget
     * overshoot stays within one transaction, as with MemGuard's
     * counter-overflow interrupts.
     */
    double remainingBytes(unsigned core) const;

    /** Charge @p bytes of miss traffic against @p core's window. */
    void charge(unsigned core, Bytes bytes);

    /**
     * Bytes already charged against @p core in the current window
     * (unclamped — the invariant checker compares this against the
     * window budget to bound overshoot).
     */
    double usedInWindow(unsigned core) const;

    /**
     * Advance the regulation clock to @p now; rolls the window (and
     * refills every budget) each time a period boundary passes.
     */
    void tick(Time now);

    /** Cumulative window-exhaustion events per core (for reporting). */
    uint64_t exhaustions(unsigned core) const;

  private:
    Time period_;
    Time windowStart_;
    std::vector<double> budgets_;     // bytes/second; 0 = unregulated
    std::vector<double> usedInWindow_; // bytes charged this window
    std::vector<bool> exhausted_;
    std::vector<uint64_t> exhaustions_;
};

} // namespace dirigent::mem

#endif // DIRIGENT_MEM_BWGUARD_H
