/**
 * @file
 * Shared last-level cache model with way partitioning and cache inertia.
 *
 * The model tracks, per client task and per way, the bytes of that
 * client's data resident in the way. A client's hit ratio is a concave
 * function of its total resident bytes (supplied by the workload phase).
 * Each simulation quantum, clients inject fill traffic (their misses)
 * into the ways their CLOS way mask allows; ways over capacity evict
 * proportionally to each resident client's share — a random-replacement
 * flow model. Because occupancy only migrates at the speed of fill
 * traffic, repartitioning takes many milliseconds to change miss rates:
 * exactly the "cache inertia" effect the paper cites as the reason cache
 * partitioning is only useful at coarse time scales.
 */

#ifndef DIRIGENT_MEM_CACHE_H
#define DIRIGENT_MEM_CACHE_H

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "workload/phase.h"

namespace dirigent::mem {

/** A CLOS-style way mask; bit i set = way i usable for allocation. */
using WayMask = uint32_t;

/** A way mask with ways [lo, hi) set. */
WayMask wayRange(unsigned lo, unsigned hi);

/** Number of set bits in a mask. */
unsigned wayCount(WayMask mask);

/**
 * Configuration of the shared cache.
 */
struct CacheConfig
{
    unsigned numWays = 20;           //!< associativity / partition grain
    Bytes bytesPerWay = 0.75_MiB;    //!< 15 MiB LLC / 20 ways
    Bytes lineSize = 64.0;           //!< fill granularity

    Bytes capacity() const { return double(numWays) * bytesPerWay; }
};

/**
 * The shared LLC. Clients are dense integer slots assigned by the
 * machine (one per hardware context / process).
 */
class SharedCache
{
  public:
    /**
     * @param config geometry.
     * @param clients number of client slots.
     */
    SharedCache(const CacheConfig &config, unsigned clients);

    /** Geometry. */
    const CacheConfig &config() const { return config_; }

    /** Number of client slots. */
    unsigned clients() const { return unsigned(clientWays_.size()); }

    /**
     * Set the ways client @p slot may allocate into. Resident data in
     * disallowed ways is *not* flushed — it decays under the new
     * owners' fill pressure, which is what produces inertia on
     * repartitioning.
     */
    void setWayMask(unsigned slot, WayMask mask);

    /** Current allocation mask of @p slot. */
    WayMask wayMask(unsigned slot) const;

    /** Total resident bytes of client @p slot (across all ways). */
    Bytes occupancy(unsigned slot) const;

    /** Hit ratio @p slot currently sees for accesses of @p phase. */
    double hitRatio(unsigned slot, const workload::Phase &phase) const;

    /**
     * Record @p accesses LLC accesses by @p slot during the current
     * quantum, executing @p phase. Returns the number of misses and
     * queues the corresponding fill traffic for commit().
     */
    double access(unsigned slot, const workload::Phase &phase,
                  double accesses);

    /**
     * Apply one quantum's queued fill traffic: distribute fills over
     * allowed ways, evict over-capacity ways proportionally, and cap
     * every client at its phase working set (@p workingSet per slot;
     * pass 0 for inactive slots).
     */
    void commit(const std::vector<Bytes> &workingSetCap);

    /**
     * True when the cache provably holds no resident bytes and no
     * queued fill: commit() would be a no-op for any cap vector, so
     * callers may skip it (and the work of building the caps). May
     * conservatively return false after a flush() until the next
     * commit() rescans.
     */
    bool quiescent() const { return !fillPending_ && !anyResident_; }

    /**
     * Drop all resident data of @p slot (process exit / replacement by
     * a different program on that core).
     */
    void flush(unsigned slot);

    /** Resident bytes of @p slot in way @p way (for tests). */
    Bytes occupancyInWay(unsigned slot, unsigned way) const;

    /** Total resident bytes in way @p way across clients. */
    Bytes wayOccupancy(unsigned way) const;

  private:
    CacheConfig config_;
    std::vector<WayMask> clientWays_;
    /**
     * Resident bytes, way-major (occ_[way * clients + slot]): commit()
     * walks slots within a way, so its inner loops are contiguous.
     * All mutation funnels through commit()/flush(), which keep
     * slotTotal_ equal to the ascending-way sum a fresh occupancy()
     * pass would produce — bit-identical, since the accumulation order
     * is the same.
     */
    std::vector<Bytes> occ_;
    std::vector<Bytes> pendingFill_;
    std::vector<Bytes> slotTotal_; //!< memoized occupancy(slot)

    /**
     * Last hitRatio() evaluation per slot, keyed by every input of
     * Phase::hitRatio. Purely functional memoization: equal inputs,
     * equal (deterministic) output, so no invalidation hooks — the
     * occupancy key changes exactly when commit()/flush() move bytes.
     * The second hitRatio() evaluation each core quantum performs
     * (inside access()) hits this instead of recomputing the exp().
     */
    struct HitMemo
    {
        Bytes occ = -1.0; //!< negative: never matches a real occupancy
        double workingSet = -1.0;
        double locality = -1.0;
        double maxHitRatio = -1.0;
        double hit = 0.0;
    };
    mutable std::vector<HitMemo> hitMemo_;

    std::vector<Bytes> perWayFill_;  //!< commit scratch: fill per allowed way
    std::vector<unsigned> active_;   //!< commit scratch: slots with data/fill

    /**
     * Quiescence tracking for quiescent(). fillPending_ is set by any
     * access() that queues a nonzero fill; anyResident_ is maintained
     * by commit() (conservatively left set by flush()). Both false
     * means commit() would change nothing.
     */
    bool fillPending_ = false;
    bool anyResident_ = false;

    Bytes &occAt(unsigned slot, unsigned way);
    Bytes occAt(unsigned slot, unsigned way) const;
};

} // namespace dirigent::mem

#endif // DIRIGENT_MEM_CACHE_H
