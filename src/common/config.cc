#include "common/config.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent {

namespace {

std::string
trim(const std::string &text)
{
    size_t begin = text.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    size_t end = text.find_last_not_of(" \t\r");
    return text.substr(begin, end - begin + 1);
}

/** Split a "<number><suffix>" token; returns (value, suffix). */
bool
splitNumberSuffix(const std::string &text, double &value,
                  std::string &suffix)
{
    const char *begin = text.c_str();
    char *end = nullptr;
    value = std::strtod(begin, &end);
    if (end == begin)
        return false;
    suffix = trim(std::string(end));
    return true;
}

} // namespace

Config
Config::parse(const std::string &text)
{
    Config config;
    std::istringstream in(text);
    std::string line;
    std::string section;
    size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        // Strip comments.
        size_t comment = line.find_first_of("#;");
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        line = trim(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                fatal(strfmt("config line %zu: unterminated section",
                             lineNo));
            section = trim(line.substr(1, line.size() - 2));
            continue;
        }
        size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal(strfmt("config line %zu: expected 'key = value'",
                         lineNo));
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            fatal(strfmt("config line %zu: empty key", lineNo));
        if (!section.empty())
            key = section + "." + key;
        config.set(key, value);
    }
    return config;
}

Config
Config::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str());
}

void
Config::set(const std::string &key, const std::string &value)
{
    if (values_.find(key) == values_.end())
        order_.push_back(key);
    values_[key] = value;
}

void
Config::merge(const Config &overrides)
{
    for (const auto &key : overrides.order_)
        set(key, overrides.values_.at(key));
}

bool
Config::has(const std::string &key) const
{
    return values_.find(key) != values_.end();
}

std::optional<std::string>
Config::get(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return std::nullopt;
    return it->second;
}

std::string
Config::getString(const std::string &key,
                  const std::string &fallback) const
{
    auto v = get(key);
    return v ? *v : fallback;
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    auto v = get(key);
    if (!v)
        return fallback;
    char *end = nullptr;
    double parsed = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || !trim(std::string(end)).empty())
        fatal(strfmt("config key '%s': '%s' is not a number",
                     key.c_str(), v->c_str()));
    return parsed;
}

int64_t
Config::getInt(const std::string &key, int64_t fallback) const
{
    auto v = get(key);
    if (!v)
        return fallback;
    char *end = nullptr;
    long long parsed = std::strtoll(v->c_str(), &end, 0);
    if (end == v->c_str() || !trim(std::string(end)).empty())
        fatal(strfmt("config key '%s': '%s' is not an integer",
                     key.c_str(), v->c_str()));
    return parsed;
}

uint64_t
Config::getUint(const std::string &key, uint64_t fallback) const
{
    int64_t v = getInt(key, int64_t(fallback));
    if (v < 0)
        fatal(strfmt("config key '%s' must be non-negative",
                     key.c_str()));
    return uint64_t(v);
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    auto v = get(key);
    if (!v)
        return fallback;
    std::string lower = *v;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "true" || lower == "yes" || lower == "on" ||
        lower == "1")
        return true;
    if (lower == "false" || lower == "no" || lower == "off" ||
        lower == "0")
        return false;
    fatal(strfmt("config key '%s': '%s' is not a boolean", key.c_str(),
                 v->c_str()));
}

Time
Config::getTime(const std::string &key, Time fallback) const
{
    auto v = get(key);
    if (!v)
        return fallback;
    auto parsed = parseTime(*v);
    if (!parsed)
        fatal(strfmt("config key '%s': '%s' is not a duration",
                     key.c_str(), v->c_str()));
    return *parsed;
}

Freq
Config::getFreq(const std::string &key, Freq fallback) const
{
    auto v = get(key);
    if (!v)
        return fallback;
    auto parsed = parseFreq(*v);
    if (!parsed)
        fatal(strfmt("config key '%s': '%s' is not a frequency",
                     key.c_str(), v->c_str()));
    return *parsed;
}

Bytes
Config::getBytes(const std::string &key, Bytes fallback) const
{
    auto v = get(key);
    if (!v)
        return fallback;
    auto parsed = parseBytes(*v);
    if (!parsed)
        fatal(strfmt("config key '%s': '%s' is not a byte quantity",
                     key.c_str(), v->c_str()));
    return *parsed;
}

std::vector<std::string>
Config::keys() const
{
    return order_;
}

SpecFields::SpecFields(const Config &config, std::string specName)
    : config_(config), spec_(std::move(specName))
{
}

void
SpecFields::fail(const std::string &what) const
{
    fatal(spec_ + ": " + what);
}

void
SpecFields::requireSections(
    const std::vector<std::string> &sections,
    const std::function<bool(const std::string &)> &alsoAllow,
    const std::string &label) const
{
    // Reject keys outside the known sections early: a typoed section
    // would otherwise silently change nothing.
    std::string printed = label;
    if (printed.empty()) {
        for (const std::string &s : sections) {
            if (!printed.empty())
                printed += ", ";
            printed += s;
        }
    }
    for (const std::string &key : config_.keys()) {
        bool known = false;
        for (const std::string &s : sections)
            known = known || key.rfind(s + ".", 0) == 0;
        if (!known && alsoAllow)
            known = alsoAllow(key);
        if (!known)
            fail(strfmt("unknown key '%s' (sections: %s)", key.c_str(),
                        printed.c_str()));
    }
}

double
SpecFields::finite(const std::string &key, double fallback) const
{
    // strtod parses "nan" and "inf"; both would defeat range checks.
    double v = config_.getDouble(key, fallback);
    if (!std::isfinite(v))
        fail(key + " must be finite");
    return v;
}

double
SpecFields::probability(const std::string &key, double fallback) const
{
    double p = finite(key, fallback);
    if (p < 0.0 || p > 1.0)
        fail(strfmt("%s must be a probability in [0, 1], got %.9g",
                    key.c_str(), p));
    return p;
}

double
SpecFields::positive(const std::string &key, double fallback) const
{
    double v = finite(key, fallback);
    if (v <= 0.0)
        fail(key + " must be positive");
    return v;
}

double
SpecFields::nonNegative(const std::string &key, double fallback) const
{
    double v = finite(key, fallback);
    if (v < 0.0)
        fail(key + " must be >= 0");
    return v;
}

double
SpecFields::weight(const std::string &key, double fallback) const
{
    double w = finite(key, fallback);
    if (!(w > 0.0 && w <= 1.0))
        fail(strfmt("%s must be a weight in (0, 1], got %.9g",
                    key.c_str(), w));
    return w;
}

Time
SpecFields::positiveTime(const std::string &key, Time fallback) const
{
    Time t = config_.getTime(key, fallback);
    if (!std::isfinite(t.sec()))
        fail(key + " must be finite");
    if (t.sec() <= 0.0)
        fail(key + " must be a positive duration");
    return t;
}

std::optional<Time>
parseTime(const std::string &text)
{
    double value = 0.0;
    std::string suffix;
    if (!splitNumberSuffix(trim(text), value, suffix))
        return std::nullopt;
    if (suffix == "s" || suffix.empty())
        return Time::sec(value);
    if (suffix == "ms")
        return Time::ms(value);
    if (suffix == "us")
        return Time::us(value);
    if (suffix == "ns")
        return Time::ns(value);
    return std::nullopt;
}

std::optional<Freq>
parseFreq(const std::string &text)
{
    double value = 0.0;
    std::string suffix;
    if (!splitNumberSuffix(trim(text), value, suffix))
        return std::nullopt;
    std::string lower = suffix;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "ghz")
        return Freq::ghz(value);
    if (lower == "mhz")
        return Freq::mhz(value);
    if (lower == "hz" || lower.empty())
        return Freq::hz(value);
    return std::nullopt;
}

std::optional<Bytes>
parseBytes(const std::string &text)
{
    double value = 0.0;
    std::string suffix;
    if (!splitNumberSuffix(trim(text), value, suffix))
        return std::nullopt;
    if (suffix == "GiB")
        return value * 1024.0 * 1024.0 * 1024.0;
    if (suffix == "MiB")
        return value * 1024.0 * 1024.0;
    if (suffix == "KiB")
        return value * 1024.0;
    if (suffix == "B" || suffix.empty())
        return value;
    return std::nullopt;
}

} // namespace dirigent
