#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    DIRIGENT_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    DIRIGENT_ASSERT(cells.size() == headers_.size(),
                    "row has %zu cells, table has %zu columns",
                    cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    return strfmt("%.*f", precision, v);
}

std::string
TextTable::pct(double v, int precision)
{
    return strfmt("%.*f%%", precision, v * 100.0);
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << "  " << std::left << std::setw(int(widths[c])) << row[c];
        }
        os << "\n";
    };

    print_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

CsvWriter::CsvWriter(std::ostream &os) : os_(os)
{
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ",";
        const std::string &cell = cells[i];
        bool quote = cell.find_first_of(",\"\n") != std::string::npos;
        if (quote) {
            os_ << '"';
            for (char ch : cell) {
                if (ch == '"')
                    os_ << '"';
                os_ << ch;
            }
            os_ << '"';
        } else {
            os_ << cell;
        }
    }
    os_ << "\n";
}

void
CsvWriter::numericRow(const std::vector<double> &cells, int precision)
{
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (double v : cells)
        text.push_back(strfmt("%.*g", precision, v));
    row(text);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    std::string line = "=== " + title + " ";
    if (line.size() < 72)
        line += std::string(72 - line.size(), '=');
    os << "\n" << line << "\n";
}

} // namespace dirigent
