/**
 * @file
 * Status and error reporting, following the gem5 convention:
 *
 *  - inform(): normal operating messages, no connotation of error.
 *  - warn():   something is off but execution can continue.
 *  - fatal():  the run cannot continue due to a user error (bad
 *              configuration, invalid arguments); exits with code 1.
 *  - panic():  an internal invariant was violated (a library bug);
 *              aborts so a core dump / debugger can capture state.
 */

#ifndef DIRIGENT_COMMON_LOG_H
#define DIRIGENT_COMMON_LOG_H

#include <string>

#include "common/strfmt.h"

namespace dirigent {

/** Verbosity levels for inform(); warnings/errors always print. */
enum class LogLevel { Quiet = 0, Normal = 1, Verbose = 2 };

/** Set the global verbosity threshold for inform()/verbose(). */
void setLogLevel(LogLevel level);

/** Current global verbosity threshold. */
LogLevel logLevel();

/**
 * Tag prepended to every message emitted from the *calling thread*
 * (e.g. a sweep worker sets its job id so concurrent jobs' output is
 * attributable). Messages render as "info: [tag] ...". Empty clears.
 * All log output is serialized under one mutex, so lines from
 * concurrent threads never interleave mid-line.
 */
void setLogThreadTag(const std::string &tag);

/** The calling thread's current tag ("" when unset). */
std::string logThreadTag();

/** RAII scope for a thread log tag (restores the previous tag). */
class LogTagScope
{
  public:
    explicit LogTagScope(const std::string &tag) : saved_(logThreadTag())
    {
        setLogThreadTag(tag);
    }
    ~LogTagScope() { setLogThreadTag(saved_); }

    LogTagScope(const LogTagScope &) = delete;
    LogTagScope &operator=(const LogTagScope &) = delete;

  private:
    std::string saved_;
};

/** Print an informational message (suppressed when Quiet). */
void inform(const std::string &msg);

/** Print a detailed message (only when Verbose). */
void verbose(const std::string &msg);

/** Print a warning to stderr. */
void warn(const std::string &msg);

/**
 * Terminate due to a user error: bad configuration or arguments.
 * Prints the message and exits with status 1.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Terminate due to an internal bug: an invariant that should never be
 * violated regardless of user input. Prints and aborts.
 */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

} // namespace dirigent

/** Panic with source location attached. */
#define DIRIGENT_PANIC(...) \
    ::dirigent::panicImpl(__FILE__, __LINE__, ::dirigent::strfmt(__VA_ARGS__))

/** Check an internal invariant; panics with the condition text if false. */
#define DIRIGENT_ASSERT(cond, ...)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::dirigent::panicImpl(__FILE__, __LINE__,                       \
                std::string("assertion failed: " #cond " — ") +             \
                ::dirigent::strfmt(__VA_ARGS__));                           \
        }                                                                   \
    } while (0)

#endif // DIRIGENT_COMMON_LOG_H
