/**
 * @file
 * printf-style std::string formatting helper.
 */

#ifndef DIRIGENT_COMMON_STRFMT_H
#define DIRIGENT_COMMON_STRFMT_H

#include <string>

namespace dirigent {

/**
 * Format @p fmt with printf semantics into a std::string.
 *
 * @param fmt printf-style format string.
 * @return The formatted string.
 */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace dirigent

#endif // DIRIGENT_COMMON_STRFMT_H
