#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace dirigent {

void
OnlineStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
}

void
OnlineStats::reset()
{
    *this = OnlineStats();
}

double
OnlineStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / double(n_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

Ema::Ema(double weight) : weight_(weight)
{
    DIRIGENT_ASSERT(weight > 0.0 && weight <= 1.0,
                    "EMA weight %f out of (0, 1]", weight);
}

double
Ema::add(double x)
{
    if (!valid_) {
        value_ = x;
        valid_ = true;
    } else {
        value_ = weight_ * x + (1.0 - weight_) * value_;
    }
    return value_;
}

void
Ema::reset()
{
    value_ = 0.0;
    valid_ = false;
}

SlidingWindow::SlidingWindow(size_t capacity) : capacity_(capacity)
{
    DIRIGENT_ASSERT(capacity > 0, "sliding window needs capacity > 0");
}

void
SlidingWindow::add(double x)
{
    if (values_.size() == capacity_)
        values_.pop_front();
    values_.push_back(x);
}

double
SlidingWindow::mean() const
{
    if (values_.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values_)
        s += v;
    return s / double(values_.size());
}

double
SlidingWindow::stddev() const
{
    if (values_.size() < 2)
        return 0.0;
    double m = mean();
    double s = 0.0;
    for (double v : values_)
        s += (v - m) * (v - m);
    return std::sqrt(s / double(values_.size()));
}

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    size_t n = std::min(x.size(), y.size());
    if (n < 2)
        return 0.0;
    double mx = 0.0, my = 0.0;
    for (size_t i = 0; i < n; ++i) {
        mx += x[i];
        my += y[i];
    }
    mx /= double(n);
    my /= double(n);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double dx = x[i] - mx;
        double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
pearson(const SlidingWindow &x, const SlidingWindow &y)
{
    std::vector<double> vx(x.values().begin(), x.values().end());
    std::vector<double> vy(y.values().begin(), y.values().end());
    // Align to the common suffix (most recent observations).
    size_t n = std::min(vx.size(), vy.size());
    std::vector<double> sx(vx.end() - n, vx.end());
    std::vector<double> sy(vy.end() - n, vy.end());
    return pearson(sx, sy);
}

double
percentile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    DIRIGENT_ASSERT(q >= 0.0 && q <= 1.0, "quantile %f out of [0, 1]", q);
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples[0];
    double pos = q * double(samples.size() - 1);
    size_t idx = size_t(pos);
    double frac = pos - double(idx);
    if (idx + 1 >= samples.size())
        return samples.back();
    return samples[idx] * (1.0 - frac) + samples[idx + 1] * frac;
}

double
arithmeticMean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / double(v.size());
}

double
harmonicMean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v) {
        DIRIGENT_ASSERT(x > 0.0, "harmonic mean requires positive values");
        s += 1.0 / x;
    }
    return double(v.size()) / s;
}

namespace {

/**
 * Two-sided Student-t critical values for common confidence levels.
 * Rows: degrees of freedom 1..30, then the normal limit.
 */
double
tCritical(size_t df, double confidence)
{
    static const double t90[] = {6.314, 2.920, 2.353, 2.132, 2.015,
                                 1.943, 1.895, 1.860, 1.833, 1.812,
                                 1.796, 1.782, 1.771, 1.761, 1.753,
                                 1.746, 1.740, 1.734, 1.729, 1.725,
                                 1.721, 1.717, 1.714, 1.711, 1.708,
                                 1.706, 1.703, 1.701, 1.699, 1.697};
    static const double t95[] = {12.706, 4.303, 3.182, 2.776, 2.571,
                                 2.447,  2.365, 2.306, 2.262, 2.228,
                                 2.201,  2.179, 2.160, 2.145, 2.131,
                                 2.120,  2.110, 2.101, 2.093, 2.086,
                                 2.080,  2.074, 2.069, 2.064, 2.060,
                                 2.056,  2.052, 2.048, 2.045, 2.042};
    static const double t99[] = {63.657, 9.925, 5.841, 4.604, 4.032,
                                 3.707,  3.499, 3.355, 3.250, 3.169,
                                 3.106,  3.055, 3.012, 2.977, 2.947,
                                 2.921,  2.898, 2.878, 2.861, 2.845,
                                 2.831,  2.819, 2.807, 2.797, 2.787,
                                 2.779,  2.771, 2.763, 2.756, 2.750};
    const double *table;
    double limit;
    if (confidence >= 0.985) {
        table = t99;
        limit = 2.576;
    } else if (confidence >= 0.925) {
        table = t95;
        limit = 1.960;
    } else {
        table = t90;
        limit = 1.645;
    }
    if (df == 0)
        return limit;
    if (df <= 30)
        return table[df - 1];
    return limit;
}

} // namespace

MeanCi
meanConfidence(const std::vector<double> &samples, double confidence)
{
    MeanCi ci;
    OnlineStats stats;
    for (double x : samples)
        stats.add(x);
    ci.mean = stats.mean();
    if (stats.count() < 2) {
        ci.lo = ci.hi = ci.mean;
        return ci;
    }
    size_t n = stats.count();
    // Sample (n−1) standard deviation from the population variance.
    double sampleVar = stats.variance() * double(n) / double(n - 1);
    double se = std::sqrt(sampleVar / double(n));
    double t = tCritical(n - 1, confidence);
    ci.half = t * se;
    ci.lo = ci.mean - ci.half;
    ci.hi = ci.mean + ci.half;
    return ci;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), binWidth_((hi - lo) / double(bins)),
      counts_(bins, 0.0)
{
    DIRIGENT_ASSERT(hi > lo, "histogram range [%f, %f) is empty", lo, hi);
    DIRIGENT_ASSERT(bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    add(x, 1.0);
}

void
Histogram::add(double x, double weight)
{
    double pos = (x - lo_) / binWidth_;
    long idx = long(std::floor(pos));
    idx = std::clamp(idx, 0L, long(counts_.size()) - 1L);
    counts_[size_t(idx)] += weight;
    total_ += weight;
}

double
Histogram::binCenter(size_t i) const
{
    return lo_ + (double(i) + 0.5) * binWidth_;
}

double
Histogram::density(size_t i) const
{
    if (total_ <= 0.0)
        return 0.0;
    return counts_[i] / (total_ * binWidth_);
}

double
Histogram::fraction(size_t i) const
{
    if (total_ <= 0.0)
        return 0.0;
    return counts_[i] / total_;
}

} // namespace dirigent
