/**
 * @file
 * Strong unit types used throughout the simulator: simulated time,
 * clock frequency, and byte quantities.
 *
 * Simulated time is represented as a double count of seconds wrapped in a
 * value type. The co-simulation engine advances in variable-size quanta,
 * so the usual fixed-tick integer representation is unnecessary; the
 * wrapper exists to keep seconds from being confused with instruction
 * counts, rates, or frequencies at interface boundaries.
 */

#ifndef DIRIGENT_COMMON_UNITS_H
#define DIRIGENT_COMMON_UNITS_H

#include <cmath>
#include <compare>
#include <cstdint>

namespace dirigent {

/**
 * A point in (or span of) simulated time. Internally stored in seconds.
 *
 * Construct via the named factories (Time::sec, Time::ms, ...) rather
 * than a raw double so the unit is always explicit at the call site.
 */
class Time
{
  public:
    /** Zero time; also the default. */
    constexpr Time() : seconds_(0.0) {}

    /** @name Named constructors */
    /// @{
    static constexpr Time sec(double s) { return Time(s); }
    static constexpr Time ms(double v) { return Time(v * 1e-3); }
    static constexpr Time us(double v) { return Time(v * 1e-6); }
    static constexpr Time ns(double v) { return Time(v * 1e-9); }
    /// @}

    /** @name Value accessors */
    /// @{
    constexpr double sec() const { return seconds_; }
    constexpr double ms() const { return seconds_ * 1e3; }
    constexpr double us() const { return seconds_ * 1e6; }
    constexpr double ns() const { return seconds_ * 1e9; }
    /// @}

    /** The largest representable time, used as "never". */
    static constexpr Time
    never()
    {
        return Time(1e300);
    }

    constexpr bool isNever() const { return seconds_ >= 1e299; }

    constexpr auto operator<=>(const Time &) const = default;

    constexpr Time operator+(Time o) const { return Time(seconds_ + o.seconds_); }
    constexpr Time operator-(Time o) const { return Time(seconds_ - o.seconds_); }
    constexpr Time operator*(double k) const { return Time(seconds_ * k); }
    constexpr Time operator/(double k) const { return Time(seconds_ / k); }
    constexpr double operator/(Time o) const { return seconds_ / o.seconds_; }
    Time &operator+=(Time o) { seconds_ += o.seconds_; return *this; }
    Time &operator-=(Time o) { seconds_ -= o.seconds_; return *this; }

  private:
    explicit constexpr Time(double s) : seconds_(s) {}

    double seconds_;
};

constexpr Time operator*(double k, Time t) { return Time::sec(k * t.sec()); }

/**
 * A clock frequency in hertz. Stored as a double; constructed via named
 * factories so call sites always state the unit.
 */
class Freq
{
  public:
    constexpr Freq() : hz_(0.0) {}

    static constexpr Freq hz(double v) { return Freq(v); }
    static constexpr Freq mhz(double v) { return Freq(v * 1e6); }
    static constexpr Freq ghz(double v) { return Freq(v * 1e9); }

    constexpr double hz() const { return hz_; }
    constexpr double mhz() const { return hz_ * 1e-6; }
    constexpr double ghz() const { return hz_ * 1e-9; }

    constexpr auto operator<=>(const Freq &) const = default;

    /** Seconds taken by @p cycles cycles at this frequency. */
    constexpr Time
    cyclesToTime(double cycles) const
    {
        return Time::sec(cycles / hz_);
    }

    /** Cycles elapsed in @p t at this frequency. */
    constexpr double
    timeToCycles(Time t) const
    {
        return t.sec() * hz_;
    }

  private:
    explicit constexpr Freq(double v) : hz_(v) {}

    double hz_;
};

/** Byte quantities (cache capacities, working sets, bandwidth·time). */
using Bytes = double;

constexpr Bytes operator""_KiB(long double v) { return double(v) * 1024.0; }
constexpr Bytes operator""_MiB(long double v) { return double(v) * 1024.0 * 1024.0; }
constexpr Bytes operator""_GiB(long double v) { return double(v) * 1024.0 * 1024.0 * 1024.0; }
constexpr Bytes operator""_KiB(unsigned long long v) { return double(v) * 1024.0; }
constexpr Bytes operator""_MiB(unsigned long long v) { return double(v) * 1024.0 * 1024.0; }
constexpr Bytes operator""_GiB(unsigned long long v) { return double(v) * 1024.0 * 1024.0 * 1024.0; }

} // namespace dirigent

#endif // DIRIGENT_COMMON_UNITS_H
