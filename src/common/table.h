/**
 * @file
 * Report formatting: aligned ASCII tables and CSV emission. Every bench
 * binary prints a human-readable table of the paper's rows/series plus a
 * machine-readable CSV block for plotting.
 */

#ifndef DIRIGENT_COMMON_TABLE_H
#define DIRIGENT_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace dirigent {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   TextTable t({"workload", "mean", "std"});
 *   t.addRow({"ferret", "1.10", "0.05"});
 *   t.print(std::cout);
 * @endcode
 */
class TextTable
{
  public:
    /** Construct with column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double cell with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Convenience: format a percentage (0.153 -> "15.3%"). */
    static std::string pct(double v, int precision = 1);

    /** Render with aligned columns to @p os. */
    void print(std::ostream &os) const;

    /** Number of data rows. */
    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Minimal CSV writer. Cells containing commas or quotes are quoted.
 */
class CsvWriter
{
  public:
    /** @param os sink stream (kept by reference; must outlive writer). */
    explicit CsvWriter(std::ostream &os);

    /** Write one row of cells. */
    void row(const std::vector<std::string> &cells);

    /** Write one row of numeric cells with fixed precision. */
    void numericRow(const std::vector<double> &cells, int precision = 6);

  private:
    std::ostream &os_;
};

/**
 * Print a titled section banner:
 * @code
 * === title ===========================================================
 * @endcode
 */
void printBanner(std::ostream &os, const std::string &title);

} // namespace dirigent

#endif // DIRIGENT_COMMON_TABLE_H
