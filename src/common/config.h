/**
 * @file
 * Key-value configuration: a small INI-style parser plus typed lookup,
 * used by the CLI tools to override machine/harness/runtime parameters
 * without recompiling.
 *
 * Format: one `key = value` per line; `#` or `;` start comments;
 * `[section]` headers prefix subsequent keys as `section.key`. Values
 * keep their text form; typed accessors parse on demand.
 */

#ifndef DIRIGENT_COMMON_CONFIG_H
#define DIRIGENT_COMMON_CONFIG_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"

namespace dirigent {

/**
 * A parsed configuration: ordered key/value pairs with typed access.
 */
class Config
{
  public:
    Config() = default;

    /**
     * Parse INI-style text. fatal() on malformed lines (the input is
     * user-supplied configuration).
     */
    static Config parse(const std::string &text);

    /** Load and parse a file; fatal() if unreadable. */
    static Config load(const std::string &path);

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);

    /**
     * Merge another config over this one (its values win). Used to
     * layer command-line overrides over a file.
     */
    void merge(const Config &overrides);

    /** True when @p key is present. */
    bool has(const std::string &key) const;

    /** Raw string value, or std::nullopt. */
    std::optional<std::string> get(const std::string &key) const;

    /** @name Typed accessors with defaults.
     *  Each returns the parsed value of @p key, or @p fallback when the
     *  key is absent; fatal() when present but unparsable. */
    /// @{
    std::string getString(const std::string &key,
                          const std::string &fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    int64_t getInt(const std::string &key, int64_t fallback) const;
    uint64_t getUint(const std::string &key, uint64_t fallback) const;
    bool getBool(const std::string &key, bool fallback) const;

    /** Time values accept a unit suffix: "5ms", "80ns", "1.5s". */
    Time getTime(const std::string &key, Time fallback) const;

    /** Frequencies accept "2.0GHz", "1200MHz", or plain hertz. */
    Freq getFreq(const std::string &key, Freq fallback) const;

    /** Byte quantities accept "15MiB", "64KiB", "2GiB", or bytes. */
    Bytes getBytes(const std::string &key, Bytes fallback) const;
    /// @}

    /** All keys in insertion order. */
    std::vector<std::string> keys() const;

    /** Number of keys. */
    size_t size() const { return values_.size(); }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> order_;
};

/** Parse "5ms"/"80ns"/"1.5s"-style durations; nullopt on failure. */
std::optional<Time> parseTime(const std::string &text);

/** Parse "2GHz"/"1200MHz"/plain-hertz frequencies. */
std::optional<Freq> parseFreq(const std::string &text);

/** Parse "15MiB"/"64KiB"/plain-byte quantities. */
std::optional<Bytes> parseBytes(const std::string &text);

} // namespace dirigent

#endif // DIRIGENT_COMMON_CONFIG_H
