/**
 * @file
 * Key-value configuration: a small INI-style parser plus typed lookup,
 * used by the CLI tools to override machine/harness/runtime parameters
 * without recompiling.
 *
 * Format: one `key = value` per line; `#` or `;` start comments;
 * `[section]` headers prefix subsequent keys as `section.key`. Values
 * keep their text form; typed accessors parse on demand.
 */

#ifndef DIRIGENT_COMMON_CONFIG_H
#define DIRIGENT_COMMON_CONFIG_H

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"

namespace dirigent {

/**
 * A parsed configuration: ordered key/value pairs with typed access.
 */
class Config
{
  public:
    Config() = default;

    /**
     * Parse INI-style text. fatal() on malformed lines (the input is
     * user-supplied configuration).
     */
    static Config parse(const std::string &text);

    /** Load and parse a file; fatal() if unreadable. */
    static Config load(const std::string &path);

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);

    /**
     * Merge another config over this one (its values win). Used to
     * layer command-line overrides over a file.
     */
    void merge(const Config &overrides);

    /** True when @p key is present. */
    bool has(const std::string &key) const;

    /** Raw string value, or std::nullopt. */
    std::optional<std::string> get(const std::string &key) const;

    /** @name Typed accessors with defaults.
     *  Each returns the parsed value of @p key, or @p fallback when the
     *  key is absent; fatal() when present but unparsable. */
    /// @{
    std::string getString(const std::string &key,
                          const std::string &fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    int64_t getInt(const std::string &key, int64_t fallback) const;
    uint64_t getUint(const std::string &key, uint64_t fallback) const;
    bool getBool(const std::string &key, bool fallback) const;

    /** Time values accept a unit suffix: "5ms", "80ns", "1.5s". */
    Time getTime(const std::string &key, Time fallback) const;

    /** Frequencies accept "2.0GHz", "1200MHz", or plain hertz. */
    Freq getFreq(const std::string &key, Freq fallback) const;

    /** Byte quantities accept "15MiB", "64KiB", "2GiB", or bytes. */
    Bytes getBytes(const std::string &key, Bytes fallback) const;
    /// @}

    /** All keys in insertion order. */
    std::vector<std::string> keys() const;

    /** Number of keys. */
    size_t size() const { return values_.size(); }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> order_;
};

/**
 * Shared field helpers for the spec parsers (scheme, serve, cluster,
 * fault plan, predictor). Every parser routes its section allow-list
 * and range checks through the same helpers, so hostile input always
 * dies with the same field-naming message shape:
 * "<spec>: <key> must ...".
 */
class SpecFields
{
  public:
    /** @p specName is the message prefix ("scheme spec", "fault
     *  plan", ...). @p config is borrowed and must outlive this. */
    SpecFields(const Config &config, std::string specName);

    const Config &config() const { return config_; }

    /** fatal("<spec>: <what>"). */
    [[noreturn]] void fail(const std::string &what) const;

    /**
     * Reject keys outside the "<section>." prefixes:
     * "<spec>: unknown key '<key>' (sections: a, b, c)".
     * @p alsoAllow admits keys outside the fixed prefixes (cluster's
     * numbered node sections); @p label overrides the printed section
     * list when it cannot be derived from @p sections alone.
     */
    void requireSections(
        const std::vector<std::string> &sections,
        const std::function<bool(const std::string &)> &alsoAllow = {},
        const std::string &label = "") const;

    /** Finite double: "<spec>: <key> must be finite". */
    double finite(const std::string &key, double fallback) const;

    /** Finite double in [0, 1]:
     *  "... must be a probability in [0, 1], got %.9g". */
    double probability(const std::string &key,
                       double fallback = 0.0) const;

    /** Finite double > 0: "... must be positive". */
    double positive(const std::string &key, double fallback) const;

    /** Finite double >= 0: "... must be >= 0". */
    double nonNegative(const std::string &key, double fallback) const;

    /** EMA weight in (0, 1]:
     *  "... must be a weight in (0, 1], got %.9g". */
    double weight(const std::string &key, double fallback) const;

    /** Positive duration: "... must be a positive duration". */
    Time positiveTime(const std::string &key, Time fallback) const;

  private:
    const Config &config_;
    std::string spec_;
};

/** Parse "5ms"/"80ns"/"1.5s"-style durations; nullopt on failure. */
std::optional<Time> parseTime(const std::string &text);

/** Parse "2GHz"/"1200MHz"/plain-hertz frequencies. */
std::optional<Freq> parseFreq(const std::string &text);

/** Parse "15MiB"/"64KiB"/plain-byte quantities. */
std::optional<Bytes> parseBytes(const std::string &text);

} // namespace dirigent

#endif // DIRIGENT_COMMON_CONFIG_H
