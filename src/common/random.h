/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * Every stochastic input (CPI jitter, OS noise, phase dwell times, rotate
 * selection, timer error) draws from a seeded xoshiro256** stream so that
 * experiments are reproducible bit-for-bit given a seed. Independent
 * streams are derived from a parent seed with splitmix64 so that adding a
 * consumer does not perturb the draws seen by existing consumers.
 */

#ifndef DIRIGENT_COMMON_RANDOM_H
#define DIRIGENT_COMMON_RANDOM_H

#include <cstdint>

namespace dirigent {

/** splitmix64 step; used for seeding and stream derivation. */
uint64_t splitmix64(uint64_t &state);

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * Not thread-safe; each simulated entity owns its own stream.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed);

    /** Derive an independent child stream; deterministic in (seed, key). */
    Rng fork(uint64_t key) const;

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); @p n must be > 0. */
    uint64_t below(uint64_t n);

    /** Standard normal via Box–Muller (cached pair). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double sigma);

    /**
     * Lognormal such that the *mean* of the distribution is @p mean.
     * @param mean desired distribution mean (must be > 0).
     * @param sigma shape parameter (sigma of the underlying normal).
     */
    double lognormalMean(double mean, double sigma);

    /**
     * Lognormal from a precomputed location parameter: exp(N(mu, sigma)).
     * lognormalMean(m, s) ≡ lognormalMu(log(m) - 0.5·s², s); hot callers
     * that draw repeatedly with fixed parameters precompute mu once
     * (workload::Task caches it per phase).
     */
    double lognormalMu(double mu, double sigma);

    /** Exponential with the given mean. */
    double exponential(double mean);

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p);

  private:
    uint64_t s_[4];
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace dirigent

#endif // DIRIGENT_COMMON_RANDOM_H
