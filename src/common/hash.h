/**
 * @file
 * Small non-cryptographic hashing utilities: FNV-1a over byte strings,
 * used for deriving per-mix seeds and for fingerprinting canonical
 * event traces in the golden-trace regression suite.
 */

#ifndef DIRIGENT_COMMON_HASH_H
#define DIRIGENT_COMMON_HASH_H

#include <cstdint>
#include <string_view>

namespace dirigent {

/**
 * Default offset basis (the hash of the empty string). NOTE: this is
 * the repository's historical seed-derivation constant — a truncated
 * variant of the standard FNV-1a basis 0xcbf29ce484222325 — kept so
 * per-mix experiment seeds stay stable across releases. Pass the
 * standard basis as @p seed for interoperable FNV-1a values.
 */
inline constexpr uint64_t kFnv1aBasis = 1469598103934665603ULL;

/**
 * 64-bit FNV-1a of @p text, continuing from @p seed. Chaining calls
 * with the previous return value hashes a concatenation.
 */
uint64_t fnv1a64(std::string_view text, uint64_t seed = kFnv1aBasis);

} // namespace dirigent

#endif // DIRIGENT_COMMON_HASH_H
