#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace dirigent {

namespace {

LogLevel g_level = LogLevel::Normal;

/**
 * One mutex serializes all log writes. Worker threads of the sweep
 * executor log concurrently; without this, stdio buffering can tear
 * lines mid-message (each message below is a single fprintf, but the
 * mutex makes the no-interleaving guarantee explicit and also covers
 * the tag lookup).
 */
std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

thread_local std::string t_tag;

/** "[tag] " when a thread tag is set, "" otherwise. */
std::string
tagPrefix()
{
    if (t_tag.empty())
        return {};
    return "[" + t_tag + "] ";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
setLogThreadTag(const std::string &tag)
{
    t_tag = tag;
}

std::string
logThreadTag()
{
    return t_tag;
}

void
inform(const std::string &msg)
{
    if (g_level >= LogLevel::Normal) {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stdout, "info: %s%s\n", tagPrefix().c_str(),
                     msg.c_str());
    }
}

void
verbose(const std::string &msg)
{
    if (g_level >= LogLevel::Verbose) {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stdout, "debug: %s%s\n", tagPrefix().c_str(),
                     msg.c_str());
    }
}

void
warn(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s%s\n", tagPrefix().c_str(), msg.c_str());
}

void
fatal(const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "fatal: %s%s\n", tagPrefix().c_str(),
                     msg.c_str());
    }
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "panic: %s:%d: %s%s\n", file, line,
                     tagPrefix().c_str(), msg.c_str());
    }
    std::abort();
}

} // namespace dirigent
