#include "common/log.h"

#include <cstdio>
#include <cstdlib>

namespace dirigent {

namespace {
LogLevel g_level = LogLevel::Normal;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
inform(const std::string &msg)
{
    if (g_level >= LogLevel::Normal)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
verbose(const std::string &msg)
{
    if (g_level >= LogLevel::Verbose)
        std::fprintf(stdout, "debug: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

} // namespace dirigent
