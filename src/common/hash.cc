#include "common/hash.h"

namespace dirigent {

uint64_t
fnv1a64(std::string_view text, uint64_t seed)
{
    uint64_t hash = seed;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 1099511628211ULL;
    }
    return hash;
}

} // namespace dirigent
