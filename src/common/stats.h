/**
 * @file
 * Statistics primitives used by the predictor, the coarse controller,
 * and the evaluation harness: online mean/variance, exponential moving
 * averages, sliding windows, correlation, percentiles, and histograms.
 */

#ifndef DIRIGENT_COMMON_STATS_H
#define DIRIGENT_COMMON_STATS_H

#include <cstddef>
#include <deque>
#include <vector>

namespace dirigent {

/**
 * Streaming mean / variance accumulator (Welford's algorithm).
 */
class OnlineStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Remove all observations. */
    void reset();

    /** Number of observations so far. */
    size_t count() const { return n_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance; 0 with fewer than 2 observations. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest observation; 0 when empty. */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest observation; 0 when empty. */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of all observations. */
    double sum() const { return sum_; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Exponential moving average with a fixed weight for new samples:
 * ema = w·x + (1 − w)·ema. The first sample initializes the average.
 *
 * This is exactly the paper's smoothing primitive (weight 0.2 for
 * per-segment penalties and for the in-flight rate factor).
 */
class Ema
{
  public:
    /** @param weight weight of each new sample, in (0, 1]. */
    explicit Ema(double weight = 0.2);

    /** Incorporate a new sample and return the updated average. */
    double add(double x);

    /** Current average; 0 before any sample. */
    double value() const { return value_; }

    /** True once at least one sample has been added. */
    bool valid() const { return valid_; }

    /** Forget all history. */
    void reset();

    /** The configured new-sample weight. */
    double weight() const { return weight_; }

  private:
    double weight_;
    double value_ = 0.0;
    bool valid_ = false;
};

/**
 * Fixed-capacity sliding window of observations with summary statistics.
 * Used by the coarse-grain controller over the last N task executions.
 */
class SlidingWindow
{
  public:
    /** @param capacity maximum number of retained observations (> 0). */
    explicit SlidingWindow(size_t capacity);

    /** Append an observation, evicting the oldest when full. */
    void add(double x);

    /** Number of retained observations. */
    size_t size() const { return values_.size(); }

    /** True when size() == capacity. */
    bool full() const { return values_.size() == capacity_; }

    /** Drop all observations. */
    void clear() { values_.clear(); }

    /** Mean of retained observations; 0 when empty. */
    double mean() const;

    /** Population standard deviation of retained observations. */
    double stddev() const;

    /** Access retained observations oldest-first. */
    const std::deque<double> &values() const { return values_; }

  private:
    size_t capacity_;
    std::deque<double> values_;
};

/**
 * Pearson correlation coefficient of two equal-length series.
 * Returns 0 when either series is degenerate (constant or < 2 points).
 */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

/** Pearson correlation over the common length of two sliding windows. */
double pearson(const SlidingWindow &x, const SlidingWindow &y);

/**
 * The q-quantile (0 ≤ q ≤ 1) of @p samples by linear interpolation of
 * the sorted order statistics. Sorts a copy; fine for harness use.
 */
double percentile(std::vector<double> samples, double q);

/** Arithmetic mean of a vector; 0 when empty. */
double arithmeticMean(const std::vector<double> &v);

/** Harmonic mean of a vector of positive values; 0 when empty. */
double harmonicMean(const std::vector<double> &v);

/** A mean with a symmetric confidence interval. */
struct MeanCi
{
    double mean = 0.0;
    double lo = 0.0;   //!< lower bound of the interval
    double hi = 0.0;   //!< upper bound of the interval
    double half = 0.0; //!< half-width (hi − mean)
};

/**
 * Student-t confidence interval for the mean of @p samples at the
 * given confidence level (0.90, 0.95 or 0.99). Degenerate inputs
 * (fewer than 2 samples) return a zero-width interval.
 */
MeanCi meanConfidence(const std::vector<double> &samples,
                      double confidence = 0.95);

/**
 * Fixed-bin histogram over [lo, hi); used to report probability density
 * functions of completion times (paper Figs. 1 and 11) and frequency
 * residency distributions (Fig. 12).
 */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the first bin.
     * @param hi upper edge of the last bin (must be > lo).
     * @param bins number of bins (> 0).
     */
    Histogram(double lo, double hi, size_t bins);

    /** Add an observation; out-of-range values clamp to the edge bins. */
    void add(double x);

    /** Add an observation with the given weight. */
    void add(double x, double weight);

    /** Number of bins. */
    size_t bins() const { return counts_.size(); }

    /** Center of bin @p i. */
    double binCenter(size_t i) const;

    /** Raw (weighted) count of bin @p i. */
    double count(size_t i) const { return counts_[i]; }

    /** Total weight added. */
    double total() const { return total_; }

    /**
     * Probability density of bin @p i (counts normalized so the
     * histogram integrates to 1 over [lo, hi)).
     */
    double density(size_t i) const;

    /** Fraction of total weight in bin @p i. */
    double fraction(size_t i) const;

  private:
    double lo_;
    double hi_;
    double binWidth_;
    std::vector<double> counts_;
    double total_ = 0.0;
};

} // namespace dirigent

#endif // DIRIGENT_COMMON_STATS_H
