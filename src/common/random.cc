#include "common/random.h"

#include <cmath>

#include "common/log.h"

namespace dirigent {

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &w : s_)
        w = splitmix64(sm);
    // xoshiro must not be seeded with all zeros; splitmix64 of any seed
    // cannot produce four zero words, but guard against it anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

Rng
Rng::fork(uint64_t key) const
{
    // Mix the child key with this stream's state words so forks from
    // different parents are independent even with equal keys.
    uint64_t sm = s_[0] ^ rotl(s_[1], 17) ^ key;
    uint64_t derived = splitmix64(sm);
    return Rng(derived ^ rotl(key, 29));
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return double(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::below(uint64_t n)
{
    DIRIGENT_ASSERT(n > 0, "below() requires n > 0");
    // Rejection-free modulo is fine here: n is tiny relative to 2^64 in
    // all simulator uses, so the bias is far below measurement noise.
    return next() % n;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double sigma)
{
    return mean + sigma * normal();
}

double
Rng::lognormalMean(double mean, double sigma)
{
    DIRIGENT_ASSERT(mean > 0.0, "lognormalMean() requires mean > 0");
    // exp(N(mu, sigma)) has mean exp(mu + sigma^2/2); solve for mu.
    return lognormalMu(std::log(mean) - 0.5 * sigma * sigma, sigma);
}

double
Rng::lognormalMu(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::exponential(double mean)
{
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

} // namespace dirigent
