/**
 * @file
 * Result records and metric computations for the evaluation harness.
 * The paper's metrics: FG success ratio (fraction of executions meeting
 * the deadline), BG performance (background instruction throughput
 * normalized to Baseline), and the standard deviation of FG execution
 * time.
 */

#ifndef DIRIGENT_HARNESS_METRICS_H
#define DIRIGENT_HARNESS_METRICS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "dirigent/coarse_controller.h"
#include "dirigent/runtime.h"
#include "dirigent/scheme.h"

namespace dirigent::harness {

/**
 * The outcome of running one workload mix under one scheme for a fixed
 * number of measured FG executions (after warm-up).
 */
struct SchemeRunResult
{
    std::string mixName;

    /**
     * Nearest enum scheme, kept for summary grouping. Custom specs map
     * to the builtin whose name they share, else Baseline; schemeLabel
     * carries the authoritative name.
     */
    core::Scheme scheme = core::Scheme::Baseline;

    /** Name of the scheme spec the run was assembled from. */
    std::string schemeLabel;

    /** FNV-1a fingerprint of the assembled spec's canonical text. */
    uint64_t specHash = 0;

    /** Completion-predictor kind the runtime ran with ("" = no
     *  runtime attached, e.g. Baseline/static schemes). */
    std::string predictorName;

    /** schemeLabel, falling back to the enum name when unset. */
    const char *label() const
    {
        return schemeLabel.empty() ? core::schemeName(scheme)
                                   : schemeLabel.c_str();
    }

    /** Deadline (duration) applied to each FG benchmark. */
    std::map<std::string, Time> deadlines;

    /** Benchmark name of each FG process (index = FG slot). */
    std::vector<std::string> fgBenchmarks;

    /** Measured FG execution durations (seconds), per FG process. */
    std::vector<std::vector<double>> perFgDurations;

    /** Deadline hits / totals over all measured FG executions. */
    uint64_t onTime = 0;
    uint64_t total = 0;

    /** Measurement window (from warm-up end to last measured exec). */
    Time span;

    /** Instructions retired inside the window. */
    double bgInstructions = 0.0;
    double fgInstructions = 0.0;

    /** LLC misses inside the window. */
    double fgMisses = 0.0;
    double totalMisses = 0.0;

    /** BG DVFS residency histogram (fine controller ladder), if any. */
    std::vector<uint64_t> bgGradeResidency;
    std::vector<double> ladderGhz;

    /** Partition decisions (Dirigent only). */
    std::vector<core::PartitionDecision> partitionDecisions;

    /** Final FG partition size (0 = shared). */
    unsigned finalFgWays = 0;

    /** Midpoint prediction/outcome pairs (observer or Dirigent runs). */
    std::vector<core::DirigentRuntime::PredictionSample> midpointSamples;

    /** All measured FG durations pooled across FG processes. */
    std::vector<double> pooledDurations() const;

    /** Fraction of measured executions meeting the deadline. */
    double fgSuccessRatio() const;

    /** Mean of pooled FG durations (seconds). */
    double fgDurationMean() const;

    /** Population standard deviation of pooled FG durations. */
    double fgDurationStd() const;

    /** BG instruction throughput (instructions / second of window). */
    double bgThroughput() const;

    /** FG LLC misses per kilo-instruction inside the window. */
    double fgMpki() const;

    /**
     * Average midpoint prediction error (paper Eq. 3):
     * mean over executions of |predict − measure| / measure.
     */
    double predictionError() const;
};

/**
 * Recompute onTime/total and the stored deadlines of @p result from its
 * recorded per-FG durations and the given per-benchmark deadlines. Used
 * to evaluate a calibration (Baseline) run against deadlines that were
 * derived from it.
 */
void applyDeadlines(SchemeRunResult &result,
                    const std::map<std::string, Time> &deadlines);

/** BG throughput of @p result normalized to @p baseline (rate-based). */
double bgThroughputRatio(const SchemeRunResult &result,
                         const SchemeRunResult &baseline);

/** FG duration σ of @p result normalized to @p baseline's σ. */
double stdRatio(const SchemeRunResult &result,
                const SchemeRunResult &baseline);

/** Per-scheme aggregate over a set of mixes (paper Figs. 10/13). */
struct SchemeSummary
{
    core::Scheme scheme = core::Scheme::Baseline;
    double meanFgSuccess = 0.0;   //!< arithmetic mean of success ratios
    double hmeanBgThroughput = 0.0; //!< harmonic mean of BG ratios
    double meanStdRatio = 0.0;    //!< arithmetic mean of σ ratios
};

/**
 * Summarize per-mix results. @p perMix holds, for every mix, the five
 * scheme results in allSchemes() order (Baseline first).
 */
std::vector<SchemeSummary>
summarizeSchemes(const std::vector<std::vector<SchemeRunResult>> &perMix);

} // namespace dirigent::harness

#endif // DIRIGENT_HARNESS_METRICS_H
