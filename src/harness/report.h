/**
 * @file
 * Printing helpers shared by the bench binaries: paper-style per-mix
 * comparison tables, scheme summaries, and CSV blocks for plotting.
 */

#ifndef DIRIGENT_HARNESS_REPORT_H
#define DIRIGENT_HARNESS_REPORT_H

#include <ostream>
#include <vector>

#include "harness/metrics.h"

namespace dirigent::harness {

/**
 * Print a Fig. 9-style table: one row per mix, FG success ratio and BG
 * throughput ratio (vs Baseline) for each scheme.
 */
void printSchemeComparison(
    std::ostream &os,
    const std::vector<std::vector<SchemeRunResult>> &perMix);

/** Print a Fig. 10/13-style summary table. */
void printSchemeSummary(std::ostream &os,
                        const std::vector<SchemeSummary> &summaries);

/** Emit the comparison as CSV (mix, scheme, fg_success, bg_ratio, ...). */
void printComparisonCsv(
    std::ostream &os,
    const std::vector<std::vector<SchemeRunResult>> &perMix);

/**
 * Print the Fig. 14-style normalized-σ table: one row per mix, FG
 * duration σ normalized to Baseline for each scheme.
 */
void printStdComparison(
    std::ostream &os,
    const std::vector<std::vector<SchemeRunResult>> &perMix);

/** Environment-variable override helper for bench repetition counts. */
unsigned envExecutions(unsigned fallback);

/** Environment-variable override helper for the harness seed. */
uint64_t envSeed(uint64_t fallback);

/**
 * Environment-variable override helper for the sweep worker-thread
 * count (DIRIGENT_THREADS). 0 means "hardware concurrency"; 1 forces
 * the exact legacy serial path.
 */
unsigned envThreads(unsigned fallback);

} // namespace dirigent::harness

#endif // DIRIGENT_HARNESS_REPORT_H
