/**
 * @file
 * The experiment runner: assembles a machine, spawns a workload mix,
 * applies one of the five evaluated schemes, and measures the paper's
 * metrics over a fixed number of consecutive FG task executions
 * (post warm-up). Also provides standalone runs, Baseline deadline
 * calibration (deadline = µ_Baseline + 0.3·σ_Baseline), and a profile
 * cache shared across experiments.
 */

#ifndef DIRIGENT_HARNESS_EXPERIMENT_H
#define DIRIGENT_HARNESS_EXPERIMENT_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dirigent/profiler.h"
#include "dirigent/runtime.h"
#include "dirigent/scheme.h"
#include "dirigent/scheme_spec.h"
#include "fault/injector.h"
#include "harness/metrics.h"
#include "machine/machine.h"
#include "serve/spec.h"
#include "workload/mix.h"

namespace dirigent::core {
class GoldenTraceRecorder;
} // namespace dirigent::core

namespace dirigent::obs {
class Recorder;
class SpanCollector;
} // namespace dirigent::obs

namespace dirigent::harness {

struct ServingRunResult; // harness/serving.h

/** Harness-wide configuration. */
struct HarnessConfig
{
    machine::MachineConfig machine;
    core::ProfilerConfig profiler;
    core::RuntimeConfig runtime;

    /** FG executions discarded before measurement begins. */
    unsigned warmup = 5;

    /** Measured FG executions per FG process. */
    unsigned executions = 60;

    /** Fallback StaticBoth partition when none is supplied. */
    unsigned staticFgWaysDefault = 5;

    /** Deadline slack factor: deadline = µ + factor·σ of Baseline. */
    double deadlineSigmaFactor = 0.3;

    /** Give up on a run after this much simulated time. */
    Time bailout = Time::sec(1200.0);

    /** Master seed (workload randomness is shared across schemes). */
    uint64_t seed = 1234;

    /**
     * Fault plan applied to every run (CLI `--faults` / DIRIGENT_FAULTS).
     * An empty plan (the default) injects nothing and is a provable
     * no-op; otherwise each run builds a private, seed-deterministic
     * injector so failing runs replay from (seed, plan).
     */
    fault::FaultPlan faultPlan;

    /**
     * Worker threads for sharded sweeps (exec::SweepExecutor):
     * 0 = hardware concurrency, 1 = the exact legacy serial path.
     * Ignored by the single-run ExperimentRunner API.
     */
    unsigned threads = 0;
};

/**
 * Source of standalone foreground profiles. Implemented by the serial
 * ProfileCache below and by the thread-safe exec::SharedProfileCache;
 * returned references stay valid for the source's lifetime.
 */
class ProfileSource
{
  public:
    virtual ~ProfileSource() = default;

    /** Profile of @p benchmarkName (profiled on first use). */
    virtual const core::Profile &get(const std::string &benchmarkName) = 0;
};

/**
 * Lazily profiles each foreground benchmark exactly once. Not
 * thread-safe; parallel sweeps share an exec::SharedProfileCache
 * instead.
 */
class ProfileCache : public ProfileSource
{
  public:
    ProfileCache(const machine::MachineConfig &machineConfig,
                 const core::ProfilerConfig &profilerConfig);

    /** Profile of @p benchmarkName (profiled on first use). */
    const core::Profile &get(const std::string &benchmarkName) override;

  private:
    machine::MachineConfig machineConfig_;
    core::ProfilerConfig profilerConfig_;
    std::map<std::string, core::Profile> cache_;
};

/** Per-run options. */
struct RunOptions
{
    /** StaticBoth partition size; 0 = harness default. */
    unsigned staticFgWays = 0;

    /**
     * Attach an observe-only runtime (predictor sampling, no control) —
     * used for the predictor-accuracy studies under Baseline.
     */
    bool attachObserver = false;

    /**
     * Attach the reactive (non-predictive) controller ablation: one
     * ladder decision per FG completion, driven by observed durations.
     * Use with Scheme::Baseline; mutually exclusive with schemes that
     * run the Dirigent runtime.
     */
    bool attachReactive = false;

    /**
     * Cap every BG core's LLC-miss bandwidth (bytes/second) with the
     * MemGuard-style regulator; 0 disables. An alternative static
     * throttling mechanism to DVFS (paper §3.2).
     */
    double bgBandwidthCap = 0.0;

    /**
     * Attach a coarse-only Dirigent runtime (cache-partition heuristics
     * without fine-grain DVFS/pause control). The paper omits this
     * configuration because it "performs just slightly worse than
     * StaticBoth"; this option lets the claim be checked. Use with
     * Scheme::Baseline.
     */
    bool attachCoarseOnly = false;

    /** Override the number of measured executions (0 = harness value). */
    unsigned executions = 0;

    /**
     * Record every task completion and controller decision into this
     * golden-trace recorder (not owned; nullptr disables). Used by the
     * golden-trace regression suite to fingerprint run behaviour.
     */
    core::GoldenTraceRecorder *golden = nullptr;

    /**
     * Caller-owned fault injector wired into every boundary of this
     * run (sampler, counter reads, DVFS, CAT, profiles); overrides the
     * harness-wide faultPlan. Lets chaos tests inspect stats()
     * afterwards. Not owned; nullptr defers to the plan.
     */
    fault::FaultInjector *faults = nullptr;

    /**
     * Serving only: replay these pre-routed arrival times (one vector
     * per FG slot, each nondecreasing) instead of building arrival
     * processes from the serve spec — the cluster dispatcher's plan.
     * Size must equal the mix's FG count. Not owned; must outlive the
     * run. nullptr (the default) keeps the per-slot seeded streams.
     */
    const std::vector<std::vector<Time>> *arrivalOverride = nullptr;

    /**
     * Telemetry recorder this run samples into (obs::RunProbe attached
     * as a passive engine observer + completion listener + decision
     * sink; its manifest is filled with the run's identity). Not
     * owned; nullptr (the default) attaches nothing — a provable
     * no-op, so golden traces stay byte-identical.
     */
    obs::Recorder *recorder = nullptr;

    /**
     * Serving only: collect one trace span per request into this
     * collector (driver outcome hook + decision mirror). Works with or
     * without a recorder. Not owned; the harness finalizes it at the
     * end of the run. nullptr (the default) attaches nothing — same
     * provable-no-op contract as the recorder.
     */
    obs::SpanCollector *spans = nullptr;
};

/**
 * Runs workload mixes under schemes and gathers metrics.
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(HarnessConfig config = HarnessConfig{});

    /**
     * Construct a runner that draws profiles from @p sharedProfiles
     * instead of an owned cache — used by exec:: workers so each FG
     * benchmark is profiled exactly once across all shards.
     * @p sharedProfiles must outlive the runner.
     */
    ExperimentRunner(HarnessConfig config, ProfileSource &sharedProfiles);

    const HarnessConfig &config() const { return config_; }
    ProfileSource &profiles() { return *profiles_; }

    /**
     * Run @p mix under @p scheme with the given per-benchmark deadlines
     * for @p config.executions measured FG executions per FG process.
     * A thin shim over the spec overload: the scheme's builtin spec is
     * assembled with the RunOptions ablations folded in.
     */
    SchemeRunResult run(const workload::WorkloadMix &mix,
                        core::Scheme scheme,
                        const std::map<std::string, Time> &deadlines,
                        const RunOptions &opts = RunOptions{});

    /**
     * Run @p mix under an arbitrary scheme specification (builtin or
     * parsed from a scheme file). The spec is validated after the
     * RunOptions ablations are folded in; fatal() on conflicts.
     */
    SchemeRunResult run(const workload::WorkloadMix &mix,
                        const core::SchemeSpec &spec,
                        const std::map<std::string, Time> &deadlines,
                        const RunOptions &opts = RunOptions{});

    /**
     * Serving-mode run: @p mix's machine/scheme assembly as in run(),
     * but every FG slot is fed by an open-loop serve::ServeDriver
     * built from @p serveSpec (arrival process, bounded queue, and —
     * when the scheme spec's [admission] section asks for one — an
     * admission controller). Measures response-time quantiles and SLO
     * verdicts over the (warmup_s, horizon_s] simulated window.
     * Defined in serving.cc; the result type is harness/serving.h.
     */
    ServingRunResult
    runServing(const workload::WorkloadMix &mix,
               const core::SchemeSpec &spec,
               const serve::ServeSpec &serveSpec,
               const std::map<std::string, Time> &deadlines,
               const RunOptions &opts = RunOptions{});

    /**
     * Run the FG benchmark alone (no background) and measure its
     * standalone behaviour.
     */
    SchemeRunResult runStandalone(const std::string &fgName,
                                  unsigned executions = 0);

    /** Deadlines from a Baseline run: µ + factor·σ per FG benchmark. */
    std::map<std::string, Time>
    deadlinesFromBaseline(const SchemeRunResult &baseline) const;

    /**
     * Run all five schemes on @p mix: Baseline first (doubling as the
     * deadline calibration), then the managed schemes; StaticBoth uses
     * the partition Dirigent's coarse controller converged to. Results
     * are in core::allSchemes() order.
     */
    std::vector<SchemeRunResult>
    runAllSchemes(const workload::WorkloadMix &mix);

    /**
     * Workload seed used for every scheme run of @p mix (identical
     * across schemes so they see the same workload stream).
     */
    uint64_t mixSeed(const workload::WorkloadMix &mix) const;

  private:
    /** Fold the RunOptions ablation knobs into @p spec. */
    core::SchemeSpec assemble(core::SchemeSpec spec,
                              const RunOptions &opts) const;

    /** The single run path every overload funnels into. */
    SchemeRunResult runAssembled(const workload::WorkloadMix &mix,
                                 const core::SchemeSpec &assembled,
                                 core::Scheme enumScheme,
                                 const std::map<std::string, Time> &deadlines,
                                 const RunOptions &opts);

    HarnessConfig config_;
    std::unique_ptr<ProfileCache> ownProfiles_; //!< null when shared
    ProfileSource *profiles_;
};

} // namespace dirigent::harness

#endif // DIRIGENT_HARNESS_EXPERIMENT_H
