#include "harness/metrics.h"

#include <cmath>

#include "common/log.h"
#include "common/stats.h"

namespace dirigent::harness {

std::vector<double>
SchemeRunResult::pooledDurations() const
{
    std::vector<double> pooled;
    for (const auto &v : perFgDurations)
        pooled.insert(pooled.end(), v.begin(), v.end());
    return pooled;
}

double
SchemeRunResult::fgSuccessRatio() const
{
    if (total == 0)
        return 1.0;
    return double(onTime) / double(total);
}

double
SchemeRunResult::fgDurationMean() const
{
    OnlineStats stats;
    for (const auto &v : perFgDurations)
        for (double d : v)
            stats.add(d);
    return stats.mean();
}

double
SchemeRunResult::fgDurationStd() const
{
    OnlineStats stats;
    for (const auto &v : perFgDurations)
        for (double d : v)
            stats.add(d);
    return stats.stddev();
}

double
SchemeRunResult::bgThroughput() const
{
    if (span.sec() <= 0.0)
        return 0.0;
    return bgInstructions / span.sec();
}

double
SchemeRunResult::fgMpki() const
{
    if (fgInstructions <= 0.0)
        return 0.0;
    return fgMisses / (fgInstructions / 1000.0);
}

double
SchemeRunResult::predictionError() const
{
    if (midpointSamples.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &s : midpointSamples) {
        DIRIGENT_ASSERT(s.actualTotal.sec() > 0.0,
                        "prediction sample with zero actual time");
        sum += std::fabs(s.predictedTotal.sec() - s.actualTotal.sec()) /
               s.actualTotal.sec();
    }
    return sum / double(midpointSamples.size());
}

void
applyDeadlines(SchemeRunResult &result,
               const std::map<std::string, Time> &deadlines)
{
    DIRIGENT_ASSERT(result.fgBenchmarks.size() == result.perFgDurations.size(),
                    "FG benchmark/duration bookkeeping mismatch");
    result.deadlines = deadlines;
    result.onTime = 0;
    result.total = 0;
    for (size_t i = 0; i < result.perFgDurations.size(); ++i) {
        auto it = deadlines.find(result.fgBenchmarks[i]);
        DIRIGENT_ASSERT(it != deadlines.end(), "no deadline for '%s'",
                        result.fgBenchmarks[i].c_str());
        double limit = it->second.sec() * (1.0 + 1e-9);
        for (double d : result.perFgDurations[i]) {
            ++result.total;
            if (d <= limit)
                ++result.onTime;
        }
    }
}

double
bgThroughputRatio(const SchemeRunResult &result,
                  const SchemeRunResult &baseline)
{
    double base = baseline.bgThroughput();
    if (base <= 0.0)
        return 0.0;
    return result.bgThroughput() / base;
}

double
stdRatio(const SchemeRunResult &result, const SchemeRunResult &baseline)
{
    double base = baseline.fgDurationStd();
    if (base <= 0.0)
        return 0.0;
    return result.fgDurationStd() / base;
}

std::vector<SchemeSummary>
summarizeSchemes(const std::vector<std::vector<SchemeRunResult>> &perMix)
{
    auto schemes = core::allSchemes();
    std::vector<SchemeSummary> summaries;
    for (size_t s = 0; s < schemes.size(); ++s) {
        SchemeSummary summary;
        summary.scheme = schemes[s];
        std::vector<double> successes, bgRatios, stdRatios;
        for (const auto &mixResults : perMix) {
            DIRIGENT_ASSERT(mixResults.size() == schemes.size(),
                            "mix has %zu scheme results, expected %zu",
                            mixResults.size(), schemes.size());
            const auto &baseline = mixResults[0];
            const auto &res = mixResults[s];
            successes.push_back(res.fgSuccessRatio());
            double bg = bgThroughputRatio(res, baseline);
            bgRatios.push_back(bg > 0.0 ? bg : 1e-9);
            stdRatios.push_back(stdRatio(res, baseline));
        }
        summary.meanFgSuccess = arithmeticMean(successes);
        summary.hmeanBgThroughput = harmonicMean(bgRatios);
        summary.meanStdRatio = arithmeticMean(stdRatios);
        summaries.push_back(summary);
    }
    return summaries;
}

} // namespace dirigent::harness
