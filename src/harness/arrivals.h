/**
 * @file
 * Open-loop task arrivals for a foreground process.
 *
 * The paper evaluates back-to-back FG executions; real offload services
 * receive requests from a queue. This driver injects Poisson arrivals:
 * when the queue is empty the FG process is paused (no work), and each
 * arrival enqueues a task whose *response time* (arrival → completion,
 * including queueing) is recorded. Because queueing amplifies service-
 * time variance (the paper's Fig. 2 argument), Dirigent's variance
 * reduction translates directly into shorter tails here.
 */

#ifndef DIRIGENT_HARNESS_ARRIVALS_H
#define DIRIGENT_HARNESS_ARRIVALS_H

#include <deque>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "dirigent/runtime.h"
#include "machine/machine.h"
#include "sim/engine.h"

namespace dirigent::harness {

/**
 * Poisson arrival driver for one foreground process.
 */
class ArrivalDriver
{
  public:
    /** One served request. */
    struct Completion
    {
        Time arrived;        //!< request arrival time
        Time started;        //!< service start (dequeue) time
        Time finished;       //!< completion time
        size_t queueDepth;   //!< waiting requests at arrival

        /** Arrival-to-completion latency (queueing + service). */
        Time responseTime() const { return finished - arrived; }

        /** Service-only latency. */
        Time serviceTime() const { return finished - started; }
    };

    /**
     * @param engine engine for scheduling arrivals (not owned).
     * @param machine the machine running @p fgPid (not owned).
     * @param fgPid foreground process receiving the arrivals.
     * @param meanInterarrival mean of the exponential interarrival
     *        time.
     * @param rng private randomness stream.
     * @param runtime optional Dirigent runtime to notify at service
     *        starts, so its predictor clock begins at dequeue rather
     *        than at the previous completion (not owned; may be null).
     */
    ArrivalDriver(sim::Engine &engine, machine::Machine &machine,
                  machine::Pid fgPid, Time meanInterarrival, Rng rng,
                  core::DirigentRuntime *runtime = nullptr);

    ~ArrivalDriver();

    ArrivalDriver(const ArrivalDriver &) = delete;
    ArrivalDriver &operator=(const ArrivalDriver &) = delete;

    /**
     * Begin injecting arrivals. The FG process is paused until the
     * first arrival; call at the start of the run.
     */
    void start();

    /** Stop injecting; the FG process is left paused if idle. */
    void stop();

    /** Served requests in completion order. */
    const std::vector<Completion> &completions() const
    {
        return completions_;
    }

    /** Response times (seconds) of all served requests. */
    std::vector<double> responseTimes() const;

    /** Requests that arrived so far. */
    uint64_t arrivals() const { return arrivals_; }

    /** Largest queue depth observed. */
    size_t maxQueueDepth() const { return maxQueue_; }

  private:
    void scheduleNextArrival();
    void onArrival();
    void onCompletion(const machine::CompletionRecord &rec);
    void beginService(Time now);

    sim::Engine &engine_;
    machine::Machine &machine_;
    machine::Pid fgPid_;
    Time meanInterarrival_;
    Rng rng_;
    core::DirigentRuntime *runtime_;

    std::deque<Time> queue_; //!< arrival times of waiting requests
    Time inServiceArrival_;
    Time inServiceStart_;
    bool busy_ = false;
    bool running_ = false;
    uint64_t arrivals_ = 0;
    size_t maxQueue_ = 0;
    size_t listener_ = 0;
    sim::EventId pendingArrival_;
    std::vector<Completion> completions_;
};

} // namespace dirigent::harness

#endif // DIRIGENT_HARNESS_ARRIVALS_H
