/**
 * @file
 * Open-loop Poisson task arrivals for a foreground process — the
 * original seed driver, now a thin adapter over the full serving
 * subsystem (serve::ServeDriver with a serve::PoissonArrivals process,
 * an unbounded FIFO queue, and no admission control).
 *
 * The paper evaluates back-to-back FG executions; real offload services
 * receive requests from a queue. This driver injects Poisson arrivals:
 * when the queue is empty the FG process is paused (no work), and each
 * arrival enqueues a task whose *response time* (arrival → completion,
 * including queueing) is recorded. Because queueing amplifies service-
 * time variance (the paper's Fig. 2 argument), Dirigent's variance
 * reduction translates directly into shorter tails here.
 *
 * New code should use serve::ServeDriver directly — it adds bounded
 * queues, LIFO, non-Poisson arrivals, SLO accounting, and admission
 * control.
 */

#ifndef DIRIGENT_HARNESS_ARRIVALS_H
#define DIRIGENT_HARNESS_ARRIVALS_H

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "dirigent/runtime.h"
#include "machine/machine.h"
#include "serve/driver.h"
#include "sim/engine.h"

namespace dirigent::harness {

/**
 * Poisson arrival driver for one foreground process.
 */
class ArrivalDriver
{
  public:
    /** One served request (see serve::Request). */
    using Completion = serve::Request;

    /**
     * @param engine engine for scheduling arrivals (not owned).
     * @param machine the machine running @p fgPid (not owned).
     * @param fgPid foreground process receiving the arrivals.
     * @param meanInterarrival mean of the exponential interarrival
     *        time.
     * @param rng private randomness stream.
     * @param runtime optional Dirigent runtime to notify at service
     *        starts, so its predictor clock begins at dequeue rather
     *        than at the previous completion (not owned; may be null).
     */
    ArrivalDriver(sim::Engine &engine, machine::Machine &machine,
                  machine::Pid fgPid, Time meanInterarrival, Rng rng,
                  core::DirigentRuntime *runtime = nullptr);

    ArrivalDriver(const ArrivalDriver &) = delete;
    ArrivalDriver &operator=(const ArrivalDriver &) = delete;

    /**
     * Begin injecting arrivals. The FG process is paused until the
     * first arrival; call at the start of the run.
     */
    void start() { driver_->start(); }

    /** Stop injecting; the FG process is left paused if idle. */
    void stop() { driver_->stop(); }

    /** Served requests in completion order. */
    const std::vector<Completion> &completions() const
    {
        return completions_;
    }

    /** Response times (seconds) of all served requests. */
    std::vector<double> responseTimes() const;

    /** Requests that arrived so far. */
    uint64_t arrivals() const { return driver_->arrivals(); }

    /** Largest queue depth observed. */
    size_t maxQueueDepth() const { return driver_->maxQueueDepth(); }

  private:
    std::unique_ptr<serve::ServeDriver> driver_;
    std::vector<Completion> completions_;
};

} // namespace dirigent::harness

#endif // DIRIGENT_HARNESS_ARRIVALS_H
