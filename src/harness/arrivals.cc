#include "harness/arrivals.h"

#include "common/log.h"
#include "serve/arrival.h"

namespace dirigent::harness {

ArrivalDriver::ArrivalDriver(sim::Engine &engine,
                             machine::Machine &machine,
                             machine::Pid fgPid, Time meanInterarrival,
                             Rng rng, core::DirigentRuntime *runtime)
{
    DIRIGENT_ASSERT(meanInterarrival.sec() > 0.0,
                    "mean interarrival must be > 0");
    serve::ServeDriverConfig config;
    config.fgPid = fgPid;
    // Unbounded FIFO queue, no horizon, no warmup: the seed semantics.
    config.queueCapacity = 0;
    driver_ = std::make_unique<serve::ServeDriver>(
        engine, machine,
        std::make_unique<serve::PoissonArrivals>(
            1.0 / meanInterarrival.sec(), rng),
        config, runtime);
    driver_->setOnComplete([this](const serve::Request &req) {
        completions_.push_back(req);
    });
}

std::vector<double>
ArrivalDriver::responseTimes() const
{
    std::vector<double> out;
    out.reserve(completions_.size());
    for (const auto &c : completions_)
        out.push_back(c.responseTime().sec());
    return out;
}

} // namespace dirigent::harness
