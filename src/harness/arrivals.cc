#include "harness/arrivals.h"

#include "common/log.h"

namespace dirigent::harness {

ArrivalDriver::ArrivalDriver(sim::Engine &engine,
                             machine::Machine &machine,
                             machine::Pid fgPid, Time meanInterarrival,
                             Rng rng, core::DirigentRuntime *runtime)
    : engine_(engine), machine_(machine), fgPid_(fgPid),
      meanInterarrival_(meanInterarrival), rng_(rng), runtime_(runtime)
{
    DIRIGENT_ASSERT(meanInterarrival.sec() > 0.0,
                    "mean interarrival must be > 0");
    DIRIGENT_ASSERT(machine.os().process(fgPid).foreground,
                    "pid %u is not a foreground process", fgPid);
}

ArrivalDriver::~ArrivalDriver()
{
    stop();
}

void
ArrivalDriver::start()
{
    if (running_)
        return;
    running_ = true;
    // No work yet: hold the FG process.
    machine_.os().pause(fgPid_);
    busy_ = false;
    listener_ = machine_.addCompletionListener(
        [this](const machine::CompletionRecord &rec) {
            onCompletion(rec);
        });
    scheduleNextArrival();
}

void
ArrivalDriver::stop()
{
    if (!running_)
        return;
    running_ = false;
    machine_.removeCompletionListener(listener_);
    if (pendingArrival_.valid()) {
        engine_.events().cancel(pendingArrival_);
        pendingArrival_ = sim::EventId{};
    }
}

std::vector<double>
ArrivalDriver::responseTimes() const
{
    std::vector<double> out;
    out.reserve(completions_.size());
    for (const auto &c : completions_)
        out.push_back(c.responseTime().sec());
    return out;
}

void
ArrivalDriver::scheduleNextArrival()
{
    Time wait = Time::sec(rng_.exponential(meanInterarrival_.sec()));
    pendingArrival_ = engine_.after(wait, [this] {
        pendingArrival_ = sim::EventId{};
        if (!running_)
            return;
        onArrival();
        scheduleNextArrival();
    });
}

void
ArrivalDriver::onArrival()
{
    ++arrivals_;
    Time now = engine_.now();
    if (busy_) {
        queue_.push_back(now);
        maxQueue_ = std::max(maxQueue_, queue_.size());
        return;
    }
    inServiceArrival_ = now;
    beginService(now);
}

void
ArrivalDriver::beginService(Time now)
{
    busy_ = true;
    inServiceStart_ = now;
    machine::Process &proc = machine_.os().process(fgPid_);
    if (!proc.runnable()) {
        // Fresh request after idle: new task starting now, cold input.
        machine_.switchProgram(fgPid_, proc.program);
        machine_.os().resume(fgPid_);
        if (runtime_ != nullptr)
            runtime_->restartPredictionClock(fgPid_, now);
    }
    // When continuing straight from a completion, the machine already
    // restarted the task (and the runtime re-armed its predictor) at
    // the completion instant == now.
}

void
ArrivalDriver::onCompletion(const machine::CompletionRecord &rec)
{
    if (rec.pid != fgPid_ || !busy_)
        return;
    Completion done;
    done.arrived = inServiceArrival_;
    done.started = inServiceStart_;
    done.finished = rec.finished;
    done.queueDepth = queue_.size();
    completions_.push_back(done);

    if (queue_.empty()) {
        busy_ = false;
        machine_.os().pause(fgPid_);
        return;
    }
    inServiceArrival_ = queue_.front();
    queue_.pop_front();
    beginService(rec.finished);
}

} // namespace dirigent::harness
