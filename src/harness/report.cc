#include "harness/report.h"

#include <cstdlib>

#include "common/log.h"
#include "common/table.h"

namespace dirigent::harness {

void
printSchemeComparison(
    std::ostream &os,
    const std::vector<std::vector<SchemeRunResult>> &perMix)
{
    auto schemes = core::allSchemes();
    std::vector<std::string> headers = {"mix"};
    for (auto s : schemes) {
        headers.push_back(std::string(core::schemeName(s)) + " FG");
        headers.push_back(std::string(core::schemeName(s)) + " BG");
    }
    TextTable table(headers);
    for (const auto &mixResults : perMix) {
        DIRIGENT_ASSERT(mixResults.size() == schemes.size(),
                        "scheme result count mismatch");
        const auto &baseline = mixResults[0];
        std::vector<std::string> row = {mixResults[0].mixName};
        for (const auto &res : mixResults) {
            row.push_back(TextTable::num(res.fgSuccessRatio(), 3));
            row.push_back(
                TextTable::num(bgThroughputRatio(res, baseline), 3));
        }
        table.addRow(row);
    }
    table.print(os);
}

void
printSchemeSummary(std::ostream &os,
                   const std::vector<SchemeSummary> &summaries)
{
    TextTable table({"scheme", "FG success (amean)",
                     "BG throughput (hmean)", "norm. std (amean)"});
    for (const auto &s : summaries) {
        table.addRow({core::schemeName(s.scheme),
                      TextTable::num(s.meanFgSuccess, 3),
                      TextTable::num(s.hmeanBgThroughput, 3),
                      TextTable::num(s.meanStdRatio, 3)});
    }
    table.print(os);
}

void
printComparisonCsv(
    std::ostream &os,
    const std::vector<std::vector<SchemeRunResult>> &perMix)
{
    CsvWriter csv(os);
    csv.row({"mix", "scheme", "fg_success", "bg_ratio", "fg_mean_s",
             "fg_std_s", "fg_mpki", "final_fg_ways"});
    for (const auto &mixResults : perMix) {
        const auto &baseline = mixResults[0];
        for (const auto &res : mixResults) {
            csv.row({res.mixName, core::schemeName(res.scheme),
                     strfmt("%.4f", res.fgSuccessRatio()),
                     strfmt("%.4f", bgThroughputRatio(res, baseline)),
                     strfmt("%.5f", res.fgDurationMean()),
                     strfmt("%.5f", res.fgDurationStd()),
                     strfmt("%.3f", res.fgMpki()),
                     strfmt("%u", res.finalFgWays)});
        }
    }
}

void
printStdComparison(
    std::ostream &os,
    const std::vector<std::vector<SchemeRunResult>> &perMix)
{
    auto schemes = core::allSchemes();
    std::vector<std::string> headers = {"mix"};
    for (auto s : schemes)
        headers.push_back(core::schemeName(s));
    TextTable table(headers);
    for (const auto &mixResults : perMix) {
        const auto &baseline = mixResults[0];
        std::vector<std::string> row = {mixResults[0].mixName};
        for (const auto &res : mixResults)
            row.push_back(TextTable::num(stdRatio(res, baseline), 3));
        table.addRow(row);
    }
    table.print(os);
}

unsigned
envExecutions(unsigned fallback)
{
    const char *env = std::getenv("DIRIGENT_BENCH_EXECS");
    if (env == nullptr)
        return fallback;
    long v = std::strtol(env, nullptr, 10);
    if (v <= 0) {
        warn("ignoring invalid DIRIGENT_BENCH_EXECS");
        return fallback;
    }
    return unsigned(v);
}

uint64_t
envSeed(uint64_t fallback)
{
    const char *env = std::getenv("DIRIGENT_BENCH_SEED");
    if (env == nullptr)
        return fallback;
    return std::strtoull(env, nullptr, 10);
}

unsigned
envThreads(unsigned fallback)
{
    const char *env = std::getenv("DIRIGENT_THREADS");
    if (env == nullptr)
        return fallback;
    char *end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end == env || v < 0) {
        warn("ignoring invalid DIRIGENT_THREADS");
        return fallback;
    }
    return unsigned(v);
}

} // namespace dirigent::harness
