/**
 * @file
 * Time-series introspection: samples arbitrary probes (core frequency,
 * DRAM utilization, cache occupancy, predictions, …) at a fixed
 * simulated-time cadence and exports the series as CSV. Used by the
 * introspection example to show Dirigent's within-execution control
 * dynamics, and generally handy when debugging controller behaviour.
 */

#ifndef DIRIGENT_HARNESS_TIMELINE_H
#define DIRIGENT_HARNESS_TIMELINE_H

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/engine.h"

namespace dirigent::harness {

/**
 * A periodic recorder of named scalar probes.
 */
class Timeline
{
  public:
    /** A scalar source sampled at every tick. */
    using Probe = std::function<double()>;

    /**
     * @param engine engine supplying simulated time (not owned).
     * @param period sampling cadence.
     */
    Timeline(sim::Engine &engine, Time period);

    ~Timeline();

    Timeline(const Timeline &) = delete;
    Timeline &operator=(const Timeline &) = delete;

    /** Register a probe before start(); @p name labels its column. */
    void addSeries(std::string name, Probe probe);

    /** Begin sampling (first sample one period from now). */
    void start();

    /** Stop sampling; recorded data remains available. */
    void stop();

    /** Column names in registration order. */
    const std::vector<std::string> &seriesNames() const { return names_; }

    /** Sample times (seconds). */
    const std::vector<double> &times() const { return times_; }

    /** Recorded values: samples()[i] aligns with times()[i]. */
    const std::vector<std::vector<double>> &samples() const
    {
        return samples_;
    }

    /** Number of recorded sample rows. */
    size_t size() const { return times_.size(); }

    /** Emit "time,<series...>" CSV. */
    void writeCsv(std::ostream &os) const;

  private:
    void scheduleNext();

    sim::Engine &engine_;
    Time period_;
    std::vector<std::string> names_;
    std::vector<Probe> probes_;
    std::vector<double> times_;
    std::vector<std::vector<double>> samples_;
    bool running_ = false;
    sim::EventId pending_;
};

} // namespace dirigent::harness

#endif // DIRIGENT_HARNESS_TIMELINE_H
