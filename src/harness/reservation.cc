#include "harness/reservation.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/random.h"
#include "common/stats.h"

namespace dirigent::harness {

namespace {

/**
 * Draw a task duration with the configured mean and std using a
 * lognormal shape (durations are positive and right-skewed, like the
 * contended completion times in the paper's Fig. 1).
 */
double
drawDuration(Rng &rng, double mean, double std)
{
    if (std <= 0.0)
        return mean;
    // Match the first two moments of the lognormal.
    double cv2 = (std / mean) * (std / mean);
    double sigma = std::sqrt(std::log1p(cv2));
    double mu = std::log(mean) - 0.5 * sigma * sigma;
    return std::exp(rng.normal(mu, sigma));
}

} // namespace

ReservationResult
simulateReservation(const ReservationConfig &config)
{
    DIRIGENT_ASSERT(config.meanDuration > 0.0, "mean duration must be > 0");
    DIRIGENT_ASSERT(config.tasks > 0 && config.calibrationTasks > 1,
                    "need tasks to schedule and calibrate with");
    Rng rng(config.seed);

    std::vector<double> calibration;
    calibration.reserve(config.calibrationTasks);
    for (unsigned i = 0; i < config.calibrationTasks; ++i)
        calibration.push_back(
            drawDuration(rng, config.meanDuration, config.stdDuration));
    double reservation =
        percentile(calibration, config.reservationQuantile);

    ReservationResult result;
    result.reservation = reservation;
    OnlineStats durations;
    unsigned overruns = 0;
    for (unsigned i = 0; i < config.tasks; ++i) {
        double d =
            drawDuration(rng, config.meanDuration, config.stdDuration);
        durations.add(d);
        if (d > reservation)
            ++overruns;
    }
    result.meanDuration = durations.mean();
    result.utilization =
        durations.sum() / (double(config.tasks) * reservation);
    result.overrunRate = double(overruns) / double(config.tasks);
    return result;
}

ReservationResult
simulateReservationOnSamples(const std::vector<double> &durations,
                             double reservationQuantile,
                             double calibrationFraction)
{
    DIRIGENT_ASSERT(durations.size() >= 4, "need at least 4 samples");
    DIRIGENT_ASSERT(calibrationFraction > 0.0 && calibrationFraction < 1.0,
                    "calibration fraction must be in (0, 1)");
    size_t split = size_t(double(durations.size()) * calibrationFraction);
    split = std::clamp(split, size_t(2), durations.size() - 2);

    std::vector<double> calibration(durations.begin(),
                                    durations.begin() + long(split));
    double reservation = percentile(calibration, reservationQuantile);

    ReservationResult result;
    result.reservation = reservation;
    OnlineStats stats;
    unsigned overruns = 0;
    for (size_t i = split; i < durations.size(); ++i) {
        stats.add(durations[i]);
        if (durations[i] > reservation)
            ++overruns;
    }
    result.meanDuration = stats.mean();
    result.utilization =
        reservation > 0.0
            ? stats.sum() / (double(stats.count()) * reservation)
            : 0.0;
    result.overrunRate = double(overruns) / double(stats.count());
    return result;
}

} // namespace dirigent::harness
