#include "harness/experiment.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "check/check.h"
#include "check/invariants.h"
#include "common/hash.h"
#include "common/log.h"
#include "common/stats.h"
#include "dirigent/profile_fault.h"
#include "dirigent/reactive.h"
#include "dirigent/trace.h"
#include "machine/actuators.h"
#include "machine/cat.h"
#include "machine/cpufreq.h"
#include "obs/recorder.h"
#include "sim/engine.h"
#include "workload/benchmarks.h"
#include "workload/rotate.h"

namespace dirigent::harness {

ProfileCache::ProfileCache(const machine::MachineConfig &machineConfig,
                           const core::ProfilerConfig &profilerConfig)
    : machineConfig_(machineConfig), profilerConfig_(profilerConfig)
{
}

const core::Profile &
ProfileCache::get(const std::string &benchmarkName)
{
    auto it = cache_.find(benchmarkName);
    if (it != cache_.end())
        return it->second;
    const auto &bench =
        workload::BenchmarkLibrary::instance().get(benchmarkName);
    core::OfflineProfiler profiler(profilerConfig_);
    auto [ins, ok] =
        cache_.emplace(benchmarkName,
                       profiler.profileAlone(bench, machineConfig_));
    DIRIGENT_ASSERT(ok, "duplicate profile insert");
    return ins->second;
}

ExperimentRunner::ExperimentRunner(HarnessConfig config)
    : config_(config),
      ownProfiles_(std::make_unique<ProfileCache>(config.machine,
                                                  config.profiler)),
      profiles_(ownProfiles_.get())
{
    DIRIGENT_ASSERT(config.executions > 0, "need at least one execution");
}

ExperimentRunner::ExperimentRunner(HarnessConfig config,
                                   ProfileSource &sharedProfiles)
    : config_(config), profiles_(&sharedProfiles)
{
    DIRIGENT_ASSERT(config.executions > 0, "need at least one execution");
}

uint64_t
ExperimentRunner::mixSeed(const workload::WorkloadMix &mix) const
{
    return config_.seed ^ fnv1a64(mix.name);
}

core::SchemeSpec
ExperimentRunner::assemble(core::SchemeSpec spec,
                           const RunOptions &opts) const
{
    if (opts.attachObserver)
        spec.observer = true;
    if (opts.attachCoarseOnly)
        spec.coarse = true;
    if (opts.attachReactive)
        spec.reactive = true;
    if (opts.bgBandwidthCap > 0.0)
        spec.bgBandwidthCap = opts.bgBandwidthCap;
    // The partition-size override is meaningful only for partitioned
    // specs (matching the legacy behaviour of ignoring staticFgWays
    // everywhere but StaticBoth).
    if (spec.staticPartition && opts.staticFgWays > 0)
        spec.staticFgWays = opts.staticFgWays;
    return spec;
}

SchemeRunResult
ExperimentRunner::run(const workload::WorkloadMix &mix, core::Scheme scheme,
                      const std::map<std::string, Time> &deadlines,
                      const RunOptions &opts)
{
    // Name the conflicting RunOptions before folding them into a spec,
    // so the error speaks the caller's vocabulary.
    if (opts.attachReactive && core::schemeUsesRuntime(scheme)) {
        fatal(strfmt("RunOptions.attachReactive conflicts with scheme %s: "
                     "the reactive ablation replaces the Dirigent runtime",
                     core::schemeName(scheme)));
    }
    if (opts.attachReactive && opts.attachCoarseOnly) {
        fatal("RunOptions.attachReactive conflicts with "
              "RunOptions.attachCoarseOnly: the reactive ablation "
              "replaces the Dirigent runtime");
    }
    core::SchemeSpec assembled = assemble(core::schemeSpec(scheme), opts);
    if (auto error = core::validateSchemeSpec(assembled))
        fatal(*error);
    return runAssembled(mix, assembled, scheme, deadlines, opts);
}

SchemeRunResult
ExperimentRunner::run(const workload::WorkloadMix &mix,
                      const core::SchemeSpec &spec,
                      const std::map<std::string, Time> &deadlines,
                      const RunOptions &opts)
{
    core::SchemeSpec assembled = assemble(spec, opts);
    if (auto error = core::validateSchemeSpec(assembled))
        fatal(*error);
    // Group the result under the builtin enum of the same name when one
    // exists (sweep summaries key on the enum); Baseline otherwise.
    core::Scheme enumScheme =
        core::schemeFromName(assembled.name).value_or(core::Scheme::Baseline);
    return runAssembled(mix, assembled, enumScheme, deadlines, opts);
}

SchemeRunResult
ExperimentRunner::runAssembled(const workload::WorkloadMix &mix,
                               const core::SchemeSpec &assembled,
                               core::Scheme enumScheme,
                               const std::map<std::string, Time> &deadlines,
                               const RunOptions &opts)
{
    // Resolve the one deferred knob: a partitioned spec without an
    // explicit size uses the harness default. This is the single
    // fallback point (callers no longer duplicate it).
    core::SchemeSpec spec = assembled;
    if (spec.staticPartition && spec.staticFgWays == 0)
        spec.staticFgWays = config_.staticFgWaysDefault;

    const auto &lib = workload::BenchmarkLibrary::instance();
    const unsigned executions =
        opts.executions ? opts.executions : config_.executions;
    const unsigned warmup = config_.warmup;

    machine::MachineConfig mcfg = config_.machine;
    mcfg.seed = mixSeed(mix); // identical workload stream for all schemes
    machine::Machine machine(mcfg);
    sim::Engine engine(machine, mcfg.maxQuantum);
    machine::CpuFreqGovernor governor(machine, engine);
    machine::CatController cat(machine);
    machine::MachineActuators actuators(machine, governor, cat);

    std::optional<check::InvariantChecker> checker;
    if (check::enabled()) {
        check::CheckerConfig ccfg;
        ccfg.abortOnViolation = check::abortPreferred();
        checker.emplace(machine, &engine, ccfg);
        checker->attachGovernor(&governor);
        engine.addObserver(&*checker);
    }

    // Fault injection: an explicit per-run injector (chaos tests) wins
    // over the harness-wide plan (CLI --faults / DIRIGENT_FAULTS).
    std::unique_ptr<fault::FaultInjector> ownFaults;
    fault::FaultInjector *faults = opts.faults;
    if (faults == nullptr && !config_.faultPlan.empty()) {
        ownFaults = std::make_unique<fault::FaultInjector>(
            config_.faultPlan, mcfg.seed ^ 0xFA017);
        faults = ownFaults.get();
    }
    if (faults != nullptr) {
        actuators.setFaultInjector(faults);
        if (checker)
            checker->attachFaultInjector(faults);
    }

    const unsigned nFg = unsigned(mix.fgCount());
    const unsigned nCores = machine.numCores();
    if (nFg >= nCores)
        fatal(strfmt("mix '%s' needs %u FG cores of %u", mix.name.c_str(),
                     nFg, nCores));

    // Spawn foreground processes on cores [0, nFg).
    std::vector<machine::Pid> fgPids;
    for (unsigned i = 0; i < nFg; ++i) {
        machine::ProcessSpec spec;
        spec.name = strfmt("%s#%u", mix.fg[i].c_str(), i);
        spec.program = &lib.get(mix.fg[i]).program;
        spec.core = i;
        spec.foreground = true;
        spec.niceness = -20;
        fgPids.push_back(machine.spawnProcess(spec));
    }

    // Spawn background processes on the remaining cores.
    Rng rotateRng = Rng(mcfg.seed).fork(0x1307A7E);
    std::optional<workload::RotatePair> pair;
    if (mix.bg.kind == workload::BgSpec::Kind::Rotate) {
        pair.emplace(&lib.get(mix.bg.first), &lib.get(mix.bg.second));
    }
    std::vector<machine::Pid> bgPids;
    for (unsigned c = nFg; c < nCores; ++c) {
        const workload::Benchmark &bench =
            pair ? pair->pick(rotateRng) : lib.get(mix.bg.first);
        machine::ProcessSpec spec;
        spec.name = strfmt("%s@%u", bench.name.c_str(), c);
        spec.program = &bench.program;
        spec.core = c;
        spec.foreground = false;
        spec.niceness = 5;
        bgPids.push_back(machine.spawnProcess(spec));
    }

    // Rotating pairs context-switch every BG core at each FG completion.
    if (pair) {
        machine.addCompletionListener(
            [&](const machine::CompletionRecord &rec) {
                if (!rec.foreground)
                    return;
                for (machine::Pid pid : bgPids) {
                    machine.switchProgram(
                        pid, &pair->pick(rotateRng).program);
                }
            });
    }

    if (opts.golden != nullptr) {
        core::GoldenTraceRecorder *golden = opts.golden;
        machine.addCompletionListener(
            [golden](const machine::CompletionRecord &rec) {
                golden->recordCompletion(rec);
            });
    }

    // Static knobs, straight from the spec: bandwidth cap, BG frequency
    // pin, FG cache partition.
    if (spec.bgBandwidthCap > 0.0) {
        for (machine::Pid pid : bgPids) {
            actuators.bandwidth().setBudget(
                machine.os().process(pid).core, spec.bgBandwidthCap);
        }
    }
    if (spec.bgFreqGrade >= 0) {
        for (machine::Pid pid : bgPids)
            actuators.frequency().setGrade(machine.os().process(pid).core,
                                           unsigned(spec.bgFreqGrade));
    }
    if (spec.staticPartition)
        actuators.partition().setFgWays(spec.staticFgWays);

    // The spec's [predictor] section wins when it deviates from the
    // defaults; otherwise the harness-wide predictor applies (CLI
    // runtime.predictor=...). Both paths run through the same registry.
    core::PredictorSpec predictorSpec =
        spec.predictor == core::PredictorSpec{} ? config_.runtime.predictor
                                                : spec.predictor;

    std::unique_ptr<core::DirigentRuntime> runtime;
    std::vector<core::Profile> corruptedProfiles;
    if (spec.attachesRuntime()) {
        core::RuntimeConfig rcfg = config_.runtime;
        rcfg.predictor = predictorSpec;
        rcfg.enableFine = spec.fine;
        rcfg.enableCoarse = spec.coarse;
        rcfg.runtimeCore = nFg; // shared with the first BG task
        rcfg.seed = mcfg.seed ^ 0xD1D1;
        rcfg.faults = faults;
        runtime = std::make_unique<core::DirigentRuntime>(
            machine, engine, actuators.set(), rcfg);
        corruptedProfiles.reserve(nFg); // stable addresses
        for (unsigned i = 0; i < nFg; ++i) {
            const std::string &bench = mix.fg[i];
            auto it = deadlines.find(bench);
            Time deadline = it != deadlines.end()
                                ? it->second
                                : profiles_->get(bench).totalTime() * 2.0;
            const core::Profile *prof = &profiles_->get(bench);
            if (faults != nullptr) {
                corruptedProfiles.push_back(core::corruptProfile(
                    *prof, faults->plan().profile,
                    faults->profileRng().fork(i)));
                prof = &corruptedProfiles.back();
            }
            runtime->addForeground(fgPids[i], prof, deadline);
        }
        if (opts.golden != nullptr)
            runtime->setTrace(&opts.golden->decisions());
        runtime->start();
        if (checker) {
            core::DirigentRuntime *rt = runtime.get();
            checker->addCheck(
                "predictor-finite",
                [rt, fgPids]() -> std::optional<std::string> {
                    for (machine::Pid pid : fgPids) {
                        double est = rt->predictor(pid).predictTotal().sec();
                        if (!std::isfinite(est) || est <= 0.0) {
                            return strfmt("pid %u predicts total %.9g s",
                                          pid, est);
                        }
                    }
                    return std::nullopt;
                });
        }
    }

    // Telemetry: a passive probe sampling into the caller's recorder.
    // Everything it hooks (engine observer, completion listener,
    // decision-trace sink) is read-only, so attaching it does not
    // perturb the run; when opts.recorder is null nothing at all is
    // attached and behaviour is bit-identical to pre-telemetry builds.
    std::unique_ptr<obs::RunProbe> probe;
    std::optional<core::DecisionTrace> probeTrace;
    core::DecisionTrace *sinkTrace = nullptr;
    size_t probeListener = 0;
    if (opts.recorder != nullptr) {
        obs::RunProbe::Sources src;
        src.machine = &machine;
        src.governor = &governor;
        src.cat = &cat;
        src.runtime = runtime.get();
        src.faults = faults;
        src.fgPids = fgPids;
        for (unsigned i = 0; i < nFg; ++i) {
            auto it = deadlines.find(mix.fg[i]);
            if (it != deadlines.end())
                src.fgDeadlineSec[fgPids[i]] = it->second.sec();
        }
        probe = std::make_unique<obs::RunProbe>(*opts.recorder, src);
        engine.addObserver(probe.get());
        probeListener = machine.addCompletionListener(
            [p = probe.get()](const machine::CompletionRecord &rec) {
                p->onCompletion(rec);
            });
        // Mirror controller decisions: reuse the golden trace when one
        // is attached (its sink sees every event before eviction),
        // else give the runtime a recorder-local trace.
        if (opts.golden != nullptr) {
            sinkTrace = &opts.golden->decisions();
        } else if (runtime) {
            probeTrace.emplace();
            sinkTrace = &*probeTrace;
            runtime->setTrace(sinkTrace);
        }
        if (sinkTrace != nullptr) {
            sinkTrace->setSink(
                [p = probe.get()](const core::TraceEvent &ev) {
                    p->onDecision(ev);
                });
        }

        obs::RunManifest &manifest = opts.recorder->manifest();
        manifest.mixName = mix.name;
        manifest.scheme = assembled.name;
        // The *assembled* (pre-resolution) spec is recorded, so a run
        // driven by a scheme file carries that file's exact hash.
        manifest.schemeSpecText = core::formatSchemeSpec(assembled);
        manifest.schemeSpecHash = core::schemeSpecHash(assembled);
        manifest.seed = mcfg.seed;
        manifest.warmup = warmup;
        manifest.executions = executions;
        manifest.samplingPeriod = config_.runtime.samplingPeriod;
        manifest.decisionPeriodTicks =
            config_.runtime.decisionPeriodTicks;
        if (spec.attachesRuntime()) {
            manifest.predictor = predictorSpec.kind;
            manifest.predictorSpecHash =
                core::predictorSpecHash(predictorSpec);
        }
        if (faults != nullptr) {
            manifest.faultPlanText =
                fault::formatFaultPlan(faults->plan());
            manifest.faultPlanHash = fnv1a64(manifest.faultPlanText);
        }
    }

    std::unique_ptr<core::ReactiveController> reactive;
    if (spec.reactive) {
        // fine/coarse conflicts were rejected by validateSchemeSpec()
        // before assembly reached this point.
        reactive = std::make_unique<core::ReactiveController>(
            machine, actuators.frequency(), actuators.pause());
        for (unsigned i = 0; i < nFg; ++i) {
            auto it = deadlines.find(mix.fg[i]);
            DIRIGENT_ASSERT(it != deadlines.end(),
                            "reactive controller needs deadlines");
            reactive->addForeground(fgPids[i], it->second);
        }
        reactive->start();
    }

    // Metric collection.
    SchemeRunResult result;
    result.mixName = mix.name;
    result.scheme = enumScheme;
    result.schemeLabel = assembled.name;
    result.specHash = core::schemeSpecHash(assembled);
    result.deadlines = deadlines;
    result.fgBenchmarks = mix.fg;
    result.perFgDurations.resize(nFg);

    std::vector<uint64_t> completed(nFg, 0);
    bool windowOpen = false;
    bool done = false;
    Time windowStart, windowEnd;
    struct Snapshot
    {
        double bgInstr = 0.0, fgInstr = 0.0, fgMiss = 0.0, allMiss = 0.0;
    };
    auto takeSnapshot = [&]() {
        Snapshot s;
        for (unsigned c = 0; c < nCores; ++c) {
            const auto &ctr = machine.readCounters(c);
            s.allMiss += ctr.llcMisses;
            if (c < nFg) {
                s.fgInstr += ctr.instructions;
                s.fgMiss += ctr.llcMisses;
            } else {
                s.bgInstr += ctr.instructions;
            }
        }
        return s;
    };
    Snapshot snapStart, snapEnd;

    auto fgIndexOf = [&](machine::Pid pid) -> int {
        for (unsigned i = 0; i < nFg; ++i)
            if (fgPids[i] == pid)
                return int(i);
        return -1;
    };

    size_t metricsListener = machine.addCompletionListener(
        [&](const machine::CompletionRecord &rec) {
            if (!rec.foreground || done)
                return;
            int idx = fgIndexOf(rec.pid);
            DIRIGENT_ASSERT(idx >= 0, "unknown FG pid %u", rec.pid);
            completed[idx] += 1;

            if (rec.executionIndex >= warmup &&
                rec.executionIndex < warmup + executions) {
                double d = rec.duration().sec();
                result.perFgDurations[idx].push_back(d);
                auto it = deadlines.find(mix.fg[idx]);
                result.total += 1;
                if (it != deadlines.end() &&
                    d <= it->second.sec() * (1.0 + 1e-9))
                    result.onTime += 1;
            }

            if (!windowOpen &&
                std::all_of(completed.begin(), completed.end(),
                            [&](uint64_t n) { return n >= warmup; })) {
                windowOpen = true;
                windowStart = rec.finished;
                snapStart = takeSnapshot();
            }
            if (windowOpen && !done &&
                std::all_of(completed.begin(), completed.end(),
                            [&](uint64_t n) {
                                return n >= warmup + executions;
                            })) {
                done = true;
                windowEnd = rec.finished;
                snapEnd = takeSnapshot();
            }
        });

    while (!done && engine.now() < config_.bailout)
        engine.runFor(Time::ms(50.0));
    machine.removeCompletionListener(metricsListener);
    if (!done)
        fatal(strfmt("run '%s'/%s did not finish within %gs simulated",
                     mix.name.c_str(), assembled.name.c_str(),
                     config_.bailout.sec()));

    if (probe) {
        probe->finish();
        engine.removeObserver(probe.get());
        machine.removeCompletionListener(probeListener);
        if (sinkTrace != nullptr)
            sinkTrace->setSink(nullptr);
    }

    result.span = windowEnd - windowStart;
    result.bgInstructions = snapEnd.bgInstr - snapStart.bgInstr;
    result.fgInstructions = snapEnd.fgInstr - snapStart.fgInstr;
    result.fgMisses = snapEnd.fgMiss - snapStart.fgMiss;
    result.totalMisses = snapEnd.allMiss - snapStart.allMiss;

    if (runtime) {
        runtime->stop();
        result.predictorName = predictorSpec.kind;
        result.bgGradeResidency =
            runtime->fineController().stats().bgGradeResidency;
        for (Freq f : runtime->fineController().ladderFreqs())
            result.ladderGhz.push_back(f.ghz());
        if (auto *coarse = runtime->coarseController()) {
            result.partitionDecisions = coarse->decisions();
            result.finalFgWays = coarse->fgWays();
        } else if (spec.staticPartition) {
            result.finalFgWays = cat.fgWays();
        }
        for (machine::Pid pid : fgPids) {
            for (const auto &s : runtime->midpointSamples(pid))
                if (s.executionIndex >= warmup &&
                    s.executionIndex < warmup + executions)
                    result.midpointSamples.push_back(s);
        }
    } else if (spec.staticPartition) {
        result.finalFgWays = cat.fgWays();
    }

    return result;
}

SchemeRunResult
ExperimentRunner::runStandalone(const std::string &fgName,
                                unsigned executions)
{
    const auto &lib = workload::BenchmarkLibrary::instance();
    const auto &bench = lib.get(fgName);
    DIRIGENT_ASSERT(bench.category == workload::Category::Foreground,
                    "'%s' is not a foreground benchmark", fgName.c_str());
    const unsigned execs = executions ? executions : config_.executions;
    const unsigned warmup = std::min(config_.warmup, 2u);

    machine::MachineConfig mcfg = config_.machine;
    mcfg.seed = config_.seed ^ fnv1a64("standalone:" + fgName);
    machine::Machine machine(mcfg);
    sim::Engine engine(machine, mcfg.maxQuantum);

    std::optional<check::InvariantChecker> checker;
    if (check::enabled()) {
        checker.emplace(machine, &engine);
        engine.addObserver(&*checker);
    }

    machine::ProcessSpec spec;
    spec.name = fgName;
    spec.program = &bench.program;
    spec.core = 0;
    spec.foreground = true;
    spec.niceness = -20;
    machine::Pid pid = machine.spawnProcess(spec);
    (void)pid;

    SchemeRunResult result;
    result.mixName = fgName + " standalone";
    result.scheme = core::Scheme::Baseline;
    result.fgBenchmarks = {fgName};
    result.perFgDurations.resize(1);

    bool done = false;
    Time windowStart, windowEnd;
    double instr0 = 0.0, miss0 = 0.0;
    size_t listener = machine.addCompletionListener(
        [&](const machine::CompletionRecord &rec) {
            if (done)
                return;
            if (rec.executionIndex + 1 == warmup) {
                windowStart = rec.finished;
                instr0 = machine.readCounters(0).instructions;
                miss0 = machine.readCounters(0).llcMisses;
            }
            if (rec.executionIndex >= warmup) {
                result.perFgDurations[0].push_back(rec.duration().sec());
                result.total += 1;
            }
            if (rec.executionIndex + 1 >= warmup + execs) {
                done = true;
                windowEnd = rec.finished;
            }
        });

    while (!done && engine.now() < config_.bailout)
        engine.runFor(Time::ms(50.0));
    machine.removeCompletionListener(listener);
    if (!done)
        fatal(strfmt("standalone run of '%s' did not finish",
                     fgName.c_str()));

    result.span = windowEnd - windowStart;
    result.fgInstructions =
        machine.readCounters(0).instructions - instr0;
    result.fgMisses = machine.readCounters(0).llcMisses - miss0;
    result.totalMisses = result.fgMisses;
    return result;
}

std::map<std::string, Time>
ExperimentRunner::deadlinesFromBaseline(
    const SchemeRunResult &baseline) const
{
    // Pool durations per benchmark (multi-FG mixes repeat a benchmark).
    std::map<std::string, OnlineStats> stats;
    for (size_t i = 0; i < baseline.fgBenchmarks.size(); ++i)
        for (double d : baseline.perFgDurations[i])
            stats[baseline.fgBenchmarks[i]].add(d);

    std::map<std::string, Time> deadlines;
    for (const auto &[name, st] : stats) {
        deadlines[name] = Time::sec(
            st.mean() + config_.deadlineSigmaFactor * st.stddev());
    }
    return deadlines;
}

std::vector<SchemeRunResult>
ExperimentRunner::runAllSchemes(const workload::WorkloadMix &mix)
{
    // Baseline doubles as the deadline calibration run.
    SchemeRunResult baseline =
        run(mix, core::Scheme::Baseline, {});
    auto deadlines = deadlinesFromBaseline(baseline);
    applyDeadlines(baseline, deadlines);

    // Dirigent runs next; its converged partition defines StaticBoth's
    // "best static partition" (the paper verified the heuristic's
    // partition is near-optimal).
    SchemeRunResult dirigent =
        run(mix, core::Scheme::Dirigent, deadlines);
    RunOptions staticOpts;
    // 0 (Dirigent somehow converged to no partition) resolves to the
    // harness default inside the run — the single fallback point.
    staticOpts.staticFgWays = dirigent.finalFgWays;

    SchemeRunResult staticFreq =
        run(mix, core::Scheme::StaticFreq, deadlines);
    SchemeRunResult staticBoth =
        run(mix, core::Scheme::StaticBoth, deadlines, staticOpts);
    SchemeRunResult dirigentFreq =
        run(mix, core::Scheme::DirigentFreq, deadlines);

    std::vector<SchemeRunResult> results;
    results.push_back(std::move(baseline));
    results.push_back(std::move(staticFreq));
    results.push_back(std::move(staticBoth));
    results.push_back(std::move(dirigentFreq));
    results.push_back(std::move(dirigent));
    return results;
}

} // namespace dirigent::harness
