/**
 * @file
 * ExperimentRunner::runServing: the serving-mode counterpart of
 * runAssembled in experiment.cc. The machine / scheme / fault assembly
 * is deliberately kept parallel (not shared) with the batch path so
 * the batch path — and its golden traces — cannot be perturbed by
 * serving-only concerns.
 */

#include <algorithm>
#include <cmath>
#include <optional>

#include "check/check.h"
#include "check/invariants.h"
#include "common/hash.h"
#include "common/log.h"
#include "dirigent/profile_fault.h"
#include "dirigent/reactive.h"
#include "dirigent/trace.h"
#include "harness/experiment.h"
#include "harness/serving.h"
#include "machine/actuators.h"
#include "machine/cat.h"
#include "machine/cpufreq.h"
#include "obs/fleet.h"
#include "obs/recorder.h"
#include "obs/span.h"
#include "serve/admission.h"
#include "serve/driver.h"
#include "sim/engine.h"
#include "workload/benchmarks.h"
#include "workload/rotate.h"

namespace dirigent::harness {

ServingRunResult
ExperimentRunner::runServing(const workload::WorkloadMix &mix,
                             const core::SchemeSpec &inputSpec,
                             const serve::ServeSpec &serveSpec,
                             const std::map<std::string, Time> &deadlines,
                             const RunOptions &opts)
{
    core::SchemeSpec spec = inputSpec;
    if (auto error = core::validateSchemeSpec(spec))
        fatal(*error);
    if (auto error = serve::validateServeSpec(serveSpec))
        fatal(*error);
    if (spec.staticPartition && spec.staticFgWays == 0)
        spec.staticFgWays = config_.staticFgWaysDefault;

    const auto &lib = workload::BenchmarkLibrary::instance();

    machine::MachineConfig mcfg = config_.machine;
    mcfg.seed = mixSeed(mix); // identical workload stream for all schemes
    machine::Machine machine(mcfg);
    sim::Engine engine(machine, mcfg.maxQuantum);
    machine::CpuFreqGovernor governor(machine, engine);
    machine::CatController cat(machine);
    machine::MachineActuators actuators(machine, governor, cat);

    std::optional<check::InvariantChecker> checker;
    if (check::enabled()) {
        check::CheckerConfig ccfg;
        ccfg.abortOnViolation = check::abortPreferred();
        checker.emplace(machine, &engine, ccfg);
        checker->attachGovernor(&governor);
        engine.addObserver(&*checker);
    }

    std::unique_ptr<fault::FaultInjector> ownFaults;
    fault::FaultInjector *faults = opts.faults;
    if (faults == nullptr && !config_.faultPlan.empty()) {
        ownFaults = std::make_unique<fault::FaultInjector>(
            config_.faultPlan, mcfg.seed ^ 0xFA017);
        faults = ownFaults.get();
    }
    if (faults != nullptr) {
        actuators.setFaultInjector(faults);
        if (checker)
            checker->attachFaultInjector(faults);
    }

    const unsigned nFg = unsigned(mix.fgCount());
    const unsigned nCores = machine.numCores();
    if (nFg >= nCores)
        fatal(strfmt("mix '%s' needs %u FG cores of %u",
                     mix.name.c_str(), nFg, nCores));

    std::vector<machine::Pid> fgPids;
    for (unsigned i = 0; i < nFg; ++i) {
        machine::ProcessSpec ps;
        ps.name = strfmt("%s#%u", mix.fg[i].c_str(), i);
        ps.program = &lib.get(mix.fg[i]).program;
        ps.core = i;
        ps.foreground = true;
        ps.niceness = -20;
        fgPids.push_back(machine.spawnProcess(ps));
    }

    Rng rotateRng = Rng(mcfg.seed).fork(0x1307A7E);
    std::optional<workload::RotatePair> pair;
    if (mix.bg.kind == workload::BgSpec::Kind::Rotate)
        pair.emplace(&lib.get(mix.bg.first), &lib.get(mix.bg.second));
    std::vector<machine::Pid> bgPids;
    for (unsigned c = nFg; c < nCores; ++c) {
        const workload::Benchmark &bench =
            pair ? pair->pick(rotateRng) : lib.get(mix.bg.first);
        machine::ProcessSpec ps;
        ps.name = strfmt("%s@%u", bench.name.c_str(), c);
        ps.program = &bench.program;
        ps.core = c;
        ps.foreground = false;
        ps.niceness = 5;
        bgPids.push_back(machine.spawnProcess(ps));
    }
    if (pair) {
        machine.addCompletionListener(
            [&](const machine::CompletionRecord &rec) {
                if (!rec.foreground)
                    return;
                for (machine::Pid pid : bgPids) {
                    machine.switchProgram(
                        pid, &pair->pick(rotateRng).program);
                }
            });
    }

    if (opts.golden != nullptr) {
        core::GoldenTraceRecorder *golden = opts.golden;
        machine.addCompletionListener(
            [golden](const machine::CompletionRecord &rec) {
                golden->recordCompletion(rec);
            });
    }

    if (spec.bgBandwidthCap > 0.0) {
        for (machine::Pid pid : bgPids) {
            actuators.bandwidth().setBudget(
                machine.os().process(pid).core, spec.bgBandwidthCap);
        }
    }
    if (spec.bgFreqGrade >= 0) {
        for (machine::Pid pid : bgPids)
            actuators.frequency().setGrade(
                machine.os().process(pid).core,
                unsigned(spec.bgFreqGrade));
    }
    if (spec.staticPartition)
        actuators.partition().setFgWays(spec.staticFgWays);

    // Same overlay rule as the batch path: a spec [predictor] section
    // deviating from the defaults wins over the harness-wide predictor.
    core::PredictorSpec predictorSpec =
        spec.predictor == core::PredictorSpec{} ? config_.runtime.predictor
                                                : spec.predictor;

    std::unique_ptr<core::DirigentRuntime> runtime;
    std::vector<core::Profile> corruptedProfiles;
    if (spec.attachesRuntime()) {
        core::RuntimeConfig rcfg = config_.runtime;
        rcfg.predictor = predictorSpec;
        rcfg.enableFine = spec.fine;
        rcfg.enableCoarse = spec.coarse;
        rcfg.runtimeCore = nFg;
        rcfg.seed = mcfg.seed ^ 0xD1D1;
        rcfg.faults = faults;
        runtime = std::make_unique<core::DirigentRuntime>(
            machine, engine, actuators.set(), rcfg);
        corruptedProfiles.reserve(nFg); // stable addresses
        for (unsigned i = 0; i < nFg; ++i) {
            const std::string &bench = mix.fg[i];
            auto it = deadlines.find(bench);
            Time deadline = it != deadlines.end()
                                ? it->second
                                : profiles_->get(bench).totalTime() * 2.0;
            const core::Profile *prof = &profiles_->get(bench);
            if (faults != nullptr) {
                corruptedProfiles.push_back(core::corruptProfile(
                    *prof, faults->plan().profile,
                    faults->profileRng().fork(i)));
                prof = &corruptedProfiles.back();
            }
            runtime->addForeground(fgPids[i], prof, deadline);
        }
        if (opts.golden != nullptr)
            runtime->setTrace(&opts.golden->decisions());
        runtime->start();
    }

    std::unique_ptr<core::ReactiveController> reactive;
    if (spec.reactive) {
        reactive = std::make_unique<core::ReactiveController>(
            machine, actuators.frequency(), actuators.pause());
        for (unsigned i = 0; i < nFg; ++i) {
            auto it = deadlines.find(mix.fg[i]);
            DIRIGENT_ASSERT(it != deadlines.end(),
                            "reactive controller needs deadlines");
            reactive->addForeground(fgPids[i], it->second);
        }
        reactive->start();
    }

    // Telemetry probe + span decision mirror (passive; see the batch
    // path for the contract). The single DecisionTrace sink fans out
    // to whichever of the two consumers is attached.
    std::unique_ptr<obs::RunProbe> probe;
    std::optional<core::DecisionTrace> probeTrace;
    core::DecisionTrace *sinkTrace = nullptr;
    size_t probeListener = 0;
    if (opts.recorder != nullptr || opts.spans != nullptr) {
        if (opts.recorder != nullptr) {
            obs::RunProbe::Sources src;
            src.machine = &machine;
            src.governor = &governor;
            src.cat = &cat;
            src.runtime = runtime.get();
            src.faults = faults;
            src.fgPids = fgPids;
            for (unsigned i = 0; i < nFg; ++i) {
                auto it = deadlines.find(mix.fg[i]);
                if (it != deadlines.end())
                    src.fgDeadlineSec[fgPids[i]] = it->second.sec();
            }
            probe = std::make_unique<obs::RunProbe>(*opts.recorder, src);
            engine.addObserver(probe.get());
            probeListener = machine.addCompletionListener(
                [p = probe.get()](const machine::CompletionRecord &rec) {
                    p->onCompletion(rec);
                });
        }
        if (opts.golden != nullptr) {
            sinkTrace = &opts.golden->decisions();
        } else {
            // Serving always has decisions to mirror (shed/drop/limit
            // events), runtime or not.
            probeTrace.emplace();
            sinkTrace = &*probeTrace;
            if (runtime)
                runtime->setTrace(sinkTrace);
        }
        sinkTrace->setSink(
            [p = probe.get(),
             s = opts.spans](const core::TraceEvent &ev) {
                if (p != nullptr)
                    p->onDecision(ev);
                if (s != nullptr)
                    s->recordDecision(ev);
            });
    }
    if (opts.recorder != nullptr) {
        obs::RunManifest &manifest = opts.recorder->manifest();
        manifest.mixName = mix.name;
        manifest.scheme = spec.name;
        manifest.schemeSpecText = core::formatSchemeSpec(inputSpec);
        manifest.schemeSpecHash = core::schemeSpecHash(inputSpec);
        manifest.seed = mcfg.seed;
        manifest.warmup = 0;     // serving measures a time window,
        manifest.executions = 0; // not execution counts
        manifest.samplingPeriod = config_.runtime.samplingPeriod;
        manifest.decisionPeriodTicks =
            config_.runtime.decisionPeriodTicks;
        if (spec.attachesRuntime()) {
            manifest.predictor = predictorSpec.kind;
            manifest.predictorSpecHash =
                core::predictorSpecHash(predictorSpec);
        }
        if (faults != nullptr) {
            manifest.faultPlanText =
                fault::formatFaultPlan(faults->plan());
            manifest.faultPlanHash = fnv1a64(manifest.faultPlanText);
        }
        manifest.extra["serve_spec"] =
            serve::formatServeSpec(serveSpec);
        manifest.extra["serve_spec_hash"] = strfmt(
            "%llu",
            (unsigned long long)serve::serveSpecHash(serveSpec));
    }

    // One serving driver per FG slot, each with an independent arrival
    // stream derived from the mix seed (so, like the workload stream,
    // arrivals are identical across schemes).
    core::DecisionTrace *driverTrace =
        opts.golden != nullptr ? &opts.golden->decisions() : sinkTrace;
    if (opts.arrivalOverride != nullptr &&
        opts.arrivalOverride->size() != nFg)
        fatal(strfmt("arrival override has %zu slot traces, mix '%s' "
                     "has %u FG slots",
                     opts.arrivalOverride->size(), mix.name.c_str(),
                     nFg));
    std::vector<std::unique_ptr<serve::ServeDriver>> drivers;
    for (unsigned i = 0; i < nFg; ++i) {
        serve::ServeDriverConfig dcfg;
        dcfg.fgPid = fgPids[i];
        dcfg.fgSlot = i;
        dcfg.queueCapacity = serveSpec.queueCapacity;
        dcfg.discipline = serveSpec.discipline;
        dcfg.horizon = Time::sec(serveSpec.horizonSec);
        dcfg.warmup = Time::sec(serveSpec.warmupSec);
        std::unique_ptr<serve::ArrivalProcess> arrivals =
            opts.arrivalOverride != nullptr
                ? std::make_unique<serve::TraceArrivals>(
                      (*opts.arrivalOverride)[i])
                : serve::makeArrivalProcess(serveSpec.arrivals,
                                            mcfg.seed + i);
        auto driver = std::make_unique<serve::ServeDriver>(
            engine, machine, std::move(arrivals), dcfg, runtime.get(),
            serve::makeAdmissionController(spec));
        if (driverTrace != nullptr)
            driver->setTrace(driverTrace);
        if (opts.recorder != nullptr)
            driver->setRecorder(opts.recorder);
        if (opts.spans != nullptr)
            driver->setSpans(opts.spans);
        drivers.push_back(std::move(driver));
    }
    for (auto &driver : drivers)
        driver->start();

    auto allDone = [&]() {
        return std::all_of(drivers.begin(), drivers.end(),
                           [](const auto &d) { return d->done(); });
    };
    while (!allDone() && engine.now() < config_.bailout)
        engine.runFor(Time::ms(50.0));
    if (!allDone())
        fatal(strfmt("serving run '%s'/%s did not drain within %gs "
                     "simulated",
                     mix.name.c_str(), spec.name.c_str(),
                     config_.bailout.sec()));
    for (auto &driver : drivers)
        driver->stop();

    if (runtime)
        runtime->stop();
    if (reactive)
        reactive->stop();

    // Collect results before the probe detaches so end-of-run metrics
    // (completions, fault counters) land in the recorder.
    ServingRunResult result;
    result.mixName = mix.name;
    result.scheme = core::schemeFromName(spec.name)
                        .value_or(core::Scheme::Baseline);
    result.schemeLabel = spec.name;
    result.specHash = core::schemeSpecHash(inputSpec);
    result.serveHash = serve::serveSpecHash(serveSpec);
    result.arrivalKind = serveSpec.arrivals.kind;
    result.offeredRate = serveSpec.arrivals.meanRate();
    result.span =
        Time::sec(serveSpec.horizonSec - serveSpec.warmupSec);
    for (auto &driver : drivers) {
        result.arrivals += driver->arrivals();
        result.completed += driver->completed();
        result.dropped += driver->dropped();
        result.shed += driver->shed();
        result.maxQueueDepth =
            std::max(result.maxQueueDepth, driver->maxQueueDepth());
        for (double s : driver->measuredStats().samples())
            result.stats.add(s);
        result.perFgRequests.push_back(driver->requests());
        if (driver->admission() != nullptr)
            result.finalAdmitLimits.push_back(
                driver->admission()->limit());
    }
    if (runtime) {
        result.predictorName = predictorSpec.kind;
        for (machine::Pid pid : fgPids)
            if (runtime->degradedMode(pid))
                result.degraded = true;
    }
    result.meanSec = result.stats.mean();
    result.p50Sec = result.stats.quantile(0.50);
    result.p95Sec = result.stats.quantile(0.95);
    result.p99Sec = result.stats.quantile(0.99);
    result.p999Sec = result.stats.quantile(0.999);
    result.verdicts = serve::evaluateSlos(serveSpec.slos, result.stats);

    if (probe) {
        probe->finish();
        engine.removeObserver(probe.get());
        machine.removeCompletionListener(probeListener);
    }
    if (sinkTrace != nullptr)
        sinkTrace->setSink(nullptr);
    if (opts.spans != nullptr)
        opts.spans->finalize();

    if (probe) {
        obs::RequestSummary &summary =
            opts.recorder->manifest().requests;
        summary.present = true;
        summary.arrivals = result.arrivals;
        summary.completed = result.completed;
        summary.dropped = result.dropped;
        summary.shed = result.shed;
        summary.meanSec = result.meanSec;
        summary.p50Sec = result.p50Sec;
        summary.p95Sec = result.p95Sec;
        summary.p99Sec = result.p99Sec;
        summary.p999Sec = result.p999Sec;
        for (const serve::SloVerdict &v : result.verdicts) {
            obs::ManifestSloVerdict mv;
            mv.label = v.target.label();
            mv.targetSec = v.target.targetSec;
            mv.achievedSec = v.achievedSec;
            mv.met = v.met;
            summary.slos.push_back(std::move(mv));
        }
        summary.sloMet = result.sloMet();

        // Burn-rate verdicts: per FG slot per SLO target, plus the
        // all-slot rollup, over 1 s accounting windows.
        if (!serveSpec.slos.empty()) {
            const std::vector<obs::RequestRecord> &recs =
                opts.recorder->requests();
            for (const serve::SloTarget &t : serveSpec.slos) {
                std::vector<obs::BurnRateReport> perFg;
                for (unsigned i = 0; i < nFg; ++i) {
                    obs::BurnRateConfig bc;
                    bc.quantile = t.quantile;
                    bc.targetSec = t.targetSec;
                    bc.windowSec = 1.0;
                    bc.startSec = 0.0;
                    bc.endSec = serveSpec.horizonSec;
                    bc.fgSlot = int(i);
                    perFg.push_back(obs::computeBurnRate(
                        recs, bc, strfmt("fg%u", i)));
                }
                perFg.push_back(obs::combineBurnRates(perFg, "all"));
                for (const obs::BurnRateReport &r : perFg) {
                    obs::ManifestBurnRate mb;
                    mb.scope = r.scope;
                    mb.label = t.label();
                    mb.targetSec = r.targetSec;
                    mb.budget = r.budget;
                    mb.windows = r.windows.size();
                    mb.errors = r.errors;
                    mb.total = r.total;
                    mb.maxBurn = r.maxBurnRate;
                    mb.meanBurn = r.meanBurnRate;
                    mb.exhausted = r.exhausted;
                    summary.burnRates.push_back(std::move(mb));
                }
            }
        }
    }

    return result;
}

} // namespace dirigent::harness
