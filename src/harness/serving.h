/**
 * @file
 * Serving-mode experiment results: one ServingRunResult summarizes an
 * open-loop request-serving run (arrival counts, rejection accounting,
 * response-time quantiles, SLO verdicts) the way SchemeRunResult
 * summarizes a batch run.
 *
 * The run itself is ExperimentRunner::runServing (declared in
 * harness/experiment.h, implemented in serving.cc): the same machine /
 * scheme / fault assembly as a batch run, but each FG slot is fed by a
 * serve::ServeDriver instead of running back-to-back, and measurement
 * is a simulated-time window (warmup_s .. horizon_s) rather than an
 * execution count.
 */

#ifndef DIRIGENT_HARNESS_SERVING_H
#define DIRIGENT_HARNESS_SERVING_H

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "dirigent/scheme.h"
#include "serve/arrival.h"
#include "serve/queue.h"
#include "serve/slo.h"

namespace dirigent::harness {

/** Summary of one request-serving run. */
struct ServingRunResult
{
    std::string mixName;
    core::Scheme scheme = core::Scheme::Baseline;
    std::string schemeLabel; //!< assembled spec name
    uint64_t specHash = 0;   //!< scheme-spec FNV-1a
    uint64_t serveHash = 0;  //!< serve-spec FNV-1a

    /** Completion-predictor kind ("" = no runtime attached). */
    std::string predictorName;

    serve::ArrivalKind arrivalKind = serve::ArrivalKind::Poisson;

    /** Mean offered rate per FG slot (req/s); NaN for trace replay. */
    double offeredRate = 0.0;

    /** Totals across every FG slot. */
    uint64_t arrivals = 0;
    uint64_t completed = 0;
    uint64_t dropped = 0; //!< rejected: queue at capacity
    uint64_t shed = 0;    //!< rejected by admission control
    size_t maxQueueDepth = 0;

    /** Response-time stats over measured (post-warmup) completions,
     *  merged across FG slots. Quantiles are NaN when nothing
     *  completed in the window. */
    serve::LatencyStats stats;
    double meanSec = 0.0;
    double p50Sec = 0.0;
    double p95Sec = 0.0;
    double p99Sec = 0.0;
    double p999Sec = 0.0;

    std::vector<serve::SloVerdict> verdicts;

    /** Measurement window length (horizon_s − warmup_s). */
    Time span;

    /** Every request per FG slot, in arrival order (all outcomes). */
    std::vector<std::vector<serve::Request>> perFgRequests;

    /** Final admission-controller limit per FG slot that had one. */
    std::vector<double> finalAdmitLimits;

    /** Any FG fell back to the degraded (reactive) controller. */
    bool degraded = false;

    /** Every SLO target met (vacuously true without targets). */
    bool sloMet() const { return serve::allSlosMet(verdicts); }

    /** Fraction of arrivals rejected (dropped or shed). */
    double
    rejectRate() const
    {
        return arrivals > 0
                   ? double(dropped + shed) / double(arrivals)
                   : 0.0;
    }
};

} // namespace dirigent::harness

#endif // DIRIGENT_HARNESS_SERVING_H
