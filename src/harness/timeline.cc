#include "harness/timeline.h"

#include "common/log.h"
#include "common/table.h"
#include "common/strfmt.h"

namespace dirigent::harness {

Timeline::Timeline(sim::Engine &engine, Time period)
    : engine_(engine), period_(period)
{
    DIRIGENT_ASSERT(period.sec() > 0.0, "timeline period must be > 0");
}

Timeline::~Timeline()
{
    stop();
}

void
Timeline::addSeries(std::string name, Probe probe)
{
    DIRIGENT_ASSERT(!running_, "cannot add series while running");
    DIRIGENT_ASSERT(probe != nullptr, "timeline probe must be callable");
    names_.push_back(std::move(name));
    probes_.push_back(std::move(probe));
}

void
Timeline::start()
{
    if (running_)
        return;
    DIRIGENT_ASSERT(!probes_.empty(), "timeline has no series");
    running_ = true;
    scheduleNext();
}

void
Timeline::stop()
{
    if (!running_)
        return;
    running_ = false;
    if (pending_.valid()) {
        engine_.events().cancel(pending_);
        pending_ = sim::EventId{};
    }
}

void
Timeline::scheduleNext()
{
    pending_ = engine_.after(period_, [this] {
        pending_ = sim::EventId{};
        if (!running_)
            return;
        times_.push_back(engine_.now().sec());
        std::vector<double> row;
        row.reserve(probes_.size());
        for (const auto &probe : probes_)
            row.push_back(probe());
        samples_.push_back(std::move(row));
        scheduleNext();
    });
}

void
Timeline::writeCsv(std::ostream &os) const
{
    CsvWriter csv(os);
    std::vector<std::string> header = {"time_s"};
    header.insert(header.end(), names_.begin(), names_.end());
    csv.row(header);
    for (size_t i = 0; i < times_.size(); ++i) {
        std::vector<double> row = {times_[i]};
        row.insert(row.end(), samples_[i].begin(), samples_[i].end());
        csv.numericRow(row);
    }
}

} // namespace dirigent::harness
