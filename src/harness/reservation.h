/**
 * @file
 * A quantitative model of the paper's Fig. 2: a reservation-based
 * scheduler that reserves the 95th-percentile execution time for every
 * task. High task-duration variance forces long reservations and poor
 * utilization; low variance packs tightly — the scheduling-level reason
 * Dirigent minimizes variance rather than mean latency.
 */

#ifndef DIRIGENT_HARNESS_RESERVATION_H
#define DIRIGENT_HARNESS_RESERVATION_H

#include <cstdint>
#include <vector>

namespace dirigent::harness {

/** Reservation-scheduler experiment parameters. */
struct ReservationConfig
{
    double meanDuration = 1.0;        //!< mean task duration (seconds)
    double stdDuration = 0.2;         //!< duration standard deviation
    double reservationQuantile = 0.95; //!< fraction of tasks to cover
    unsigned calibrationTasks = 2000; //!< draws to size the reservation
    unsigned tasks = 2000;            //!< scheduled tasks
    uint64_t seed = 99;
};

/** Outcome of one reservation-scheduler simulation. */
struct ReservationResult
{
    double reservation = 0.0;    //!< per-task reserved time (seconds)
    double utilization = 0.0;    //!< Σ duration / (tasks · reservation)
    double overrunRate = 0.0;    //!< tasks exceeding their reservation
    double meanDuration = 0.0;   //!< realized mean duration
};

/**
 * Simulate a reservation-based scheduler on lognormally distributed
 * task durations with the given mean and standard deviation.
 */
ReservationResult simulateReservation(const ReservationConfig &config);

/**
 * Simulate a reservation scheduler on *measured* durations (e.g. the
 * per-execution times recorded by the experiment harness): the first
 * @p calibrationFraction of samples size the reservation, the rest are
 * scheduled against it.
 */
ReservationResult
simulateReservationOnSamples(const std::vector<double> &durations,
                             double reservationQuantile = 0.95,
                             double calibrationFraction = 0.5);

} // namespace dirigent::harness

#endif // DIRIGENT_HARNESS_RESERVATION_H
