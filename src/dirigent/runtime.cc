#include "dirigent/runtime.h"

#include <cmath>

#include "common/log.h"
#include "fault/injector.h"

namespace dirigent::core {

DirigentRuntime::DirigentRuntime(machine::Machine &machine,
                                 sim::Engine &engine,
                                 const machine::ActuatorSet &actuators,
                                 RuntimeConfig config)
    : machine_(machine), actuators_(actuators), config_(config)
{
    init(engine);
}

DirigentRuntime::DirigentRuntime(machine::Machine &machine,
                                 sim::Engine &engine,
                                 machine::CpuFreqGovernor &governor,
                                 machine::CatController &cat,
                                 RuntimeConfig config)
    : machine_(machine),
      ownedActuators_(std::make_unique<machine::MachineActuators>(
          machine, governor, cat)),
      actuators_(ownedActuators_->set()), config_(config)
{
    init(engine);
}

void
DirigentRuntime::init(sim::Engine &engine)
{
    DIRIGENT_ASSERT(config_.runtimeCore < machine_.numCores(),
                    "runtime core %u out of range", config_.runtimeCore);
    DIRIGENT_ASSERT(actuators_.frequency != nullptr,
                    "runtime needs a frequency actuator");
    DIRIGENT_ASSERT(actuators_.pause != nullptr,
                    "runtime needs a pause actuator");
    fine_ = std::make_unique<FineGrainController>(
        machine_, *actuators_.frequency, *actuators_.pause, config_.fine);
    sampler_ = std::make_unique<machine::PeriodicSampler>(
        engine, config_.samplingPeriod, config_.wakeOvershootMean,
        config_.wakeOvershootSigma, Rng(config_.seed).fork(0xD127),
        [this](const machine::PeriodicSampler::Tick &tick) {
            onTick(tick);
        });
    if (config_.faults != nullptr)
        sampler_->setFaultInjector(config_.faults);
}

DirigentRuntime::~DirigentRuntime()
{
    stop();
}

void
DirigentRuntime::addForeground(machine::Pid pid, const Profile *profile,
                               Time deadline)
{
    DIRIGENT_ASSERT(!started_, "cannot add FG after start()");
    DIRIGENT_ASSERT(profile != nullptr, "FG needs a profile");
    DIRIGENT_ASSERT(deadline.sec() > 0.0, "FG needs a positive deadline");
    const auto &proc = machine_.os().process(pid);
    DIRIGENT_ASSERT(proc.foreground, "pid %u is not a foreground process",
                    pid);

    FgState state;
    state.pid = pid;
    state.core = proc.core;
    state.profile = profile;
    state.deadline = deadline;
    // Per-FG seed stream: only the generative predictor consumes it;
    // the default EMA kind stays seed-independent.
    uint64_t predictorSeed =
        config_.seed ^ (uint64_t(pid) * 0x9E3779B97F4A7C15ull);
    state.predictor =
        makePredictor(config_.predictor, profile, predictorSeed);
    state.predictor->setDegradeCallback(
        [this, pid](double ratio, unsigned streak) {
            verbose(strfmt("dirigent: pid %u progress/profile ratio "
                           "%.3g for %u consecutive executions; "
                           "degrading to reactive control",
                           pid, ratio, streak));
            noteFault(pid,
                      strfmt("profile mismatch (ratio %.3g, streak %u); "
                             "degraded to reactive control",
                             ratio, streak));
        });
    fgs_.emplace(pid, std::move(state));
}

void
DirigentRuntime::start()
{
    if (started_)
        return;
    DIRIGENT_ASSERT(!fgs_.empty(), "runtime has no foreground processes");
    started_ = true;

    if (config_.enableCoarse && coarse_ == nullptr) {
        DIRIGENT_ASSERT(actuators_.partition != nullptr,
                        "coarse controller needs a partition actuator");
        // The initial FG partition scales with the number of managed
        // FG tasks — they share it, and starting each of them with the
        // single-FG allotment avoids a long miss transient while the
        // heuristics grow the partition.
        CoarseControllerConfig ccfg = config_.coarse;
        ccfg.initialFgWays =
            ccfg.initialFgWays * unsigned(fgs_.size());
        coarse_ = std::make_unique<CoarseGrainController>(
            machine_, *actuators_.partition, ccfg);
        if (trace_ != nullptr)
            coarse_->setTrace(trace_);
    }

    for (auto &[pid, fg] : fgs_) {
        fg.instrAtStart = cumulativeProgress(fg);
        fg.missesAtStart = sampleMisses(fg);
        fg.midpointRecorded = false;
        fg.predictor->beginExecution(
            machine_.os().process(pid).taskStart);
    }

    completionListener_ = machine_.addCompletionListener(
        [this](const machine::CompletionRecord &rec) {
            onCompletion(rec);
        });
    sampler_->start();
}

void
DirigentRuntime::stop()
{
    if (!started_)
        return;
    started_ = false;
    sampler_->stop();
    machine_.removeCompletionListener(completionListener_);
}

const CompletionPredictor &
DirigentRuntime::predictor(machine::Pid pid) const
{
    auto it = fgs_.find(pid);
    DIRIGENT_ASSERT(it != fgs_.end(), "pid %u not registered", pid);
    return *it->second.predictor;
}

const std::vector<DirigentRuntime::PredictionSample> &
DirigentRuntime::midpointSamples(machine::Pid pid) const
{
    auto it = fgs_.find(pid);
    DIRIGENT_ASSERT(it != fgs_.end(), "pid %u not registered", pid);
    return it->second.samples;
}

void
DirigentRuntime::onTick(const machine::PeriodicSampler::Tick &tick)
{
    ++tickCount_;
    // Each invocation costs < 100 µs on the (shared) runtime core.
    machine_.core(config_.runtimeCore)
        .stealTime(config_.invocationOverhead);

    for (auto &[pid, fg] : fgs_) {
        double cum = cumulativeProgress(fg) - fg.instrAtStart;
        fg.predictor->observe(tick.actual, cum);
        if (!fg.midpointRecorded &&
            fg.predictor->progressFraction() >= 0.5) {
            fg.midpointPrediction = fg.predictor->predictTotal();
            fg.midpointRecorded = true;
        }
    }

    if (config_.enableFine &&
        tickCount_ % config_.decisionPeriodTicks == 0) {
        std::vector<FineGrainController::FgStatus> statuses;
        for (auto &[pid, fg] : fgs_) {
            FineGrainController::FgStatus st;
            st.pid = pid;
            st.core = fg.core;
            // The fallback wrapper answers from the reactive duration
            // EMA once the FG's profile has been declared stale.
            st.predicted = fg.predictor->predictTotal();
            st.valid = fg.predictor->hasObservation();
            st.deadline = fg.deadline;
            statuses.push_back(st);
        }
        fine_->tick(statuses);
    }
}

void
DirigentRuntime::onCompletion(const machine::CompletionRecord &rec)
{
    auto it = fgs_.find(rec.pid);
    if (it == fgs_.end())
        return;
    FgState &fg = it->second;

    Time actual = rec.duration();
    // At the completion listener the process has already been armed
    // with its next task, so the cumulative progress sits exactly at
    // the execution boundary for either metric.
    double finalProgress = cumulativeProgress(fg) - fg.instrAtStart;
    fg.predictor->endExecution(rec.finished, finalProgress);

    if (fg.midpointRecorded) {
        fg.samples.push_back(
            {rec.executionIndex, fg.midpointPrediction, actual});
    }

    double missesNow = sampleMisses(fg);
    if (coarse_) {
        double fgMisses = missesNow - fg.missesAtStart;
        bool missed = actual > fg.deadline;
        double severity =
            config_.enableFine ? fine_->drainThrottleSeverity() : 0.0;
        coarse_->recordExecution(actual, fgMisses, missed, severity);
    }

    // Arm for the next execution, which starts immediately.
    // (Profile-mismatch detection and the reactive duration EMA live
    // in the fallback wrapper; endExecution above already folded this
    // outcome in.)
    fg.instrAtStart = cumulativeProgress(fg);
    fg.missesAtStart = missesNow;
    fg.midpointRecorded = false;
    fg.predictor->beginExecution(rec.finished);
}

void
DirigentRuntime::restartPredictionClock(machine::Pid pid, Time now)
{
    auto it = fgs_.find(pid);
    DIRIGENT_ASSERT(it != fgs_.end(), "pid %u not registered", pid);
    FgState &fg = it->second;
    fg.instrAtStart = cumulativeProgress(fg);
    fg.missesAtStart = sampleMisses(fg);
    fg.midpointRecorded = false;
    fg.predictor->beginExecution(now);
}

bool
DirigentRuntime::degradedMode(machine::Pid pid) const
{
    auto it = fgs_.find(pid);
    DIRIGENT_ASSERT(it != fgs_.end(), "pid %u not registered", pid);
    return it->second.predictor->degraded();
}

std::vector<machine::Pid>
DirigentRuntime::foregroundPids() const
{
    std::vector<machine::Pid> pids;
    pids.reserve(fgs_.size());
    for (const auto &[pid, fg] : fgs_)
        pids.push_back(pid);
    return pids;
}

Time
DirigentRuntime::deadline(machine::Pid pid) const
{
    auto it = fgs_.find(pid);
    DIRIGENT_ASSERT(it != fgs_.end(), "pid %u not registered", pid);
    return it->second.deadline;
}

void
DirigentRuntime::setTrace(DecisionTrace *trace)
{
    trace_ = trace;
    fine_->setTrace(trace);
    if (coarse_)
        coarse_->setTrace(trace);
}

double
DirigentRuntime::cumulativeProgress(FgState &fg)
{
    double raw = readCumulativeProgress(machine_, fg.core, config_.metric);
    if (config_.faults != nullptr) {
        raw = config_.faults->filterCounter(fault::Channel::Progress,
                                            fg.core, raw);
    }
    uint64_t held = sanitizedSamples_;
    double clean = sanitize(fg.progressSense, raw);
    if (sanitizedSamples_ != held)
        noteFault(fg.pid, "progress counter read held by sanitizer");
    return clean;
}

double
DirigentRuntime::sampleMisses(FgState &fg)
{
    double raw = machine_.readCounters(fg.core).llcMisses;
    if (config_.faults != nullptr) {
        raw = config_.faults->filterCounter(fault::Channel::LlcMisses,
                                            fg.core, raw);
    }
    uint64_t held = sanitizedSamples_;
    double clean = sanitize(fg.missSense, raw);
    if (sanitizedSamples_ != held)
        noteFault(fg.pid, "llc-miss counter read held by sanitizer");
    return clean;
}

/**
 * Clamp a cumulative counter read to the physically plausible: finite,
 * monotone, and advancing no faster than maxFreq · maxPlausibleIpc
 * (with 2x slack). Implausible reads are held at the previous value —
 * the predictor then sees a zero delta, which it already treats as a
 * no-progress tick, so one glitched read cannot poison the
 * cross-execution EMA. Never rejects a fault-free read.
 */
double
DirigentRuntime::sanitize(SenseState &st, double raw)
{
    Time now = machine_.now();
    if (!st.init) {
        if (!std::isfinite(raw) || raw < 0.0) {
            ++sanitizedSamples_;
            raw = 0.0;
        }
        st.init = true;
    } else {
        double dt = std::max((now - st.lastTime).sec(),
                             config_.samplingPeriod.sec());
        double ceiling = st.last + machine_.config().maxFreq.hz() *
                                       config_.maxPlausibleIpc * 2.0 * dt;
        if (!std::isfinite(raw) || raw < st.last || raw > ceiling) {
            ++sanitizedSamples_;
            raw = st.last;
        }
    }
    st.last = raw;
    st.lastTime = now;
    return raw;
}

/**
 * Record a FaultObserved decision event. Fault-free runs never reach
 * this (the sanitizer never rejects a clean read and profiles match),
 * so attaching a trace does not perturb existing golden traces.
 */
void
DirigentRuntime::noteFault(machine::Pid pid, const std::string &what)
{
    if (trace_ == nullptr)
        return;
    TraceEvent ev;
    ev.when = machine_.now();
    ev.action = TraceAction::FaultObserved;
    ev.fgPid = pid;
    ev.slackRatio = 0.0;
    ev.detail = what;
    trace_->record(std::move(ev));
}

} // namespace dirigent::core
