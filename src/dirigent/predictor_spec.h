/**
 * @file
 * Declarative predictor selection: the `[predictor]` spec section.
 *
 * A PredictorSpec picks one of the builtin completion-prediction
 * schemes by name and carries every tuning knob, the degraded-mode
 * fallback parameters included (the runtime used to hardcode those).
 * Specs round-trip losslessly through the canonical INI text
 * (parsePredictorSection(format(spec)) == spec) and hash over that
 * text, exactly like scheme specs.
 *
 * Builtin kinds:
 *   ema            the paper's §4.2 per-segment penalty-EMA predictor
 *                  (the default; byte-identical to the pre-seam
 *                  hard-wired predictor)
 *   generative     seeded generative-profile ensemble: samples
 *                  plausible progress curves around the profile and
 *                  predicts from the posterior-weighted mixture
 *   decomposition  deadline decomposition: per-segment multiplicative
 *                  slowdown EMAs with per-segment deadline budgets
 *
 * Canonical section (all keys optional; defaults shown):
 *
 *   [predictor]
 *   kind = ema
 *   penalty_ema = 0.2        ; EMA weight, per-segment penalties
 *   rate_ema = 0.2           ; EMA weight, in-flight rate factor
 *   mismatch_tolerance = 0.4 ; |progress/profile - 1| degrade trigger
 *   mismatch_streak = 3      ; consecutive mismatches before degrading
 *   degraded_ema = 0.3       ; EMA weight of the degraded duration MA
 *   ensemble = 32            ; generative: sampled candidate curves
 *   duration_sigma = 0.05    ; generative: per-segment lognormal sigma
 *   contention_sigma = 0.4   ; generative: whole-curve lognormal sigma
 *   drift_sigma = 0.8        ; generative: within-curve drift ramp
 *   forget = 0.6             ; generative: posterior forgetting factor
 *   obs_noise = 0.25         ; generative: relative observation noise
 *   segment_ema = 0.3        ; decomposition: per-segment slowdown EMA
 */

#ifndef DIRIGENT_DIRIGENT_PREDICTOR_SPEC_H
#define DIRIGENT_DIRIGENT_PREDICTOR_SPEC_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace dirigent {
class SpecFields;
}

namespace dirigent::core {

class Profile;
class ProfileFallbackPredictor;

/** One predictor selection with all tuning knobs. */
struct PredictorSpec
{
    /** Prediction scheme: "ema", "generative" or "decomposition". */
    std::string kind = "ema";

    /** EMA weight for per-segment penalties across executions. */
    double penaltyEmaWeight = 0.2;

    /** EMA weight for the in-flight rate-factor moving average. */
    double rateEmaWeight = 0.2;

    /** Degraded-mode trigger: |finalProgress/profileTotal − 1| beyond
     *  this tolerance counts as a profile mismatch. */
    double mismatchTolerance = 0.4;

    /** Consecutive mismatching executions before degrading. */
    unsigned mismatchStreak = 3;

    /** EMA weight of the degraded-mode observed-duration average. */
    double degradedEmaWeight = 0.3;

    /** Generative: number of sampled candidate curves (incl. the
     *  unperturbed profile), in [2, 64]. */
    unsigned ensemble = 32;

    /** Generative: per-segment duration jitter (lognormal sigma). */
    double durationSigma = 0.05;

    /** Generative: whole-curve contention scale (lognormal sigma). */
    double contentionSigma = 0.4;

    /** Generative: within-curve drift slope (log-spread sigma of a
     *  smooth early-to-late contention ramp). Models contention that
     *  shifts *during* an execution — the regime prefix-scaling
     *  predictors extrapolate wrongly. */
    double driftSigma = 0.8;

    /** Generative: per-execution posterior forgetting factor (0, 1]. */
    double forget = 0.6;

    /** Generative: relative observation noise of elapsed time. */
    double obsNoise = 0.25;

    /** Decomposition: per-segment slowdown EMA weight. */
    double segmentEmaWeight = 0.3;

    bool operator==(const PredictorSpec &) const = default;
};

/** Builtin predictor registry (one spec per kind, defaults). */
const std::vector<PredictorSpec> &builtinPredictorSpecs();

/** Case-insensitive registry lookup by kind name; nullptr if absent. */
const PredictorSpec *findPredictorSpec(const std::string &name);

/**
 * Validate @p spec; returns a field-naming message ("predictor.<key>
 * must ...") or nullopt. Callers embedding the section prepend their
 * own spec prefix.
 */
std::optional<std::string>
validatePredictorSpec(const PredictorSpec &spec);

/**
 * Parse the `predictor.*` keys of an embedding spec (@p fields wraps
 * the whole config with the embedding spec's message prefix). Absent
 * keys keep their defaults; hostile values die with the uniform
 * field-naming fatal shape.
 */
PredictorSpec parsePredictorSection(const SpecFields &fields);

/** Canonical `[predictor]` INI section text (round-trippable). */
std::string formatPredictorSection(const PredictorSpec &spec);

/** FNV-1a fingerprint of the canonical section text. */
uint64_t predictorSpecHash(const PredictorSpec &spec);

/** One-line knob summary for registry listings. */
std::string predictorKnobSummary(const PredictorSpec &spec);

/**
 * Build the predictor @p spec describes for @p profile, wrapped in the
 * degraded-mode fallback (every runtime predictor is wrapped so
 * profile-mismatch handling is uniform across kinds). @p seed feeds
 * the generative sampler; the default kind never consumes it.
 * fatal() on an invalid spec.
 */
std::unique_ptr<ProfileFallbackPredictor>
makePredictor(const PredictorSpec &spec, const Profile *profile,
              uint64_t seed);

} // namespace dirigent::core

#endif // DIRIGENT_DIRIGENT_PREDICTOR_SPEC_H
