#include "dirigent/coarse_controller.h"

#include <algorithm>

#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent::core {

CoarseGrainController::CoarseGrainController(
    const machine::Machine &machine, machine::PartitionActuator &partition,
    CoarseControllerConfig config)
    : machine_(machine), partition_(partition), config_(config),
      times_(config.historyWindow),
      misses_(config.historyWindow),
      severity_(config.historyWindow),
      nextInvocationAt_(config.firstInvocation)
{
    DIRIGENT_ASSERT(config.historyWindow >= 2, "history window too small");
    DIRIGENT_ASSERT(config.invokeEvery >= 1, "invocation cadence too small");
    partition_.setFgWays(config.initialFgWays);
    decisions_.push_back({0, partition_.fgWays(), "initial"});
}

void
CoarseGrainController::recordExecution(Time duration, double fgMisses,
                                       bool missedDeadline,
                                       double throttleSeverity)
{
    times_.add(duration.sec());
    misses_.add(fgMisses);
    severity_.add(throttleSeverity);
    deadlineMisses_.push_back(missedDeadline);
    if (deadlineMisses_.size() > config_.historyWindow)
        deadlineMisses_.pop_front();

    ++executionsSeen_;
    if (executionsSeen_ >= nextInvocationAt_) {
        invoke();
        nextInvocationAt_ = executionsSeen_ + config_.invokeEvery;
    }
}

void
CoarseGrainController::invoke()
{
    ++invocations_;

    double corr = pearson(times_, misses_);
    bool missedRecently =
        std::any_of(deadlineMisses_.begin(), deadlineMisses_.end(),
                    [](bool b) { return b; });
    double missMean = misses_.mean();
    double sev = severity_.mean();

    const char *fired = "";
    unsigned ways = partition_.fgWays();
    auto traceChange = [&](TraceAction action, const char *rule) {
        if (trace_ == nullptr)
            return;
        TraceEvent event;
        event.when = machine_.now();
        event.action = action;
        event.detail = strfmt("%s -> %u ways", rule, partition_.fgWays());
        trace_->record(std::move(event));
    };

    // H2 first: retract the previous grow if it did not reduce misses.
    if (lastAction_ == LastAction::Grow) {
        bool improved =
            missMean < preGrowMissMean_ * (1.0 - config_.growBenefit);
        if (!improved && ways > 1) {
            if (!partition_.setFgWays(ways - 1)) {
                // Reconfiguration failed; lastAction_ stays Grow so the
                // retraction is retried at the next invocation.
                decisions_.push_back(
                    {executionsSeen_, partition_.fgWays(), "H2-shrink-fail"});
                return;
            }
            lastAction_ = LastAction::Shrink;
            fired = "H2-shrink";
            traceChange(TraceAction::PartitionShrunk, fired);
            decisions_.push_back(
                {executionsSeen_, partition_.fgWays(), fired});
            return;
        }
        // The grow helped; keep it and fall through so further growth
        // can be considered.
        lastAction_ = LastAction::None;
    }

    // H1: misses correlate with execution time and deadlines missed —
    // isolation will likely help; grow the FG partition.
    if (corr > config_.corrThreshold && missedRecently &&
        ways < partition_.numWays() - 1) {
        if (!partition_.setFgWays(ways + 1)) {
            decisions_.push_back(
                {executionsSeen_, partition_.fgWays(), "H1-grow-fail"});
            return;
        }
        preGrowMissMean_ = missMean;
        lastAction_ = LastAction::Grow;
        fired = "H1-grow";
        traceChange(TraceAction::PartitionGrown, fired);
        decisions_.push_back({executionsSeen_, partition_.fgWays(), fired});
        return;
    }

    // H3: the fine controller keeps BG heavily throttled; partitioning
    // may serve FG better than throttling. H2 retracts this if wrong.
    if (sev > config_.severityThreshold && ways < partition_.numWays() - 1) {
        if (!partition_.setFgWays(ways + 1)) {
            decisions_.push_back(
                {executionsSeen_, partition_.fgWays(), "H3-grow-fail"});
            return;
        }
        preGrowMissMean_ = missMean;
        lastAction_ = LastAction::Grow;
        fired = "H3-grow";
        traceChange(TraceAction::PartitionGrown, fired);
        decisions_.push_back({executionsSeen_, partition_.fgWays(), fired});
        return;
    }

    decisions_.push_back({executionsSeen_, partition_.fgWays(), ""});
}

} // namespace dirigent::core
