/**
 * @file
 * Online profiling — the paper's §7 future-work items, implemented.
 *
 * The offline profiler needs a dedicated standalone run of each FG
 * application. In production that is inconvenient, so the paper
 * proposes two alternatives:
 *
 *  1. *Online profiling*: profile on the live machine while all
 *     background tasks are paused for a few FG executions (short —
 *     FG tasks run well under 2 s each), then resume them.
 *  2. *Concurrent profiling with interference offsets*: profile while
 *     background tasks keep running and deflate the recorded segment
 *     durations by an interference-offset factor, estimated here from
 *     the fastest observed execution (the least-contended one).
 */

#ifndef DIRIGENT_DIRIGENT_ONLINE_PROFILER_H
#define DIRIGENT_DIRIGENT_ONLINE_PROFILER_H

#include "dirigent/profile.h"
#include "dirigent/profiler.h"
#include "machine/machine.h"
#include "sim/engine.h"

namespace dirigent::core {

/**
 * Profiles a foreground process on a live (already loaded) machine.
 */
class LiveProfiler
{
  public:
    /**
     * @param machine the live machine (not owned).
     * @param engine its engine (not owned).
     * @param config sampling parameters (period, executions, jitter).
     */
    LiveProfiler(machine::Machine &machine, sim::Engine &engine,
                 ProfilerConfig config = ProfilerConfig{});

    /**
     * Online profiling: pause every background process, profile
     * @p fgPid for config.executions consecutive executions, then
     * resume exactly the background processes this call paused.
     * Advances simulated time on the live engine.
     */
    Profile profileWithBgPaused(machine::Pid fgPid);

    /**
     * Concurrent profiling: profile @p fgPid for config.executions
     * executions *without* pausing anything, then remove the
     * interference offset by scaling every segment duration by
     * (fastest observed execution time / profiled mean execution
     * time). The fastest execution approximates the least-contended
     * run; the returned profile approximates standalone behaviour.
     */
    Profile profileConcurrent(machine::Pid fgPid);

  private:
    Profile record(machine::Pid fgPid);

    machine::Machine &machine_;
    sim::Engine &engine_;
    ProfilerConfig config_;
    double fastestObserved_ = 0.0;
};

/**
 * Scale every segment duration of @p profile by @p factor (used to
 * remove interference offsets from concurrently recorded profiles).
 */
Profile scaleProfileDurations(const Profile &profile, double factor);

} // namespace dirigent::core

#endif // DIRIGENT_DIRIGENT_ONLINE_PROFILER_H
