/**
 * @file
 * Deadline-decomposition completion predictor.
 *
 * Tracks one multiplicative slowdown EMA per profile segment
 * (measured/profiled duration across executions) instead of the paper's
 * additive penalty EMAs, scales the remaining segments by how the
 * current execution's slowdowns compare to history, and — the part the
 * EMA scheme has no answer for — decomposes an end-to-end deadline into
 * per-segment time budgets proportional to the expected per-segment
 * durations. A controller can then judge each segment against its own
 * budget instead of waiting for the end-to-end estimate to drift.
 */

#ifndef DIRIGENT_DIRIGENT_DECOMPOSITION_PREDICTOR_H
#define DIRIGENT_DIRIGENT_DECOMPOSITION_PREDICTOR_H

#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "dirigent/completion_predictor.h"
#include "dirigent/predictor_spec.h"
#include "dirigent/profile.h"

namespace dirigent::core {

/** Per-segment multiplicative-slowdown predictor with deadline
 *  budget decomposition. */
class DeadlineDecompositionPredictor : public CompletionPredictor
{
  public:
    /**
     * @param profile standalone profile (not owned; must outlive).
     * @param spec tuning knobs (segmentEmaWeight).
     */
    DeadlineDecompositionPredictor(const Profile *profile,
                                   const PredictorSpec &spec);

    // CompletionPredictor
    const Profile &profile() const override { return *profile_; }
    void beginExecution(Time startTime) override;
    void observe(Time now, double cumulativeProgress) override;
    void endExecution(Time endTime, double finalProgress) override;
    bool hasObservation() const override { return hasObservation_; }
    Time predictTotal() const override;
    Time predictCompletion() const override;
    double progressFraction() const override;
    Time elapsed() const override { return lastObsTime_ - start_; }
    uint64_t executionsSeen() const override
    {
        return executionsSeen_;
    }
    double alphaMa() const override;
    const char *name() const override { return "decomposition"; }

    /**
     * Decompose @p deadline (a total-duration budget for one
     * execution) into per-segment budgets proportional to the
     * expected per-segment durations; the budgets sum to @p deadline.
     */
    std::vector<Time> segmentDeadlines(Time deadline) const;

    /** Historical slowdown average of segment @p i (for tests). */
    double slowdownAverage(size_t i) const;

  private:
    /** Expected duration of segment @p i under the current scale. */
    double expectedSegmentSec(size_t i) const;

    /** Scale of this execution's slowdowns relative to history. */
    double currentScale() const;

    void closeSegment(Time boundaryTime);

    const Profile *profile_;
    PredictorSpec spec_;

    /** Multiplicative slowdown (measured/profiled) per segment. */
    std::vector<Ema> slowdownEma_;

    // Per-execution state.
    Time start_;
    size_t segIdx_ = 0;
    double segProgressDone_ = 0.0;
    Time segStartTime_;
    Time lastObsTime_;
    double lastProgress_ = 0.0;
    /** This execution's slowdowns over its closed segments. */
    Ema curMa_;
    /** Historical slowdowns of the same segments, same weighting. */
    Ema refMa_;
    bool hasObservation_ = false;
    bool inExecution_ = false;
    uint64_t executionsSeen_ = 0;
};

} // namespace dirigent::core

#endif // DIRIGENT_DIRIGENT_DECOMPOSITION_PREDICTOR_H
