/**
 * @file
 * Offline-profile corruption for fault injection: derive a stale or
 * corrupted copy of a standalone profile according to a fault plan's
 * [profile] section. The runtime keeps using the corrupted copy as if
 * it were faithful — the degraded-mode detection in DirigentRuntime is
 * what must notice the mismatch.
 */

#ifndef DIRIGENT_DIRIGENT_PROFILE_FAULT_H
#define DIRIGENT_DIRIGENT_PROFILE_FAULT_H

#include "common/random.h"
#include "dirigent/profile.h"
#include "fault/plan.h"

namespace dirigent::core {

/**
 * Apply @p faults to a copy of @p src: segment durations scaled by
 * staleScale and jittered lognormally by noiseSigma; segment progress
 * values corrupted with probability corruptProb. Deterministic in
 * (@p src, @p faults, @p rng); an empty [profile] section returns an
 * exact copy.
 */
Profile corruptProfile(const Profile &src,
                       const fault::ProfileFaults &faults, Rng rng);

} // namespace dirigent::core

#endif // DIRIGENT_DIRIGENT_PROFILE_FAULT_H
