/**
 * @file
 * The five resource-management configurations evaluated in the paper
 * (§5.4): Baseline (free contention), StaticFreq (BG cores statically
 * slow), StaticBoth (static partition + static BG frequency,
 * representative of coarse-grain prior schemes such as Heracles),
 * DirigentFreq (fine-time-scale control only), and Dirigent (fine +
 * coarse control).
 */

#ifndef DIRIGENT_DIRIGENT_SCHEME_H
#define DIRIGENT_DIRIGENT_SCHEME_H

#include <optional>
#include <string>
#include <vector>

namespace dirigent::core {

/** Evaluated resource-management schemes. */
enum class Scheme
{
    Baseline,     //!< all cores at max frequency, free contention
    StaticFreq,   //!< FG cores at max, BG cores at minimum frequency
    StaticBoth,   //!< StaticFreq + best static cache partition
    DirigentFreq, //!< Dirigent fine-grain control, no partitioning
    Dirigent,     //!< full Dirigent: fine + coarse control
};

/** All schemes in presentation order. */
std::vector<Scheme> allSchemes();

/** Printable scheme name matching the paper's figures. */
const char *schemeName(Scheme s);

/** Scheme by name (case-insensitive), or nullopt when unknown. */
std::optional<Scheme> schemeFromName(const std::string &name);

/** True when the scheme runs the Dirigent runtime (sampling+control). */
bool schemeUsesRuntime(Scheme s);

/** True when the scheme uses the coarse partition controller. */
bool schemeUsesCoarse(Scheme s);

/** True when the scheme pins BG cores to the minimum frequency. */
bool schemeUsesStaticBgFreq(Scheme s);

/** True when the scheme applies a static cache partition. */
bool schemeUsesStaticPartition(Scheme s);

} // namespace dirigent::core

#endif // DIRIGENT_DIRIGENT_SCHEME_H
