#include "dirigent/scheme_spec.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/hash.h"
#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent::core {

namespace {

bool
sameNameCaseless(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (std::tolower((unsigned char)a[i]) !=
            std::tolower((unsigned char)b[i]))
            return false;
    return true;
}

std::vector<SchemeSpec>
makeBuiltins()
{
    std::vector<SchemeSpec> specs;

    SchemeSpec baseline;
    baseline.name = "Baseline";
    specs.push_back(baseline);

    SchemeSpec staticFreq;
    staticFreq.name = "StaticFreq";
    staticFreq.bgFreqGrade = 0;
    specs.push_back(staticFreq);

    SchemeSpec staticBoth;
    staticBoth.name = "StaticBoth";
    staticBoth.bgFreqGrade = 0;
    staticBoth.staticPartition = true;
    specs.push_back(staticBoth);

    SchemeSpec dirigentFreq;
    dirigentFreq.name = "DirigentFreq";
    dirigentFreq.fine = true;
    specs.push_back(dirigentFreq);

    SchemeSpec dirigent;
    dirigent.name = "Dirigent";
    dirigent.fine = true;
    dirigent.coarse = true;
    specs.push_back(dirigent);

    // Ablations: previously only reachable through RunOptions bools.
    SchemeSpec observer;
    observer.name = "Observer";
    observer.observer = true;
    specs.push_back(observer);

    SchemeSpec reactive;
    reactive.name = "Reactive";
    reactive.reactive = true;
    specs.push_back(reactive);

    SchemeSpec coarseOnly;
    coarseOnly.name = "CoarseOnly";
    coarseOnly.coarse = true;
    specs.push_back(coarseOnly);

    // Serving-mode compositions: the Dirigent controllers with (and
    // the bare machine with) gradient admission control. Batch runs
    // ignore the [admission] section, so these behave exactly like
    // Dirigent/Baseline outside serving mode.
    // Each FG slot is a single serial server, so the concurrency limit
    // directly bounds queue depth and hence tail latency (response ≈
    // outstanding × service time). The generic max_limit default (64)
    // would let backlog ratchet far past any tail target before the
    // controller binds; 8 keeps the worst case within one order of the
    // service time while leaving the gradient room to adapt.
    SchemeSpec dirigentGradient;
    dirigentGradient.name = "DirigentGradient";
    dirigentGradient.fine = true;
    dirigentGradient.coarse = true;
    dirigentGradient.admission = "gradient";
    dirigentGradient.admitMaxLimit = 8;
    specs.push_back(dirigentGradient);

    SchemeSpec baselineGradient;
    baselineGradient.name = "BaselineGradient";
    baselineGradient.admission = "gradient";
    baselineGradient.admitMaxLimit = 8;
    specs.push_back(baselineGradient);

    return specs;
}

} // namespace

const std::vector<SchemeSpec> &
builtinSchemeSpecs()
{
    static const std::vector<SchemeSpec> specs = makeBuiltins();
    return specs;
}

const SchemeSpec *
findSchemeSpec(const std::string &name)
{
    for (const SchemeSpec &spec : builtinSchemeSpecs())
        if (sameNameCaseless(spec.name, name))
            return &spec;
    return nullptr;
}

SchemeSpec
schemeSpec(Scheme s)
{
    const SchemeSpec *spec = findSchemeSpec(schemeName(s));
    DIRIGENT_ASSERT(spec != nullptr, "no builtin spec for scheme %s",
                    schemeName(s));
    return *spec;
}

std::optional<std::string>
validateSchemeSpec(const SchemeSpec &spec)
{
    if (spec.name.empty())
        return "scheme spec: name must be non-empty";
    for (char c : spec.name) {
        if (!std::isalnum((unsigned char)c) && c != '_' && c != '-')
            return strfmt("scheme spec: name '%s' may only contain "
                          "letters, digits, '_' and '-'",
                          spec.name.c_str());
    }
    if (spec.bgFreqGrade < -1 || spec.bgFreqGrade > 63)
        return strfmt("scheme spec: static.bg_freq_grade %d out of range "
                      "[-1, 63]",
                      spec.bgFreqGrade);
    if (spec.staticFgWays > 0 && !spec.staticPartition)
        return "scheme spec: static.fg_ways requires "
               "static.partition = true";
    if (spec.staticFgWays >= 256)
        return strfmt("scheme spec: static.fg_ways %u out of range "
                      "[0, 255]",
                      spec.staticFgWays);
    if (spec.reactive && (spec.fine || spec.coarse))
        return strfmt("scheme spec: control.reactive conflicts with "
                      "control.%s (the reactive ablation replaces the "
                      "Dirigent runtime)",
                      spec.fine ? "fine" : "coarse");
    if (!std::isfinite(spec.bgBandwidthCap) || spec.bgBandwidthCap < 0.0)
        return strfmt("scheme spec: bandwidth.bg_cap must be a finite "
                      "non-negative rate, got %.9g",
                      spec.bgBandwidthCap);
    if (spec.admission != "none" && spec.admission != "static" &&
        spec.admission != "gradient")
        return strfmt("scheme spec: admission.scheme '%s' unknown "
                      "(known: none, static, gradient)",
                      spec.admission.c_str());
    if (spec.admission == "static" && spec.admitCapacity < 1)
        return "scheme spec: admission.capacity must be >= 1";
    if (spec.admitMinLimit < 1)
        return "scheme spec: admission.min_limit must be >= 1";
    if (spec.admitMaxLimit < spec.admitMinLimit)
        return strfmt("scheme spec: admission.max_limit %u below "
                      "admission.min_limit %u",
                      spec.admitMaxLimit, spec.admitMinLimit);
    if (!std::isfinite(spec.admitTolerance) || spec.admitTolerance < 1.0)
        return strfmt("scheme spec: admission.tolerance must be >= 1, "
                      "got %.9g",
                      spec.admitTolerance);
    if (!std::isfinite(spec.admitUpdatePeriodSec) ||
        spec.admitUpdatePeriodSec <= 0.0)
        return strfmt("scheme spec: admission.update_period_s must be "
                      "> 0, got %.9g",
                      spec.admitUpdatePeriodSec);
    if (auto error = validatePredictorSpec(spec.predictor))
        return "scheme spec: " + *error;
    return std::nullopt;
}

SchemeSpec
parseSchemeSpec(const Config &config)
{
    // Reject keys outside the known sections early: a typoed key would
    // otherwise silently fall back to its default.
    SpecFields fields(config, "scheme spec");
    fields.requireSections({"scheme", "static", "control", "bandwidth",
                            "admission", "predictor"});

    SchemeSpec spec;
    spec.name = config.getString("scheme.name", "");
    int64_t grade = config.getInt("static.bg_freq_grade", -1);
    if (grade < -1 || grade > 63)
        fatal(strfmt("scheme spec: static.bg_freq_grade %lld out of "
                     "range [-1, 63]",
                     (long long)grade));
    spec.bgFreqGrade = int(grade);
    spec.staticPartition = config.getBool("static.partition", false);
    uint64_t ways = config.getUint("static.fg_ways", 0);
    if (ways >= 256)
        fatal(strfmt("scheme spec: static.fg_ways %llu out of range "
                     "[0, 255]",
                     (unsigned long long)ways));
    spec.staticFgWays = unsigned(ways);
    spec.fine = config.getBool("control.fine", false);
    spec.coarse = config.getBool("control.coarse", false);
    spec.observer = config.getBool("control.observer", false);
    spec.reactive = config.getBool("control.reactive", false);
    spec.bgBandwidthCap = config.getDouble("bandwidth.bg_cap", 0.0);
    spec.admission = config.getString("admission.scheme", "none");
    spec.admitCapacity =
        unsigned(config.getUint("admission.capacity", 8));
    spec.admitMinLimit =
        unsigned(config.getUint("admission.min_limit", 1));
    spec.admitMaxLimit =
        unsigned(config.getUint("admission.max_limit", 64));
    spec.admitTolerance = config.getDouble("admission.tolerance", 1.1);
    spec.admitUpdatePeriodSec =
        config.getDouble("admission.update_period_s", 2.0);
    spec.admitProbeEvery =
        unsigned(config.getUint("admission.probe_every", 5));
    spec.predictor = parsePredictorSection(fields);

    if (auto error = validateSchemeSpec(spec))
        fatal(*error);
    return spec;
}

SchemeSpec
parseSchemeSpec(const std::string &text)
{
    return parseSchemeSpec(Config::parse(text));
}

SchemeSpec
loadSchemeSpec(const std::string &path)
{
    return parseSchemeSpec(Config::load(path));
}

std::string
formatSchemeSpec(const SchemeSpec &spec)
{
    auto onOff = [](bool b) { return b ? "true" : "false"; };
    std::string out;
    out += "[scheme]\n";
    out += strfmt("name = %s\n", spec.name.c_str());
    out += "\n[static]\n";
    out += strfmt("bg_freq_grade = %d\n", spec.bgFreqGrade);
    out += strfmt("partition = %s\n", onOff(spec.staticPartition));
    out += strfmt("fg_ways = %u\n", spec.staticFgWays);
    out += "\n[control]\n";
    out += strfmt("fine = %s\n", onOff(spec.fine));
    out += strfmt("coarse = %s\n", onOff(spec.coarse));
    out += strfmt("observer = %s\n", onOff(spec.observer));
    out += strfmt("reactive = %s\n", onOff(spec.reactive));
    out += "\n[bandwidth]\n";
    out += strfmt("bg_cap = %.9g\n", spec.bgBandwidthCap);
    out += "\n[admission]\n";
    out += strfmt("scheme = %s\n", spec.admission.c_str());
    out += strfmt("capacity = %u\n", spec.admitCapacity);
    out += strfmt("min_limit = %u\n", spec.admitMinLimit);
    out += strfmt("max_limit = %u\n", spec.admitMaxLimit);
    out += strfmt("tolerance = %.9g\n", spec.admitTolerance);
    out += strfmt("update_period_s = %.9g\n", spec.admitUpdatePeriodSec);
    out += strfmt("probe_every = %u\n", spec.admitProbeEvery);
    out += "\n";
    out += formatPredictorSection(spec.predictor);
    return out;
}

uint64_t
schemeSpecHash(const SchemeSpec &spec)
{
    return fnv1a64(formatSchemeSpec(spec));
}

std::string
schemeKnobSummary(const SchemeSpec &spec)
{
    std::vector<std::string> parts;
    if (spec.bgFreqGrade >= 0)
        parts.push_back(strfmt("bg@grade%d", spec.bgFreqGrade));
    if (spec.staticPartition) {
        parts.push_back(spec.staticFgWays > 0
                            ? strfmt("static fg=%u ways", spec.staticFgWays)
                            : std::string("static fg=default ways"));
    }
    if (spec.fine)
        parts.push_back("fine");
    if (spec.coarse)
        parts.push_back("coarse");
    if (spec.observer)
        parts.push_back("observer");
    if (spec.reactive)
        parts.push_back("reactive");
    if (spec.bgBandwidthCap > 0.0)
        parts.push_back(
            strfmt("bg cap %.3g GB/s", spec.bgBandwidthCap / 1e9));
    if (spec.admission == "static")
        parts.push_back(strfmt("admit cap=%u", spec.admitCapacity));
    else if (spec.admission == "gradient")
        parts.push_back(strfmt("admit gradient %u..%u",
                               spec.admitMinLimit, spec.admitMaxLimit));
    if (spec.predictor.kind != "ema")
        parts.push_back(
            strfmt("predictor %s", spec.predictor.kind.c_str()));
    if (parts.empty())
        return "free contention";
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += " + ";
        out += parts[i];
    }
    return out;
}

std::optional<std::string>
envSchemeFilePath()
{
    const char *env = std::getenv("DIRIGENT_SCHEME_FILE");
    if (env == nullptr || env[0] == '\0')
        return std::nullopt;
    return std::string(env);
}

} // namespace dirigent::core
