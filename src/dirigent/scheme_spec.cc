#include "dirigent/scheme_spec.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/hash.h"
#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent::core {

namespace {

bool
sameNameCaseless(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (std::tolower((unsigned char)a[i]) !=
            std::tolower((unsigned char)b[i]))
            return false;
    return true;
}

std::vector<SchemeSpec>
makeBuiltins()
{
    std::vector<SchemeSpec> specs;

    SchemeSpec baseline;
    baseline.name = "Baseline";
    specs.push_back(baseline);

    SchemeSpec staticFreq;
    staticFreq.name = "StaticFreq";
    staticFreq.bgFreqGrade = 0;
    specs.push_back(staticFreq);

    SchemeSpec staticBoth;
    staticBoth.name = "StaticBoth";
    staticBoth.bgFreqGrade = 0;
    staticBoth.staticPartition = true;
    specs.push_back(staticBoth);

    SchemeSpec dirigentFreq;
    dirigentFreq.name = "DirigentFreq";
    dirigentFreq.fine = true;
    specs.push_back(dirigentFreq);

    SchemeSpec dirigent;
    dirigent.name = "Dirigent";
    dirigent.fine = true;
    dirigent.coarse = true;
    specs.push_back(dirigent);

    // Ablations: previously only reachable through RunOptions bools.
    SchemeSpec observer;
    observer.name = "Observer";
    observer.observer = true;
    specs.push_back(observer);

    SchemeSpec reactive;
    reactive.name = "Reactive";
    reactive.reactive = true;
    specs.push_back(reactive);

    SchemeSpec coarseOnly;
    coarseOnly.name = "CoarseOnly";
    coarseOnly.coarse = true;
    specs.push_back(coarseOnly);

    return specs;
}

} // namespace

const std::vector<SchemeSpec> &
builtinSchemeSpecs()
{
    static const std::vector<SchemeSpec> specs = makeBuiltins();
    return specs;
}

const SchemeSpec *
findSchemeSpec(const std::string &name)
{
    for (const SchemeSpec &spec : builtinSchemeSpecs())
        if (sameNameCaseless(spec.name, name))
            return &spec;
    return nullptr;
}

SchemeSpec
schemeSpec(Scheme s)
{
    const SchemeSpec *spec = findSchemeSpec(schemeName(s));
    DIRIGENT_ASSERT(spec != nullptr, "no builtin spec for scheme %s",
                    schemeName(s));
    return *spec;
}

std::optional<std::string>
validateSchemeSpec(const SchemeSpec &spec)
{
    if (spec.name.empty())
        return "scheme spec: name must be non-empty";
    for (char c : spec.name) {
        if (!std::isalnum((unsigned char)c) && c != '_' && c != '-')
            return strfmt("scheme spec: name '%s' may only contain "
                          "letters, digits, '_' and '-'",
                          spec.name.c_str());
    }
    if (spec.bgFreqGrade < -1 || spec.bgFreqGrade > 63)
        return strfmt("scheme spec: static.bg_freq_grade %d out of range "
                      "[-1, 63]",
                      spec.bgFreqGrade);
    if (spec.staticFgWays > 0 && !spec.staticPartition)
        return "scheme spec: static.fg_ways requires "
               "static.partition = true";
    if (spec.staticFgWays >= 256)
        return strfmt("scheme spec: static.fg_ways %u out of range "
                      "[0, 255]",
                      spec.staticFgWays);
    if (spec.reactive && (spec.fine || spec.coarse))
        return strfmt("scheme spec: control.reactive conflicts with "
                      "control.%s (the reactive ablation replaces the "
                      "Dirigent runtime)",
                      spec.fine ? "fine" : "coarse");
    if (!std::isfinite(spec.bgBandwidthCap) || spec.bgBandwidthCap < 0.0)
        return strfmt("scheme spec: bandwidth.bg_cap must be a finite "
                      "non-negative rate, got %.9g",
                      spec.bgBandwidthCap);
    return std::nullopt;
}

SchemeSpec
parseSchemeSpec(const Config &config)
{
    // Reject keys outside the known sections early: a typoed key would
    // otherwise silently fall back to its default.
    static const char *sections[] = {"scheme.", "static.", "control.",
                                     "bandwidth."};
    for (const std::string &key : config.keys()) {
        bool known = false;
        for (const char *s : sections)
            known = known || key.rfind(s, 0) == 0;
        if (!known)
            fatal(strfmt("scheme spec: unknown key '%s' (sections: "
                         "scheme, static, control, bandwidth)",
                         key.c_str()));
    }

    SchemeSpec spec;
    spec.name = config.getString("scheme.name", "");
    int64_t grade = config.getInt("static.bg_freq_grade", -1);
    if (grade < -1 || grade > 63)
        fatal(strfmt("scheme spec: static.bg_freq_grade %lld out of "
                     "range [-1, 63]",
                     (long long)grade));
    spec.bgFreqGrade = int(grade);
    spec.staticPartition = config.getBool("static.partition", false);
    uint64_t ways = config.getUint("static.fg_ways", 0);
    if (ways >= 256)
        fatal(strfmt("scheme spec: static.fg_ways %llu out of range "
                     "[0, 255]",
                     (unsigned long long)ways));
    spec.staticFgWays = unsigned(ways);
    spec.fine = config.getBool("control.fine", false);
    spec.coarse = config.getBool("control.coarse", false);
    spec.observer = config.getBool("control.observer", false);
    spec.reactive = config.getBool("control.reactive", false);
    spec.bgBandwidthCap = config.getDouble("bandwidth.bg_cap", 0.0);

    if (auto error = validateSchemeSpec(spec))
        fatal(*error);
    return spec;
}

SchemeSpec
parseSchemeSpec(const std::string &text)
{
    return parseSchemeSpec(Config::parse(text));
}

SchemeSpec
loadSchemeSpec(const std::string &path)
{
    return parseSchemeSpec(Config::load(path));
}

std::string
formatSchemeSpec(const SchemeSpec &spec)
{
    auto onOff = [](bool b) { return b ? "true" : "false"; };
    std::string out;
    out += "[scheme]\n";
    out += strfmt("name = %s\n", spec.name.c_str());
    out += "\n[static]\n";
    out += strfmt("bg_freq_grade = %d\n", spec.bgFreqGrade);
    out += strfmt("partition = %s\n", onOff(spec.staticPartition));
    out += strfmt("fg_ways = %u\n", spec.staticFgWays);
    out += "\n[control]\n";
    out += strfmt("fine = %s\n", onOff(spec.fine));
    out += strfmt("coarse = %s\n", onOff(spec.coarse));
    out += strfmt("observer = %s\n", onOff(spec.observer));
    out += strfmt("reactive = %s\n", onOff(spec.reactive));
    out += "\n[bandwidth]\n";
    out += strfmt("bg_cap = %.9g\n", spec.bgBandwidthCap);
    return out;
}

uint64_t
schemeSpecHash(const SchemeSpec &spec)
{
    return fnv1a64(formatSchemeSpec(spec));
}

std::string
schemeKnobSummary(const SchemeSpec &spec)
{
    std::vector<std::string> parts;
    if (spec.bgFreqGrade >= 0)
        parts.push_back(strfmt("bg@grade%d", spec.bgFreqGrade));
    if (spec.staticPartition) {
        parts.push_back(spec.staticFgWays > 0
                            ? strfmt("static fg=%u ways", spec.staticFgWays)
                            : std::string("static fg=default ways"));
    }
    if (spec.fine)
        parts.push_back("fine");
    if (spec.coarse)
        parts.push_back("coarse");
    if (spec.observer)
        parts.push_back("observer");
    if (spec.reactive)
        parts.push_back("reactive");
    if (spec.bgBandwidthCap > 0.0)
        parts.push_back(
            strfmt("bg cap %.3g GB/s", spec.bgBandwidthCap / 1e9));
    if (parts.empty())
        return "free contention";
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += " + ";
        out += parts[i];
    }
    return out;
}

std::optional<std::string>
envSchemeFilePath()
{
    const char *env = std::getenv("DIRIGENT_SCHEME_FILE");
    if (env == nullptr || env[0] == '\0')
        return std::nullopt;
    return std::string(env);
}

} // namespace dirigent::core
