#include "dirigent/predictor_spec.h"

#include <cctype>
#include <cmath>

#include "common/config.h"
#include "common/hash.h"
#include "common/log.h"
#include "common/random.h"
#include "common/strfmt.h"
#include "dirigent/decomposition_predictor.h"
#include "dirigent/fallback_predictor.h"
#include "dirigent/generative_predictor.h"
#include "dirigent/predictor.h"

namespace dirigent::core {

namespace {

bool
sameNameCaseless(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (std::tolower((unsigned char)a[i]) !=
            std::tolower((unsigned char)b[i]))
            return false;
    return true;
}

std::optional<std::string>
checkWeight(const char *key, double w)
{
    if (!(w > 0.0 && w <= 1.0))
        return strfmt("predictor.%s must be a weight in (0, 1], "
                      "got %.9g",
                      key, w);
    return std::nullopt;
}

std::vector<PredictorSpec>
makeBuiltins()
{
    std::vector<PredictorSpec> specs;

    PredictorSpec ema;
    ema.kind = "ema";
    specs.push_back(ema);

    PredictorSpec generative;
    generative.kind = "generative";
    specs.push_back(generative);

    PredictorSpec decomposition;
    decomposition.kind = "decomposition";
    specs.push_back(decomposition);

    return specs;
}

} // namespace

const std::vector<PredictorSpec> &
builtinPredictorSpecs()
{
    static const std::vector<PredictorSpec> specs = makeBuiltins();
    return specs;
}

const PredictorSpec *
findPredictorSpec(const std::string &name)
{
    for (const PredictorSpec &spec : builtinPredictorSpecs())
        if (sameNameCaseless(spec.kind, name))
            return &spec;
    return nullptr;
}

std::optional<std::string>
validatePredictorSpec(const PredictorSpec &spec)
{
    if (spec.kind != "ema" && spec.kind != "generative" &&
        spec.kind != "decomposition")
        return strfmt("predictor.kind '%s' unknown (known: ema, "
                      "generative, decomposition)",
                      spec.kind.c_str());
    if (auto e = checkWeight("penalty_ema", spec.penaltyEmaWeight))
        return e;
    if (auto e = checkWeight("rate_ema", spec.rateEmaWeight))
        return e;
    if (auto e = checkWeight("degraded_ema", spec.degradedEmaWeight))
        return e;
    if (auto e = checkWeight("segment_ema", spec.segmentEmaWeight))
        return e;
    if (auto e = checkWeight("forget", spec.forget))
        return e;
    if (!(std::isfinite(spec.mismatchTolerance) &&
          spec.mismatchTolerance > 0.0))
        return strfmt("predictor.mismatch_tolerance must be positive, "
                      "got %.9g",
                      spec.mismatchTolerance);
    if (spec.mismatchStreak < 1)
        return "predictor.mismatch_streak must be >= 1";
    if (spec.ensemble < 2 || spec.ensemble > 64)
        return strfmt("predictor.ensemble %u out of range [2, 64]",
                      spec.ensemble);
    if (!(std::isfinite(spec.durationSigma) &&
          spec.durationSigma >= 0.0))
        return strfmt("predictor.duration_sigma must be >= 0, "
                      "got %.9g",
                      spec.durationSigma);
    if (!(std::isfinite(spec.contentionSigma) &&
          spec.contentionSigma >= 0.0))
        return strfmt("predictor.contention_sigma must be >= 0, "
                      "got %.9g",
                      spec.contentionSigma);
    if (!(std::isfinite(spec.driftSigma) && spec.driftSigma >= 0.0))
        return strfmt("predictor.drift_sigma must be >= 0, got %.9g",
                      spec.driftSigma);
    if (!(std::isfinite(spec.obsNoise) && spec.obsNoise > 0.0))
        return strfmt("predictor.obs_noise must be positive, got %.9g",
                      spec.obsNoise);
    return std::nullopt;
}

PredictorSpec
parsePredictorSection(const SpecFields &fields)
{
    const Config &config = fields.config();

    // Embedding specs gate unknown *sections*; the seam itself rejects
    // unknown predictor.* keys so a typoed knob cannot silently keep
    // its default.
    static const char *const kKnownKeys[] = {
        "kind",           "penalty_ema",     "rate_ema",
        "mismatch_tolerance", "mismatch_streak", "degraded_ema",
        "ensemble",       "duration_sigma",  "contention_sigma",
        "drift_sigma",    "forget",          "obs_noise",
        "segment_ema",
    };
    for (const std::string &key : config.keys()) {
        if (key.rfind("predictor.", 0) != 0)
            continue;
        std::string field = key.substr(std::string("predictor.").size());
        bool known = false;
        for (const char *k : kKnownKeys)
            known = known || field == k;
        if (!known)
            fields.fail(strfmt("unknown key '%s' ([predictor] keys: "
                               "kind, penalty_ema, rate_ema, "
                               "mismatch_tolerance, mismatch_streak, "
                               "degraded_ema, ensemble, duration_sigma, "
                               "contention_sigma, drift_sigma, forget, "
                               "obs_noise, segment_ema)",
                               key.c_str()));
    }

    PredictorSpec spec;
    std::string kind = config.getString("predictor.kind", spec.kind);
    for (char &c : kind)
        c = char(std::tolower((unsigned char)c));
    spec.kind = kind;
    spec.penaltyEmaWeight =
        config.getDouble("predictor.penalty_ema", spec.penaltyEmaWeight);
    spec.rateEmaWeight =
        config.getDouble("predictor.rate_ema", spec.rateEmaWeight);
    spec.mismatchTolerance = config.getDouble(
        "predictor.mismatch_tolerance", spec.mismatchTolerance);
    spec.mismatchStreak = unsigned(config.getUint(
        "predictor.mismatch_streak", spec.mismatchStreak));
    spec.degradedEmaWeight = config.getDouble(
        "predictor.degraded_ema", spec.degradedEmaWeight);
    spec.ensemble =
        unsigned(config.getUint("predictor.ensemble", spec.ensemble));
    spec.durationSigma = config.getDouble("predictor.duration_sigma",
                                          spec.durationSigma);
    spec.contentionSigma = config.getDouble(
        "predictor.contention_sigma", spec.contentionSigma);
    spec.driftSigma =
        config.getDouble("predictor.drift_sigma", spec.driftSigma);
    spec.forget = config.getDouble("predictor.forget", spec.forget);
    spec.obsNoise =
        config.getDouble("predictor.obs_noise", spec.obsNoise);
    spec.segmentEmaWeight = config.getDouble("predictor.segment_ema",
                                             spec.segmentEmaWeight);

    if (auto error = validatePredictorSpec(spec))
        fields.fail(*error);
    return spec;
}

std::string
formatPredictorSection(const PredictorSpec &spec)
{
    std::string out;
    out += "[predictor]\n";
    out += strfmt("kind = %s\n", spec.kind.c_str());
    out += strfmt("penalty_ema = %.9g\n", spec.penaltyEmaWeight);
    out += strfmt("rate_ema = %.9g\n", spec.rateEmaWeight);
    out += strfmt("mismatch_tolerance = %.9g\n", spec.mismatchTolerance);
    out += strfmt("mismatch_streak = %u\n", spec.mismatchStreak);
    out += strfmt("degraded_ema = %.9g\n", spec.degradedEmaWeight);
    out += strfmt("ensemble = %u\n", spec.ensemble);
    out += strfmt("duration_sigma = %.9g\n", spec.durationSigma);
    out += strfmt("contention_sigma = %.9g\n", spec.contentionSigma);
    out += strfmt("drift_sigma = %.9g\n", spec.driftSigma);
    out += strfmt("forget = %.9g\n", spec.forget);
    out += strfmt("obs_noise = %.9g\n", spec.obsNoise);
    out += strfmt("segment_ema = %.9g\n", spec.segmentEmaWeight);
    return out;
}

uint64_t
predictorSpecHash(const PredictorSpec &spec)
{
    return fnv1a64(formatPredictorSection(spec));
}

std::string
predictorKnobSummary(const PredictorSpec &spec)
{
    std::string knobs;
    if (spec.kind == "generative") {
        knobs = strfmt("ensemble %u, sigma %.3g/%.3g/%.3g, forget %.3g",
                       spec.ensemble, spec.durationSigma,
                       spec.contentionSigma, spec.driftSigma,
                       spec.forget);
    } else if (spec.kind == "decomposition") {
        knobs = strfmt("segment ema %.3g", spec.segmentEmaWeight);
    } else {
        knobs = strfmt("penalty ema %.3g, rate ema %.3g",
                       spec.penaltyEmaWeight, spec.rateEmaWeight);
    }
    knobs += strfmt(", degrade @%.3g x%u", spec.mismatchTolerance,
                    spec.mismatchStreak);
    return knobs;
}

std::unique_ptr<ProfileFallbackPredictor>
makePredictor(const PredictorSpec &spec, const Profile *profile,
              uint64_t seed)
{
    if (auto error = validatePredictorSpec(spec))
        fatal(*error);

    std::unique_ptr<CompletionPredictor> primary;
    if (spec.kind == "generative") {
        primary = std::make_unique<GenerativeProfilePredictor>(
            profile, spec, Rng(seed));
    } else if (spec.kind == "decomposition") {
        primary = std::make_unique<DeadlineDecompositionPredictor>(
            profile, spec);
    } else {
        primary = std::make_unique<Predictor>(
            profile, PredictorConfig{spec.penaltyEmaWeight,
                                     spec.rateEmaWeight});
    }
    return std::make_unique<ProfileFallbackPredictor>(
        std::move(primary), spec);
}

} // namespace dirigent::core
