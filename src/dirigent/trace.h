/**
 * @file
 * Structured decision tracing for the Dirigent controllers.
 *
 * Every control action (DVFS step, pause/resume, partition change) can
 * be recorded as a typed event with its cause — which FG task, how far
 * ahead/behind its prediction was — into a bounded ring buffer. The
 * trace answers "why did the controller do that?" during debugging and
 * feeds the introspection tooling; it costs nothing when no trace is
 * attached.
 */

#ifndef DIRIGENT_DIRIGENT_TRACE_H
#define DIRIGENT_DIRIGENT_TRACE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/units.h"
#include "machine/machine.h"
#include "machine/os.h"

namespace dirigent::core {

/** Kinds of traced control actions. */
enum class TraceAction
{
    FgToMax,        //!< lagging FG restored to maximum frequency
    FgThrottled,    //!< ahead-of-schedule FG slowed one grade
    BgThrottled,    //!< BG cores slowed one grade
    BgBoosted,      //!< BG cores sped up one grade
    BgPaused,       //!< most intrusive BG task paused
    BgResumed,      //!< paused BG tasks continued
    PartitionGrown, //!< coarse controller added an FG way
    PartitionShrunk, //!< coarse controller removed an FG way
    FaultObserved,  //!< runtime saw a fault: a counter read held by the
                    //!< plausibility sanitizer, or a profile mismatch
                    //!< degrading control to reactive mode

    // Request-serving actions (src/serve/); batch runs never emit
    // them, so batch golden traces are unaffected by their existence.
    RequestShed,    //!< admission controller rejected an arrival
    RequestDropped, //!< arrival rejected: request queue at capacity
    AdmitLimitChanged //!< admission concurrency limit was updated
};

/** Printable action name. */
const char *traceActionName(TraceAction action);

/** One recorded control decision. */
struct TraceEvent
{
    Time when;                 //!< simulated time of the action
    TraceAction action = TraceAction::FgToMax;
    machine::Pid fgPid = 0;    //!< FG task that drove the decision
    double slackRatio = 0.0;   //!< predicted/setpoint at decision time
    std::string detail;        //!< free-form context (victim, ways, …)
};

/**
 * Bounded ring buffer of control decisions.
 */
class DecisionTrace
{
  public:
    /** @param capacity maximum retained events (> 0). */
    explicit DecisionTrace(size_t capacity = 4096);

    /**
     * Live subscriber invoked (synchronously) for every recorded event,
     * before ring eviction can drop it. The telemetry recorder uses
     * this to mirror control decisions into exported run traces without
     * a second trace object. Not owned; pass nullptr to detach.
     */
    using Sink = std::function<void(const TraceEvent &)>;

    /** Attach or clear the live event sink. */
    void setSink(Sink sink) { sink_ = std::move(sink); }

    /** Append an event, evicting the oldest when full. */
    void record(TraceEvent event);

    /** Retained events, oldest first. */
    const std::deque<TraceEvent> &events() const { return events_; }

    /** Number of retained events. */
    size_t size() const { return events_.size(); }

    /** Total events ever recorded (including evicted ones). */
    uint64_t recorded() const { return recorded_; }

    /** Count of retained events with the given action. */
    size_t count(TraceAction action) const;

    /** Drop all retained events (counters keep accumulating). */
    void clear() { events_.clear(); }

    /** Emit "time_s,action,fg_pid,slack,detail" CSV. */
    void writeCsv(std::ostream &os) const;

  private:
    size_t capacity_;
    std::deque<TraceEvent> events_;
    uint64_t recorded_ = 0;
    Sink sink_;
};

/**
 * Records one run's observable behaviour — every task completion plus
 * every controller decision — and renders it as a canonical text trace
 * for the golden-trace regression suite.
 *
 * Two renderings exist: canonicalText() rounds values (µs-resolution
 * times) so immaterial libm/optimization noise across toolchains does
 * not flip hashes, while preciseText() prints full-precision doubles
 * and is used to prove bit-identical results across executor thread
 * counts.
 */
class GoldenTraceRecorder
{
  public:
    /** @param capacity retained decision events (completions unbounded). */
    explicit GoldenTraceRecorder(size_t capacity = 65536);

    /** Decision sink; pass to DirigentRuntime::setTrace before start(). */
    DecisionTrace &decisions() { return decisions_; }
    const DecisionTrace &decisions() const { return decisions_; }

    /** Append a completed task execution. */
    void recordCompletion(const machine::CompletionRecord &rec);

    /** Number of recorded completions. */
    size_t completionCount() const { return completions_.size(); }

    /**
     * The canonical trace: completion (C) and decision (D) lines merged
     * in time order (ties: completions first, then recording order),
     * with values rounded for cross-toolchain stability.
     */
    std::string canonicalText() const;

    /** FNV-1a 64 fingerprint of canonicalText(). */
    uint64_t hash() const;

    /** Full-precision (%.17g) rendering of the same event stream. */
    std::string preciseText() const;

    /** FNV-1a 64 fingerprint of preciseText(). */
    uint64_t preciseHash() const;

  private:
    std::string render(bool precise) const;

    DecisionTrace decisions_;
    std::vector<machine::CompletionRecord> completions_;
};

/**
 * First line where @p expected and @p actual diverge, formatted for a
 * test-failure message; empty string when the texts match.
 */
std::string traceDiff(const std::string &expected,
                      const std::string &actual);

} // namespace dirigent::core

#endif // DIRIGENT_DIRIGENT_TRACE_H
