/**
 * @file
 * Dirigent's coarse-time-scale QoS controller (paper §4.3): adjusts the
 * FG/BG LLC way partition using statistics gathered over multiple FG
 * task executions — partitioning only pays off at coarse time scales
 * because of cache inertia. Three heuristics over a 10-execution
 * history:
 *
 *  H1 grow the FG partition when corr(execution time, FG LLC misses)
 *     exceeds 0.75 and deadlines were missed recently;
 *  H2 shrink it back when the last grow did not lower FG misses;
 *  H3 grow it when the fine controller reports BG tasks heavily
 *     throttled (partitioning beats throttling); H2 retracts this too
 *     if it does not help.
 */

#ifndef DIRIGENT_DIRIGENT_COARSE_CONTROLLER_H
#define DIRIGENT_DIRIGENT_COARSE_CONTROLLER_H

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "dirigent/trace.h"
#include "machine/actuator.h"
#include "machine/machine.h"

namespace dirigent::core {

/** Coarse controller tuning parameters. */
struct CoarseControllerConfig
{
    /** Executions kept in the statistics window. */
    size_t historyWindow = 10;

    /** Executions before the first invocation. */
    unsigned firstInvocation = 10;

    /** Executions between subsequent invocations. */
    unsigned invokeEvery = 6;

    /** Correlation threshold for heuristic H1. */
    double corrThreshold = 0.75;

    /** Initial FG partition size (ways). */
    unsigned initialFgWays = 2;

    /** BG throttle severity triggering heuristic H3. */
    double severityThreshold = 0.5;

    /** Relative miss reduction a grow must achieve to stick (H2). */
    double growBenefit = 0.02;
};

/** One partition decision, for convergence traces (paper Fig. 8). */
struct PartitionDecision
{
    uint64_t executionIndex = 0; //!< FG executions seen at decision time
    unsigned fgWays = 0;         //!< partition after the decision
    const char *heuristic = "";  //!< which rule fired ("" = no change)
};

/**
 * The coarse-grain cache-partition controller.
 */
class CoarseGrainController
{
  public:
    /**
     * @param machine machine observed for sensing only (the simulated
     *        clock stamps decision-trace events).
     * @param partition way-partition actuator the heuristics drive.
     */
    CoarseGrainController(const machine::Machine &machine,
                          machine::PartitionActuator &partition,
                          CoarseControllerConfig config =
                              CoarseControllerConfig{});

    /**
     * Record one completed FG execution.
     * @param duration execution time.
     * @param fgMisses LLC misses the FG generated during the execution.
     * @param missedDeadline whether the execution missed its deadline.
     * @param throttleSeverity average BG throttle severity during the
     *        execution (from FineGrainController::drainThrottleSeverity).
     *
     * Invokes the partition heuristics at the configured cadence.
     */
    void recordExecution(Time duration, double fgMisses,
                         bool missedDeadline, double throttleSeverity);

    /** Current FG partition size. */
    unsigned fgWays() const { return partition_.fgWays(); }

    /** Heuristic invocations so far. */
    uint64_t invocations() const { return invocations_; }

    /** FG executions recorded so far. */
    uint64_t executionsSeen() const { return executionsSeen_; }

    /** Every partition decision made, in order. */
    const std::vector<PartitionDecision> &decisions() const
    {
        return decisions_;
    }

    /** Attach a decision trace (not owned; nullptr detaches). */
    void setTrace(DecisionTrace *trace) { trace_ = trace; }

  private:
    void invoke();

    const machine::Machine &machine_;
    machine::PartitionActuator &partition_;
    CoarseControllerConfig config_;

    SlidingWindow times_;
    SlidingWindow misses_;
    SlidingWindow severity_;
    std::deque<bool> deadlineMisses_;

    enum class LastAction { None, Grow, Shrink };
    LastAction lastAction_ = LastAction::None;
    double preGrowMissMean_ = 0.0;

    uint64_t executionsSeen_ = 0;
    uint64_t invocations_ = 0;
    uint64_t nextInvocationAt_ = 0;
    std::vector<PartitionDecision> decisions_;
    DecisionTrace *trace_ = nullptr;
};

} // namespace dirigent::core

#endif // DIRIGENT_DIRIGENT_COARSE_CONTROLLER_H
