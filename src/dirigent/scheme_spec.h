/**
 * @file
 * Declarative scheme specifications: a SchemeSpec describes one
 * resource-management configuration as data — which static knob
 * settings to apply before the run (BG frequency grade, FG cache
 * partition, BG bandwidth cap) and which controllers to attach (fine,
 * coarse, observer, reactive) — so the experiment harness assembles any
 * run from a spec instead of switching on the Scheme enum.
 *
 * The paper's five configurations (§5.4) and the existing ablations are
 * builtin registry entries; custom specs load from INI text (the same
 * Config format as fault plans) via `--scheme-file spec.scheme` or the
 * DIRIGENT_SCHEME_FILE environment variable, validated with fatal() on
 * user errors, and round-trippable through formatSchemeSpec() so a run
 * manifest can reproduce its exact configuration from the recorded
 * text + FNV hash.
 */

#ifndef DIRIGENT_DIRIGENT_SCHEME_SPEC_H
#define DIRIGENT_DIRIGENT_SCHEME_SPEC_H

#include <optional>
#include <string>
#include <vector>

#include "common/config.h"
#include "dirigent/predictor_spec.h"
#include "dirigent/scheme.h"

namespace dirigent::core {

/**
 * One resource-management configuration as data.
 */
struct SchemeSpec
{
    /** Display name ([A-Za-z0-9_-], e.g. "Dirigent" or "my-ablation"). */
    std::string name;

    /**
     * Pin every BG core to this DVFS grade before the run (0 = minimum
     * frequency, the paper's StaticFreq setting); -1 leaves BG cores at
     * the maximum.
     */
    int bgFreqGrade = -1;

    /** Apply a static FG cache partition before the run. */
    bool staticPartition = false;

    /**
     * FG ways of the static partition; 0 defers to the harness default
     * (or, in a full sweep, to the partition Dirigent converged to).
     * Meaningful only with staticPartition.
     */
    unsigned staticFgWays = 0;

    /** Attach the fine-grain (predictive DVFS/pause) controller. */
    bool fine = false;

    /** Attach the coarse-grain (cache partition) controller. */
    bool coarse = false;

    /**
     * Attach the runtime as a passive observer: sampling and predicting
     * but with every controller disabled (predictor-accuracy ablation).
     */
    bool observer = false;

    /**
     * Attach the boundary-reactive controller — the no-predictor
     * ablation. Mutually exclusive with fine/coarse (it replaces the
     * Dirigent runtime).
     */
    bool reactive = false;

    /** Static per-BG-core bandwidth cap in bytes/second; 0 = uncapped. */
    double bgBandwidthCap = 0.0;

    /**
     * Admission policy for request-serving runs: "none" (every request
     * accepted, queue capacity permitting), "static" (fixed cap on
     * outstanding requests), or "gradient" (Envoy-style adaptive
     * concurrency; see serve/admission.h). Ignored by batch runs.
     */
    std::string admission = "none";

    /** Outstanding-request cap for the static policy. */
    unsigned admitCapacity = 8;

    /** Gradient limit floor (also the minRTT-probe limit). */
    unsigned admitMinLimit = 1;

    /** Gradient limit ceiling. */
    unsigned admitMaxLimit = 64;

    /** Gradient sample-RTT budget relative to minRTT (≥ 1). */
    double admitTolerance = 1.1;

    /** Gradient RTT aggregation window length in seconds. */
    double admitUpdatePeriodSec = 2.0;

    /** Every Nth gradient window re-probes minRTT (0 = never). */
    unsigned admitProbeEvery = 5;

    /**
     * Completion-prediction scheme for runs that attach the runtime
     * (`[predictor]` section; see dirigent/predictor_spec.h). The
     * default spec reproduces the paper's EMA predictor byte-for-byte;
     * schemes without the runtime ignore it.
     */
    PredictorSpec predictor;

    /** True when the spec attaches the Dirigent runtime (sampling). */
    bool attachesRuntime() const { return fine || coarse || observer; }

    /** True when the spec requests an admission controller. */
    bool attachesAdmission() const { return admission != "none"; }

    bool operator==(const SchemeSpec &) const = default;
};

/**
 * The builtin registry: the paper's five schemes in presentation order
 * (matching allSchemes()), followed by the ablation configurations
 * (Observer, Reactive, CoarseOnly).
 */
const std::vector<SchemeSpec> &builtinSchemeSpecs();

/**
 * Builtin spec by name (case-insensitive), or nullptr when unknown.
 */
const SchemeSpec *findSchemeSpec(const std::string &name);

/** The builtin spec equivalent to enum scheme @p s. */
SchemeSpec schemeSpec(Scheme s);

/**
 * Structural validation: nullopt when @p spec is well-formed, otherwise
 * a message naming the offending (and, for conflicts, both conflicting)
 * fields.
 */
std::optional<std::string> validateSchemeSpec(const SchemeSpec &spec);

/**
 * Parse a spec from a Config / INI text / file. fatal() on unknown
 * keys, out-of-range values, or conflicting controller attachments
 * (specs are user input).
 */
SchemeSpec parseSchemeSpec(const Config &config);
SchemeSpec parseSchemeSpec(const std::string &text);
SchemeSpec loadSchemeSpec(const std::string &path);

/** Serialize a spec to DSL text; parseSchemeSpec() round-trips it. */
std::string formatSchemeSpec(const SchemeSpec &spec);

/** FNV-1a fingerprint of the spec's canonical (formatted) text. */
uint64_t schemeSpecHash(const SchemeSpec &spec);

/**
 * One-line human-readable knob summary, e.g. "fine+coarse" or
 * "bg@grade0 + static partition" (for --list-schemes).
 */
std::string schemeKnobSummary(const SchemeSpec &spec);

/**
 * Path from the DIRIGENT_SCHEME_FILE environment variable, or nullopt
 * when unset/empty. The CLI flag `--scheme-file` overrides it.
 */
std::optional<std::string> envSchemeFilePath();

} // namespace dirigent::core

#endif // DIRIGENT_DIRIGENT_SCHEME_SPEC_H
