/**
 * @file
 * Dirigent's fine-time-scale controller (paper §4.3).
 *
 * Every few prediction segments the controller compares each foreground
 * task's predicted completion time against its deadline and walks the
 * paper's action ladder:
 *
 *  ahead (> 2 %):  continue paused BG tasks → speed throttled BG tasks
 *                  up one DVFS grade → throttle the FG task's frequency;
 *  behind:         FG to maximum frequency → throttle BG tasks one
 *                  grade → if BG already at minimum and ≥ 10 % behind,
 *                  pause the most intrusive BG task (most LLC misses).
 *
 * With multiple FG tasks, BG-side actions follow the slowest FG and
 * ahead-of-schedule FG tasks are throttled down individually.
 */

#ifndef DIRIGENT_DIRIGENT_FINE_CONTROLLER_H
#define DIRIGENT_DIRIGENT_FINE_CONTROLLER_H

#include <vector>

#include "common/units.h"
#include "dirigent/trace.h"
#include "machine/actuator.h"
#include "machine/machine.h"

namespace dirigent::core {

/** Fine controller tuning parameters. */
struct FineControllerConfig
{
    /**
     * Safety margin: the controller steers the predicted completion to
     * deadline·(1 − safetyMargin), absorbing the predictor's typical
     * error (2 %) so marginal noise does not turn into deadline misses.
     */
    double safetyMargin = 0.02;

    /** Act on slack only beyond this fraction of the setpoint (2 %:
     *  the predictor's typical error; prevents prematurely slowing a
     *  FG task). */
    double aheadThreshold = 0.02;

    /** Pause a BG task only when ≥ this fraction behind deadline. */
    double pauseThreshold = 0.10;

    /** Number of DVFS grades used (5 equi-spaced of the 9 available). */
    unsigned gradeCount = 5;
};

/** Cumulative fine-controller statistics. */
struct FineControllerStats
{
    uint64_t decisions = 0;   //!< tick() invocations
    uint64_t pauses = 0;      //!< BG pause actions
    uint64_t resumes = 0;     //!< BG resume actions (tasks resumed)
    uint64_t fgThrottles = 0; //!< FG slow-down actions
    uint64_t bgThrottles = 0; //!< BG slow-down actions
    uint64_t bgBoosts = 0;    //!< BG speed-up actions

    /**
     * Residency histogram of BG core DVFS ladder positions, sampled
     * once per BG core per decision (index 0 = minimum frequency).
     * Paused cores are not counted.
     */
    std::vector<uint64_t> bgGradeResidency;

    /** Decisions spent with at least one BG task paused. */
    uint64_t decisionsWithPause = 0;
};

/**
 * The fine-grain DVFS / pause controller.
 */
class FineGrainController
{
  public:
    /** Predicted state of one foreground task at a decision point. */
    struct FgStatus
    {
        machine::Pid pid = 0;
        unsigned core = 0;
        Time predicted; //!< predicted total duration of current task
        Time deadline;  //!< deadline duration for the task
        bool valid = false; //!< prediction available
    };

    /**
     * @param machine machine observed for sensing only (process table,
     *        performance counters, clock); all actuation goes through
     *        the actuator interfaces.
     * @param frequency DVFS actuator driving the grade ladder.
     * @param pause pause/resume actuator for BG tasks.
     */
    FineGrainController(const machine::Machine &machine,
                        machine::FrequencyActuator &frequency,
                        machine::PauseActuator &pause,
                        FineControllerConfig config = FineControllerConfig{});

    /** Make one control decision given current FG predictions. */
    void tick(const std::vector<FgStatus> &statuses);

    /** Cumulative statistics. */
    const FineControllerStats &stats() const { return stats_; }

    /**
     * Average BG throttle severity (0 = all BG at max frequency,
     * 1 = all paused/minimum) over decisions since the last drain;
     * consumed by the coarse controller's heuristic 3.
     */
    double drainThrottleSeverity();

    /** The DVFS ladder in use (actuator grade indices, low→high). */
    const std::vector<unsigned> &ladder() const { return ladder_; }

    /** Frequencies of the ladder positions. */
    std::vector<Freq> ladderFreqs() const;

    /** Restore every BG task to running at maximum frequency. */
    void releaseAll();

    /**
     * Attach a decision trace (not owned; nullptr detaches). Every
     * subsequent control action is recorded with its driving FG task
     * and slack ratio.
     */
    void setTrace(DecisionTrace *trace) { trace_ = trace; }

  private:
    bool isBg(machine::Pid pid) const;
    std::vector<machine::Pid> activeBgPids() const;

    /** Current ladder position of @p core. */
    unsigned pos(unsigned core) const { return ladderPos_[core]; }
    void setPos(unsigned core, unsigned position);

    // Action primitives; each returns true if it changed anything.
    bool resumePaused();
    bool boostBgOneGrade();
    bool throttleBgOneGrade();
    bool pauseMostIntrusive();
    bool throttleFgDown(unsigned core);
    bool fgToMax(unsigned core);

    void recordResidency();

    const machine::Machine &machine_;
    machine::FrequencyActuator &frequency_;
    machine::PauseActuator &pause_;
    FineControllerConfig config_;
    std::vector<unsigned> ladder_;
    std::vector<unsigned> ladderPos_;
    std::vector<machine::Pid> pausedBg_;
    std::vector<double> lastMisses_;
    FineControllerStats stats_;
    double severityAccum_ = 0.0;
    uint64_t severitySamples_ = 0;

    void traceAction(TraceAction action, const std::string &detail = "");

    DecisionTrace *trace_ = nullptr;
    machine::Pid decisionPid_ = 0;  //!< FG driving the current decision
    double decisionSlack_ = 0.0;    //!< its predicted/setpoint ratio
};

} // namespace dirigent::core

#endif // DIRIGENT_DIRIGENT_FINE_CONTROLLER_H
