/**
 * @file
 * The offline execution profiler. It runs a foreground benchmark alone
 * on a freshly constructed simulated machine, samples its progress
 * (retired instructions) every ΔT with the sleep method, and produces
 * the Profile the online predictor consumes. Profiling several
 * executions and averaging them segment-wise yields the "stable
 * profiling record" the paper describes.
 */

#ifndef DIRIGENT_DIRIGENT_PROFILER_H
#define DIRIGENT_DIRIGENT_PROFILER_H

#include "dirigent/profile.h"
#include "dirigent/progress.h"
#include "machine/machine.h"
#include "workload/benchmarks.h"

namespace dirigent::core {

/** Profiler parameters. */
struct ProfilerConfig
{
    /** Sampling period ΔT (the paper uses 5 ms). */
    Time samplingPeriod = Time::ms(5.0);

    /** Executions profiled and averaged segment-wise. */
    unsigned executions = 3;

    /** Sleep overshoot model (mean / sigma) of the sampling loop. */
    Time wakeOvershootMean = Time::us(30.0);
    Time wakeOvershootSigma = Time::us(15.0);

    /** Seed for the profiling machine. */
    uint64_t seed = 42;

    /** Progress metric to record (must match the online predictor's). */
    ProgressMetric metric = ProgressMetric::RetiredInstructions;
};

/**
 * Profiles foreground benchmarks in isolation.
 */
class OfflineProfiler
{
  public:
    explicit OfflineProfiler(ProfilerConfig config = ProfilerConfig{});

    /**
     * Run @p benchmark alone on a machine configured by @p machineConfig
     * and record its standalone profile.
     */
    Profile profileAlone(const workload::Benchmark &benchmark,
                         const machine::MachineConfig &machineConfig) const;

  private:
    ProfilerConfig config_;
};

} // namespace dirigent::core

#endif // DIRIGENT_DIRIGENT_PROFILER_H
