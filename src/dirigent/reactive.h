/**
 * @file
 * A reactive QoS controller — the ablation baseline that isolates the
 * value of Dirigent's completion-time *prediction*.
 *
 * The reactive controller uses the same actuators and action ladder as
 * Dirigent's fine-grain controller but has no predictor: it acts only
 * at task boundaries, treating the just-finished execution's duration
 * as its estimate for the next one. Anything that changes *within* an
 * execution (a background phase change, a context switch) is therefore
 * corrected one execution too late — exactly the gap the paper's
 * fine-time-scale prediction closes.
 */

#ifndef DIRIGENT_DIRIGENT_REACTIVE_H
#define DIRIGENT_DIRIGENT_REACTIVE_H

#include <map>

#include "common/units.h"
#include "dirigent/fine_controller.h"
#include "machine/actuator.h"
#include "machine/machine.h"

namespace dirigent::core {

/**
 * Boundary-reactive controller: one control decision per completed FG
 * execution, driven by observed (not predicted) durations.
 */
class ReactiveController
{
  public:
    ReactiveController(machine::Machine &machine,
                       machine::FrequencyActuator &frequency,
                       machine::PauseActuator &pause,
                       FineControllerConfig config =
                           FineControllerConfig{});

    ~ReactiveController();

    ReactiveController(const ReactiveController &) = delete;
    ReactiveController &operator=(const ReactiveController &) = delete;

    /** Register a foreground process and its deadline (duration). */
    void addForeground(machine::Pid pid, Time deadline);

    /** Begin reacting to completions. */
    void start();

    /** Stop; resource settings are left as-is. */
    void stop();

    /** Decisions taken so far (== FG completions observed). */
    uint64_t decisions() const { return decisions_; }

    /** The underlying action ladder (shared with Dirigent). */
    const FineGrainController &ladder() const { return controller_; }

  private:
    void onCompletion(const machine::CompletionRecord &rec);

    machine::Machine &machine_;
    FineGrainController controller_;
    std::map<machine::Pid, Time> deadlines_;
    std::map<machine::Pid, Time> lastDuration_;
    size_t listener_ = 0;
    bool started_ = false;
    uint64_t decisions_ = 0;
};

} // namespace dirigent::core

#endif // DIRIGENT_DIRIGENT_REACTIVE_H
