#include "dirigent/scheme.h"

#include <cctype>

#include "dirigent/scheme_spec.h"

namespace dirigent::core {

std::vector<Scheme>
allSchemes()
{
    return {Scheme::Baseline, Scheme::StaticFreq, Scheme::StaticBoth,
            Scheme::DirigentFreq, Scheme::Dirigent};
}

const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::Baseline:
        return "Baseline";
      case Scheme::StaticFreq:
        return "StaticFreq";
      case Scheme::StaticBoth:
        return "StaticBoth";
      case Scheme::DirigentFreq:
        return "DirigentFreq";
      case Scheme::Dirigent:
        return "Dirigent";
    }
    return "?";
}

std::optional<Scheme>
schemeFromName(const std::string &name)
{
    auto matches = [&name](const char *candidate) {
        size_t i = 0;
        for (; candidate[i] != '\0' && i < name.size(); ++i)
            if (std::tolower((unsigned char)name[i]) !=
                std::tolower((unsigned char)candidate[i]))
                return false;
        return candidate[i] == '\0' && i == name.size();
    };
    for (Scheme s : allSchemes())
        if (matches(schemeName(s)))
            return s;
    return std::nullopt;
}

// The predicates are thin shims over the builtin spec registry: the
// spec is the single source of truth for what each scheme wires up.

bool
schemeUsesRuntime(Scheme s)
{
    return schemeSpec(s).attachesRuntime();
}

bool
schemeUsesCoarse(Scheme s)
{
    return schemeSpec(s).coarse;
}

bool
schemeUsesStaticBgFreq(Scheme s)
{
    return schemeSpec(s).bgFreqGrade >= 0;
}

bool
schemeUsesStaticPartition(Scheme s)
{
    return schemeSpec(s).staticPartition;
}

} // namespace dirigent::core
