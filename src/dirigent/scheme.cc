#include "dirigent/scheme.h"

namespace dirigent::core {

std::vector<Scheme>
allSchemes()
{
    return {Scheme::Baseline, Scheme::StaticFreq, Scheme::StaticBoth,
            Scheme::DirigentFreq, Scheme::Dirigent};
}

const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::Baseline:
        return "Baseline";
      case Scheme::StaticFreq:
        return "StaticFreq";
      case Scheme::StaticBoth:
        return "StaticBoth";
      case Scheme::DirigentFreq:
        return "DirigentFreq";
      case Scheme::Dirigent:
        return "Dirigent";
    }
    return "?";
}

bool
schemeUsesRuntime(Scheme s)
{
    return s == Scheme::DirigentFreq || s == Scheme::Dirigent;
}

bool
schemeUsesCoarse(Scheme s)
{
    return s == Scheme::Dirigent;
}

bool
schemeUsesStaticBgFreq(Scheme s)
{
    return s == Scheme::StaticFreq || s == Scheme::StaticBoth;
}

bool
schemeUsesStaticPartition(Scheme s)
{
    return s == Scheme::StaticBoth;
}

} // namespace dirigent::core
