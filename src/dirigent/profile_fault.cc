#include "dirigent/profile_fault.h"

namespace dirigent::core {

Profile
corruptProfile(const Profile &src, const fault::ProfileFaults &faults,
               Rng rng)
{
    if (faults.staleScale == 1.0 && faults.noiseSigma == 0.0 &&
        faults.corruptProb == 0.0) {
        return src;
    }
    std::vector<ProfileSegment> segments = src.segments();
    for (ProfileSegment &seg : segments) {
        double scale = faults.staleScale;
        if (faults.noiseSigma > 0.0)
            scale *= rng.lognormalMean(1.0, faults.noiseSigma);
        seg.duration = seg.duration * scale;
        if (rng.chance(faults.corruptProb)) {
            seg.progress *=
                rng.uniform(0.0, faults.corruptScale);
        }
    }
    return Profile(src.benchmark(), src.samplingPeriod(),
                   std::move(segments));
}

} // namespace dirigent::core
