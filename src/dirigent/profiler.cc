#include "dirigent/profiler.h"

#include <algorithm>
#include <optional>

#include "check/check.h"
#include "check/invariants.h"
#include "common/log.h"
#include "machine/sampler.h"
#include "sim/engine.h"

namespace dirigent::core {

OfflineProfiler::OfflineProfiler(ProfilerConfig config) : config_(config)
{
    DIRIGENT_ASSERT(config.samplingPeriod.sec() > 0.0,
                    "sampling period must be > 0");
    DIRIGENT_ASSERT(config.executions >= 1, "need at least one execution");
}

Profile
OfflineProfiler::profileAlone(
    const workload::Benchmark &benchmark,
    const machine::MachineConfig &machineConfig) const
{
    DIRIGENT_ASSERT(!benchmark.program.loop,
                    "cannot profile looping program '%s'",
                    benchmark.name.c_str());

    machine::MachineConfig cfg = machineConfig;
    cfg.seed = config_.seed;
    machine::Machine machine(cfg);
    sim::Engine engine(machine, cfg.maxQuantum);

    std::optional<check::InvariantChecker> checker;
    if (check::enabled()) {
        checker.emplace(machine, &engine);
        engine.addObserver(&*checker);
    }

    machine::ProcessSpec spec;
    spec.name = benchmark.name;
    spec.program = &benchmark.program;
    spec.core = 0;
    spec.foreground = true;
    spec.niceness = -20;
    machine::Pid pid = machine.spawnProcess(spec);

    // Per-execution segment records.
    std::vector<std::vector<ProfileSegment>> runs;
    runs.emplace_back();

    double lastInstr = 0.0;
    Time lastTickTime;
    unsigned completions = 0;

    machine::PeriodicSampler sampler(
        engine, config_.samplingPeriod, config_.wakeOvershootMean,
        config_.wakeOvershootSigma, Rng(config_.seed).fork(0xAB1E),
        [&](const machine::PeriodicSampler::Tick &tick) {
            double instr =
                readCumulativeProgress(machine, 0, config_.metric);
            double progress = instr - lastInstr;
            Time duration = tick.actual - lastTickTime;
            if (progress > 0.0 && duration.sec() > 0.0)
                runs.back().push_back({progress, duration});
            lastInstr = instr;
            lastTickTime = tick.actual;
        });

    size_t listener = machine.addCompletionListener(
        [&](const machine::CompletionRecord &rec) {
            if (rec.pid != pid)
                return;
            // Close the final (partial) segment at the completion point.
            double instr =
                readCumulativeProgress(machine, 0, config_.metric);
            double progress = instr - lastInstr;
            Time duration = rec.finished - lastTickTime;
            if (progress > 0.0 && duration.sec() > 0.0)
                runs.back().push_back({progress, duration});
            lastInstr = instr;
            lastTickTime = rec.finished;
            ++completions;
            if (completions < config_.executions) {
                runs.emplace_back();
                // Realign the sampling loop with the next task start.
                sampler.stop();
                sampler.start();
            } else {
                sampler.stop();
            }
        });

    sampler.start();
    lastTickTime = engine.now();
    // Generous upper bound: profiled FG tasks take ~0.5–1.6 s each.
    Time bailout = Time::sec(30.0 * config_.executions);
    while (completions < config_.executions && engine.now() < bailout)
        engine.runFor(Time::ms(20.0));
    machine.removeCompletionListener(listener);
    if (completions < config_.executions)
        fatal(strfmt("profiling '%s' did not converge within %gs",
                     benchmark.name.c_str(), bailout.sec()));

    // Average the runs segment-wise. Runs can differ in length by a
    // segment or two (input-dependent phase jitter); average each index
    // over the runs that reached it.
    size_t maxLen = 0;
    for (const auto &run : runs)
        maxLen = std::max(maxLen, run.size());

    std::vector<ProfileSegment> averaged;
    averaged.reserve(maxLen);
    for (size_t i = 0; i < maxLen; ++i) {
        double progress = 0.0, duration = 0.0;
        unsigned n = 0;
        for (const auto &run : runs) {
            if (i < run.size()) {
                progress += run[i].progress;
                duration += run[i].duration.sec();
                ++n;
            }
        }
        DIRIGENT_ASSERT(n > 0, "segment average over zero runs");
        averaged.push_back(
            {progress / n, Time::sec(duration / n)});
    }

    return Profile(benchmark.name, config_.samplingPeriod,
                   std::move(averaged));
}

} // namespace dirigent::core
