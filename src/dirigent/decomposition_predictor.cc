#include "dirigent/decomposition_predictor.h"

#include <algorithm>

#include "common/log.h"

namespace dirigent::core {

DeadlineDecompositionPredictor::DeadlineDecompositionPredictor(
    const Profile *profile, const PredictorSpec &spec)
    : profile_(profile), spec_(spec),
      curMa_(spec.segmentEmaWeight), refMa_(spec.segmentEmaWeight)
{
    DIRIGENT_ASSERT(profile != nullptr && !profile->empty(),
                    "decomposition predictor needs a non-empty "
                    "profile");
    slowdownEma_.assign(profile->size(),
                        Ema(spec.segmentEmaWeight));
}

void
DeadlineDecompositionPredictor::beginExecution(Time startTime)
{
    start_ = startTime;
    segIdx_ = 0;
    segProgressDone_ = 0.0;
    segStartTime_ = startTime;
    lastObsTime_ = startTime;
    lastProgress_ = 0.0;
    curMa_.reset();
    refMa_.reset();
    hasObservation_ = false;
    inExecution_ = true;
    ++executionsSeen_;
}

void
DeadlineDecompositionPredictor::observe(Time now,
                                        double cumulativeProgress)
{
    DIRIGENT_ASSERT(inExecution_, "observe() outside an execution");
    double dt = (now - lastObsTime_).sec();
    if (dt <= 0.0)
        return;
    double delta = cumulativeProgress - lastProgress_;
    if (delta <= 0.0) {
        lastObsTime_ = now;
        hasObservation_ = true;
        return;
    }

    // Same segment-attribution walk as the EMA predictor: assume a
    // uniform progress rate within the interval and close each segment
    // boundary the interval crosses.
    double rate = delta / dt;
    Time cursor = lastObsTime_;
    double remaining = delta;
    const auto &segs = profile_->segments();
    while (remaining > 0.0 && segIdx_ < segs.size()) {
        double segRemaining = segs[segIdx_].progress - segProgressDone_;
        if (remaining >= segRemaining) {
            Time boundary = cursor + Time::sec(segRemaining / rate);
            closeSegment(boundary);
            cursor = boundary;
            remaining -= segRemaining;
        } else {
            segProgressDone_ += remaining;
            remaining = 0.0;
        }
    }

    lastObsTime_ = now;
    lastProgress_ = cumulativeProgress;
    hasObservation_ = true;
}

void
DeadlineDecompositionPredictor::endExecution(Time endTime,
                                             double finalProgress)
{
    DIRIGENT_ASSERT(inExecution_,
                    "endExecution() outside an execution");
    observe(endTime, finalProgress);
    inExecution_ = false;
}

double
DeadlineDecompositionPredictor::currentScale() const
{
    if (!curMa_.valid() || !refMa_.valid())
        return 1.0;
    // Regularized ratio of this execution's slowdowns to the
    // historical slowdowns of the same segments, clamped like the EMA
    // predictor's rate scale.
    constexpr double lambda = 0.05;
    double scale =
        (curMa_.value() + lambda) / (refMa_.value() + lambda);
    return std::clamp(scale, 0.1, 10.0);
}

double
DeadlineDecompositionPredictor::expectedSegmentSec(size_t i) const
{
    const auto &seg = profile_->segments()[i];
    double slow;
    if (slowdownEma_[i].valid()) {
        slow = slowdownEma_[i].value() * currentScale();
    } else {
        // No history for this segment: extend this execution's own
        // observed slowdown, or fall back to the profile.
        slow = curMa_.valid() ? curMa_.value() : 1.0;
    }
    double expected = seg.duration.sec() * slow;
    return std::max(expected, 0.05 * seg.duration.sec());
}

Time
DeadlineDecompositionPredictor::predictTotal() const
{
    const auto &segs = profile_->segments();
    Time elapsed = lastObsTime_ - start_;
    double remainingSec = 0.0;
    if (segIdx_ < segs.size()) {
        double frac =
            1.0 - segProgressDone_ / segs[segIdx_].progress;
        remainingSec +=
            expectedSegmentSec(segIdx_) * std::max(frac, 0.0);
        for (size_t i = segIdx_ + 1; i < segs.size(); ++i)
            remainingSec += expectedSegmentSec(i);
    }
    return elapsed + Time::sec(remainingSec);
}

Time
DeadlineDecompositionPredictor::predictCompletion() const
{
    return start_ + predictTotal();
}

double
DeadlineDecompositionPredictor::progressFraction() const
{
    return lastProgress_ / profile_->totalProgress();
}

double
DeadlineDecompositionPredictor::alphaMa() const
{
    return curMa_.valid() ? curMa_.value() : 1.0;
}

std::vector<Time>
DeadlineDecompositionPredictor::segmentDeadlines(Time deadline) const
{
    std::vector<Time> budgets;
    budgets.reserve(profile_->size());
    double totalSec = 0.0;
    for (size_t i = 0; i < profile_->size(); ++i)
        totalSec += expectedSegmentSec(i);
    if (totalSec <= 0.0)
        return std::vector<Time>(profile_->size(), Time{});
    Time assigned;
    for (size_t i = 0; i < profile_->size(); ++i) {
        if (i + 1 == profile_->size()) {
            // Last budget absorbs rounding so the sum is exact.
            budgets.push_back(deadline - assigned);
        } else {
            Time b = deadline * (expectedSegmentSec(i) / totalSec);
            budgets.push_back(b);
            assigned += b;
        }
    }
    return budgets;
}

double
DeadlineDecompositionPredictor::slowdownAverage(size_t i) const
{
    DIRIGENT_ASSERT(i < slowdownEma_.size(), "bad segment index %zu",
                    i);
    return slowdownEma_[i].value();
}

void
DeadlineDecompositionPredictor::closeSegment(Time boundaryTime)
{
    const auto &seg = profile_->segments()[segIdx_];
    double measured = (boundaryTime - segStartTime_).sec();
    double profiled = seg.duration.sec();
    double slow = measured / profiled;
    // Record history *before* folding in the new observation so
    // curMa_/refMa_ compare this execution against history over
    // identical segments with identical weights.
    if (slowdownEma_[segIdx_].valid())
        refMa_.add(slowdownEma_[segIdx_].value());
    slowdownEma_[segIdx_].add(slow);
    curMa_.add(slow);

    ++segIdx_;
    segProgressDone_ = 0.0;
    segStartTime_ = boundaryTime;
}

} // namespace dirigent::core
