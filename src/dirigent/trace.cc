#include "dirigent/trace.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/hash.h"
#include "common/log.h"
#include "common/table.h"
#include "common/strfmt.h"

namespace dirigent::core {

const char *
traceActionName(TraceAction action)
{
    switch (action) {
      case TraceAction::FgToMax:
        return "fg-to-max";
      case TraceAction::FgThrottled:
        return "fg-throttled";
      case TraceAction::BgThrottled:
        return "bg-throttled";
      case TraceAction::BgBoosted:
        return "bg-boosted";
      case TraceAction::BgPaused:
        return "bg-paused";
      case TraceAction::BgResumed:
        return "bg-resumed";
      case TraceAction::PartitionGrown:
        return "partition-grown";
      case TraceAction::PartitionShrunk:
        return "partition-shrunk";
      case TraceAction::FaultObserved:
        return "fault-observed";
      case TraceAction::RequestShed:
        return "request-shed";
      case TraceAction::RequestDropped:
        return "request-dropped";
      case TraceAction::AdmitLimitChanged:
        return "admit-limit-changed";
    }
    return "?";
}

DecisionTrace::DecisionTrace(size_t capacity) : capacity_(capacity)
{
    DIRIGENT_ASSERT(capacity > 0, "trace needs capacity > 0");
}

void
DecisionTrace::record(TraceEvent event)
{
    if (sink_)
        sink_(event);
    if (events_.size() == capacity_)
        events_.pop_front();
    events_.push_back(std::move(event));
    ++recorded_;
}

size_t
DecisionTrace::count(TraceAction action) const
{
    size_t n = 0;
    for (const auto &e : events_)
        if (e.action == action)
            ++n;
    return n;
}

void
DecisionTrace::writeCsv(std::ostream &os) const
{
    CsvWriter csv(os);
    csv.row({"time_s", "action", "fg_pid", "slack", "detail"});
    for (const auto &e : events_) {
        csv.row({strfmt("%.6f", e.when.sec()),
                 traceActionName(e.action), strfmt("%u", e.fgPid),
                 strfmt("%.4f", e.slackRatio), e.detail});
    }
}

GoldenTraceRecorder::GoldenTraceRecorder(size_t capacity)
    : decisions_(capacity)
{
}

void
GoldenTraceRecorder::recordCompletion(const machine::CompletionRecord &rec)
{
    completions_.push_back(rec);
}

std::string
GoldenTraceRecorder::render(bool precise) const
{
    struct Entry
    {
        int64_t timeKey;  //!< µs-rounded time; primary sort key
        int kind;         //!< 0 = completion, 1 = decision
        uint64_t seq;     //!< recording order within its kind
        std::string line;
    };

    auto timeKey = [](Time t) {
        return int64_t(std::llround(t.sec() * 1e6));
    };

    std::vector<Entry> entries;
    entries.reserve(completions_.size() + decisions_.size());
    uint64_t seq = 0;
    for (const auto &c : completions_) {
        std::string line =
            precise
                ? strfmt("C t=%.17g core=%u pid=%u prog=%s fg=%d "
                         "exec=%llu instr=%.17g dur=%.17g",
                         c.finished.sec(), c.core, c.pid, c.program.c_str(),
                         int(c.foreground),
                         (unsigned long long)c.executionIndex,
                         c.instructions, c.duration().sec())
                : strfmt("C t=%.6f core=%u pid=%u prog=%s fg=%d "
                         "exec=%llu instr=%.0f dur=%.6f",
                         c.finished.sec(), c.core, c.pid, c.program.c_str(),
                         int(c.foreground),
                         (unsigned long long)c.executionIndex,
                         c.instructions, c.duration().sec());
        entries.push_back({timeKey(c.finished), 0, seq++, std::move(line)});
    }
    seq = 0;
    for (const auto &e : decisions_.events()) {
        std::string line =
            precise ? strfmt("D t=%.17g action=%s pid=%u slack=%.17g "
                             "detail=%s",
                             e.when.sec(), traceActionName(e.action),
                             e.fgPid, e.slackRatio, e.detail.c_str())
                    : strfmt("D t=%.6f action=%s pid=%u slack=%.4f "
                             "detail=%s",
                             e.when.sec(), traceActionName(e.action),
                             e.fgPid, e.slackRatio, e.detail.c_str());
        entries.push_back({timeKey(e.when), 1, seq++, std::move(line)});
    }

    // Rounded-time ordering with a deterministic tie-break keeps the
    // canonical and precise renderings in the same event order.
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry &a, const Entry &b) {
                         if (a.timeKey != b.timeKey)
                             return a.timeKey < b.timeKey;
                         if (a.kind != b.kind)
                             return a.kind < b.kind;
                         return a.seq < b.seq;
                     });

    std::string out;
    for (const auto &e : entries) {
        out += e.line;
        out += '\n';
    }
    return out;
}

std::string
GoldenTraceRecorder::canonicalText() const
{
    return render(false);
}

uint64_t
GoldenTraceRecorder::hash() const
{
    return fnv1a64(canonicalText());
}

std::string
GoldenTraceRecorder::preciseText() const
{
    return render(true);
}

uint64_t
GoldenTraceRecorder::preciseHash() const
{
    return fnv1a64(preciseText());
}

std::string
traceDiff(const std::string &expected, const std::string &actual)
{
    if (expected == actual)
        return {};
    std::istringstream exp(expected), act(actual);
    std::string eline, aline;
    size_t lineNo = 0;
    while (true) {
        ++lineNo;
        bool haveE = bool(std::getline(exp, eline));
        bool haveA = bool(std::getline(act, aline));
        if (!haveE && !haveA)
            break;
        if (!haveE)
            return strfmt("trace diff at line %zu:\n  expected: <end of "
                          "trace>\n  actual:   %s",
                          lineNo, aline.c_str());
        if (!haveA)
            return strfmt("trace diff at line %zu:\n  expected: %s\n  "
                          "actual:   <end of trace>",
                          lineNo, eline.c_str());
        if (eline != aline)
            return strfmt("trace diff at line %zu:\n  expected: %s\n  "
                          "actual:   %s",
                          lineNo, eline.c_str(), aline.c_str());
    }
    return strfmt("traces differ only in trailing whitespace "
                  "(%zu lines compared)", lineNo);
}

} // namespace dirigent::core
