#include "dirigent/trace.h"

#include "common/log.h"
#include "common/table.h"
#include "common/strfmt.h"

namespace dirigent::core {

const char *
traceActionName(TraceAction action)
{
    switch (action) {
      case TraceAction::FgToMax:
        return "fg-to-max";
      case TraceAction::FgThrottled:
        return "fg-throttled";
      case TraceAction::BgThrottled:
        return "bg-throttled";
      case TraceAction::BgBoosted:
        return "bg-boosted";
      case TraceAction::BgPaused:
        return "bg-paused";
      case TraceAction::BgResumed:
        return "bg-resumed";
      case TraceAction::PartitionGrown:
        return "partition-grown";
      case TraceAction::PartitionShrunk:
        return "partition-shrunk";
    }
    return "?";
}

DecisionTrace::DecisionTrace(size_t capacity) : capacity_(capacity)
{
    DIRIGENT_ASSERT(capacity > 0, "trace needs capacity > 0");
}

void
DecisionTrace::record(TraceEvent event)
{
    if (events_.size() == capacity_)
        events_.pop_front();
    events_.push_back(std::move(event));
    ++recorded_;
}

size_t
DecisionTrace::count(TraceAction action) const
{
    size_t n = 0;
    for (const auto &e : events_)
        if (e.action == action)
            ++n;
    return n;
}

void
DecisionTrace::writeCsv(std::ostream &os) const
{
    CsvWriter csv(os);
    csv.row({"time_s", "action", "fg_pid", "slack", "detail"});
    for (const auto &e : events_) {
        csv.row({strfmt("%.6f", e.when.sec()),
                 traceActionName(e.action), strfmt("%u", e.fgPid),
                 strfmt("%.4f", e.slackRatio), e.detail});
    }
}

} // namespace dirigent::core
