/**
 * @file
 * Degraded-mode fallback as a predictor variant: the wrapper that
 * fronts every runtime predictor.
 *
 * The paper's runtime degrades to reactive control when the profile
 * stops matching reality (|finalProgress / profiledProgress − 1|
 * beyond a tolerance for several consecutive executions). That logic
 * used to live inside DirigentRuntime as a special case around the
 * hard-wired predictor; it is now a CompletionPredictor of its own
 * that delegates to any primary predictor and, once degraded,
 * answers predictTotal() from an EMA of observed durations instead.
 * The runtime only ever asks predictTotal()/hasObservation() and
 * stays scheme-agnostic.
 */

#ifndef DIRIGENT_DIRIGENT_FALLBACK_PREDICTOR_H
#define DIRIGENT_DIRIGENT_FALLBACK_PREDICTOR_H

#include <functional>
#include <memory>

#include "common/stats.h"
#include "dirigent/completion_predictor.h"
#include "dirigent/predictor_spec.h"

namespace dirigent::core {

/**
 * Wraps a primary predictor with profile-mismatch detection and the
 * degraded-mode duration EMA. Also hosts the shared midpoint error
 * tracker, so errorEstimate() scores whatever predictTotal() actually
 * returned (primary or fallback).
 */
class ProfileFallbackPredictor : public CompletionPredictor
{
  public:
    /** Invoked once, on the transition into degraded mode, with the
     *  triggering progress/profile ratio and the mismatch streak. */
    using DegradeCallback = std::function<void(double, unsigned)>;

    /**
     * @param primary the wrapped predictor (owned; non-null).
     * @param spec mismatch tolerance / streak / degraded EMA weight.
     */
    ProfileFallbackPredictor(
        std::unique_ptr<CompletionPredictor> primary,
        const PredictorSpec &spec);

    void setDegradeCallback(DegradeCallback callback);

    /** The wrapped predictor (for telemetry and tests). */
    const CompletionPredictor &primary() const { return *primary_; }

    /** The spec the wrapper (and its primary) was built from. */
    const PredictorSpec &spec() const { return spec_; }

    // CompletionPredictor
    const Profile &profile() const override;
    void beginExecution(Time startTime) override;
    void observe(Time now, double cumulativeProgress) override;
    void endExecution(Time endTime, double finalProgress) override;
    bool hasObservation() const override;
    Time predictTotal() const override;
    Time predictCompletion() const override;
    double progressFraction() const override;
    Time elapsed() const override;
    uint64_t executionsSeen() const override;
    double alphaMa() const override;
    bool degraded() const override { return degraded_; }
    const char *name() const override;

  private:
    std::unique_ptr<CompletionPredictor> primary_;
    PredictorSpec spec_;
    DegradeCallback onDegrade_;

    /** Observed-duration EMA answering degraded-mode queries. */
    Ema durationEma_;
    unsigned mismatchStreak_ = 0;
    bool degraded_ = false;
    Time startTime_;
};

} // namespace dirigent::core

#endif // DIRIGENT_DIRIGENT_FALLBACK_PREDICTOR_H
