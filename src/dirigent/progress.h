/**
 * @file
 * Progress metrics for profiling and prediction.
 *
 * The paper measures progress with the retired-instruction performance
 * counter but notes "more abstract metrics can also be used" (§4.1) and
 * that strongly input-dependent tasks may need Application-Heartbeats-
 * style interfaces (§7). Both are supported:
 *
 *  - RetiredInstructions — the hardware counter; no application
 *    cooperation needed.
 *  - Heartbeats — the application reports work-fraction beats (one per
 *    phase, fractional within a phase). Immune to per-input variation
 *    in instruction counts, at the cost of requiring instrumentation.
 */

#ifndef DIRIGENT_DIRIGENT_PROGRESS_H
#define DIRIGENT_DIRIGENT_PROGRESS_H

#include "machine/machine.h"

namespace dirigent::core {

/** How foreground progress is measured. */
enum class ProgressMetric
{
    RetiredInstructions, //!< per-core PMU counter (paper default)
    Heartbeats,          //!< application-reported work beats
};

/** Printable metric name. */
const char *progressMetricName(ProgressMetric metric);

/**
 * Cumulative progress of the process pinned to @p core, monotone over
 * consecutive task executions (heartbeats accumulate completed
 * executions × beats-per-execution so deltas work exactly like counter
 * reads).
 */
double readCumulativeProgress(const machine::Machine &machine,
                              unsigned core, ProgressMetric metric);

} // namespace dirigent::core

#endif // DIRIGENT_DIRIGENT_PROGRESS_H
