#include "dirigent/fallback_predictor.h"

#include <cmath>
#include <utility>

#include "common/log.h"

namespace dirigent::core {

ProfileFallbackPredictor::ProfileFallbackPredictor(
    std::unique_ptr<CompletionPredictor> primary,
    const PredictorSpec &spec)
    : primary_(std::move(primary)), spec_(spec),
      durationEma_(spec.degradedEmaWeight)
{
    DIRIGENT_ASSERT(primary_ != nullptr,
                    "fallback wrapper needs a primary predictor");
}

void
ProfileFallbackPredictor::setDegradeCallback(DegradeCallback callback)
{
    onDegrade_ = std::move(callback);
}

const Profile &
ProfileFallbackPredictor::profile() const
{
    return primary_->profile();
}

void
ProfileFallbackPredictor::beginExecution(Time startTime)
{
    startTime_ = startTime;
    resetTracking();
    primary_->beginExecution(startTime);
}

void
ProfileFallbackPredictor::observe(Time now, double cumulativeProgress)
{
    primary_->observe(now, cumulativeProgress);
    trackPrediction(progressFraction(), predictTotal());
}

void
ProfileFallbackPredictor::endExecution(Time endTime,
                                       double finalProgress)
{
    primary_->endExecution(endTime, finalProgress);
    trackOutcome(endTime - startTime_);

    // Profile-mismatch detection: the profile promised a progress
    // total; executions that keep finishing far away from it mean the
    // profile is stale and model-based prediction is worthless.
    double profiled = primary_->profile().totalProgress();
    double ratio = profiled > 0.0 ? finalProgress / profiled : 0.0;
    if (std::fabs(ratio - 1.0) > spec_.mismatchTolerance) {
        ++mismatchStreak_;
        if (!degraded_ && mismatchStreak_ >= spec_.mismatchStreak) {
            degraded_ = true;
            if (onDegrade_)
                onDegrade_(ratio, mismatchStreak_);
        }
    } else {
        mismatchStreak_ = 0;
    }

    durationEma_.add((endTime - startTime_).sec());
}

bool
ProfileFallbackPredictor::hasObservation() const
{
    if (degraded_ && durationEma_.valid())
        return true;
    return primary_->hasObservation();
}

Time
ProfileFallbackPredictor::predictTotal() const
{
    if (degraded_ && durationEma_.valid())
        return Time::sec(durationEma_.value());
    return primary_->predictTotal();
}

Time
ProfileFallbackPredictor::predictCompletion() const
{
    if (degraded_ && durationEma_.valid())
        return startTime_ + predictTotal();
    return primary_->predictCompletion();
}

double
ProfileFallbackPredictor::progressFraction() const
{
    return primary_->progressFraction();
}

Time
ProfileFallbackPredictor::elapsed() const
{
    return primary_->elapsed();
}

uint64_t
ProfileFallbackPredictor::executionsSeen() const
{
    return primary_->executionsSeen();
}

double
ProfileFallbackPredictor::alphaMa() const
{
    return primary_->alphaMa();
}

const char *
ProfileFallbackPredictor::name() const
{
    return primary_->name();
}

} // namespace dirigent::core
