#include "dirigent/online_profiler.h"

#include <algorithm>
#include <vector>

#include "common/log.h"
#include "machine/sampler.h"

namespace dirigent::core {

LiveProfiler::LiveProfiler(machine::Machine &machine, sim::Engine &engine,
                           ProfilerConfig config)
    : machine_(machine), engine_(engine), config_(config)
{
    DIRIGENT_ASSERT(config.executions >= 1, "need at least one execution");
}

Profile
LiveProfiler::profileWithBgPaused(machine::Pid fgPid)
{
    // Pause only the background processes that are currently running,
    // so we resume exactly what we paused.
    std::vector<machine::Pid> paused;
    for (machine::Pid pid : machine_.os().backgroundPids()) {
        if (machine_.os().process(pid).runnable()) {
            machine_.os().pause(pid);
            paused.push_back(pid);
        }
    }

    Profile profile = record(fgPid);

    for (machine::Pid pid : paused)
        machine_.os().resume(pid);
    return profile;
}

Profile
LiveProfiler::profileConcurrent(machine::Pid fgPid)
{
    Profile contended = record(fgPid);
    // Interference offset: the fastest execution of the profiling
    // window is the least contended; deflate all segment durations so
    // the profile total matches it. (record() averages per-segment
    // durations over the window, so its total is the mean duration.)
    double meanTotal = contended.totalTime().sec();
    double fastest = fastestObserved_;
    DIRIGENT_ASSERT(fastest > 0.0 && meanTotal > 0.0,
                    "concurrent profiling observed no executions");
    double factor = std::min(fastest / meanTotal, 1.0);
    return scaleProfileDurations(contended, factor);
}

Profile
LiveProfiler::record(machine::Pid fgPid)
{
    const machine::Process &proc = machine_.os().process(fgPid);
    DIRIGENT_ASSERT(proc.foreground, "pid %u is not foreground", fgPid);
    unsigned core = proc.core;
    std::string name = proc.program->name;

    std::vector<std::vector<ProfileSegment>> runs;
    std::vector<double> totals;
    runs.emplace_back();

    double lastInstr = machine_.readCounters(core).instructions;
    Time lastTickTime = engine_.now();
    Time execStart = engine_.now();
    unsigned completions = 0;

    machine::PeriodicSampler sampler(
        engine_, config_.samplingPeriod, config_.wakeOvershootMean,
        config_.wakeOvershootSigma,
        Rng(config_.seed).fork(0x11FE),
        [&](const machine::PeriodicSampler::Tick &tick) {
            double instr = machine_.readCounters(core).instructions;
            double progress = instr - lastInstr;
            Time duration = tick.actual - lastTickTime;
            if (progress > 0.0 && duration.sec() > 0.0)
                runs.back().push_back({progress, duration});
            lastInstr = instr;
            lastTickTime = tick.actual;
        });

    size_t listener = machine_.addCompletionListener(
        [&](const machine::CompletionRecord &rec) {
            if (rec.pid != fgPid)
                return;
            double instr = machine_.readCounters(core).instructions;
            double progress = instr - lastInstr;
            Time duration = rec.finished - lastTickTime;
            if (progress > 0.0 && duration.sec() > 0.0)
                runs.back().push_back({progress, duration});
            lastInstr = instr;
            lastTickTime = rec.finished;
            totals.push_back((rec.finished - execStart).sec());
            execStart = rec.finished;
            ++completions;
            if (completions < config_.executions) {
                runs.emplace_back();
                sampler.stop();
                sampler.start();
            } else {
                sampler.stop();
            }
        });

    // Wait for the in-flight FG execution to finish so profiling is
    // aligned with a task start, then begin sampling.
    unsigned alignTarget = 1;
    Time bailout = engine_.now() + Time::sec(30.0);
    while (completions < alignTarget && engine_.now() < bailout)
        engine_.runFor(Time::ms(10.0));
    // Discard the partial execution's samples and totals.
    runs.assign(1, {});
    totals.clear();
    completions = 0;
    lastInstr = machine_.readCounters(core).instructions;
    lastTickTime = engine_.now();
    execStart = engine_.now();
    sampler.start();

    bailout = engine_.now() + Time::sec(30.0 * config_.executions);
    while (completions < config_.executions && engine_.now() < bailout)
        engine_.runFor(Time::ms(10.0));
    machine_.removeCompletionListener(listener);
    if (completions < config_.executions)
        fatal(strfmt("live profiling of '%s' did not converge",
                     name.c_str()));

    fastestObserved_ =
        *std::min_element(totals.begin(), totals.end());

    size_t maxLen = 0;
    for (const auto &run : runs)
        maxLen = std::max(maxLen, run.size());
    std::vector<ProfileSegment> averaged;
    for (size_t i = 0; i < maxLen; ++i) {
        double progress = 0.0, duration = 0.0;
        unsigned n = 0;
        for (const auto &run : runs) {
            if (i < run.size()) {
                progress += run[i].progress;
                duration += run[i].duration.sec();
                ++n;
            }
        }
        averaged.push_back({progress / n, Time::sec(duration / n)});
    }
    return Profile(name, config_.samplingPeriod, std::move(averaged));
}

Profile
scaleProfileDurations(const Profile &profile, double factor)
{
    DIRIGENT_ASSERT(factor > 0.0, "scale factor must be positive");
    std::vector<ProfileSegment> segments = profile.segments();
    for (auto &seg : segments)
        seg.duration = seg.duration * factor;
    return Profile(profile.benchmark(), profile.samplingPeriod(),
                   std::move(segments));
}

} // namespace dirigent::core
