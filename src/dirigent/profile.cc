#include "dirigent/profile.h"

#include <cstdio>
#include <sstream>

#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent::core {

Profile::Profile(std::string benchmark, Time samplingPeriod,
                 std::vector<ProfileSegment> segments)
    : benchmark_(std::move(benchmark)), samplingPeriod_(samplingPeriod),
      segments_(std::move(segments))
{
    DIRIGENT_ASSERT(samplingPeriod.sec() > 0.0,
                    "profile sampling period must be > 0");
    for (const auto &seg : segments_) {
        DIRIGENT_ASSERT(seg.progress > 0.0 && seg.duration.sec() > 0.0,
                        "profile of '%s' has a degenerate segment",
                        benchmark_.c_str());
    }
}

double
Profile::totalProgress() const
{
    double total = 0.0;
    for (const auto &seg : segments_)
        total += seg.progress;
    return total;
}

Time
Profile::totalTime() const
{
    Time total;
    for (const auto &seg : segments_)
        total += seg.duration;
    return total;
}

std::string
Profile::serialize() const
{
    std::string out;
    out += strfmt("dirigent-profile v1\n");
    out += strfmt("benchmark %s\n", benchmark_.c_str());
    out += strfmt("period_s %.12g\n", samplingPeriod_.sec());
    out += strfmt("segments %zu\n", segments_.size());
    for (const auto &seg : segments_)
        out += strfmt("%.12g %.12g\n", seg.progress, seg.duration.sec());
    return out;
}

std::optional<Profile>
Profile::deserialize(const std::string &text)
{
    std::istringstream in(text);
    std::string magic, version;
    if (!(in >> magic >> version) || magic != "dirigent-profile" ||
        version != "v1")
        return std::nullopt;

    std::string key, benchmark;
    double period = 0.0;
    size_t count = 0;
    if (!(in >> key >> benchmark) || key != "benchmark")
        return std::nullopt;
    if (!(in >> key >> period) || key != "period_s" || period <= 0.0)
        return std::nullopt;
    if (!(in >> key >> count) || key != "segments")
        return std::nullopt;

    std::vector<ProfileSegment> segments;
    segments.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        double progress = 0.0, duration = 0.0;
        if (!(in >> progress >> duration) || progress <= 0.0 ||
            duration <= 0.0)
            return std::nullopt;
        segments.push_back({progress, Time::sec(duration)});
    }
    return Profile(benchmark, Time::sec(period), std::move(segments));
}

} // namespace dirigent::core
