#include "dirigent/predictor.h"

#include <algorithm>

#include "common/log.h"

namespace dirigent::core {

Predictor::Predictor(const Profile *profile, PredictorConfig config)
    : profile_(profile), config_(config), rateMa_(config.rateEmaWeight),
      refRateMa_(config.rateEmaWeight)
{
    DIRIGENT_ASSERT(profile != nullptr && !profile->empty(),
                    "predictor needs a non-empty profile");
    penaltyEma_.assign(profile->size(), Ema(config.penaltyEmaWeight));
}

void
Predictor::beginExecution(Time startTime)
{
    start_ = startTime;
    segIdx_ = 0;
    segProgressDone_ = 0.0;
    segStartTime_ = startTime;
    lastObsTime_ = startTime;
    lastProgress_ = 0.0;
    rateMa_.reset();
    refRateMa_.reset();
    hasObservation_ = false;
    inExecution_ = true;
    ++executionsSeen_;
}

void
Predictor::observe(Time now, double cumulativeProgress)
{
    DIRIGENT_ASSERT(inExecution_, "observe() outside an execution");
    double dt = (now - lastObsTime_).sec();
    if (dt <= 0.0)
        return;
    double delta = cumulativeProgress - lastProgress_;
    if (delta <= 0.0) {
        // No progress (task throttled/paused through the interval);
        // time keeps accruing against the in-flight segment.
        lastObsTime_ = now;
        hasObservation_ = true;
        return;
    }

    // Attribute the interval's progress to profile segments assuming a
    // uniform progress rate within the interval.
    double rate = delta / dt;
    Time cursor = lastObsTime_;
    double remaining = delta;
    const auto &segs = profile_->segments();
    while (remaining > 0.0 && segIdx_ < segs.size()) {
        double segRemaining = segs[segIdx_].progress - segProgressDone_;
        if (remaining >= segRemaining) {
            Time boundary = cursor + Time::sec(segRemaining / rate);
            closeSegment(boundary);
            cursor = boundary;
            remaining -= segRemaining;
        } else {
            segProgressDone_ += remaining;
            remaining = 0.0;
        }
    }
    // Progress past the end of the profile (per-instance instruction
    // jitter) is simply absorbed; the task is about to finish.

    lastObsTime_ = now;
    lastProgress_ = cumulativeProgress;
    hasObservation_ = true;
}

void
Predictor::endExecution(Time endTime, double finalProgress)
{
    DIRIGENT_ASSERT(inExecution_, "endExecution() outside an execution");
    observe(endTime, finalProgress);
    inExecution_ = false;
}

Time
Predictor::predictTotal() const
{
    const auto &segs = profile_->segments();
    Time elapsed = lastObsTime_ - start_;
    Time remaining;
    if (segIdx_ < segs.size()) {
        double frac =
            1.0 - segProgressDone_ / segs[segIdx_].progress;
        remaining += expectedSegmentTime(segIdx_) * std::max(frac, 0.0);
        for (size_t i = segIdx_ + 1; i < segs.size(); ++i)
            remaining += expectedSegmentTime(i);
    }
    return elapsed + remaining;
}

Time
Predictor::predictCompletion() const
{
    return start_ + predictTotal();
}

double
Predictor::progressFraction() const
{
    return lastProgress_ / profile_->totalProgress();
}

double
Predictor::penaltyAverage(size_t i) const
{
    DIRIGENT_ASSERT(i < penaltyEma_.size(), "bad segment index %zu", i);
    return penaltyEma_[i].value();
}

Time
Predictor::expectedSegmentTime(size_t i) const
{
    const auto &seg = profile_->segments()[i];
    double penalty;
    if (penaltyEma_[i].valid()) {
        // Eq. 2: the historical per-segment penalty P̄_i, scaled by how
        // the penalty rate observed so far in *this* execution compares
        // to the historical rate. At the historical contention level
        // the scale is 1 and the estimate reduces to P̄_i; when the
        // current execution runs hotter or cooler the whole remaining
        // penalty pattern is scaled accordingly. The λ term regularizes
        // the ratio for nearly-uncontended histories.
        double scale = 1.0;
        if (rateMa_.valid() && refRateMa_.valid()) {
            constexpr double lambda = 0.05;
            double current = rateMa_.value();
            double historic = refRateMa_.value();
            scale = (current + lambda) / (historic + lambda);
            scale = std::clamp(scale, 0.1, 10.0);
        }
        penalty = scale * penaltyEma_[i].value();
    } else {
        // No history yet (first execution): project the penalty rate
        // observed so far onto the remaining profiled time.
        double current = rateMa_.valid() ? rateMa_.value() : 0.0;
        penalty = current * seg.duration.sec();
    }
    double expected = seg.duration.sec() + penalty;
    // Even under wild mispredictions a segment cannot take less than a
    // small fraction of its profiled time.
    return Time::sec(std::max(expected, 0.05 * seg.duration.sec()));
}

void
Predictor::closeSegment(Time boundaryTime)
{
    const auto &seg = profile_->segments()[segIdx_];
    double measured = (boundaryTime - segStartTime_).sec();
    double profiled = seg.duration.sec();
    // Eq. 1: P_i = (α_i − 1)·ΔT_i with α_i the measured/expected rate
    // ratio. The in-flight moving average tracks the penalty *rate*
    // (α_i − 1), i.e. penalty per unit profiled time.
    double penalty = measured - profiled;
    // Record the reference (historical) rate of this same segment
    // *before* folding in the new observation, so rateMa_/refRateMa_
    // compare the current execution against history over identical
    // segments with identical weights.
    if (penaltyEma_[segIdx_].valid())
        refRateMa_.add(penaltyEma_[segIdx_].value() / profiled);
    penaltyEma_[segIdx_].add(penalty);
    rateMa_.add(penalty / profiled);

    ++segIdx_;
    segProgressDone_ = 0.0;
    segStartTime_ = boundaryTime;
}

} // namespace dirigent::core
