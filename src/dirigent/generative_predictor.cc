#include "dirigent/generative_predictor.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace dirigent::core {

namespace {

/**
 * Floor on renormalized log-weights. Deliberately shallow: it acts as
 * a fixed-share switching prior, so a candidate crushed by one
 * execution of the "wrong" regime is back in contention as soon as
 * the prefix of the next execution votes for it.
 */
constexpr double kLogWeightFloor = -4.0;

} // namespace

GenerativeProfilePredictor::GenerativeProfilePredictor(
    const Profile *profile, const PredictorSpec &spec, Rng rng)
    : profile_(profile), spec_(spec)
{
    DIRIGENT_ASSERT(profile != nullptr && !profile->empty(),
                    "generative predictor needs a non-empty profile");
    DIRIGENT_ASSERT(spec.ensemble >= 2, "ensemble must be >= 2");

    noiseFloorSec_ = 0.01 * profile->totalTime().sec();

    const auto &segs = profile_->segments();
    candidates_.resize(spec.ensemble);
    // Contention level and drift slope are *stratified*: candidates
    // 1..K-1 sit on a fixed grid spanning ±1.5 sigma in both
    // dimensions, so coverage of the (level, slope) hypothesis space
    // never depends on sampling luck — only the per-segment jitter is
    // random. Candidate 0 is the unperturbed profile, so the ensemble
    // always contains the "no drift" hypothesis.
    unsigned gridSlopes = 5;
    unsigned gridLevels =
        (spec.ensemble - 2 + gridSlopes) / gridSlopes;
    if (gridLevels % 2 == 0)
        ++gridLevels;
    // Center-out enumeration (0, -s, +s, -2s, +2s, ...): when the
    // ensemble doesn't fill the grid exactly, the dropped points are
    // the extreme ones, and every populated level keeps its
    // flat-slope candidate first.
    auto centerOutUnits = [](unsigned j, unsigned n) {
        if (n <= 1 || j == 0)
            return 0.0;
        double mag = 3.0 / double(n - 1) * double((j + 1) / 2);
        return j % 2 == 1 ? -mag : mag;
    };
    for (unsigned k = 0; k < spec.ensemble; ++k) {
        Candidate &cand = candidates_[k];
        double levelUnits =
            k == 0 ? 0.0
                   : centerOutUnits((k - 1) / gridSlopes, gridLevels);
        double global = spec.contentionSigma <= 0.0
                            ? 1.0
                            : std::exp(levelUnits *
                                       spec.contentionSigma);
        // A smooth early-to-late contention ramp: slope is the total
        // log-spread across the curve, so exp(±slope/2) at the ends.
        // This is the hypothesis class prefix-scaling predictors
        // cannot express — contention that shifts mid-execution.
        double slopeUnits =
            k == 0 ? 0.0
                   : centerOutUnits((k - 1) % gridSlopes, gridSlopes);
        double slope = spec.driftSigma <= 0.0
                           ? 0.0
                           : slopeUnits * spec.driftSigma;
        cand.segDurationSec.reserve(segs.size());
        cand.cumSec.reserve(segs.size());
        double cum = 0.0;
        for (size_t i = 0; i < segs.size(); ++i) {
            double jitter =
                (k == 0 || spec.durationSigma <= 0.0)
                    ? 1.0
                    : rng.lognormalMu(0.0, spec.durationSigma);
            double pos = segs.size() > 1
                             ? double(i) / double(segs.size() - 1) - 0.5
                             : 0.0;
            double ramp = std::exp(slope * pos);
            double dur = segs[i].duration.sec() * global * jitter * ramp;
            cand.segDurationSec.push_back(dur);
            cum += dur;
            cand.cumSec.push_back(cum);
        }
        cand.totalSec = cum;
    }
}

void
GenerativeProfilePredictor::beginExecution(Time startTime)
{
    start_ = startTime;
    lastObsTime_ = startTime;
    lastProgress_ = 0.0;
    hasObservation_ = false;
    inExecution_ = true;
    ++executionsSeen_;
    for (Candidate &cand : candidates_)
        cand.liveShift = 0.0;
}

void
GenerativeProfilePredictor::observe(Time now,
                                    double cumulativeProgress)
{
    DIRIGENT_ASSERT(inExecution_, "observe() outside an execution");
    if ((now - lastObsTime_).sec() <= 0.0)
        return;
    double prevProgress = lastProgress_;
    lastObsTime_ = now;
    lastProgress_ = std::max(lastProgress_, cumulativeProgress);
    hasObservation_ = true;
    updateLiveShifts((now - start_).sec(), lastProgress_,
                     lastProgress_ - prevProgress);
}

void
GenerativeProfilePredictor::endExecution(Time endTime,
                                         double finalProgress)
{
    DIRIGENT_ASSERT(inExecution_,
                    "endExecution() outside an execution");
    observe(endTime, finalProgress);
    inExecution_ = false;

    // Fold the whole execution's evidence into the persistent
    // weights: forget a fraction of the old log-weight, add the final
    // likelihood of "this candidate generated the observed duration".
    double actualSec = (endTime - start_).sec();
    double best = -1e300;
    for (Candidate &cand : candidates_) {
        double expected =
            expectedElapsedSec(cand, std::max(finalProgress, 0.0));
        double sigma = spec_.obsNoise * expected + noiseFloorSec_;
        double z = (actualSec - expected) / sigma;
        cand.logWeight =
            spec_.forget * cand.logWeight - 0.5 * z * z;
        best = std::max(best, cand.logWeight);
    }
    // Renormalize so the best hypothesis sits at 0 and no candidate
    // is ever irrecoverably drowned (drift robustness: a regime that
    // returns must be re-discoverable in a couple of executions).
    for (Candidate &cand : candidates_)
        cand.logWeight = std::max(cand.logWeight - best,
                                  kLogWeightFloor);
}

double
GenerativeProfilePredictor::expectedElapsedSec(const Candidate &cand,
                                               double progress) const
{
    const auto &segs = profile_->segments();
    double expected = 0.0;
    double remaining = progress;
    for (size_t i = 0; i < segs.size(); ++i) {
        double segProgress = segs[i].progress;
        if (remaining >= segProgress) {
            expected += cand.segDurationSec[i];
            remaining -= segProgress;
        } else {
            if (segProgress > 0.0)
                expected += cand.segDurationSec[i] *
                            (remaining / segProgress);
            remaining = 0.0;
            break;
        }
    }
    // Progress past the profile's end projects at the final rate.
    if (remaining > 0.0 && profile_->totalProgress() > 0.0)
        expected += cand.totalSec *
                    (remaining / profile_->totalProgress());
    return expected;
}

void
GenerativeProfilePredictor::updateLiveShifts(double elapsedSec,
                                             double progress,
                                             double progressDelta)
{
    // The likelihood is deliberately *absolute*, not scale-invariant:
    // under regime drift the level of the observed prefix is the
    // evidence that identifies which sampled curve is active (a flat
    // slow prefix plus a remembered step shape is what lets the
    // posterior anticipate a mid-execution shift). predictTotal()'s
    // closed-form rate factor then absorbs whatever level error
    // remains between the winning candidates and the truth.
    //
    // Evidence *accumulates* along the execution, each observation
    // weighted by the progress it covers (so the total is invariant
    // to the sampling rate): two candidates that agree on the current
    // cumulative elapsed time but disagree on how the prefix got
    // there are still told apart.
    double weight = profile_->totalProgress() > 0.0
                        ? double(profile_->segments().size()) *
                              (progressDelta /
                               profile_->totalProgress())
                        : 0.0;
    for (Candidate &cand : candidates_) {
        double expected = expectedElapsedSec(cand, progress);
        double sigma = spec_.obsNoise * expected + noiseFloorSec_;
        double z = (elapsedSec - expected) / sigma;
        cand.liveShift -= 0.5 * z * z * weight;
    }
}

std::vector<double>
GenerativeProfilePredictor::posterior() const
{
    std::vector<double> weights(candidates_.size());
    double best = -1e300;
    for (size_t k = 0; k < candidates_.size(); ++k)
        best = std::max(best, candidates_[k].logWeight +
                                  candidates_[k].liveShift);
    double sum = 0.0;
    for (size_t k = 0; k < candidates_.size(); ++k) {
        weights[k] = std::exp(candidates_[k].logWeight +
                              candidates_[k].liveShift - best);
        sum += weights[k];
    }
    for (double &w : weights)
        w /= sum;
    return weights;
}

Time
GenerativeProfilePredictor::predictTotal() const
{
    std::vector<double> weights = posterior();
    double elapsedSec = (lastObsTime_ - start_).sec();
    double remaining = 0.0;
    for (size_t k = 0; k < candidates_.size(); ++k) {
        const Candidate &cand = candidates_[k];
        double consumed = expectedElapsedSec(cand, lastProgress_);
        // Each candidate fixes a curve *shape*; the global rate is a
        // multiplicative nuisance estimated in closed form from the
        // observed elapsed/expected ratio (shrunk toward 1 by the
        // noise floor so one early noisy sample can't swing it). The
        // posterior then only has to identify the shape, not quantize
        // the absolute scale onto the nearest sampled candidate.
        double scale = (elapsedSec + noiseFloorSec_) /
                       (consumed + noiseFloorSec_);
        remaining += weights[k] *
                     std::max(cand.totalSec - consumed, 0.0) * scale;
    }
    return Time::sec(elapsedSec + remaining);
}

Time
GenerativeProfilePredictor::predictCompletion() const
{
    return start_ + predictTotal();
}

double
GenerativeProfilePredictor::progressFraction() const
{
    return lastProgress_ / profile_->totalProgress();
}

double
GenerativeProfilePredictor::alphaMa() const
{
    // Posterior-mean contention factor relative to the profile: the
    // ensemble's analogue of the EMA predictor's MA({α}).
    double base = profile_->totalTime().sec();
    if (base <= 0.0)
        return 1.0;
    std::vector<double> weights = posterior();
    double mean = 0.0;
    for (size_t k = 0; k < candidates_.size(); ++k)
        mean += weights[k] * candidates_[k].totalSec;
    return mean / base;
}

std::vector<double>
GenerativeProfilePredictor::candidateCurve(size_t k) const
{
    DIRIGENT_ASSERT(k < candidates_.size(), "bad candidate index %zu",
                    k);
    return candidates_[k].cumSec;
}

} // namespace dirigent::core
