/**
 * @file
 * The Dirigent runtime: the lightweight userspace process that samples
 * foreground progress every ΔT, feeds the per-FG predictors, and drives
 * the fine- and coarse-time-scale controllers. The runtime is pinned to
 * a core shared with a background task (at lower niceness than the BG
 * task in the paper's setup) and each invocation steals its measured
 * overhead (< 100 µs) from that core.
 */

#ifndef DIRIGENT_DIRIGENT_RUNTIME_H
#define DIRIGENT_DIRIGENT_RUNTIME_H

#include <map>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "dirigent/coarse_controller.h"
#include "dirigent/completion_predictor.h"
#include "dirigent/fallback_predictor.h"
#include "dirigent/fine_controller.h"
#include "dirigent/predictor_spec.h"
#include "dirigent/profile.h"
#include "dirigent/progress.h"
#include "machine/actuators.h"
#include "machine/machine.h"
#include "machine/sampler.h"

namespace dirigent::fault {
class FaultInjector;
} // namespace dirigent::fault

namespace dirigent::core {

/** Runtime configuration. */
struct RuntimeConfig
{
    /** Progress sampling period ΔT. */
    Time samplingPeriod = Time::ms(5.0);

    /** Control decisions every this many prediction segments. */
    unsigned decisionPeriodTicks = 5;

    /**
     * Completion-prediction scheme and knobs, including the degraded
     * (reactive fallback) parameters; see dirigent/predictor_spec.h.
     * Every FG's predictor is built from this spec through
     * makePredictor(), so swapping schemes is a config change.
     */
    PredictorSpec predictor;

    FineControllerConfig fine;
    CoarseControllerConfig coarse;

    /** Enable the fine-grain DVFS/pause controller. */
    bool enableFine = true;

    /** Enable the coarse-grain partition controller. */
    bool enableCoarse = true;

    /** Per-invocation runtime overhead stolen from runtimeCore. */
    Time invocationOverhead = Time::us(80.0);

    /** Core the runtime thread is pinned to (shared with a BG task). */
    unsigned runtimeCore = 1;

    /** Sleep overshoot of the sampling loop. */
    Time wakeOvershootMean = Time::us(30.0);
    Time wakeOvershootSigma = Time::us(15.0);

    /** Seed of the runtime's private randomness. */
    uint64_t seed = 7;

    /**
     * Progress metric the predictors consume; must match the metric
     * the profiles were recorded with.
     */
    ProgressMetric metric = ProgressMetric::RetiredInstructions;

    /**
     * Fault injector consulted at the sensing boundary (counter reads)
     * and handed to the sampling timer (not owned; nullptr = no
     * injection, bit-identical behaviour).
     */
    fault::FaultInjector *faults = nullptr;

    /**
     * Sample sanitizer: a progress delta is physically implausible —
     * and held at the previous value instead of reaching the
     * predictor — when it exceeds maxFreq · maxPlausibleIpc · 2·dt.
     */
    double maxPlausibleIpc = 12.0;
};

/**
 * The assembled Dirigent runtime. One instance manages all foreground
 * processes of a machine for the duration of an experiment.
 */
class DirigentRuntime
{
  public:
    /**
     * A mid-execution prediction paired with the eventual outcome, for
     * predictor-accuracy evaluation (paper Figs. 6 and 7: predictions
     * taken about half-way through each execution).
     */
    struct PredictionSample
    {
        uint64_t executionIndex = 0;
        Time predictedTotal; //!< predicted duration at the midpoint
        Time actualTotal;    //!< measured duration at completion
    };

    /**
     * Assemble the runtime over an explicit actuator bundle. The
     * frequency and pause actuators are required; the partition
     * actuator only when the coarse controller is enabled.
     */
    DirigentRuntime(machine::Machine &machine, sim::Engine &engine,
                    const machine::ActuatorSet &actuators,
                    RuntimeConfig config = RuntimeConfig{});

    /**
     * Convenience: assemble over the machine's concrete devices; the
     * runtime owns the adapter bundle.
     */
    DirigentRuntime(machine::Machine &machine, sim::Engine &engine,
                    machine::CpuFreqGovernor &governor,
                    machine::CatController &cat,
                    RuntimeConfig config = RuntimeConfig{});

    ~DirigentRuntime();

    DirigentRuntime(const DirigentRuntime &) = delete;
    DirigentRuntime &operator=(const DirigentRuntime &) = delete;

    /**
     * Register a foreground process with its standalone profile and
     * deadline (duration). Call before start().
     */
    void addForeground(machine::Pid pid, const Profile *profile,
                       Time deadline);

    /** Begin sampling and controlling. */
    void start();

    /** Stop sampling; controllers take no further actions. */
    void stop();

    /** The predictor of a registered FG process. */
    const CompletionPredictor &predictor(machine::Pid pid) const;

    /** The fine controller (valid regardless of enableFine). */
    FineGrainController &fineController() { return *fine_; }

    /** The coarse controller, or nullptr when disabled. */
    CoarseGrainController *coarseController() { return coarse_.get(); }

    /** Midpoint prediction/outcome pairs of a registered FG process. */
    const std::vector<PredictionSample> &
    midpointSamples(machine::Pid pid) const;

    /** Total runtime invocations (sampler ticks). */
    uint64_t invocations() const { return tickCount_; }

    /**
     * Attach a decision trace to both controllers (not owned). Call
     * before start() so the coarse controller (created at start) is
     * wired too.
     */
    void setTrace(DecisionTrace *trace);

    /**
     * Re-arm @p pid's predictor clock at @p now. Open-loop arrival
     * drivers call this when service starts after an idle period, so
     * queueing idle time is not charged against the prediction.
     */
    void restartPredictionClock(machine::Pid pid, Time now);

    /** True once @p pid fell back to reactive (degraded) control. */
    bool degradedMode(machine::Pid pid) const;

    /** Pids of all registered foreground processes, ascending. */
    std::vector<machine::Pid> foregroundPids() const;

    /** Deadline of a registered FG process. */
    Time deadline(machine::Pid pid) const;

    /** Counter samples rejected by the plausibility sanitizer. */
    uint64_t sanitizedSamples() const { return sanitizedSamples_; }

  private:
    /** Per-channel sanitizer state: the last value fed downstream. */
    struct SenseState
    {
        bool init = false;
        double last = 0.0;
        Time lastTime;
    };

    struct FgState
    {
        machine::Pid pid = 0;
        unsigned core = 0;
        const Profile *profile = nullptr;
        Time deadline;
        std::unique_ptr<ProfileFallbackPredictor> predictor;
        double instrAtStart = 0.0;
        double missesAtStart = 0.0;
        bool midpointRecorded = false;
        Time midpointPrediction;
        std::vector<PredictionSample> samples;
        SenseState progressSense;
        SenseState missSense;
    };

    void init(sim::Engine &engine);
    void onTick(const machine::PeriodicSampler::Tick &tick);
    void onCompletion(const machine::CompletionRecord &rec);
    double cumulativeProgress(FgState &fg);
    double sampleMisses(FgState &fg);
    double sanitize(SenseState &st, double raw);
    void noteFault(machine::Pid pid, const std::string &what);

    machine::Machine &machine_;
    std::unique_ptr<machine::MachineActuators> ownedActuators_;
    machine::ActuatorSet actuators_;
    RuntimeConfig config_;
    std::unique_ptr<FineGrainController> fine_;
    std::unique_ptr<CoarseGrainController> coarse_;
    std::unique_ptr<machine::PeriodicSampler> sampler_;
    std::map<machine::Pid, FgState> fgs_;
    size_t completionListener_ = 0;
    uint64_t tickCount_ = 0;
    uint64_t sanitizedSamples_ = 0;
    bool started_ = false;
    DecisionTrace *trace_ = nullptr;
};

} // namespace dirigent::core

#endif // DIRIGENT_DIRIGENT_RUNTIME_H
