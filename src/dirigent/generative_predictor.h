/**
 * @file
 * Generative-profile completion predictor (CORD-style).
 *
 * Instead of correcting the profile with penalty EMAs, this scheme
 * builds an ensemble of plausible progress curves around the
 * standalone profile at construction time — one unperturbed copy plus
 * K−1 curves on a *stratified* grid of whole-curve contention levels
 * crossed with smooth early-to-late drift ramps (contention shifting
 * *within* an execution), each with a little seeded per-segment
 * duration jitter. During an execution it accumulates a posterior
 * over the candidates from the discrepancy between observed elapsed
 * time and each candidate's expected elapsed time at the current
 * progress, and predicts completion as the posterior-weighted mixture
 * of candidate remainders, each rescaled by the observed global rate.
 * Across executions the (log-)weights persist with a forgetting
 * factor, so the ensemble re-locks onto the active regime within an
 * execution or two when the workload drifts — the regime where a
 * single global EMA is slowest to adapt.
 */

#ifndef DIRIGENT_DIRIGENT_GENERATIVE_PREDICTOR_H
#define DIRIGENT_DIRIGENT_GENERATIVE_PREDICTOR_H

#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "dirigent/completion_predictor.h"
#include "dirigent/predictor_spec.h"
#include "dirigent/profile.h"

namespace dirigent::core {

/** Posterior-weighted ensemble of sampled progress curves. */
class GenerativeProfilePredictor : public CompletionPredictor
{
  public:
    /**
     * @param profile standalone profile (not owned; must outlive).
     * @param spec ensemble size and sampling/posterior knobs.
     * @param rng seeded sampler stream (consumed at construction
     *        only, so prediction itself is deterministic).
     */
    GenerativeProfilePredictor(const Profile *profile,
                               const PredictorSpec &spec, Rng rng);

    // CompletionPredictor
    const Profile &profile() const override { return *profile_; }
    void beginExecution(Time startTime) override;
    void observe(Time now, double cumulativeProgress) override;
    void endExecution(Time endTime, double finalProgress) override;
    bool hasObservation() const override { return hasObservation_; }
    Time predictTotal() const override;
    Time predictCompletion() const override;
    double progressFraction() const override;
    Time elapsed() const override { return lastObsTime_ - start_; }
    uint64_t executionsSeen() const override
    {
        return executionsSeen_;
    }
    double alphaMa() const override;
    const char *name() const override { return "generative"; }

    /** Number of sampled candidate curves. */
    size_t ensembleSize() const { return candidates_.size(); }

    /**
     * Candidate @p k's sampled curve as cumulative time at each
     * segment end (seconds, strictly increasing — the generative
     * curves inherit the profile's monotonicity). For tests and
     * inspection.
     */
    std::vector<double> candidateCurve(size_t k) const;

    /** Current posterior weights (normalized; sums to 1). */
    std::vector<double> posterior() const;

  private:
    struct Candidate
    {
        /** Sampled per-segment durations (seconds, all > 0). */
        std::vector<double> segDurationSec;

        /** Cumulative duration at each segment end. */
        std::vector<double> cumSec;

        double totalSec = 0.0;

        /** Persistent cross-execution log-weight (<= 0). */
        double logWeight = 0.0;

        /** Current-execution likelihood shift (reset each begin). */
        double liveShift = 0.0;
    };

    /** Candidate @p cand's expected elapsed time at @p progress. */
    double expectedElapsedSec(const Candidate &cand,
                              double progress) const;

    /** Fold one observation (covering @p progressDelta units of
     *  progress) into every candidate's accumulated liveShift. */
    void updateLiveShifts(double elapsedSec, double progress,
                          double progressDelta);

    const Profile *profile_;
    PredictorSpec spec_;
    std::vector<Candidate> candidates_;

    /** Floor of the observation-noise scale (guards tiny expecteds). */
    double noiseFloorSec_;

    // Per-execution state.
    Time start_;
    Time lastObsTime_;
    double lastProgress_ = 0.0;
    bool hasObservation_ = false;
    bool inExecution_ = false;
    uint64_t executionsSeen_ = 0;
};

} // namespace dirigent::core

#endif // DIRIGENT_DIRIGENT_GENERATIVE_PREDICTOR_H
