#include "dirigent/fine_controller.h"

#include <algorithm>

#include "common/log.h"

namespace dirigent::core {

FineGrainController::FineGrainController(const machine::Machine &machine,
                                         machine::FrequencyActuator &frequency,
                                         machine::PauseActuator &pause,
                                         FineControllerConfig config)
    : machine_(machine), frequency_(frequency), pause_(pause),
      config_(config),
      ladder_(frequency.equispacedGrades(config.gradeCount)),
      ladderPos_(machine.numCores(), unsigned(ladder_.size()) - 1),
      lastMisses_(machine.numCores(), 0.0)
{
    stats_.bgGradeResidency.assign(ladder_.size(), 0);
}

void
FineGrainController::tick(const std::vector<FgStatus> &statuses)
{
    ++stats_.decisions;
    recordResidency();

    // Work with the valid predictions only.
    std::vector<const FgStatus *> valid;
    for (const auto &st : statuses)
        if (st.valid && st.deadline.sec() > 0.0)
            valid.push_back(&st);
    if (valid.empty())
        return;

    auto ratio = [this](const FgStatus *st) {
        return st->predicted.sec() /
               (st->deadline.sec() * (1.0 - config_.safetyMargin));
    };
    const FgStatus *slowest =
        *std::max_element(valid.begin(), valid.end(),
                          [&](const FgStatus *a, const FgStatus *b) {
                              return ratio(a) < ratio(b);
                          });
    double r = ratio(slowest);
    decisionPid_ = slowest->pid;
    decisionSlack_ = r;
    bool behind = r > 1.0;
    bool ahead = r < 1.0 - config_.aheadThreshold;

    if (behind) {
        // Ladder: slowest FG to max → throttle BG → pause most
        // intrusive BG (only when ≥ pauseThreshold behind).
        if (!fgToMax(slowest->core)) {
            if (!throttleBgOneGrade()) {
                if (r > 1.0 + config_.pauseThreshold)
                    pauseMostIntrusive();
            }
        }
    } else if (ahead) {
        // Ladder: continue paused BG → boost throttled BG → throttle
        // the FG itself.
        if (!resumePaused()) {
            if (!boostBgOneGrade())
                throttleFgDown(slowest->core);
        }
    }

    // Any *other* FG expected to finish comfortably early is throttled
    // down individually (multi-FG policy); a lagging one is sped up.
    for (const auto *st : valid) {
        if (st == slowest)
            continue;
        double rr = ratio(st);
        decisionPid_ = st->pid;
        decisionSlack_ = rr;
        if (rr < 1.0 - config_.aheadThreshold)
            throttleFgDown(st->core);
        else if (rr > 1.0)
            fgToMax(st->core);
    }
}

double
FineGrainController::drainThrottleSeverity()
{
    double avg =
        severitySamples_ ? severityAccum_ / double(severitySamples_) : 0.0;
    severityAccum_ = 0.0;
    severitySamples_ = 0;
    return avg;
}

std::vector<Freq>
FineGrainController::ladderFreqs() const
{
    std::vector<Freq> freqs;
    for (unsigned g : ladder_)
        freqs.push_back(frequency_.gradeFreq(g));
    return freqs;
}

void
FineGrainController::releaseAll()
{
    for (machine::Pid pid : pausedBg_)
        pause_.resume(pid);
    pausedBg_.clear();
    for (machine::Pid pid : machine_.os().backgroundPids()) {
        unsigned core = machine_.os().process(pid).core;
        setPos(core, unsigned(ladder_.size()) - 1);
    }
}

bool
FineGrainController::isBg(machine::Pid pid) const
{
    return !machine_.os().process(pid).foreground;
}

std::vector<machine::Pid>
FineGrainController::activeBgPids() const
{
    std::vector<machine::Pid> out;
    for (machine::Pid pid : machine_.os().backgroundPids())
        if (machine_.os().process(pid).runnable())
            out.push_back(pid);
    return out;
}

void
FineGrainController::setPos(unsigned core, unsigned position)
{
    DIRIGENT_ASSERT(position < ladder_.size(), "bad ladder position %u",
                    position);
    ladderPos_[core] = position;
    frequency_.setGrade(core, ladder_[position]);
}

bool
FineGrainController::resumePaused()
{
    if (pausedBg_.empty())
        return false;
    for (machine::Pid pid : pausedBg_) {
        pause_.resume(pid);
        ++stats_.resumes;
    }
    traceAction(TraceAction::BgResumed,
                strfmt("%zu tasks", pausedBg_.size()));
    pausedBg_.clear();
    return true;
}

bool
FineGrainController::boostBgOneGrade()
{
    bool acted = false;
    for (machine::Pid pid : activeBgPids()) {
        unsigned core = machine_.os().process(pid).core;
        if (pos(core) + 1 < ladder_.size()) {
            setPos(core, pos(core) + 1);
            acted = true;
        }
    }
    if (acted) {
        ++stats_.bgBoosts;
        traceAction(TraceAction::BgBoosted);
    }
    return acted;
}

bool
FineGrainController::throttleBgOneGrade()
{
    bool acted = false;
    for (machine::Pid pid : activeBgPids()) {
        unsigned core = machine_.os().process(pid).core;
        if (pos(core) > 0) {
            setPos(core, pos(core) - 1);
            acted = true;
        }
    }
    if (acted) {
        ++stats_.bgThrottles;
        traceAction(TraceAction::BgThrottled);
    }
    return acted;
}

bool
FineGrainController::pauseMostIntrusive()
{
    // Intrusiveness = LLC load misses generated since the last pause
    // scan, read from the per-core performance counters.
    machine::Pid victim = 0;
    double worst = -1.0;
    bool found = false;
    for (machine::Pid pid : activeBgPids()) {
        unsigned core = machine_.os().process(pid).core;
        double misses = machine_.readCounters(core).llcMisses;
        double delta = misses - lastMisses_[core];
        lastMisses_[core] = misses;
        if (delta > worst) {
            worst = delta;
            victim = pid;
            found = true;
        }
    }
    if (!found)
        return false;
    pause_.pause(victim);
    pausedBg_.push_back(victim);
    ++stats_.pauses;
    traceAction(TraceAction::BgPaused,
                strfmt("pid %u ('%s')", victim,
                       machine_.os().process(victim).name.c_str()));
    return true;
}

bool
FineGrainController::throttleFgDown(unsigned core)
{
    if (pos(core) == 0)
        return false;
    setPos(core, pos(core) - 1);
    ++stats_.fgThrottles;
    traceAction(TraceAction::FgThrottled, strfmt("core %u", core));
    return true;
}

bool
FineGrainController::fgToMax(unsigned core)
{
    if (pos(core) == ladder_.size() - 1)
        return false;
    setPos(core, unsigned(ladder_.size()) - 1);
    traceAction(TraceAction::FgToMax, strfmt("core %u", core));
    return true;
}

void
FineGrainController::traceAction(TraceAction action,
                                 const std::string &detail)
{
    if (trace_ == nullptr)
        return;
    TraceEvent event;
    event.when = machine_.now();
    event.action = action;
    event.fgPid = decisionPid_;
    event.slackRatio = decisionSlack_;
    event.detail = detail;
    trace_->record(std::move(event));
}

void
FineGrainController::recordResidency()
{
    bool anyPaused = false;
    unsigned bgCount = 0;
    double severity = 0.0;
    for (machine::Pid pid : machine_.os().backgroundPids()) {
        const auto &proc = machine_.os().process(pid);
        ++bgCount;
        if (!proc.runnable()) {
            anyPaused = true;
            severity += 1.0;
            continue;
        }
        unsigned p = pos(proc.core);
        stats_.bgGradeResidency[p] += 1;
        severity +=
            1.0 - double(p) / double(ladder_.size() - 1);
    }
    if (anyPaused)
        ++stats_.decisionsWithPause;
    if (bgCount > 0) {
        severityAccum_ += severity / double(bgCount);
        ++severitySamples_;
    }
}

} // namespace dirigent::core
