#include "dirigent/progress.h"

#include "common/log.h"

namespace dirigent::core {

const char *
progressMetricName(ProgressMetric metric)
{
    switch (metric) {
      case ProgressMetric::RetiredInstructions:
        return "retired-instructions";
      case ProgressMetric::Heartbeats:
        return "heartbeats";
    }
    return "?";
}

double
readCumulativeProgress(const machine::Machine &machine, unsigned core,
                       ProgressMetric metric)
{
    if (metric == ProgressMetric::RetiredInstructions)
        return machine.readCounters(core).instructions;

    const machine::Process *proc = machine.os().processOnCore(core);
    if (proc == nullptr || proc->task == nullptr)
        return 0.0;
    double beatsPerExecution = double(proc->program->phases.size());
    return double(proc->executions) * beatsPerExecution +
           proc->task->beatProgress();
}

} // namespace dirigent::core
