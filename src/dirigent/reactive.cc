#include "dirigent/reactive.h"

#include "common/log.h"

namespace dirigent::core {

ReactiveController::ReactiveController(machine::Machine &machine,
                                       machine::FrequencyActuator &frequency,
                                       machine::PauseActuator &pause,
                                       FineControllerConfig config)
    : machine_(machine), controller_(machine, frequency, pause, config)
{
}

ReactiveController::~ReactiveController()
{
    stop();
}

void
ReactiveController::addForeground(machine::Pid pid, Time deadline)
{
    DIRIGENT_ASSERT(!started_, "cannot add FG after start()");
    DIRIGENT_ASSERT(deadline.sec() > 0.0, "FG needs a positive deadline");
    DIRIGENT_ASSERT(machine_.os().process(pid).foreground,
                    "pid %u is not a foreground process", pid);
    deadlines_[pid] = deadline;
}

void
ReactiveController::start()
{
    if (started_)
        return;
    DIRIGENT_ASSERT(!deadlines_.empty(),
                    "reactive controller has no foreground processes");
    started_ = true;
    listener_ = machine_.addCompletionListener(
        [this](const machine::CompletionRecord &rec) {
            onCompletion(rec);
        });
}

void
ReactiveController::stop()
{
    if (!started_)
        return;
    started_ = false;
    machine_.removeCompletionListener(listener_);
}

void
ReactiveController::onCompletion(const machine::CompletionRecord &rec)
{
    auto it = deadlines_.find(rec.pid);
    if (it == deadlines_.end())
        return;
    lastDuration_[rec.pid] = rec.duration();
    ++decisions_;

    // One ladder decision per completion: the observed duration of the
    // execution that just finished stands in for a prediction of the
    // next one.
    std::vector<FineGrainController::FgStatus> statuses;
    for (const auto &[pid, deadline] : deadlines_) {
        auto last = lastDuration_.find(pid);
        if (last == lastDuration_.end())
            continue;
        FineGrainController::FgStatus st;
        st.pid = pid;
        st.core = machine_.os().process(pid).core;
        st.predicted = last->second;
        st.deadline = deadline;
        st.valid = true;
        statuses.push_back(st);
    }
    controller_.tick(statuses);
}

} // namespace dirigent::core
