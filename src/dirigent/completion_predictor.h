/**
 * @file
 * The prediction seam: a narrow interface every completion-time
 * predictor implements. The Dirigent runtime, the controllers, and the
 * obs layer talk only to this interface; concrete schemes (the paper's
 * EMA predictor, the generative-profile ensemble, the
 * deadline-decomposition variant, the degraded-mode fallback wrapper)
 * plug in behind it and are selected through the `[predictor]` spec
 * section (see dirigent/predictor_spec.h).
 *
 * Lifecycle contract (one predictor per foreground task, reused across
 * executions):
 *
 *   beginExecution(t0)
 *   observe(t, progress)*        // monotone t; cumulative progress
 *   endExecution(tEnd, final)    // closes the execution
 *   beginExecution(t0')          // next execution; history persists
 *
 * Queries (predictTotal, progressFraction, ...) are valid at any time
 * between beginExecution and endExecution and must be side-effect-free.
 */

#ifndef DIRIGENT_DIRIGENT_COMPLETION_PREDICTOR_H
#define DIRIGENT_DIRIGENT_COMPLETION_PREDICTOR_H

#include <cmath>
#include <cstdint>

#include "common/stats.h"
#include "common/units.h"
#include "dirigent/profile.h"

namespace dirigent::core {

/**
 * Interface of one foreground task's completion-time predictor.
 *
 * The base class also owns the shared midpoint-error tracker: derived
 * classes (in practice the fallback wrapper, which fronts every
 * runtime predictor) feed it one prediction per execution at the
 * progress midpoint plus the eventual outcome, and errorEstimate()
 * exposes the smoothed relative error as the predictor's
 * self-reported confidence signal.
 */
class CompletionPredictor
{
  public:
    virtual ~CompletionPredictor() = default;

    /** The standalone profile being predicted against. */
    virtual const Profile &profile() const = 0;

    /** Begin a new execution starting at @p startTime. */
    virtual void beginExecution(Time startTime) = 0;

    /**
     * Feed one progress observation.
     * @param now observation (wall) time.
     * @param cumulativeProgress instructions retired by the current
     *        execution so far.
     */
    virtual void observe(Time now, double cumulativeProgress) = 0;

    /**
     * Finish the current execution (task completed at @p endTime with
     * final progress @p finalProgress) and fold the outcome into the
     * predictor's cross-execution history.
     */
    virtual void endExecution(Time endTime, double finalProgress) = 0;

    /** True once the current execution has at least one observation
     *  (or the predictor can answer from history alone). */
    virtual bool hasObservation() const = 0;

    /** Predicted *total duration* of the current execution. */
    virtual Time predictTotal() const = 0;

    /** Predicted absolute completion time. */
    virtual Time predictCompletion() const = 0;

    /** Fraction of profiled total progress completed (0..1+). */
    virtual double progressFraction() const = 0;

    /** Elapsed time of the current execution at the last observation. */
    virtual Time elapsed() const = 0;

    /** Executions observed so far (for warm-up diagnostics). */
    virtual uint64_t executionsSeen() const = 0;

    /**
     * Current execution's contention rate-factor moving average;
     * 1.0 when the scheme has no such notion. Exposed for telemetry.
     */
    virtual double alphaMa() const { return 1.0; }

    /** True when the predictor has fallen back to reactive history
     *  (profile mismatch); see ProfileFallbackPredictor. */
    virtual bool degraded() const { return false; }

    /** Registry name of the prediction scheme ("ema", ...). */
    virtual const char *name() const = 0;

    /**
     * Smoothed relative midpoint prediction error (paper Eq. 3 per
     * execution, EMA across executions); 0 before any tracked
     * execution completed. Lower is better.
     */
    double
    errorEstimate() const
    {
        return errorEma_.valid() ? errorEma_.value() : 0.0;
    }

  protected:
    /**
     * Arm the error tracker with the current prediction once per
     * execution, at or after the progress midpoint (mirrors how the
     * runtime scores predictors: one midpoint sample per execution).
     */
    void
    trackPrediction(double progressFrac, Time predicted)
    {
        if (trackerArmed_ || progressFrac < 0.5)
            return;
        trackerArmed_ = true;
        trackedPredictionSec_ = predicted.sec();
    }

    /** Score the armed prediction against the actual duration. */
    void
    trackOutcome(Time actual)
    {
        if (!trackerArmed_)
            return;
        trackerArmed_ = false;
        double actualSec = actual.sec();
        if (actualSec > 0.0 &&
            std::isfinite(trackedPredictionSec_))
            errorEma_.add(std::fabs(trackedPredictionSec_ - actualSec) /
                          actualSec);
    }

    /** Disarm without scoring (execution restarted mid-flight). */
    void resetTracking() { trackerArmed_ = false; }

  private:
    Ema errorEma_{0.3};
    bool trackerArmed_ = false;
    double trackedPredictionSec_ = 0.0;
};

} // namespace dirigent::core

#endif // DIRIGENT_DIRIGENT_COMPLETION_PREDICTOR_H
