/**
 * @file
 * Dirigent's online completion-time predictor (paper §4.2).
 *
 * During contended execution the predictor receives periodic progress
 * observations (cumulative retired instructions). It maps progress onto
 * the standalone profile's segments and, for every segment completed
 * online, computes the segment's time penalty
 *
 *   P_i = (α_i − 1) · ΔT_i        where α_i = measured_i / ΔT_i   (Eq. 1)
 *
 * (α_i is equivalently the ratio of profiled to measured progress
 * rates). Per-segment penalties are smoothed across executions with an
 * exponential moving average (weight 0.2), and the rate factors seen so
 * far in the *current* execution are smoothed into MA({α}₁..k). The
 * expected completion time is then
 *
 *   T_est,k = T + Σ_{i>k} ( MA({α}₁..k) · P̄_i + ΔT_i )           (Eq. 2)
 *
 * extended here to include the remaining fraction of the in-flight
 * segment k (the paper evaluates Eq. 2 at segment boundaries; including
 * the partial segment makes mid-segment queries equally accurate).
 */

#ifndef DIRIGENT_DIRIGENT_PREDICTOR_H
#define DIRIGENT_DIRIGENT_PREDICTOR_H

#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "dirigent/completion_predictor.h"
#include "dirigent/profile.h"

namespace dirigent::core {

/** Predictor tuning parameters. */
struct PredictorConfig
{
    /** EMA weight for per-segment penalties across executions. */
    double penaltyEmaWeight = 0.2;

    /** EMA weight for the in-flight rate-factor moving average. */
    double rateEmaWeight = 0.2;
};

/**
 * Online completion-time predictor for one foreground application.
 * Reused across consecutive executions of the same task; per-segment
 * penalty averages persist and improve over executions.
 */
class Predictor : public CompletionPredictor
{
  public:
    /**
     * @param profile standalone profile (not owned; must outlive).
     * @param config tuning parameters.
     */
    explicit Predictor(const Profile *profile,
                       PredictorConfig config = PredictorConfig{});

    /** The profile being predicted against. */
    const Profile &profile() const override { return *profile_; }

    /** Begin a new execution starting at @p startTime. */
    void beginExecution(Time startTime) override;

    /**
     * Feed one progress observation.
     * @param now observation (wall) time.
     * @param cumulativeProgress instructions retired by the current
     *        execution so far.
     */
    void observe(Time now, double cumulativeProgress) override;

    /**
     * Finish the current execution (task completed at @p endTime with
     * final progress @p finalProgress). Closes the in-flight segment's
     * penalty accounting and arms the predictor for the next execution.
     */
    void endExecution(Time endTime, double finalProgress) override;

    /** True once the current execution has at least one observation. */
    bool hasObservation() const override { return hasObservation_; }

    /**
     * Predicted *total duration* of the current execution (Eq. 2,
     * relative to the execution's start). Before the first observation
     * this is the profile total adjusted by historical penalties.
     */
    Time predictTotal() const override;

    /** Predicted absolute completion time (start + predictTotal). */
    Time predictCompletion() const override;

    /** Index of the profile segment progress is currently inside. */
    size_t currentSegment() const { return segIdx_; }

    /** Fraction of profiled total progress completed (0..1+). */
    double progressFraction() const override;

    /** Elapsed time of the current execution at the last observation. */
    Time elapsed() const override { return lastObsTime_ - start_; }

    /** Executions observed so far (for warm-up diagnostics). */
    uint64_t executionsSeen() const override { return executionsSeen_; }

    /**
     * Current execution's rate-factor moving average MA({α}₁..k);
     * 1.0 (no contention penalty) before any segment has closed.
     * Exposed for telemetry.
     */
    double alphaMa() const override
    {
        return rateMa_.valid() ? 1.0 + rateMa_.value() : 1.0;
    }

    const char *name() const override { return "ema"; }

    /** Historical penalty average of segment @p i (for tests). */
    double penaltyAverage(size_t i) const;

  private:
    /** Expected online duration of segment @p i given current MA(α). */
    Time expectedSegmentTime(size_t i) const;

    void closeSegment(Time boundaryTime);

    const Profile *profile_;
    PredictorConfig config_;

    /** P̄_i across executions (seconds). */
    std::vector<Ema> penaltyEma_;

    // Per-execution state.
    Time start_;
    size_t segIdx_ = 0;
    double segProgressDone_ = 0.0;
    Time segStartTime_;
    Time lastObsTime_;
    double lastProgress_ = 0.0;
    Ema rateMa_;
    /**
     * Reference moving average: the *historical* penalty rates of the
     * same segments rateMa_ averaged, with identical weighting. The
     * predictive scale is rateMa_/refRateMa_, so per-phase differences
     * in contention sensitivity cancel and only the execution-level
     * contention shift remains.
     */
    Ema refRateMa_;
    bool hasObservation_ = false;
    bool inExecution_ = false;
    uint64_t executionsSeen_ = 0;
};

} // namespace dirigent::core

#endif // DIRIGENT_DIRIGENT_PREDICTOR_H
