/**
 * @file
 * The offline execution profile of a foreground application: the series
 * of (progress, duration) segment pairs recorded while the application
 * runs alone, sampled every ΔT (5 ms by default). This is the reference
 * the online predictor compares contended progress against.
 */

#ifndef DIRIGENT_DIRIGENT_PROFILE_H
#define DIRIGENT_DIRIGENT_PROFILE_H

#include <optional>
#include <string>
#include <vector>

#include "common/units.h"

namespace dirigent::core {

/** One profiled segment: progress made and (measured) time taken. */
struct ProfileSegment
{
    double progress = 0.0; //!< instructions retired in the segment
    Time duration;         //!< measured wall time of the segment

    bool
    operator==(const ProfileSegment &o) const
    {
        return progress == o.progress && duration == o.duration;
    }
};

/**
 * The complete standalone profile of a foreground benchmark.
 */
class Profile
{
  public:
    Profile() = default;

    /**
     * @param benchmark profiled benchmark name.
     * @param samplingPeriod nominal ΔT used while profiling.
     * @param segments profiled segments in execution order.
     */
    Profile(std::string benchmark, Time samplingPeriod,
            std::vector<ProfileSegment> segments);

    const std::string &benchmark() const { return benchmark_; }
    Time samplingPeriod() const { return samplingPeriod_; }
    const std::vector<ProfileSegment> &segments() const { return segments_; }

    /** Number of segments. */
    size_t size() const { return segments_.size(); }

    /** True when the profile has no segments. */
    bool empty() const { return segments_.empty(); }

    /** Total profiled progress (instructions). */
    double totalProgress() const;

    /** Total profiled (standalone) execution time. */
    Time totalTime() const;

    /**
     * Serialize to a line-oriented text format suitable for storing
     * profiles on disk between the offline profiling run and online use.
     */
    std::string serialize() const;

    /**
     * Parse a profile previously produced by serialize().
     * @return std::nullopt on malformed input.
     */
    static std::optional<Profile> deserialize(const std::string &text);

  private:
    std::string benchmark_;
    Time samplingPeriod_;
    std::vector<ProfileSegment> segments_;
};

} // namespace dirigent::core

#endif // DIRIGENT_DIRIGENT_PROFILE_H
