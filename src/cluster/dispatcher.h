/**
 * @file
 * The global dispatcher: routes a cluster-level arrival stream across
 * nodes, one decision per request, using only deterministic inputs — a
 * per-node *modeled* queue (calibrated service estimate, no live
 * simulation state) and a private seeded RNG. Decisions therefore
 * depend only on (models, seed, arrival stream), which is what lets
 * splitArrivals() run once, serially, and hand each node an immutable
 * arrival trace to replay in parallel: one node = one deterministic
 * job, byte-identical at any executor thread count.
 */

#ifndef DIRIGENT_CLUSTER_DISPATCHER_H
#define DIRIGENT_CLUSTER_DISPATCHER_H

#include <deque>
#include <memory>
#include <vector>

#include "cluster/spec.h"
#include "common/random.h"
#include "common/units.h"
#include "serve/arrival.h"

namespace dirigent::cluster {

/** What the dispatcher knows about one node when routing. */
struct NodeModel
{
    /** FG serving slots (parallel logical servers). */
    unsigned slots = 1;

    /** Expected per-request service time (calibrated; seconds). */
    double serviceEstimateSec = 1.0;

    /** Slack-aware weight (>= 0; from calibrated deadline slack). */
    double weight = 1.0;
};

/**
 * Deterministic modeled queue of one node: the node is folded into a
 * single logical server of rate slots/serviceEstimate, so each
 * modeled request finishes at max(now, backlogEnd) + service/slots.
 * Finish times are nondecreasing, which keeps the drain O(1).
 */
class NodeLoadModel
{
  public:
    explicit NodeLoadModel(const NodeModel &model);

    /** Modeled outstanding requests after draining finishes <= now. */
    size_t depth(Time now);

    /** Admit one modeled request arriving at @p now. */
    void assign(Time now);

  private:
    double effectiveServiceSec_;
    Time backlogEnd_ = Time::sec(0.0);
    std::deque<Time> completions_;
};

/**
 * Routes one arrival at a time to a node index. Subclasses implement
 * pick(); route() maintains the shared modeled queues and per-node
 * assignment counters.
 */
class Dispatcher
{
  public:
    explicit Dispatcher(std::vector<NodeModel> models);
    virtual ~Dispatcher() = default;

    virtual DispatchPolicy policy() const = 0;

    /** Route one arrival at absolute time @p now; node index. */
    unsigned route(Time now);

    size_t nodeCount() const { return models_.size(); }

    const std::vector<NodeModel> &models() const { return models_; }

    /** Requests routed to each node so far. */
    const std::vector<uint64_t> &assigned() const { return assigned_; }

    /** Modeled queue depth of @p node at @p now (drains first). */
    size_t modeledDepth(unsigned node, Time now);

  protected:
    /** Choose the node for an arrival at @p now. */
    virtual unsigned pick(Time now) = 0;

    const std::vector<NodeModel> models_;
    std::vector<NodeLoadModel> load_;
    std::vector<uint64_t> assigned_;
};

/** Cycle through nodes 0..N-1. */
class RoundRobinDispatcher : public Dispatcher
{
  public:
    explicit RoundRobinDispatcher(std::vector<NodeModel> models);
    DispatchPolicy policy() const override
    {
        return DispatchPolicy::RoundRobin;
    }

  protected:
    unsigned pick(Time now) override;

  private:
    size_t next_ = 0;
};

/** Shortest modeled queue; ties to the fewest total assignments,
 *  then the lowest index (so an idle fleet degenerates to round-robin
 *  rather than funnelling everything to node 0). */
class JoinShortestQueueDispatcher : public Dispatcher
{
  public:
    explicit JoinShortestQueueDispatcher(std::vector<NodeModel> models);
    DispatchPolicy policy() const override
    {
        return DispatchPolicy::JoinShortestQueue;
    }

  protected:
    unsigned pick(Time now) override;
};

/**
 * Seeded weighted sampling proportional to each node's slack weight
 * (negative weights clamp to 0; at least one must be positive).
 */
class SlackWeightedDispatcher : public Dispatcher
{
  public:
    SlackWeightedDispatcher(std::vector<NodeModel> models, Rng rng);
    DispatchPolicy policy() const override
    {
        return DispatchPolicy::SlackWeighted;
    }

  protected:
    unsigned pick(Time now) override;

  private:
    std::vector<double> cumulative_;
    Rng rng_;
};

/**
 * Power-of-two-choices: two seeded probes (distinct when N > 1), the
 * shorter modeled queue wins; ties to the lower probed index.
 */
class PowerOfTwoDispatcher : public Dispatcher
{
  public:
    PowerOfTwoDispatcher(std::vector<NodeModel> models, Rng rng);
    DispatchPolicy policy() const override
    {
        return DispatchPolicy::PowerOfTwoChoices;
    }

  protected:
    unsigned pick(Time now) override;

  private:
    Rng rng_;
};

/**
 * Instantiate @p policy over @p models with randomness derived from
 * @p seed (deterministic policies ignore it). fatal() on empty models
 * or a weightless fleet under wslack.
 */
std::unique_ptr<Dispatcher>
makeDispatcher(DispatchPolicy policy, std::vector<NodeModel> models,
               uint64_t seed);

/** The routed cluster stream: per-node, per-slot arrival traces. */
struct DispatchPlan
{
    /** Requests generated by the cluster-level arrival process. */
    uint64_t generated = 0;

    /** Arrival times per [node][fg slot], each nondecreasing. */
    std::vector<std::vector<std::vector<Time>>> slotArrivals;

    /** Requests routed to each node (== dispatcher.assigned()). */
    std::vector<uint64_t> assigned;
};

/**
 * Drain @p stream up to @p horizon (inclusive, matching ServeDriver's
 * injection window) routing every arrival through @p dispatcher;
 * within a node, slots are fed round-robin. The plan's per-slot traces
 * replay through serve::TraceArrivals.
 */
DispatchPlan splitArrivals(serve::ArrivalProcess &stream, Time horizon,
                           Dispatcher &dispatcher);

} // namespace dirigent::cluster

#endif // DIRIGENT_CLUSTER_DISPATCHER_H
