/**
 * @file
 * Declarative cluster description: a ClusterSpec bundles the fleet
 * shape (node count, per-node mix/scheme/speed overrides), the global
 * dispatch policy, and the cluster-level serving workload of one
 * simulated fleet as data — the cluster analogue of core::SchemeSpec
 * and serve::ServeSpec, in the same INI Config format, round-trippable
 * through formatClusterSpec() and fingerprinted with FNV-1a so a run
 * manifest can reproduce its exact fleet.
 *
 *   [cluster]
 *   name = quad-jsq        # display name
 *   nodes = 4              # node count (1..512)
 *   policy = jsq           # rr | jsq | wslack | po2
 *   mix = ferret/rs        # default node mix: fg[,fg...]/bg[+bg2]
 *   scheme = Dirigent      # default node scheme (registry name)
 *   speed = 1              # default node speed factor (scales DVFS)
 *   service_estimate_s = 0 # dispatcher service model; 0 = calibrated
 *   sweep_policies = rr,jsq# optional policy grid for runClusterSweep
 *   sweep_nodes = 2,4,8    # optional node-count grid
 *
 *   [node2]                # per-node overrides (index < nodes)
 *   mix = ferret/bwaves
 *   scheme = Baseline
 *   speed = 0.85
 *   faults = plans/node2.faults
 *
 *   [arrivals] / [queue] / [slo] / [serve]
 *   ...                    # the cluster-level serve spec (serve/spec.h);
 *                          # arrivals.rate is the fleet-wide rate the
 *                          # dispatcher splits across nodes
 */

#ifndef DIRIGENT_CLUSTER_SPEC_H
#define DIRIGENT_CLUSTER_SPEC_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/config.h"
#include "serve/spec.h"
#include "workload/mix.h"

namespace dirigent::cluster {

/** Global dispatch policies (seeded, deterministic). */
enum class DispatchPolicy
{
    RoundRobin,        //!< cycle node 0..N-1
    JoinShortestQueue, //!< modeled shortest outstanding queue
    SlackWeighted,     //!< seeded sampling ∝ calibrated node slack
    PowerOfTwoChoices, //!< two seeded probes, shorter modeled queue
};

/** Printable policy name ("rr", "jsq", "wslack", "po2"). */
const char *dispatchPolicyName(DispatchPolicy policy);

/** Policy from its name; nullopt when unknown. */
std::optional<DispatchPolicy>
dispatchPolicyFromName(const std::string &name);

/** All policies, in enum order. */
const std::vector<DispatchPolicy> &allDispatchPolicies();

/** Per-node overrides; zero/empty fields defer to the cluster line. */
struct ClusterNodeSpec
{
    std::string mix;    //!< "fg[,fg...]/bg[+bg2]"; "" = cluster default
    std::string scheme; //!< SchemeSpec registry name; "" = default
    double speed = 0.0; //!< node speed factor; 0 = cluster default
    std::string faults; //!< fault-plan file path; "" = none

    bool operator==(const ClusterNodeSpec &) const = default;
};

/** One simulated fleet as data. */
struct ClusterSpec
{
    std::string name = "cluster";

    /** Node count (1..512). */
    unsigned nodes = 2;

    DispatchPolicy policy = DispatchPolicy::RoundRobin;

    /** Default node mix label: "fg[,fg...]/bg[+bg2]". */
    std::string mix = "ferret/rs";

    /** Default node scheme (SchemeSpec registry name). */
    std::string scheme = "Dirigent";

    /** Default node speed factor: scales the machine's DVFS range. */
    double speed = 1.0;

    /**
     * Expected per-request service time fed to the dispatcher's queue
     * model (seconds); 0 = use each node's calibrated Baseline mean.
     */
    double serviceEstimateSec = 0.0;

    /** Optional runClusterSweep policy grid (empty = just `policy`). */
    std::vector<DispatchPolicy> sweepPolicies;

    /** Optional runClusterSweep node-count grid (empty = `nodes`). */
    std::vector<unsigned> sweepNodes;

    /** Per-node overrides keyed by node index (< nodes). */
    std::map<unsigned, ClusterNodeSpec> overrides;

    /**
     * The cluster-level serving workload; arrivals.rate is the
     * fleet-wide rate the dispatcher splits across nodes.
     */
    serve::ServeSpec serve;

    bool operator==(const ClusterSpec &) const = default;
};

/** Structural validation; nullopt when well-formed. */
std::optional<std::string> validateClusterSpec(const ClusterSpec &spec);

/**
 * Parse a spec from a Config / INI text / file. fatal() on unknown
 * keys, unknown policies/schemes/benchmarks, or out-of-range values
 * (specs are user input).
 */
ClusterSpec parseClusterSpec(const Config &config);
ClusterSpec parseClusterSpec(const std::string &text);
ClusterSpec loadClusterSpec(const std::string &path);

/** Serialize to DSL text; parseClusterSpec() round-trips it. */
std::string formatClusterSpec(const ClusterSpec &spec);

/** FNV-1a fingerprint of the spec's canonical (formatted) text. */
uint64_t clusterSpecHash(const ClusterSpec &spec);

/**
 * Path from the DIRIGENT_CLUSTER_FILE environment variable, or nullopt
 * when unset/empty. The CLI flag `--cluster-file` overrides it.
 */
std::optional<std::string> envClusterFilePath();

/** Builtin fleet shapes, registry-style like builtinSchemeSpecs(). */
const std::vector<ClusterSpec> &builtinClusterSpecs();

/** Builtin spec by name (case-sensitive); nullopt when unknown. */
std::optional<ClusterSpec> findClusterSpec(const std::string &name);

/**
 * Parse a mix label ("fg[,fg...]/bg" or "fg/bg1+bg2") into a workload
 * mix; nullopt on malformed labels or unknown benchmark names.
 */
std::optional<workload::WorkloadMix>
tryParseMixLabel(const std::string &label);

/** Canonical mix label for @p mix ("fg[,fg...]/bg[+bg2]"). */
std::string formatMixLabel(const workload::WorkloadMix &mix);

} // namespace dirigent::cluster

#endif // DIRIGENT_CLUSTER_SPEC_H
