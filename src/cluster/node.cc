#include "cluster/node.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/strfmt.h"
#include "dirigent/scheme_spec.h"

namespace dirigent::cluster {

std::vector<NodeConfig>
resolveNodes(const ClusterSpec &spec)
{
    if (auto error = validateClusterSpec(spec))
        fatal(*error);

    std::vector<NodeConfig> nodes;
    nodes.reserve(spec.nodes);
    for (unsigned i = 0; i < spec.nodes; ++i) {
        std::string mixLabel = spec.mix;
        std::string schemeName = spec.scheme;
        double speed = spec.speed;
        std::string faultsFile;
        if (auto it = spec.overrides.find(i);
            it != spec.overrides.end()) {
            const ClusterNodeSpec &over = it->second;
            if (!over.mix.empty())
                mixLabel = over.mix;
            if (!over.scheme.empty())
                schemeName = over.scheme;
            if (over.speed != 0.0)
                speed = over.speed;
            faultsFile = over.faults;
        }

        NodeConfig node;
        node.index = i;
        auto mix = tryParseMixLabel(mixLabel);
        if (!mix)
            fatal(strfmt("cluster node%u: bad mix label '%s'", i,
                         mixLabel.c_str()));
        node.mix = std::move(*mix);
        auto scheme = core::findSchemeSpec(schemeName);
        if (!scheme)
            fatal(strfmt("cluster node%u: unknown scheme '%s'", i,
                         schemeName.c_str()));
        node.scheme = *scheme;
        node.speed = speed;
        if (!faultsFile.empty()) {
            node.faultPlan = fault::loadFaultPlan(faultsFile);
            node.faultsFile = faultsFile;
        }
        nodes.push_back(std::move(node));
    }
    return nodes;
}

Node::Node(NodeConfig config, const harness::HarnessConfig &base)
    : config_(std::move(config)), harness_(base)
{
    // Scale the DVFS range: a speed-0.85 node is a uniformly slower
    // machine, grades and all.
    harness_.machine.maxFreq =
        Freq::hz(base.machine.maxFreq.hz() * config_.speed);
    harness_.machine.minFreq =
        Freq::hz(base.machine.minFreq.hz() * config_.speed);
    // Salt the seed per node so same-mix nodes draw different OS
    // noise — a pure function of (base seed, index), independent of
    // which worker thread simulates the node.
    harness_.seed = Rng(base.seed ^ 0xC1A5).fork(config_.index).next();
    harness_.faultPlan = config_.faultPlan;
}

harness::ExperimentRunner
Node::makeRunner(const harness::HarnessConfig &config,
                 harness::ProfileSource *sharedProfiles) const
{
    // The shared cache profiled on the *base* machine; it is only
    // this node's machine when the speed is unscaled.
    if (sharedProfiles != nullptr && config_.speed == 1.0)
        return harness::ExperimentRunner(config, *sharedProfiles);
    return harness::ExperimentRunner(config);
}

NodeCalibration
Node::calibrate(harness::ProfileSource *sharedProfiles) const
{
    harness::HarnessConfig config = harness_;
    config.faultPlan = fault::FaultPlan{}; // offline: fault-free
    harness::ExperimentRunner runner =
        makeRunner(config, sharedProfiles);
    auto baseline = runner.run(
        config_.mix, core::schemeSpec(core::Scheme::Baseline), {});

    NodeCalibration calibration;
    calibration.deadlines = runner.deadlinesFromBaseline(baseline);
    calibration.serviceEstimateSec = baseline.fgDurationMean();
    double deadlineSum = 0.0;
    for (const auto &[bench, deadline] : calibration.deadlines)
        deadlineSum += deadline.sec();
    double meanDeadline =
        calibration.deadlines.empty()
            ? 0.0
            : deadlineSum / double(calibration.deadlines.size());
    calibration.slackSec =
        meanDeadline - calibration.serviceEstimateSec;
    return calibration;
}

harness::ServingRunResult
Node::serve(const serve::ServeSpec &serveSpec,
            const std::vector<std::vector<Time>> &slotArrivals,
            const NodeCalibration &calibration,
            harness::ProfileSource *sharedProfiles,
            obs::SpanCollector *spans, obs::Recorder *recorder) const
{
    harness::ExperimentRunner runner =
        makeRunner(harness_, sharedProfiles);
    harness::RunOptions opts;
    opts.arrivalOverride = &slotArrivals;
    opts.spans = spans;
    opts.recorder = recorder;
    return runner.runServing(config_.mix, config_.scheme, serveSpec,
                             calibration.deadlines, opts);
}

NodeModel
Node::model(const NodeCalibration &calibration,
            double serviceOverrideSec) const
{
    NodeModel model;
    model.slots = unsigned(config_.mix.fgCount());
    double service = serviceOverrideSec > 0.0
                         ? serviceOverrideSec
                         : calibration.serviceEstimateSec;
    model.serviceEstimateSec = service > 0.0 ? service : 1.0;
    // Capacity × slack fraction: slots/µ requests/sec, discounted by
    // how much headroom the calibrated deadline leaves.
    double deadline =
        calibration.serviceEstimateSec + calibration.slackSec;
    double slackFraction =
        deadline > 0.0
            ? std::max(0.01, calibration.slackSec / deadline)
            : 1.0;
    model.weight =
        double(model.slots) / model.serviceEstimateSec * slackFraction;
    return model;
}

NodeHealth
Node::healthFrom(const NodeConfig &config,
                 const NodeCalibration &calibration,
                 const harness::ServingRunResult &run,
                 double horizonSec)
{
    NodeHealth health;
    health.node = config.index;
    health.maxQueueDepth = run.maxQueueDepth;
    health.degraded = run.degraded;

    double busySec = 0.0;
    double depthSum = 0.0;
    uint64_t requests = 0;
    for (size_t slot = 0; slot < run.perFgRequests.size(); ++slot) {
        double serviceSum = 0.0;
        uint64_t completed = 0;
        for (const serve::Request &req : run.perFgRequests[slot]) {
            depthSum += double(req.queueDepth);
            ++requests;
            if (req.outcome == serve::RequestOutcome::Completed) {
                serviceSum += req.serviceTime().sec();
                ++completed;
            }
        }
        busySec += serviceSum;
        const std::string &bench =
            slot < config.mix.fg.size() ? config.mix.fg[slot] : "";
        auto it = calibration.deadlines.find(bench);
        double deadlineSec =
            it != calibration.deadlines.end() ? it->second.sec() : 0.0;
        health.fgSlackSec.push_back(
            completed > 0
                ? deadlineSec - serviceSum / double(completed)
                : std::nan(""));
    }
    health.meanQueueDepth =
        requests > 0 ? depthSum / double(requests) : 0.0;
    health.shedRate = run.rejectRate();
    if (!run.finalAdmitLimits.empty()) {
        double limitSum = 0.0;
        for (double limit : run.finalAdmitLimits)
            limitSum += limit;
        health.admitLimit =
            limitSum / double(run.finalAdmitLimits.size());
    }
    double slots = double(std::max<size_t>(1, run.perFgRequests.size()));
    health.utilization =
        horizonSec > 0.0 ? busySec / (horizonSec * slots) : 0.0;
    return health;
}

std::string
formatNodeHealth(const NodeHealth &health)
{
    std::string slack;
    for (size_t i = 0; i < health.fgSlackSec.size(); ++i) {
        if (i > 0)
            slack += ",";
        slack += std::isnan(health.fgSlackSec[i])
                     ? "n/a"
                     : strfmt("%.3g", health.fgSlackSec[i]);
    }
    return strfmt("node%u: slack=[%s]s queue=%.2f(max %zu) "
                  "shed=%.1f%% admit=%.2f util=%.1f%%%s",
                  health.node, slack.c_str(), health.meanQueueDepth,
                  health.maxQueueDepth, health.shedRate * 100.0,
                  health.admitLimit, health.utilization * 100.0,
                  health.degraded ? " DEGRADED" : "");
}

} // namespace dirigent::cluster
