/**
 * @file
 * The node agent: one Dirigent runtime wrapped as an assemblable
 * cluster unit. A Node owns the per-node harness configuration
 * (speed-scaled machine, salted seed, optional per-node fault plan),
 * calibrates its own deadlines + service estimate from a fault-free
 * Baseline batch run, replays its dispatched arrival trace through
 * ExperimentRunner::runServing, and distils the run into a narrow
 * NodeHealth report (per-FG slack, queue depth, shed rate, admission
 * limit, utilization, degraded flag) for the global layer.
 */

#ifndef DIRIGENT_CLUSTER_NODE_H
#define DIRIGENT_CLUSTER_NODE_H

#include <map>
#include <string>
#include <vector>

#include "cluster/dispatcher.h"
#include "cluster/spec.h"
#include "fault/plan.h"
#include "harness/experiment.h"
#include "harness/serving.h"

namespace dirigent::cluster {

/** Fully resolved configuration of one node. */
struct NodeConfig
{
    unsigned index = 0;
    workload::WorkloadMix mix;
    core::SchemeSpec scheme;

    /** Speed factor: scales the machine's DVFS frequency range. */
    double speed = 1.0;

    /** Per-node fault plan (empty = none; serving only, see Node). */
    fault::FaultPlan faultPlan;

    /** Fault-plan file the plan was loaded from ("" = none). */
    std::string faultsFile;
};

/**
 * Resolve @p spec into per-node configurations: cluster defaults with
 * the [node<i>] overrides applied, mix labels and scheme names looked
 * up, and fault-plan files loaded. fatal() on unknown names or
 * unreadable plans (specs are user input).
 */
std::vector<NodeConfig> resolveNodes(const ClusterSpec &spec);

/** Offline calibration of one node (fault-free Baseline batch run). */
struct NodeCalibration
{
    /** Per-benchmark deadlines (µ + 0.3σ of Baseline). */
    std::map<std::string, Time> deadlines;

    /** Mean FG execution duration (seconds). */
    double serviceEstimateSec = 0.0;

    /** Mean deadline − mean duration (seconds). */
    double slackSec = 0.0;
};

/** The narrow health report a node sends up to the global layer. */
struct NodeHealth
{
    unsigned node = 0;

    /** Per FG slot: deadline − mean measured service time (seconds);
     *  NaN when the slot completed nothing in the window. */
    std::vector<double> fgSlackSec;

    /** Mean queue depth seen by arrivals. */
    double meanQueueDepth = 0.0;

    size_t maxQueueDepth = 0;

    /** (dropped + shed) / arrivals; 0 when idle. */
    double shedRate = 0.0;

    /** Mean final admission limit across slots; 0 = no admission. */
    double admitLimit = 0.0;

    /** Busy fraction: Σ completed service time / (horizon × slots). */
    double utilization = 0.0;

    /** Any FG fell back to the reactive (degraded) controller. */
    bool degraded = false;
};

/** One-line health summary ("node2: slack=[...] ... degraded"). */
std::string formatNodeHealth(const NodeHealth &health);

/** Everything one node contributes to the fleet aggregation. */
struct NodeResult
{
    unsigned index = 0;
    std::string mixLabel;
    std::string schemeName;
    double speed = 1.0;

    /** FNV-1a of the node's canonical fault-plan text; 0 = no faults.
     *  Surfaced in the cluster manifest so a chaos cell's artifact
     *  identifies the faulted node. */
    uint64_t faultPlanHash = 0;

    /** Fault-plan file the node ran ("" = none). */
    std::string faultsFile;

    NodeCalibration calibration;
    harness::ServingRunResult serving;
    NodeHealth health;
};

/**
 * One Dirigent runtime as a cluster unit. The node's harness config is
 * derived deterministically from the base config: the DVFS range is
 * scaled by `speed`, the seed is salted with the node index (so
 * same-mix nodes see different OS noise), and the per-node fault plan
 * is applied to serving runs only — calibration is an offline,
 * fault-free stage, which also keeps dispatch decisions (and therefore
 * every *other* node's arrival trace) independent of one node's
 * faults.
 */
class Node
{
  public:
    Node(NodeConfig config, const harness::HarnessConfig &base);

    const NodeConfig &config() const { return config_; }

    /** The derived per-node harness configuration. */
    const harness::HarnessConfig &harnessConfig() const
    {
        return harness_;
    }

    /**
     * Calibrate deadlines and the dispatcher's service estimate from a
     * fault-free Baseline batch run. @p sharedProfiles is used when
     * the node machine matches the base config (speed == 1); nullptr
     * or a scaled node profiles on a private cache.
     */
    NodeCalibration
    calibrate(harness::ProfileSource *sharedProfiles) const;

    /**
     * Replay this node's dispatched arrival trace (one vector per FG
     * slot, from DispatchPlan) through a serving run under the node's
     * scheme and fault plan. @p spans and @p recorder optionally
     * instrument the run (passive; nullptr attaches nothing).
     */
    harness::ServingRunResult
    serve(const serve::ServeSpec &serveSpec,
          const std::vector<std::vector<Time>> &slotArrivals,
          const NodeCalibration &calibration,
          harness::ProfileSource *sharedProfiles,
          obs::SpanCollector *spans = nullptr,
          obs::Recorder *recorder = nullptr) const;

    /**
     * The dispatcher's model of this node: FG slots, calibrated (or
     * overridden) service estimate, and a slack-aware weight
     * (capacity × slack fraction, so slower or tighter nodes draw
     * proportionally less traffic).
     */
    NodeModel model(const NodeCalibration &calibration,
                    double serviceOverrideSec) const;

    /** Distil a serving run into the narrow health report. */
    static NodeHealth healthFrom(const NodeConfig &config,
                                 const NodeCalibration &calibration,
                                 const harness::ServingRunResult &run,
                                 double horizonSec);

  private:
    harness::ExperimentRunner
    makeRunner(const harness::HarnessConfig &config,
               harness::ProfileSource *sharedProfiles) const;

    NodeConfig config_;
    harness::HarnessConfig harness_;
};

} // namespace dirigent::cluster

#endif // DIRIGENT_CLUSTER_NODE_H
