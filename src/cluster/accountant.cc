#include "cluster/accountant.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent::cluster {

ResourceAccountant::ResourceAccountant(
    DispatchPolicy policy, unsigned nodes,
    std::vector<serve::SloTarget> slos)
    : slos_(std::move(slos))
{
    if (nodes == 0)
        fatal("resource accountant: need at least one node");
    summary_.policy = policy;
    summary_.nodes = nodes;
}

void
ResourceAccountant::add(const NodeResult &node)
{
    if (added_ >= summary_.nodes)
        fatal(strfmt("resource accountant: %u nodes declared, node%u "
                     "is one too many",
                     summary_.nodes, node.index));
    if (node.index != added_)
        fatal(strfmt("resource accountant: expected node%zu next, got "
                     "node%u (fold must run in index order)",
                     added_, node.index));

    const harness::ServingRunResult &run = node.serving;
    summary_.arrivals += run.arrivals;
    summary_.completed += run.completed;
    summary_.dropped += run.dropped;
    summary_.shed += run.shed;
    summary_.maxQueueDepth =
        std::max(summary_.maxQueueDepth, run.maxQueueDepth);
    for (double s : run.stats.samples())
        summary_.stats.add(s);
    summary_.degraded = summary_.degraded || node.health.degraded;

    perNodeArrivals_.push_back(run.arrivals);
    utilizationSum_ += node.health.utilization;
    if (added_ == 0) {
        summary_.utilizationMin = node.health.utilization;
        summary_.utilizationMax = node.health.utilization;
    } else {
        summary_.utilizationMin =
            std::min(summary_.utilizationMin, node.health.utilization);
        summary_.utilizationMax =
            std::max(summary_.utilizationMax, node.health.utilization);
    }
    ++added_;
}

FleetSummary
ResourceAccountant::finish(uint64_t generated)
{
    if (added_ != summary_.nodes)
        fatal(strfmt("resource accountant: %zu of %u nodes folded in",
                     added_, summary_.nodes));
    if (summary_.arrivals != generated)
        fatal(strfmt("resource accountant: dispatcher generated %llu "
                     "requests but nodes saw %llu — requests leaked "
                     "across the split",
                     (unsigned long long)generated,
                     (unsigned long long)summary_.arrivals));
    summary_.generated = generated;

    summary_.meanSec = summary_.stats.mean();
    summary_.p50Sec = summary_.stats.quantile(0.50);
    summary_.p95Sec = summary_.stats.quantile(0.95);
    summary_.p99Sec = summary_.stats.quantile(0.99);
    summary_.p999Sec = summary_.stats.quantile(0.999);
    summary_.verdicts = serve::evaluateSlos(slos_, summary_.stats);

    summary_.utilizationMean =
        utilizationSum_ / double(summary_.nodes);
    uint64_t maxArrivals = 0;
    for (uint64_t a : perNodeArrivals_)
        maxArrivals = std::max(maxArrivals, a);
    double meanArrivals =
        double(summary_.arrivals) / double(summary_.nodes);
    summary_.imbalance =
        meanArrivals > 0.0 ? double(maxArrivals) / meanArrivals : 0.0;

    return summary_;
}

std::string
formatFleetSummary(const FleetSummary &fleet)
{
    return strfmt(
        "%s x%u: %llu req, %llu ok, %llu drop, %llu shed, "
        "p99=%.3gs, util=%.0f%% [%.0f..%.0f], imb=%.2f, slo=%s%s",
        dispatchPolicyName(fleet.policy), fleet.nodes,
        (unsigned long long)fleet.generated,
        (unsigned long long)fleet.completed,
        (unsigned long long)fleet.dropped,
        (unsigned long long)fleet.shed, fleet.p99Sec,
        fleet.utilizationMean * 100.0, fleet.utilizationMin * 100.0,
        fleet.utilizationMax * 100.0, fleet.imbalance,
        fleet.sloMet() ? "met" : "MISSED",
        fleet.degraded ? " degraded" : "");
}

} // namespace dirigent::cluster
