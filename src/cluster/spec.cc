#include "cluster/spec.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/hash.h"
#include "common/log.h"
#include "common/strfmt.h"
#include "dirigent/scheme_spec.h"
#include "workload/benchmarks.h"

namespace dirigent::cluster {

namespace {

constexpr unsigned kMaxNodes = 512;

struct PolicyName
{
    DispatchPolicy policy;
    const char *name;
};

constexpr PolicyName kPolicyNames[] = {
    {DispatchPolicy::RoundRobin, "rr"},
    {DispatchPolicy::JoinShortestQueue, "jsq"},
    {DispatchPolicy::SlackWeighted, "wslack"},
    {DispatchPolicy::PowerOfTwoChoices, "po2"},
};

std::vector<std::string>
splitList(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::string current;
    for (char c : text) {
        if (c == sep) {
            parts.push_back(current);
            current.clear();
        } else if (c != ' ' && c != '\t') {
            current += c;
        }
    }
    parts.push_back(current);
    if (parts.size() == 1 && parts[0].empty())
        parts.clear();
    return parts;
}

std::vector<DispatchPolicy>
parsePolicyList(const std::string &text)
{
    std::vector<DispatchPolicy> policies;
    for (const std::string &part : splitList(text, ',')) {
        auto policy = dispatchPolicyFromName(part);
        if (!policy)
            fatal(strfmt("cluster spec: unknown policy '%s' in list "
                         "'%s' (known: rr, jsq, wslack, po2)",
                         part.c_str(), text.c_str()));
        policies.push_back(*policy);
    }
    return policies;
}

std::vector<unsigned>
parseNodeList(const std::string &text)
{
    std::vector<unsigned> nodes;
    for (const std::string &part : splitList(text, ',')) {
        char *end = nullptr;
        unsigned long n = std::strtoul(part.c_str(), &end, 10);
        if (part.empty() || end == part.c_str() || *end != '\0')
            fatal(strfmt("cluster spec: bad node-count list '%s'",
                         text.c_str()));
        nodes.push_back(unsigned(n));
    }
    return nodes;
}

std::string
formatPolicyList(const std::vector<DispatchPolicy> &policies)
{
    std::string out;
    for (size_t i = 0; i < policies.size(); ++i) {
        if (i > 0)
            out += ",";
        out += dispatchPolicyName(policies[i]);
    }
    return out;
}

std::string
formatNodeList(const std::vector<unsigned> &nodes)
{
    std::string out;
    for (size_t i = 0; i < nodes.size(); ++i) {
        if (i > 0)
            out += ",";
        out += strfmt("%u", nodes[i]);
    }
    return out;
}

/** "node<digits>" section name → index; nullopt otherwise. */
std::optional<unsigned>
nodeSectionIndex(const std::string &section)
{
    if (section.rfind("node", 0) != 0 || section.size() <= 4)
        return std::nullopt;
    for (size_t i = 4; i < section.size(); ++i)
        if (!std::isdigit(static_cast<unsigned char>(section[i])))
            return std::nullopt;
    return unsigned(std::strtoul(section.c_str() + 4, nullptr, 10));
}

std::optional<std::string>
validateMixLabel(const std::string &label, const std::string &where)
{
    if (!tryParseMixLabel(label))
        return strfmt("cluster spec: %s mix '%s' is not a valid "
                      "'fg[,fg...]/bg[+bg2]' label of known benchmarks",
                      where.c_str(), label.c_str());
    return std::nullopt;
}

std::optional<std::string>
validateSchemeName(const std::string &name, const std::string &where)
{
    if (!core::findSchemeSpec(name))
        return strfmt("cluster spec: %s scheme '%s' is not in the "
                      "scheme registry",
                      where.c_str(), name.c_str());
    return std::nullopt;
}

std::optional<std::string>
validateSpeed(double speed, const std::string &where)
{
    if (!std::isfinite(speed) || speed <= 0.0 || speed > 16.0)
        return strfmt("cluster spec: %s speed %.9g out of (0, 16]",
                      where.c_str(), speed);
    return std::nullopt;
}

} // namespace

const char *
dispatchPolicyName(DispatchPolicy policy)
{
    for (const PolicyName &p : kPolicyNames)
        if (p.policy == policy)
            return p.name;
    return "?";
}

std::optional<DispatchPolicy>
dispatchPolicyFromName(const std::string &name)
{
    for (const PolicyName &p : kPolicyNames)
        if (name == p.name)
            return p.policy;
    return std::nullopt;
}

const std::vector<DispatchPolicy> &
allDispatchPolicies()
{
    static const std::vector<DispatchPolicy> all = {
        DispatchPolicy::RoundRobin,
        DispatchPolicy::JoinShortestQueue,
        DispatchPolicy::SlackWeighted,
        DispatchPolicy::PowerOfTwoChoices,
    };
    return all;
}

std::optional<workload::WorkloadMix>
tryParseMixLabel(const std::string &label)
{
    size_t slash = label.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= label.size())
        return std::nullopt;
    std::vector<std::string> fg = splitList(label.substr(0, slash), ',');
    std::vector<std::string> bg =
        splitList(label.substr(slash + 1), '+');
    if (fg.empty() || bg.empty() || bg.size() > 2)
        return std::nullopt;
    const auto &lib = workload::BenchmarkLibrary::instance();
    for (const std::string &name : fg)
        if (name.empty() || !lib.has(name))
            return std::nullopt;
    for (const std::string &name : bg)
        if (name.empty() || !lib.has(name))
            return std::nullopt;
    workload::BgSpec spec =
        bg.size() == 2 ? workload::BgSpec::rotate(bg[0], bg[1])
                       : workload::BgSpec::single(bg[0]);
    return workload::makeMix(std::move(fg), std::move(spec));
}

std::string
formatMixLabel(const workload::WorkloadMix &mix)
{
    std::string out;
    for (size_t i = 0; i < mix.fg.size(); ++i) {
        if (i > 0)
            out += ",";
        out += mix.fg[i];
    }
    out += "/" + mix.bg.first;
    if (mix.bg.kind == workload::BgSpec::Kind::Rotate)
        out += "+" + mix.bg.second;
    return out;
}

std::optional<std::string>
validateClusterSpec(const ClusterSpec &spec)
{
    if (spec.name.empty())
        return "cluster spec: cluster.name must not be empty";
    if (spec.nodes < 1 || spec.nodes > kMaxNodes)
        return strfmt("cluster spec: cluster.nodes %u out of [1, %u]",
                      spec.nodes, kMaxNodes);
    if (auto error = validateMixLabel(spec.mix, "cluster"))
        return error;
    if (auto error = validateSchemeName(spec.scheme, "cluster"))
        return error;
    if (auto error = validateSpeed(spec.speed, "cluster"))
        return error;
    if (!std::isfinite(spec.serviceEstimateSec) ||
        spec.serviceEstimateSec < 0.0)
        return strfmt("cluster spec: cluster.service_estimate_s %.9g "
                      "must be >= 0",
                      spec.serviceEstimateSec);
    for (unsigned n : spec.sweepNodes)
        if (n < 1 || n > kMaxNodes)
            return strfmt("cluster spec: cluster.sweep_nodes entry %u "
                          "out of [1, %u]",
                          n, kMaxNodes);
    for (const auto &[index, node] : spec.overrides) {
        const std::string where = strfmt("node%u", index);
        if (index >= spec.nodes)
            return strfmt("cluster spec: [%s] index out of range "
                          "(nodes = %u)",
                          where.c_str(), spec.nodes);
        if (!node.mix.empty())
            if (auto error = validateMixLabel(node.mix, where))
                return error;
        if (!node.scheme.empty())
            if (auto error = validateSchemeName(node.scheme, where))
                return error;
        if (node.speed != 0.0)
            if (auto error = validateSpeed(node.speed, where))
                return error;
    }
    if (!spec.serve.sweepRates.empty())
        return "cluster spec: serve.rates is unused in cluster mode; "
               "grid sweeps use cluster.sweep_policies / "
               "cluster.sweep_nodes";
    if (auto error = serve::validateServeSpec(spec.serve))
        return error;
    return std::nullopt;
}

ClusterSpec
parseClusterSpec(const Config &config)
{
    // The serve sections pass through requireSections directly; the
    // cluster section and the numbered node sections go through the
    // alsoAllow escape hatch (their key sets need richer messages than
    // a section allow-list can give).
    SpecFields fields(config, "cluster spec");
    fields.requireSections(
        {"arrivals", "queue", "slo", "serve"},
        [&fields](const std::string &key) {
            size_t dot = key.find('.');
            const std::string section =
                dot == std::string::npos ? key : key.substr(0, dot);
            if (section == "cluster") {
                static const char *known[] = {
                    "cluster.name",          "cluster.nodes",
                    "cluster.policy",        "cluster.mix",
                    "cluster.scheme",        "cluster.speed",
                    "cluster.service_estimate_s",
                    "cluster.sweep_policies", "cluster.sweep_nodes"};
                for (const char *k : known)
                    if (key == k)
                        return true;
                fields.fail(strfmt("unknown key '%s'", key.c_str()));
            }
            if (nodeSectionIndex(section)) {
                const std::string sub =
                    dot == std::string::npos ? "" : key.substr(dot + 1);
                if (sub == "mix" || sub == "scheme" ||
                    sub == "speed" || sub == "faults")
                    return true;
                fields.fail(strfmt("unknown key '%s' (node sections "
                                   "take mix, scheme, speed, faults)",
                                   key.c_str()));
            }
            return false;
        },
        "cluster, node<i>, arrivals, queue, slo, serve");

    static const char *serveSections[] = {"arrivals.", "queue.", "slo.",
                                          "serve."};
    Config serveConfig;
    ClusterSpec spec;
    for (const std::string &key : config.keys()) {
        bool serveKey = false;
        for (const char *s : serveSections)
            serveKey = serveKey || key.rfind(s, 0) == 0;
        if (serveKey)
            serveConfig.set(key, config.getString(key, ""));
    }

    spec.name = config.getString("cluster.name", "cluster");
    spec.nodes = unsigned(config.getUint("cluster.nodes", 2));
    std::string policy = config.getString("cluster.policy", "rr");
    auto parsedPolicy = dispatchPolicyFromName(policy);
    if (!parsedPolicy)
        fatal(strfmt("cluster spec: cluster.policy '%s' unknown "
                     "(known: rr, jsq, wslack, po2)",
                     policy.c_str()));
    spec.policy = *parsedPolicy;
    spec.mix = config.getString("cluster.mix", "ferret/rs");
    spec.scheme = config.getString("cluster.scheme", "Dirigent");
    spec.speed = config.getDouble("cluster.speed", 1.0);
    spec.serviceEstimateSec =
        config.getDouble("cluster.service_estimate_s", 0.0);
    spec.sweepPolicies = parsePolicyList(
        config.getString("cluster.sweep_policies", ""));
    spec.sweepNodes =
        parseNodeList(config.getString("cluster.sweep_nodes", ""));

    for (const std::string &key : config.keys()) {
        size_t dot = key.find('.');
        if (dot == std::string::npos)
            continue;
        auto index = nodeSectionIndex(key.substr(0, dot));
        if (!index)
            continue;
        ClusterNodeSpec &node = spec.overrides[*index];
        const std::string sub = key.substr(dot + 1);
        if (sub == "mix")
            node.mix = config.getString(key, "");
        else if (sub == "scheme")
            node.scheme = config.getString(key, "");
        else if (sub == "speed")
            node.speed = config.getDouble(key, 0.0);
        else if (sub == "faults")
            node.faults = config.getString(key, "");
    }

    spec.serve = serveConfig.keys().empty()
                     ? serve::ServeSpec{}
                     : serve::parseServeSpec(serveConfig);

    if (auto error = validateClusterSpec(spec))
        fatal(*error);
    return spec;
}

ClusterSpec
parseClusterSpec(const std::string &text)
{
    return parseClusterSpec(Config::parse(text));
}

ClusterSpec
loadClusterSpec(const std::string &path)
{
    return parseClusterSpec(Config::load(path));
}

std::string
formatClusterSpec(const ClusterSpec &spec)
{
    std::string out;
    out += "[cluster]\n";
    out += strfmt("name = %s\n", spec.name.c_str());
    out += strfmt("nodes = %u\n", spec.nodes);
    out += strfmt("policy = %s\n", dispatchPolicyName(spec.policy));
    out += strfmt("mix = %s\n", spec.mix.c_str());
    out += strfmt("scheme = %s\n", spec.scheme.c_str());
    out += strfmt("speed = %.9g\n", spec.speed);
    if (spec.serviceEstimateSec != 0.0)
        out += strfmt("service_estimate_s = %.9g\n",
                      spec.serviceEstimateSec);
    if (!spec.sweepPolicies.empty())
        out += strfmt("sweep_policies = %s\n",
                      formatPolicyList(spec.sweepPolicies).c_str());
    if (!spec.sweepNodes.empty())
        out += strfmt("sweep_nodes = %s\n",
                      formatNodeList(spec.sweepNodes).c_str());
    for (const auto &[index, node] : spec.overrides) {
        out += strfmt("\n[node%u]\n", index);
        if (!node.mix.empty())
            out += strfmt("mix = %s\n", node.mix.c_str());
        if (!node.scheme.empty())
            out += strfmt("scheme = %s\n", node.scheme.c_str());
        if (node.speed != 0.0)
            out += strfmt("speed = %.9g\n", node.speed);
        if (!node.faults.empty())
            out += strfmt("faults = %s\n", node.faults.c_str());
    }
    out += "\n";
    out += serve::formatServeSpec(spec.serve);
    return out;
}

uint64_t
clusterSpecHash(const ClusterSpec &spec)
{
    return fnv1a64(formatClusterSpec(spec));
}

std::optional<std::string>
envClusterFilePath()
{
    const char *env = std::getenv("DIRIGENT_CLUSTER_FILE");
    if (env == nullptr || env[0] == '\0')
        return std::nullopt;
    return std::string(env);
}

const std::vector<ClusterSpec> &
builtinClusterSpecs()
{
    static const std::vector<ClusterSpec> builtins = [] {
        std::vector<ClusterSpec> specs;

        // A minimal homogeneous pair under round-robin: the smallest
        // fleet where dispatch matters at all.
        ClusterSpec pair;
        pair.name = "pair-rr";
        pair.nodes = 2;
        pair.policy = DispatchPolicy::RoundRobin;
        pair.mix = "ferret/rs";
        pair.scheme = "Dirigent";
        pair.serve.arrivals.kind = serve::ArrivalKind::Poisson;
        pair.serve.arrivals.rate = 1.0; // fleet-wide; ~0.5/node
        pair.serve.queueCapacity = 64;
        pair.serve.slos = {{0.99, 15.0}};
        specs.push_back(pair);

        // Four homogeneous nodes under join-shortest-queue with bursty
        // traffic and gradient admission — the shape where JSQ visibly
        // beats round-robin.
        ClusterSpec quad;
        quad.name = "quad-jsq";
        quad.nodes = 4;
        quad.policy = DispatchPolicy::JoinShortestQueue;
        quad.mix = "ferret/rs";
        quad.scheme = "DirigentGradient";
        quad.serve.arrivals.kind = serve::ArrivalKind::Mmpp;
        quad.serve.arrivals.rate = 2.0;
        quad.serve.arrivals.burstRate = 6.0;
        quad.serve.arrivals.dwellSec = 10.0;
        quad.serve.arrivals.burstDwellSec = 2.0;
        quad.serve.queueCapacity = 64;
        quad.serve.slos = {{0.95, 10.0}, {0.99, 15.0}};
        specs.push_back(quad);

        // A heterogeneous quad under slack-aware weighting: one slow
        // node and one unmanaged (Baseline) node, so calibrated slack
        // actually differs across the fleet.
        ClusterSpec hetero;
        hetero.name = "quad-hetero";
        hetero.nodes = 4;
        hetero.policy = DispatchPolicy::SlackWeighted;
        hetero.mix = "ferret/rs";
        hetero.scheme = "Dirigent";
        hetero.overrides[2].speed = 0.85;
        hetero.overrides[3].scheme = "Baseline";
        hetero.serve.arrivals.kind = serve::ArrivalKind::Poisson;
        hetero.serve.arrivals.rate = 2.0;
        hetero.serve.queueCapacity = 64;
        hetero.serve.slos = {{0.99, 15.0}};
        specs.push_back(hetero);

        // The A/B sweep fleet: 8 nodes, po2 by default, with an
        // rr-vs-jsq policy grid for runClusterSweep.
        ClusterSpec octet;
        octet.name = "octet-ab";
        octet.nodes = 8;
        octet.policy = DispatchPolicy::PowerOfTwoChoices;
        octet.mix = "ferret/rs";
        octet.scheme = "Dirigent";
        octet.sweepPolicies = {DispatchPolicy::RoundRobin,
                               DispatchPolicy::JoinShortestQueue};
        octet.serve.arrivals.kind = serve::ArrivalKind::Poisson;
        octet.serve.arrivals.rate = 4.0;
        octet.serve.queueCapacity = 64;
        octet.serve.slos = {{0.99, 15.0}};
        specs.push_back(octet);

        for (const ClusterSpec &spec : specs)
            if (auto error = validateClusterSpec(spec))
                fatal("builtin cluster spec '" + spec.name +
                      "' invalid: " + *error);
        return specs;
    }();
    return builtins;
}

std::optional<ClusterSpec>
findClusterSpec(const std::string &name)
{
    for (const ClusterSpec &spec : builtinClusterSpecs())
        if (spec.name == name)
            return spec;
    return std::nullopt;
}

} // namespace dirigent::cluster
