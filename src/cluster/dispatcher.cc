#include "cluster/dispatcher.h"

#include <algorithm>

#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent::cluster {

NodeLoadModel::NodeLoadModel(const NodeModel &model)
    : effectiveServiceSec_(
          model.serviceEstimateSec / double(std::max(1u, model.slots)))
{
    if (!(effectiveServiceSec_ > 0.0))
        fatal(strfmt("node load model: service estimate %.9g must be "
                     "> 0",
                     model.serviceEstimateSec));
}

size_t
NodeLoadModel::depth(Time now)
{
    while (!completions_.empty() && completions_.front() <= now)
        completions_.pop_front();
    return completions_.size();
}

void
NodeLoadModel::assign(Time now)
{
    depth(now); // drain modeled finishes first
    Time start = std::max(now, backlogEnd_);
    Time finish = start + Time::sec(effectiveServiceSec_);
    backlogEnd_ = finish;
    completions_.push_back(finish); // nondecreasing by construction
}

Dispatcher::Dispatcher(std::vector<NodeModel> models)
    : models_(std::move(models))
{
    if (models_.empty())
        fatal("dispatcher: need at least one node model");
    load_.reserve(models_.size());
    for (const NodeModel &model : models_)
        load_.emplace_back(model);
    assigned_.assign(models_.size(), 0);
}

unsigned
Dispatcher::route(Time now)
{
    unsigned node = pick(now);
    DIRIGENT_ASSERT(node < models_.size(),
                    "dispatcher picked an out-of-range node");
    load_[node].assign(now);
    ++assigned_[node];
    return node;
}

size_t
Dispatcher::modeledDepth(unsigned node, Time now)
{
    DIRIGENT_ASSERT(node < load_.size(), "node index out of range");
    return load_[node].depth(now);
}

RoundRobinDispatcher::RoundRobinDispatcher(std::vector<NodeModel> models)
    : Dispatcher(std::move(models))
{
}

unsigned
RoundRobinDispatcher::pick(Time)
{
    unsigned node = unsigned(next_);
    next_ = (next_ + 1) % models_.size();
    return node;
}

JoinShortestQueueDispatcher::JoinShortestQueueDispatcher(
    std::vector<NodeModel> models)
    : Dispatcher(std::move(models))
{
}

unsigned
JoinShortestQueueDispatcher::pick(Time now)
{
    // Ties break on fewest total assignments, then lowest index.
    // Without the least-assigned tie-break, an underloaded fleet
    // (every modeled depth 0) would funnel everything to node 0.
    unsigned best = 0;
    size_t bestDepth = load_[0].depth(now);
    for (unsigned i = 1; i < load_.size(); ++i) {
        size_t depth = load_[i].depth(now);
        if (depth < bestDepth ||
            (depth == bestDepth && assigned_[i] < assigned_[best])) {
            best = i;
            bestDepth = depth;
        }
    }
    return best;
}

SlackWeightedDispatcher::SlackWeightedDispatcher(
    std::vector<NodeModel> models, Rng rng)
    : Dispatcher(std::move(models)), rng_(rng)
{
    double total = 0.0;
    cumulative_.reserve(models_.size());
    for (const NodeModel &model : models_) {
        total += std::max(0.0, model.weight);
        cumulative_.push_back(total);
    }
    if (!(total > 0.0))
        fatal("wslack dispatcher: every node weight is <= 0");
}

unsigned
SlackWeightedDispatcher::pick(Time)
{
    double u = rng_.uniform() * cumulative_.back();
    auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    if (it == cumulative_.end())
        --it; // u == total (uniform() may return values up to 1)
    return unsigned(it - cumulative_.begin());
}

PowerOfTwoDispatcher::PowerOfTwoDispatcher(std::vector<NodeModel> models,
                                           Rng rng)
    : Dispatcher(std::move(models)), rng_(rng)
{
}

unsigned
PowerOfTwoDispatcher::pick(Time now)
{
    const uint64_t n = models_.size();
    unsigned i = unsigned(rng_.below(n));
    if (n == 1)
        return i;
    unsigned j = unsigned((i + 1 + rng_.below(n - 1)) % n);
    unsigned lo = std::min(i, j), hi = std::max(i, j);
    // Shorter modeled queue wins; ties go to the lower index.
    return load_[hi].depth(now) < load_[lo].depth(now) ? hi : lo;
}

std::unique_ptr<Dispatcher>
makeDispatcher(DispatchPolicy policy, std::vector<NodeModel> models,
               uint64_t seed)
{
    switch (policy) {
      case DispatchPolicy::RoundRobin:
        return std::make_unique<RoundRobinDispatcher>(std::move(models));
      case DispatchPolicy::JoinShortestQueue:
        return std::make_unique<JoinShortestQueueDispatcher>(
            std::move(models));
      case DispatchPolicy::SlackWeighted:
        return std::make_unique<SlackWeightedDispatcher>(
            std::move(models), Rng(seed).fork(0x51AC4));
      case DispatchPolicy::PowerOfTwoChoices:
        return std::make_unique<PowerOfTwoDispatcher>(
            std::move(models), Rng(seed).fork(0xB02C));
    }
    fatal("unknown dispatch policy");
}

DispatchPlan
splitArrivals(serve::ArrivalProcess &stream, Time horizon,
              Dispatcher &dispatcher)
{
    const size_t nodes = dispatcher.nodeCount();
    DispatchPlan plan;
    plan.slotArrivals.resize(nodes);
    std::vector<size_t> nextSlot(nodes, 0);
    for (size_t i = 0; i < nodes; ++i)
        plan.slotArrivals[i].resize(
            std::max(1u, dispatcher.models()[i].slots));
    for (;;) {
        Time t = stream.next();
        if (t.isNever() || t > horizon)
            break;
        unsigned node = dispatcher.route(t);
        auto &slots = plan.slotArrivals[node];
        slots[nextSlot[node] % slots.size()].push_back(t);
        ++nextSlot[node];
        ++plan.generated;
    }
    plan.assigned = dispatcher.assigned();
    return plan;
}

} // namespace dirigent::cluster
