#include "fault/injector.h"

namespace dirigent::fault {

namespace {

// 48-bit perf counters saturate at all-ones.
constexpr double kSaturated = 281474976710655.0; // 2^48 - 1

} // namespace

FaultInjector::FaultInjector(FaultPlan plan, uint64_t seed)
    : plan_(plan), seed_(seed ^ plan.seedSalt),
      counterRng_(Rng(seed_).fork(0xC0)), samplerRng_(Rng(seed_).fork(0x5A)),
      dvfsRng_(Rng(seed_).fork(0xD4)), catRng_(Rng(seed_).fork(0xCA))
{
}

double
FaultInjector::filterCounter(Channel channel, unsigned core, double value)
{
    double &last = lastRaw_
                       .try_emplace(uint64_t(channel) << 32 | core, value)
                       .first->second;
    double out = value;
    if (counterRng_.chance(plan_.counters.dropProb)) {
        ++stats_.counterDrops;
        out = last;
    } else if (counterRng_.chance(plan_.counters.saturateProb)) {
        ++stats_.counterSaturations;
        out = kSaturated;
    } else if (counterRng_.chance(plan_.counters.glitchProb)) {
        ++stats_.counterGlitches;
        out = value * counterRng_.uniform(0.0, plan_.counters.glitchScale);
    }
    last = value; // remember the true value, not the faulted one
    return out;
}

Time
FaultInjector::samplerStall()
{
    if (!samplerRng_.chance(plan_.sampler.stallProb))
        return Time{};
    ++stats_.samplerStalls;
    return Time::sec(
        samplerRng_.exponential(plan_.sampler.stallMean.sec()));
}

bool
FaultInjector::samplerMissesWake()
{
    if (!samplerRng_.chance(plan_.sampler.missProb))
        return false;
    ++stats_.samplerMisses;
    return true;
}

Time
FaultInjector::callbackOverrun()
{
    if (!samplerRng_.chance(plan_.sampler.overrunProb))
        return Time{};
    ++stats_.samplerOverruns;
    return Time::sec(
        samplerRng_.exponential(plan_.sampler.overrunMean.sec()));
}

bool
FaultInjector::dvfsWriteFails()
{
    if (!dvfsRng_.chance(plan_.dvfs.failProb))
        return false;
    ++stats_.dvfsFailures;
    return true;
}

Time
FaultInjector::dvfsLatencySpike()
{
    if (!dvfsRng_.chance(plan_.dvfs.spikeProb))
        return Time{};
    ++stats_.dvfsSpikes;
    return Time::sec(dvfsRng_.exponential(plan_.dvfs.spikeMean.sec()));
}

bool
FaultInjector::catApplyFails()
{
    if (!catRng_.chance(plan_.cat.failProb))
        return false;
    ++stats_.catFailures;
    return true;
}

Rng
FaultInjector::profileRng() const
{
    return Rng(seed_).fork(0xF0F1);
}

} // namespace dirigent::fault
