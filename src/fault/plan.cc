#include "fault/plan.h"

#include <cmath>
#include <cstdlib>

#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent::fault {

bool
FaultPlan::empty() const
{
    return counters.dropProb == 0.0 && counters.glitchProb == 0.0 &&
           counters.saturateProb == 0.0 && sampler.stallProb == 0.0 &&
           sampler.missProb == 0.0 && sampler.overrunProb == 0.0 &&
           dvfs.failProb == 0.0 && dvfs.spikeProb == 0.0 &&
           cat.failProb == 0.0 && profile.staleScale == 1.0 &&
           profile.noiseSigma == 0.0 && profile.corruptProb == 0.0;
}

FaultPlan
parseFaultPlan(const Config &config)
{
    SpecFields fields(config, "fault plan");
    fields.requireSections(
        {"faults", "counters", "sampler", "dvfs", "cat", "profile"});

    FaultPlan plan;
    plan.seedSalt = config.getUint("faults.seed_salt", 0);

    plan.counters.dropProb = fields.probability("counters.drop_prob");
    plan.counters.glitchProb =
        fields.probability("counters.glitch_prob");
    plan.counters.glitchScale =
        fields.positive("counters.glitch_scale", 100.0);
    plan.counters.saturateProb =
        fields.probability("counters.saturate_prob");

    plan.sampler.stallProb = fields.probability("sampler.stall_prob");
    plan.sampler.stallMean =
        fields.positiveTime("sampler.stall_mean", Time::ms(10.0));
    plan.sampler.missProb = fields.probability("sampler.miss_prob");
    plan.sampler.overrunProb =
        fields.probability("sampler.overrun_prob");
    plan.sampler.overrunMean =
        fields.positiveTime("sampler.overrun_mean", Time::ms(8.0));

    plan.dvfs.failProb = fields.probability("dvfs.fail_prob");
    plan.dvfs.spikeProb = fields.probability("dvfs.spike_prob");
    plan.dvfs.spikeMean =
        fields.positiveTime("dvfs.spike_mean", Time::ms(2.0));

    plan.cat.failProb = fields.probability("cat.fail_prob");

    plan.profile.staleScale =
        fields.positive("profile.stale_scale", 1.0);
    plan.profile.noiseSigma =
        fields.nonNegative("profile.noise_sigma", 0.0);
    plan.profile.corruptProb =
        fields.probability("profile.corrupt_prob");
    plan.profile.corruptScale =
        fields.positive("profile.corrupt_scale", 4.0);

    return plan;
}

FaultPlan
parseFaultPlan(const std::string &text)
{
    return parseFaultPlan(Config::parse(text));
}

FaultPlan
loadFaultPlan(const std::string &path)
{
    return parseFaultPlan(Config::load(path));
}

std::string
formatFaultPlan(const FaultPlan &plan)
{
    std::string out;
    out += "[faults]\n";
    out += strfmt("seed_salt = %llu\n",
                  (unsigned long long)plan.seedSalt);
    out += "\n[counters]\n";
    out += strfmt("drop_prob = %.9g\n", plan.counters.dropProb);
    out += strfmt("glitch_prob = %.9g\n", plan.counters.glitchProb);
    out += strfmt("glitch_scale = %.9g\n", plan.counters.glitchScale);
    out += strfmt("saturate_prob = %.9g\n", plan.counters.saturateProb);
    out += "\n[sampler]\n";
    out += strfmt("stall_prob = %.9g\n", plan.sampler.stallProb);
    out += strfmt("stall_mean = %.9gms\n", plan.sampler.stallMean.ms());
    out += strfmt("miss_prob = %.9g\n", plan.sampler.missProb);
    out += strfmt("overrun_prob = %.9g\n", plan.sampler.overrunProb);
    out += strfmt("overrun_mean = %.9gms\n", plan.sampler.overrunMean.ms());
    out += "\n[dvfs]\n";
    out += strfmt("fail_prob = %.9g\n", plan.dvfs.failProb);
    out += strfmt("spike_prob = %.9g\n", plan.dvfs.spikeProb);
    out += strfmt("spike_mean = %.9gms\n", plan.dvfs.spikeMean.ms());
    out += "\n[cat]\n";
    out += strfmt("fail_prob = %.9g\n", plan.cat.failProb);
    out += "\n[profile]\n";
    out += strfmt("stale_scale = %.9g\n", plan.profile.staleScale);
    out += strfmt("noise_sigma = %.9g\n", plan.profile.noiseSigma);
    out += strfmt("corrupt_prob = %.9g\n", plan.profile.corruptProb);
    out += strfmt("corrupt_scale = %.9g\n", plan.profile.corruptScale);
    return out;
}

std::optional<std::string>
envFaultPlanPath()
{
    const char *env = std::getenv("DIRIGENT_FAULTS");
    if (env == nullptr || env[0] == '\0')
        return std::nullopt;
    return std::string(env);
}

} // namespace dirigent::fault
