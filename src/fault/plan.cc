#include "fault/plan.h"

#include <cmath>
#include <cstdlib>

#include "common/log.h"
#include "common/strfmt.h"

namespace dirigent::fault {

namespace {

// strtod parses "nan" and "inf"; both would defeat the range checks.
void
requireFinite(const char *key, double value)
{
    if (!std::isfinite(value))
        fatal(strfmt("fault plan: %s must be finite", key));
}

double
getProb(const Config &config, const char *key)
{
    double p = config.getDouble(key, 0.0);
    requireFinite(key, p);
    if (p < 0.0 || p > 1.0)
        fatal(strfmt("fault plan: %s must be a probability in [0, 1], "
                     "got %.9g",
                     key, p));
    return p;
}

Time
getPositiveTime(const Config &config, const char *key, Time fallback)
{
    Time t = config.getTime(key, fallback);
    requireFinite(key, t.sec());
    if (t.sec() <= 0.0)
        fatal(strfmt("fault plan: %s must be a positive duration", key));
    return t;
}

} // namespace

bool
FaultPlan::empty() const
{
    return counters.dropProb == 0.0 && counters.glitchProb == 0.0 &&
           counters.saturateProb == 0.0 && sampler.stallProb == 0.0 &&
           sampler.missProb == 0.0 && sampler.overrunProb == 0.0 &&
           dvfs.failProb == 0.0 && dvfs.spikeProb == 0.0 &&
           cat.failProb == 0.0 && profile.staleScale == 1.0 &&
           profile.noiseSigma == 0.0 && profile.corruptProb == 0.0;
}

FaultPlan
parseFaultPlan(const Config &config)
{
    // Reject keys outside the known sections early: a typoed section
    // would otherwise silently inject nothing.
    static const char *sections[] = {"faults.",  "counters.", "sampler.",
                                     "dvfs.",    "cat.",      "profile."};
    for (const std::string &key : config.keys()) {
        bool known = false;
        for (const char *s : sections)
            known = known || key.rfind(s, 0) == 0;
        if (!known)
            fatal(strfmt("fault plan: unknown key '%s' (sections: "
                         "faults, counters, sampler, dvfs, cat, profile)",
                         key.c_str()));
    }

    FaultPlan plan;
    plan.seedSalt = config.getUint("faults.seed_salt", 0);

    plan.counters.dropProb = getProb(config, "counters.drop_prob");
    plan.counters.glitchProb = getProb(config, "counters.glitch_prob");
    plan.counters.glitchScale =
        config.getDouble("counters.glitch_scale", 100.0);
    requireFinite("counters.glitch_scale", plan.counters.glitchScale);
    if (plan.counters.glitchScale <= 0.0)
        fatal("fault plan: counters.glitch_scale must be positive");
    plan.counters.saturateProb = getProb(config, "counters.saturate_prob");

    plan.sampler.stallProb = getProb(config, "sampler.stall_prob");
    plan.sampler.stallMean =
        getPositiveTime(config, "sampler.stall_mean", Time::ms(10.0));
    plan.sampler.missProb = getProb(config, "sampler.miss_prob");
    plan.sampler.overrunProb = getProb(config, "sampler.overrun_prob");
    plan.sampler.overrunMean =
        getPositiveTime(config, "sampler.overrun_mean", Time::ms(8.0));

    plan.dvfs.failProb = getProb(config, "dvfs.fail_prob");
    plan.dvfs.spikeProb = getProb(config, "dvfs.spike_prob");
    plan.dvfs.spikeMean =
        getPositiveTime(config, "dvfs.spike_mean", Time::ms(2.0));

    plan.cat.failProb = getProb(config, "cat.fail_prob");

    plan.profile.staleScale = config.getDouble("profile.stale_scale", 1.0);
    requireFinite("profile.stale_scale", plan.profile.staleScale);
    if (plan.profile.staleScale <= 0.0)
        fatal("fault plan: profile.stale_scale must be positive");
    plan.profile.noiseSigma = config.getDouble("profile.noise_sigma", 0.0);
    requireFinite("profile.noise_sigma", plan.profile.noiseSigma);
    if (plan.profile.noiseSigma < 0.0)
        fatal("fault plan: profile.noise_sigma must be >= 0");
    plan.profile.corruptProb = getProb(config, "profile.corrupt_prob");
    plan.profile.corruptScale =
        config.getDouble("profile.corrupt_scale", 4.0);
    requireFinite("profile.corrupt_scale", plan.profile.corruptScale);
    if (plan.profile.corruptScale <= 0.0)
        fatal("fault plan: profile.corrupt_scale must be positive");

    return plan;
}

FaultPlan
parseFaultPlan(const std::string &text)
{
    return parseFaultPlan(Config::parse(text));
}

FaultPlan
loadFaultPlan(const std::string &path)
{
    return parseFaultPlan(Config::load(path));
}

std::string
formatFaultPlan(const FaultPlan &plan)
{
    std::string out;
    out += "[faults]\n";
    out += strfmt("seed_salt = %llu\n",
                  (unsigned long long)plan.seedSalt);
    out += "\n[counters]\n";
    out += strfmt("drop_prob = %.9g\n", plan.counters.dropProb);
    out += strfmt("glitch_prob = %.9g\n", plan.counters.glitchProb);
    out += strfmt("glitch_scale = %.9g\n", plan.counters.glitchScale);
    out += strfmt("saturate_prob = %.9g\n", plan.counters.saturateProb);
    out += "\n[sampler]\n";
    out += strfmt("stall_prob = %.9g\n", plan.sampler.stallProb);
    out += strfmt("stall_mean = %.9gms\n", plan.sampler.stallMean.ms());
    out += strfmt("miss_prob = %.9g\n", plan.sampler.missProb);
    out += strfmt("overrun_prob = %.9g\n", plan.sampler.overrunProb);
    out += strfmt("overrun_mean = %.9gms\n", plan.sampler.overrunMean.ms());
    out += "\n[dvfs]\n";
    out += strfmt("fail_prob = %.9g\n", plan.dvfs.failProb);
    out += strfmt("spike_prob = %.9g\n", plan.dvfs.spikeProb);
    out += strfmt("spike_mean = %.9gms\n", plan.dvfs.spikeMean.ms());
    out += "\n[cat]\n";
    out += strfmt("fail_prob = %.9g\n", plan.cat.failProb);
    out += "\n[profile]\n";
    out += strfmt("stale_scale = %.9g\n", plan.profile.staleScale);
    out += strfmt("noise_sigma = %.9g\n", plan.profile.noiseSigma);
    out += strfmt("corrupt_prob = %.9g\n", plan.profile.corruptProb);
    out += strfmt("corrupt_scale = %.9g\n", plan.profile.corruptScale);
    return out;
}

std::optional<std::string>
envFaultPlanPath()
{
    const char *env = std::getenv("DIRIGENT_FAULTS");
    if (env == nullptr || env[0] == '\0')
        return std::nullopt;
    return std::string(env);
}

} // namespace dirigent::fault
