/**
 * @file
 * The deterministic fault injector: one instance per experiment run,
 * consulted at every boundary the runtime crosses (perf-counter reads,
 * sampler wake-ups, DVFS grade writes, CAT mask writes). All decisions
 * draw from private per-boundary RNG streams forked from a single
 * (seed, plan.seedSalt) pair, so a failing run replays bit-identically
 * and attaching an injector never perturbs the simulation's own
 * randomness.
 */

#ifndef DIRIGENT_FAULT_INJECTOR_H
#define DIRIGENT_FAULT_INJECTOR_H

#include <cstdint>
#include <map>

#include "common/random.h"
#include "common/units.h"
#include "fault/plan.h"

namespace dirigent::fault {

/** Counter channels with independent drop/glitch state per core. */
enum class Channel : unsigned
{
    Progress = 0, //!< retired instructions / heartbeats
    LlcMisses = 1,
};

/** Injection counts, for test assertions and run reports. */
struct FaultStats
{
    uint64_t counterDrops = 0;
    uint64_t counterGlitches = 0;
    uint64_t counterSaturations = 0;
    uint64_t samplerStalls = 0;
    uint64_t samplerMisses = 0;
    uint64_t samplerOverruns = 0;
    uint64_t dvfsFailures = 0;
    uint64_t dvfsSpikes = 0;
    uint64_t catFailures = 0;

    uint64_t
    total() const
    {
        return counterDrops + counterGlitches + counterSaturations +
               samplerStalls + samplerMisses + samplerOverruns +
               dvfsFailures + dvfsSpikes + catFailures;
    }
};

/**
 * Seed-deterministic fault source. Not thread-safe; each run owns one.
 */
class FaultInjector
{
  public:
    /** @param plan what to inject; @param seed run-unique seed. */
    FaultInjector(FaultPlan plan, uint64_t seed);

    const FaultPlan &plan() const { return plan_; }
    const FaultStats &stats() const { return stats_; }
    uint64_t seed() const { return seed_; }

    /**
     * Filter a cumulative counter value read on (channel, core): may
     * return the previous raw value (drop), a saturated value, or a
     * glitch; otherwise the value passes through unchanged.
     */
    double filterCounter(Channel channel, unsigned core, double value);

    /** Extra stall before a sampler wake fires (zero = none). */
    Time samplerStall();

    /** True when this wake-up is missed (callback skipped). */
    bool samplerMissesWake();

    /** Modeled callback overrun delaying the next wake (zero = none). */
    Time callbackOverrun();

    /** True when a DVFS grade write fails transiently (EBUSY). */
    bool dvfsWriteFails();

    /** Extra DVFS transition latency (zero = none). */
    Time dvfsLatencySpike();

    /** True when a CAT mask reconfiguration fails. */
    bool catApplyFails();

    /** Private stream for profile corruption (see corruptProfile()). */
    Rng profileRng() const;

  private:
    FaultPlan plan_;
    uint64_t seed_;
    Rng counterRng_;
    Rng samplerRng_;
    Rng dvfsRng_;
    Rng catRng_;
    std::map<uint64_t, double> lastRaw_; //!< per (channel, core) reads
    FaultStats stats_;
};

} // namespace dirigent::fault

#endif // DIRIGENT_FAULT_INJECTOR_H
