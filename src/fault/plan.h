/**
 * @file
 * Fault-plan DSL: the declarative description of which boundary faults
 * a run injects and how hard. Plans are INI text (the same Config
 * format the workload parser uses) loaded from `--faults plan.cfg` or
 * the DIRIGENT_FAULTS environment variable, validated with fatal() on
 * user errors, and round-trippable through formatFaultPlan() so a
 * failing chaos cell can be reproduced from its (seed, plan) pair.
 *
 * An all-defaults plan is *empty*: attaching an injector built from it
 * is a provable no-op (every probability is zero and the injector's
 * randomness is private, so the simulation stream is untouched).
 */

#ifndef DIRIGENT_FAULT_PLAN_H
#define DIRIGENT_FAULT_PLAN_H

#include <optional>
#include <string>

#include "common/config.h"
#include "common/units.h"

namespace dirigent::fault {

/** Perf-counter read faults (cumulative counter values). */
struct CounterFaults
{
    /** Per-read probability the reader sees the previous value again
     *  (a dropped sample — the new value never reaches userspace). */
    double dropProb = 0.0;

    /** Per-read probability of a glitched value: the true value scaled
     *  by uniform(0, glitchScale) — wild in either direction. */
    double glitchProb = 0.0;
    double glitchScale = 100.0;

    /** Per-read probability of a saturated (all-ones 48-bit) value. */
    double saturateProb = 0.0;
};

/** PeriodicSampler wake-up faults. */
struct SamplerFaults
{
    /** Per-tick probability of an extra stall before the wake fires
     *  (exponential with mean stallMean). Stalls longer than the
     *  period skip ticks. */
    double stallProb = 0.0;
    Time stallMean = Time::ms(10.0);

    /** Per-tick probability the wake-up is missed entirely: the tick
     *  index is consumed but the callback never runs. */
    double missProb = 0.0;

    /** Per-tick probability the callback overruns its period budget,
     *  pushing the next wake out by exponential(overrunMean). */
    double overrunProb = 0.0;
    Time overrunMean = Time::ms(8.0);
};

/** CpuFreqGovernor grade-write faults. */
struct DvfsFaults
{
    /** Per-write probability of a transient EBUSY-style failure (the
     *  governor retries with bounded exponential backoff). */
    double failProb = 0.0;

    /** Per-write probability of an extra transition-latency spike
     *  (exponential with mean spikeMean). */
    double spikeProb = 0.0;
    Time spikeMean = Time::ms(2.0);
};

/** CAT way-mask reconfiguration faults. */
struct CatFaults
{
    /** Per-reconfiguration probability the mask write fails; the old
     *  partition stays in force. */
    double failProb = 0.0;
};

/** Offline-profile corruption/staleness. */
struct ProfileFaults
{
    /** Stale profile: every segment duration scaled by this factor
     *  (1.0 = faithful profile). */
    double staleScale = 1.0;

    /** Per-segment lognormal noise on durations (0 = none). */
    double noiseSigma = 0.0;

    /** Per-segment probability the progress value is corrupted
     *  (scaled by uniform(0, corruptScale)). */
    double corruptProb = 0.0;
    double corruptScale = 4.0;
};

/**
 * A complete fault plan. Default-constructed plans are empty().
 */
struct FaultPlan
{
    /** Extra salt mixed into the injector seed so the same run seed
     *  can explore independent fault streams. */
    uint64_t seedSalt = 0;

    CounterFaults counters;
    SamplerFaults sampler;
    DvfsFaults dvfs;
    CatFaults cat;
    ProfileFaults profile;

    /** True when the plan injects nothing at all. */
    bool empty() const;
};

/**
 * Parse a fault plan from a Config / INI text / file. fatal() on
 * invalid structure or out-of-range values (plans are user input).
 */
FaultPlan parseFaultPlan(const Config &config);
FaultPlan parseFaultPlan(const std::string &text);
FaultPlan loadFaultPlan(const std::string &path);

/** Serialize a plan to DSL text; parseFaultPlan() round-trips it. */
std::string formatFaultPlan(const FaultPlan &plan);

/**
 * Path from the DIRIGENT_FAULTS environment variable, or nullopt when
 * unset/empty. The CLI flag `--faults` overrides it.
 */
std::optional<std::string> envFaultPlanPath();

} // namespace dirigent::fault

#endif // DIRIGENT_FAULT_PLAN_H
