/**
 * @file
 * Per-core model-specific performance counters. Dirigent's profiler and
 * predictor read retired instructions; the fine controller reads LLC
 * load misses to rank background-task intrusiveness — both are ordinary
 * counters on real hardware and are modelled as such here.
 */

#ifndef DIRIGENT_CPU_PERF_COUNTERS_H
#define DIRIGENT_CPU_PERF_COUNTERS_H

namespace dirigent::cpu {

/** A cumulative counter snapshot. */
struct CounterSample
{
    double instructions = 0.0; //!< retired instructions
    double llcAccesses = 0.0;  //!< LLC references
    double llcMisses = 0.0;    //!< LLC load misses
    double cycles = 0.0;       //!< unhalted core cycles

    CounterSample operator-(const CounterSample &o) const;
};

/**
 * Cumulative per-core counters. Cores add to them as they execute;
 * consumers read snapshots and difference them, as with real PMUs.
 */
class PerfCounters
{
  public:
    /** Account retired instructions. */
    void addInstructions(double n) { sample_.instructions += n; }

    /** Account LLC traffic. */
    void
    addLlcTraffic(double accesses, double misses)
    {
        sample_.llcAccesses += accesses;
        sample_.llcMisses += misses;
    }

    /** Account elapsed core cycles. */
    void addCycles(double n) { sample_.cycles += n; }

    /** Read the cumulative counters. */
    const CounterSample &read() const { return sample_; }

    /** Zero all counters. */
    void reset() { sample_ = CounterSample{}; }

  private:
    CounterSample sample_;
};

} // namespace dirigent::cpu

#endif // DIRIGENT_CPU_PERF_COUNTERS_H
