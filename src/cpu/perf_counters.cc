#include "cpu/perf_counters.h"

namespace dirigent::cpu {

CounterSample
CounterSample::operator-(const CounterSample &o) const
{
    CounterSample d;
    d.instructions = instructions - o.instructions;
    d.llcAccesses = llcAccesses - o.llcAccesses;
    d.llcMisses = llcMisses - o.llcMisses;
    d.cycles = cycles - o.cycles;
    return d;
}

} // namespace dirigent::cpu
