#include "cpu/core.h"

#include <algorithm>
#include <limits>

#include "common/log.h"

namespace dirigent::cpu {

namespace {
// Below this span the quantum remainder is dropped; keeps the advance
// loop free of floating-point dust iterations.
constexpr double kMinSliceSec = 1e-12;
} // namespace

Core::Core(unsigned id, unsigned cacheSlot, mem::SharedCache &cache,
           mem::DramModel &dram, Freq freq)
    : id_(id), cacheSlot_(cacheSlot), cache_(cache), dram_(dram), freq_(freq)
{
    DIRIGENT_ASSERT(freq.hz() > 0.0, "core frequency must be > 0");
    DIRIGENT_ASSERT(cacheSlot < cache.clients(),
                    "core %u cache slot %u out of range", id, cacheSlot);
}

void
Core::setFrequency(Freq f)
{
    DIRIGENT_ASSERT(f.hz() > 0.0, "core frequency must be > 0");
    freq_ = f;
}

void
Core::stealTime(Time t)
{
    DIRIGENT_ASSERT(t.sec() >= 0.0, "negative stolen time");
    stolen_ += t;
}

Core::AdvanceResult
Core::advance(workload::Task *task, Time dt)
{
    DIRIGENT_ASSERT(dt.sec() > 0.0, "advance span must be > 0");

    AdvanceResult result;
    double timeLeft = dt.sec();

    // Stolen time (runtime overhead / OS noise) burns core time without
    // retiring application instructions.
    if (stolen_.sec() > 0.0) {
        double burn = std::min(stolen_.sec(), timeLeft);
        stolen_ -= Time::sec(burn);
        timeLeft -= burn;
        counters_.addCycles(burn * freq_.hz());
        result.used += Time::sec(burn);
    }

    if (task == nullptr || task->finished()) {
        // Idle core: time passes, nothing retires.
        return result;
    }

    // Bandwidth regulation: a core whose miss-bandwidth budget is
    // exhausted stalls until the regulation window rolls over (the
    // machine ticks the guard between quanta).
    if (bwGuard_ != nullptr && !bwGuard_->allow(id_)) {
        counters_.addCycles(timeLeft * freq_.hz());
        result.used += Time::sec(timeLeft);
        return result;
    }

    // Loop-invariant this quantum: DVFS changes arrive between quanta
    // and the DRAM latency estimate only moves at commit time.
    const double lineSize = cache_.config().lineSize;
    const double hz = freq_.hz();
    const double dramLatencySec = dram_.latency().sec();
    double jitter = task->sampleCpiJitter();

    while (timeLeft > kMinSliceSec && !task->finished()) {
        const workload::Phase &ph = task->currentPhase();
        double hit = cache_.hitRatio(cacheSlot_, ph);
        double apki = ph.llcApki * 1e-3;
        double mpi = apki * (1.0 - hit);
        double spi = ph.cpiBase * jitter / hz +
                     mpi * dramLatencySec / ph.mlp;
        DIRIGENT_ASSERT(spi > 0.0, "non-positive seconds per instruction");

        double maxInstr = timeLeft / spi;
        double bound = task->remainingInPhase();
        double instr = std::min(maxInstr, bound);
        // Bandwidth regulation bounds execution by the budget left in
        // the window (MemGuard-style): at most one line of overshoot.
        if (bwGuard_ != nullptr && mpi > 0.0) {
            double remaining = bwGuard_->remainingBytes(id_);
            if (remaining != std::numeric_limits<double>::infinity()) {
                double budgetInstr = remaining / (mpi * lineSize);
                if (budgetInstr < 1.0) {
                    // Budget gone: stall out the rest of the quantum.
                    bwGuard_->charge(id_, remaining + 1.0);
                    counters_.addCycles(timeLeft * hz);
                    result.used += Time::sec(timeLeft);
                    break;
                }
                instr = std::min(instr, budgetInstr);
            }
        }
        double used = instr * spi;

        double accesses = instr * apki;
        double misses = cache_.access(cacheSlot_, ph, accesses);
        dram_.recordDemand(misses * lineSize);
        if (bwGuard_ != nullptr)
            bwGuard_->charge(id_, misses * lineSize);

        counters_.addInstructions(instr);
        counters_.addLlcTraffic(accesses, misses);
        counters_.addCycles(used * hz);

        task->retire(instr);
        result.instructions += instr;
        timeLeft -= used;
        result.used += Time::sec(used);

        if (task->finished()) {
            result.completed = true;
            result.completionOffset = dt - Time::sec(std::max(timeLeft, 0.0));
            break;
        }
    }

    return result;
}

} // namespace dirigent::cpu
