/**
 * @file
 * The core execution model.
 *
 * Each simulated core runs (at most) one pinned task per quantum. The
 * time to retire an instruction combines a frequency-scaled compute
 * portion with a memory-stall portion:
 *
 *   spi = cpiBase·jitter / f  +  (apki/1000)·missRatio · latency / mlp
 *
 * which reproduces the first-order DVFS behaviour Dirigent depends on:
 * compute-bound code scales with frequency, memory-bound code does not.
 * Miss traffic feeds the shared cache (occupancy flow) and the DRAM
 * model (bandwidth/queueing).
 */

#ifndef DIRIGENT_CPU_CORE_H
#define DIRIGENT_CPU_CORE_H

#include "common/units.h"
#include "cpu/perf_counters.h"
#include "mem/bwguard.h"
#include "mem/cache.h"
#include "mem/dram.h"
#include "workload/task.h"

namespace dirigent::cpu {

/**
 * One hardware core. Owned and orchestrated by machine::Machine.
 */
class Core
{
  public:
    /**
     * @param id core number (for reporting).
     * @param cacheSlot the LLC client slot of the process pinned here.
     * @param cache shared LLC (not owned).
     * @param dram shared memory system (not owned).
     * @param freq initial (maximum) clock frequency.
     */
    Core(unsigned id, unsigned cacheSlot, mem::SharedCache &cache,
         mem::DramModel &dram, Freq freq);

    unsigned id() const { return id_; }
    unsigned cacheSlot() const { return cacheSlot_; }

    /** Current clock frequency. */
    Freq frequency() const { return freq_; }

    /** Set the clock (takes effect immediately; the governor models
     *  transition latency by delaying this call). */
    void setFrequency(Freq f);

    /** Performance counters of this core. */
    PerfCounters &counters() { return counters_; }
    const PerfCounters &counters() const { return counters_; }

    /**
     * Steal @p t of upcoming execution time from the pinned task
     * (runtime overhead, OS noise). Consumed at the next advance.
     */
    void stealTime(Time t);

    /** Stolen time queued but not yet consumed by advance(). */
    Time stolenBacklog() const { return stolen_; }

    /**
     * Attach a bandwidth regulator (not owned; nullptr detaches).
     * While the core's budget is exhausted the core stalls instead of
     * executing, and all miss traffic is charged against the budget.
     */
    void setBwGuard(mem::BwGuard *guard) { bwGuard_ = guard; }

    /** Result of advancing a task on this core. */
    struct AdvanceResult
    {
        double instructions = 0.0; //!< instructions retired
        Time used;                 //!< execution time consumed
        bool completed = false;    //!< one-shot task finished
        Time completionOffset;     //!< offset of completion within dt
    };

    /**
     * Execute @p task for up to @p dt. Stops early when a one-shot task
     * completes (the machine then dispatches the next task into the
     * remaining time). @p task may be null (idle core): the quantum is
     * consumed with no effect.
     */
    AdvanceResult advance(workload::Task *task, Time dt);

  private:
    unsigned id_;
    unsigned cacheSlot_;
    mem::SharedCache &cache_;
    mem::DramModel &dram_;
    Freq freq_;
    PerfCounters counters_;
    Time stolen_;
    mem::BwGuard *bwGuard_ = nullptr;
};

} // namespace dirigent::cpu

#endif // DIRIGENT_CPU_CORE_H
