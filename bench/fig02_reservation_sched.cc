/**
 * @file
 * Figure 2 (made quantitative): reservation-based scheduler efficiency
 * for type A (high execution-time variance) vs type B (low variance)
 * tasks. The scheduler reserves the 95th-percentile duration per task;
 * utilization is the fraction of reserved time actually used.
 */

#include <iostream>

#include "common/table.h"
#include "common/strfmt.h"
#include "harness/reservation.h"

using namespace dirigent;

int
main()
{
    printBanner(std::cout,
                "Fig. 2: reservation-based scheduling vs task variance");

    TextTable table({"task type", "mean (s)", "std (s)",
                     "95% reservation (s)", "utilization",
                     "overrun rate"});
    struct Row
    {
        const char *name;
        double std;
    };
    // Type A: high variance (a contended latency-critical task);
    // type B: low variance (the same task under Dirigent).
    const std::vector<Row> rows = {
        {"type A (high variance)", 0.35},
        {"type B (low variance)", 0.05},
    };
    std::vector<harness::ReservationResult> results;
    for (const auto &row : rows) {
        harness::ReservationConfig cfg;
        cfg.meanDuration = 1.0;
        cfg.stdDuration = row.std;
        auto res = harness::simulateReservation(cfg);
        results.push_back(res);
        table.addRow({row.name, TextTable::num(cfg.meanDuration, 2),
                      TextTable::num(row.std, 2),
                      TextTable::num(res.reservation, 3),
                      TextTable::pct(res.utilization),
                      TextTable::pct(res.overrunRate)});
    }
    table.print(std::cout);

    std::cout << "\nVariance sweep (reservation quantile 0.95):\n";
    TextTable sweep({"std/mean", "reservation", "utilization"});
    std::cout << "\nCSV:\n";
    CsvWriter csv(std::cout);
    csv.row({"cv", "reservation_s", "utilization"});
    for (double cv = 0.0; cv <= 0.51; cv += 0.05) {
        harness::ReservationConfig cfg;
        cfg.stdDuration = cv;
        auto res = harness::simulateReservation(cfg);
        sweep.addRow({TextTable::num(cv, 2),
                      TextTable::num(res.reservation, 3),
                      TextTable::pct(res.utilization)});
        csv.numericRow({cv, res.reservation, res.utilization});
    }
    std::cout << "\n";
    sweep.print(std::cout);

    std::cout << "\nPaper expectation: low-variance (type B) tasks pack "
                 "tightly;\nhigh-variance (type A) tasks force long "
                 "reservations and waste capacity.\n";
    return 0;
}
