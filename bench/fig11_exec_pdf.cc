/**
 * @file
 * Figure 11: execution-time probability density function of a ferret
 * FG task collocated with five RS BG tasks, under each of the five
 * schemes.
 */

#include <iostream>

#include "bench_util.h"
#include "common/stats.h"

using namespace dirigent;

int
main()
{
    harness::ExperimentRunner runner(bench::defaultConfig(80));
    printBanner(std::cout,
                "Fig. 11: execution-time PDF, ferret + 5x RS, all "
                "schemes");

    auto mix =
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs"));
    auto results = runner.runAllSchemes(mix);

    double deadline = results[0].deadlines.at("ferret").sec();
    TextTable stats({"scheme", "mean (s)", "std (s)", "success"});
    double lo = 1e18, hi = 0.0;
    for (const auto &res : results) {
        stats.addRow({core::schemeName(res.scheme),
                      TextTable::num(res.fgDurationMean(), 3),
                      TextTable::num(res.fgDurationStd(), 4),
                      TextTable::pct(res.fgSuccessRatio())});
        for (double d : res.pooledDurations()) {
            lo = std::min(lo, d);
            hi = std::max(hi, d);
        }
    }
    stats.print(std::cout);
    std::cout << "deadline: " << TextTable::num(deadline, 3) << " s\n";

    const size_t bins = 40;
    lo *= 0.98;
    hi *= 1.02;
    std::vector<Histogram> hists;
    for (const auto &res : results) {
        Histogram h(lo, hi, bins);
        for (double d : res.pooledDurations())
            h.add(d);
        hists.push_back(h);
    }

    std::cout << "\nCSV (probability density per scheme):\n";
    CsvWriter csv(std::cout);
    std::vector<std::string> header = {"time_s"};
    for (const auto &res : results)
        header.push_back(core::schemeName(res.scheme));
    csv.row(header);
    for (size_t i = 0; i < bins; ++i) {
        std::vector<double> row = {hists[0].binCenter(i)};
        for (const auto &h : hists)
            row.push_back(h.density(i));
        csv.numericRow(row);
    }

    std::cout << "\nPaper expectation: Baseline and StaticFreq stretch "
                 "wide; StaticBoth shows\ntwo peaks (RS phase "
                 "bimodality); DirigentFreq pulls the peaks together; "
                 "full\nDirigent merges them into one tight peak at "
                 "the deadline.\n";
    return 0;
}
