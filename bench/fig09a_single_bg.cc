/**
 * @file
 * Figure 9a: FG success ratio and BG throughput for the 15 single-BG
 * workload mixes (5 FG benchmarks × {bwaves, pca, rs}) under all five
 * schemes.
 */

#include <iostream>

#include "bench_util.h"

using namespace dirigent;

int
main()
{
    printBanner(std::cout,
                "Fig. 9a: single-BG workload mixes (15 mixes x 5 "
                "schemes)");
    bench::runAndReport(bench::defaultConfig(40),
                        workload::singleBgMixes());
    std::cout << "\nPaper expectation: Baseline FG success ~60%; static "
                 "schemes reach ~100% FG\nsuccess at ~60-80% BG "
                 "throughput; DirigentFreq recovers BG throughput; "
                 "full\nDirigent matches the best FG success at the "
                 "highest BG throughput.\n";
    return 0;
}
