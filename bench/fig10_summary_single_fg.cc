/**
 * @file
 * Figure 10: summary of all 35 single-FG workload mixes — arithmetic
 * mean of FG success ratio and harmonic mean of BG throughput (vs
 * Baseline) per scheme, plus the headline variance-reduction numbers.
 */

#include <iostream>

#include "bench_util.h"

using namespace dirigent;

int
main()
{
    printBanner(std::cout,
                "Fig. 10: summary of all 35 single-FG workload mixes");
    auto perMix = bench::runAndReport(bench::defaultConfig(30),
                                      workload::allSingleFgMixes());

    // Headline claims (paper §1/§5.4).
    auto summaries = harness::summarizeSchemes(perMix);
    const auto &dirigentFreq = summaries[3];
    const auto &dirigent = summaries[4];
    double worstSuccess = 1.0, worstBg = 1.0;
    for (const auto &mixResults : perMix) {
        worstSuccess = std::min(worstSuccess,
                                mixResults[4].fgSuccessRatio());
        worstBg = std::min(worstBg,
                           harness::bgThroughputRatio(mixResults[4],
                                                      mixResults[0]));
    }

    printBanner(std::cout, "Headline numbers");
    std::cout
        << "Dirigent std reduction (mean): "
        << TextTable::pct(1.0 - dirigent.meanStdRatio) << " (paper: 85%)\n"
        << "Dirigent BG throughput (hmean): "
        << TextTable::pct(dirigent.hmeanBgThroughput)
        << " (paper: ~92%, i.e. 9% loss)\n"
        << "Dirigent FG success (mean): "
        << TextTable::pct(dirigent.meanFgSuccess)
        << " (paper: > 99%)\n"
        << "Dirigent worst-mix FG success: "
        << TextTable::pct(worstSuccess) << " (paper: 97%)\n"
        << "Dirigent worst-mix BG throughput: "
        << TextTable::pct(worstBg) << " (paper: never below 75%)\n"
        << "DirigentFreq std reduction (mean): "
        << TextTable::pct(1.0 - dirigentFreq.meanStdRatio)
        << " (paper: 70%)\n"
        << "DirigentFreq BG throughput (hmean): "
        << TextTable::pct(dirigentFreq.hmeanBgThroughput)
        << " (paper: ~85%)\n"
        << "BG advantage of Dirigent over coarse/static schemes: "
        << TextTable::pct(dirigent.hmeanBgThroughput /
                              summaries[2].hmeanBgThroughput -
                          1.0)
        << " (paper: ~30%)\n";
    return 0;
}
