/**
 * @file
 * Figure 6: completion-time prediction trace for 50 consecutive
 * executions of raytrace collocated with 5 RS tasks in the Baseline
 * configuration. Predictions are taken about half-way through each
 * execution; the paper reports execution time and prediction in cycles
 * (2 GHz clock) plus the relative error.
 */

#include <iostream>
#include <sstream>

#include "common/table.h"
#include "common/strfmt.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "workload/mix.h"

using namespace dirigent;

int
main()
{
    harness::HarnessConfig cfg;
    cfg.executions = harness::envExecutions(50);
    cfg.seed = harness::envSeed(cfg.seed);
    harness::ExperimentRunner runner(cfg);

    printBanner(std::cout,
                "Fig. 6: prediction trace, raytrace + 5x RS (Baseline)");

    auto mix =
        workload::makeMix({"raytrace"}, workload::BgSpec::single("rs"));
    harness::RunOptions opts;
    opts.attachObserver = true;
    auto res = runner.run(mix, core::Scheme::Baseline, {}, opts);

    const double clockHz = 2e9;
    TextTable table({"exec", "cycles", "predicted cycles", "error"});
    std::cout << "\nCSV:\n";
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"exec", "actual_cycles", "predicted_cycles", "error"});
    double errSum = 0.0;
    for (const auto &s : res.midpointSamples) {
        double actual = s.actualTotal.sec() * clockHz;
        double pred = s.predictedTotal.sec() * clockHz;
        double err = std::fabs(pred - actual) / actual;
        errSum += err;
        table.addRow({strfmt("%lu", (unsigned long)s.executionIndex),
                      strfmt("%.3e", actual), strfmt("%.3e", pred),
                      TextTable::pct(err)});
        csv.numericRow({double(s.executionIndex), actual, pred, err});
    }
    table.print(std::cout);
    std::cout << "\naverage error: "
              << TextTable::pct(errSum /
                                double(res.midpointSamples.size()))
              << " over " << res.midpointSamples.size()
              << " consecutive executions\n";
    std::cout << "\n" << csvBuf.str();

    std::cout << "\nPaper expectation: predicted completion closely "
                 "tracks actual completion\n(errors of a few percent) "
                 "across 50 consecutive executions.\n";
    return 0;
}
