/**
 * @file
 * Figure 14: FG execution-time standard deviation of the multi-FG
 * mixes, normalized to Baseline, per scheme — including the paper's
 * observation that variance grows with the number of concurrent FG
 * tasks sharing one partition.
 */

#include <iostream>

#include "bench_util.h"

using namespace dirigent;

int
main()
{
    harness::ExperimentRunner runner(bench::defaultConfig(25));
    printBanner(std::cout,
                "Fig. 14: normalized FG std of multi-FG workload mixes");

    std::vector<std::vector<harness::SchemeRunResult>> perMix;
    for (const auto &mix : workload::multiFgMixes()) {
        inform("running mix: " + mix.name);
        perMix.push_back(runner.runAllSchemes(mix));
    }

    harness::printStdComparison(std::cout, perMix);

    // Per-combo scaling of Dirigent's σ with FG count (paper: variance
    // increases with more FG processes, but stays well controlled).
    printBanner(std::cout, "Dirigent normalized std vs FG count");
    TextTable scaling({"combo", "x1", "x2", "x3"});
    for (size_t i = 0; i + 2 < perMix.size(); i += 3) {
        std::vector<std::string> row = {
            perMix[i][0].mixName.substr(
                0, perMix[i][0].mixName.find(" x1"))};
        for (size_t j = 0; j < 3; ++j) {
            row.push_back(TextTable::num(
                harness::stdRatio(perMix[i + j][4], perMix[i + j][0]),
                3));
        }
        scaling.addRow(row);
    }
    scaling.print(std::cout);

    std::cout << "\nCSV:\n";
    harness::printComparisonCsv(std::cout, perMix);

    std::cout << "\nPaper expectation: Dirigent sharply reduces the "
                 "normalized std in every mix;\nvariance grows "
                 "somewhat with the number of concurrent FG tasks "
                 "(shared\npartition) yet remains far below "
                 "Baseline.\n";
    return 0;
}
