/**
 * @file
 * Figure 15: the FG-throughput / BG-performance tradeoff Dirigent
 * enables. For raytrace + 5×bwaves, the target completion time sweeps
 * from the standalone average to beyond the Baseline average; Dirigent
 * tracks each target while converting FG slack into BG throughput.
 */

#include <iostream>
#include <sstream>

#include "bench_util.h"

using namespace dirigent;

int
main()
{
    harness::ExperimentRunner runner(bench::defaultConfig(35));
    printBanner(std::cout,
                "Fig. 15: FG-throughput / BG-performance tradeoff "
                "(raytrace + 5x bwaves)");

    auto mix = workload::makeMix({"raytrace"},
                                 workload::BgSpec::single("bwaves"));
    auto alone = runner.runStandalone("raytrace");
    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    double standalone = alone.fgDurationMean();
    double baselineMean = baseline.fgDurationMean();

    std::cout << "standalone mean: " << TextTable::num(standalone, 3)
              << " s; Baseline (contended) mean: "
              << TextTable::num(baselineMean, 3) << " s ("
              << TextTable::num(baselineMean / standalone, 3)
              << "x standalone)\n";

    TextTable table({"target (x standalone)", "FG time avg (x)",
                     "FG time std (vs Baseline)",
                     "BG throughput (vs Baseline)", "success"});
    std::cout << "\nCSV:\n";
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"target_x", "fg_avg_x", "fg_std_ratio", "bg_ratio",
             "success"});

    for (double factor = 1.00; factor <= 1.185; factor += 0.03) {
        std::map<std::string, Time> deadlines = {
            {"raytrace", Time::sec(standalone * factor)}};
        auto res = runner.run(mix, core::Scheme::Dirigent, deadlines);
        double avgX = res.fgDurationMean() / standalone;
        double stdRatioV = harness::stdRatio(res, baseline);
        double bgRatio = harness::bgThroughputRatio(res, baseline);
        table.addRow({strfmt("%.2fx", factor),
                      TextTable::num(avgX, 3),
                      TextTable::num(stdRatioV, 3),
                      TextTable::num(bgRatio, 3),
                      TextTable::pct(res.fgSuccessRatio())});
        csv.numericRow({factor, avgX, stdRatioV, bgRatio,
                        res.fgSuccessRatio()});
    }
    table.print(std::cout);
    std::cout << "\n" << csvBuf.str();

    std::cout << "\nPaper expectation: average FG time tracks the "
                 "target across the sweep\n(slightly below it), std "
                 "stays low, and BG throughput rises as the "
                 "deadline\nloosens; only the standalone-time target "
                 "leaves no room for collocation.\n";
    return 0;
}
