/**
 * @file
 * Shared helpers for the figure-regeneration binaries.
 */

#ifndef DIRIGENT_BENCH_BENCH_UTIL_H
#define DIRIGENT_BENCH_BENCH_UTIL_H

#include <iostream>
#include <vector>

#include "common/log.h"

#include "common/table.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "workload/mix.h"

namespace dirigent::bench {

/** Default harness configuration with environment overrides applied. */
inline harness::HarnessConfig
defaultConfig(unsigned executions)
{
    harness::HarnessConfig cfg;
    cfg.executions = harness::envExecutions(executions);
    cfg.seed = harness::envSeed(cfg.seed);
    return cfg;
}

/**
 * Run every mix through all five schemes and print the Fig. 9-style
 * per-mix table, the normalized-σ table, the Fig. 10/13-style summary,
 * and a CSV block.
 */
inline std::vector<std::vector<harness::SchemeRunResult>>
runAndReport(harness::ExperimentRunner &runner,
             const std::vector<workload::WorkloadMix> &mixes)
{
    std::vector<std::vector<harness::SchemeRunResult>> perMix;
    for (const auto &mix : mixes) {
        dirigent::inform("running mix: " + mix.name);
        perMix.push_back(runner.runAllSchemes(mix));
    }

    std::cout << "\nFG success ratio and BG throughput (vs Baseline):\n";
    harness::printSchemeComparison(std::cout, perMix);

    std::cout << "\nFG execution-time std normalized to Baseline:\n";
    harness::printStdComparison(std::cout, perMix);

    std::cout << "\nSummary:\n";
    harness::printSchemeSummary(std::cout,
                                harness::summarizeSchemes(perMix));

    std::cout << "\nCSV:\n";
    harness::printComparisonCsv(std::cout, perMix);
    return perMix;
}

} // namespace dirigent::bench

#endif // DIRIGENT_BENCH_BENCH_UTIL_H
