/**
 * @file
 * Shared helpers for the figure-regeneration binaries.
 */

#ifndef DIRIGENT_BENCH_BENCH_UTIL_H
#define DIRIGENT_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <chrono>
#include <iostream>
#include <utility>
#include <vector>

#include "check/check.h"
#include "common/log.h"

#include "common/table.h"
#include "exec/executor.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "workload/mix.h"

namespace dirigent::bench {

/**
 * One warmed-up repeated wall-clock measurement. Every perf artifact
 * in this repo (the sim-rate snapshots and the CI recorder-overhead
 * gate) reports the median of @c samplesSec so a single descheduling
 * blip cannot fail a gate or skew a committed baseline.
 */
struct Measured
{
    std::vector<double> samplesSec; //!< timed repetitions, in run order
    double medianSec = 0.0;
    double minSec = 0.0;
    double maxSec = 0.0;
};

/** Median of @p values (by copy; empty input returns 0). */
inline double
medianOf(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

/**
 * Run @p fn @p warmup times untimed, then @p reps times timed, and
 * summarize. The single measurement methodology shared by every bench
 * binary — micro_overhead's CI overhead gate and sim_rate's regression
 * gate compare numbers produced exactly this way.
 */
template <typename Fn>
Measured
measureMedian(Fn &&fn, int reps, int warmup)
{
    using clock = std::chrono::steady_clock;
    Measured m;
    for (int i = 0; i < warmup; ++i)
        fn();
    for (int i = 0; i < reps; ++i) {
        auto t0 = clock::now();
        fn();
        auto t1 = clock::now();
        m.samplesSec.push_back(
            std::chrono::duration<double>(t1 - t0).count());
    }
    m.medianSec = medianOf(m.samplesSec);
    auto [lo, hi] =
        std::minmax_element(m.samplesSec.begin(), m.samplesSec.end());
    if (lo != m.samplesSec.end()) {
        m.minSec = *lo;
        m.maxSec = *hi;
    }
    return m;
}

/**
 * Measure two workloads for a ratio comparison (e.g. the recorder
 * overhead gate): reps are interleaved, with the arm order swapped
 * every rep, so slow drift in background load hits both arms equally
 * instead of biasing whichever arm happens to run second. Summaries
 * are the same warmup + median-of-reps shape as measureMedian.
 */
template <typename FnA, typename FnB>
std::pair<Measured, Measured>
measurePairMedian(FnA &&fnA, FnB &&fnB, int reps, int warmup)
{
    using clock = std::chrono::steady_clock;
    Measured a, b;
    for (int i = 0; i < warmup; ++i) {
        fnA();
        fnB();
    }
    auto timeOne = [](auto &fn) {
        auto t0 = clock::now();
        fn();
        auto t1 = clock::now();
        return std::chrono::duration<double>(t1 - t0).count();
    };
    for (int i = 0; i < reps; ++i) {
        if (i % 2 == 0) {
            a.samplesSec.push_back(timeOne(fnA));
            b.samplesSec.push_back(timeOne(fnB));
        } else {
            b.samplesSec.push_back(timeOne(fnB));
            a.samplesSec.push_back(timeOne(fnA));
        }
    }
    for (Measured *m : {&a, &b}) {
        m->medianSec = medianOf(m->samplesSec);
        auto [lo, hi] = std::minmax_element(m->samplesSec.begin(),
                                            m->samplesSec.end());
        if (lo != m->samplesSec.end()) {
            m->minSec = *lo;
            m->maxSec = *hi;
        }
    }
    return {a, b};
}

/** Default harness configuration with environment overrides applied. */
inline harness::HarnessConfig
defaultConfig(unsigned executions)
{
    harness::HarnessConfig cfg;
    cfg.executions = harness::envExecutions(executions);
    cfg.seed = harness::envSeed(cfg.seed);
    cfg.threads = harness::envThreads(cfg.threads);
    return cfg;
}

/** Executor knobs for a bench binary: env-driven JSONL export. */
inline exec::ExecutorConfig
defaultExecutorConfig()
{
    exec::ExecutorConfig ecfg;
    ecfg.jsonlPath = exec::envJsonlPath();
    return ecfg;
}

/**
 * Run every mix through all five schemes — sharded across
 * DIRIGENT_THREADS workers (default: hardware concurrency; 1 = the
 * legacy serial path) — and print the Fig. 9-style per-mix table, the
 * normalized-σ table, the Fig. 10/13-style summary, and a CSV block.
 * The tables are byte-identical for any thread count; live progress
 * goes to stderr, and DIRIGENT_JSONL=<path> appends per-run records.
 */
inline std::vector<std::vector<harness::SchemeRunResult>>
runAndReport(const harness::HarnessConfig &config,
             const std::vector<workload::WorkloadMix> &mixes)
{
    // DIRIGENT_CHECK=1 audits a figure run with invariants on; say so,
    // since checking perturbs nothing but proves the run was sane.
    if (check::enabled())
        inform("runtime invariant checker enabled for this figure run");
    exec::SweepExecutor executor(config, defaultExecutorConfig());
    auto perMix = executor.runSchemeSweep(mixes);

    std::cout << "\nFG success ratio and BG throughput (vs Baseline):\n";
    harness::printSchemeComparison(std::cout, perMix);

    std::cout << "\nFG execution-time std normalized to Baseline:\n";
    harness::printStdComparison(std::cout, perMix);

    std::cout << "\nSummary:\n";
    harness::printSchemeSummary(std::cout,
                                harness::summarizeSchemes(perMix));

    std::cout << "\nCSV:\n";
    harness::printComparisonCsv(std::cout, perMix);
    return perMix;
}

} // namespace dirigent::bench

#endif // DIRIGENT_BENCH_BENCH_UTIL_H
