/**
 * @file
 * Shared helpers for the figure-regeneration binaries.
 */

#ifndef DIRIGENT_BENCH_BENCH_UTIL_H
#define DIRIGENT_BENCH_BENCH_UTIL_H

#include <iostream>
#include <vector>

#include "check/check.h"
#include "common/log.h"

#include "common/table.h"
#include "exec/executor.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "workload/mix.h"

namespace dirigent::bench {

/** Default harness configuration with environment overrides applied. */
inline harness::HarnessConfig
defaultConfig(unsigned executions)
{
    harness::HarnessConfig cfg;
    cfg.executions = harness::envExecutions(executions);
    cfg.seed = harness::envSeed(cfg.seed);
    cfg.threads = harness::envThreads(cfg.threads);
    return cfg;
}

/** Executor knobs for a bench binary: env-driven JSONL export. */
inline exec::ExecutorConfig
defaultExecutorConfig()
{
    exec::ExecutorConfig ecfg;
    ecfg.jsonlPath = exec::envJsonlPath();
    return ecfg;
}

/**
 * Run every mix through all five schemes — sharded across
 * DIRIGENT_THREADS workers (default: hardware concurrency; 1 = the
 * legacy serial path) — and print the Fig. 9-style per-mix table, the
 * normalized-σ table, the Fig. 10/13-style summary, and a CSV block.
 * The tables are byte-identical for any thread count; live progress
 * goes to stderr, and DIRIGENT_JSONL=<path> appends per-run records.
 */
inline std::vector<std::vector<harness::SchemeRunResult>>
runAndReport(const harness::HarnessConfig &config,
             const std::vector<workload::WorkloadMix> &mixes)
{
    // DIRIGENT_CHECK=1 audits a figure run with invariants on; say so,
    // since checking perturbs nothing but proves the run was sane.
    if (check::enabled())
        inform("runtime invariant checker enabled for this figure run");
    exec::SweepExecutor executor(config, defaultExecutorConfig());
    auto perMix = executor.runSchemeSweep(mixes);

    std::cout << "\nFG success ratio and BG throughput (vs Baseline):\n";
    harness::printSchemeComparison(std::cout, perMix);

    std::cout << "\nFG execution-time std normalized to Baseline:\n";
    harness::printStdComparison(std::cout, perMix);

    std::cout << "\nSummary:\n";
    harness::printSchemeSummary(std::cout,
                                harness::summarizeSchemes(perMix));

    std::cout << "\nCSV:\n";
    harness::printComparisonCsv(std::cout, perMix);
    return perMix;
}

} // namespace dirigent::bench

#endif // DIRIGENT_BENCH_BENCH_UTIL_H
