/**
 * @file
 * Ablation: how much of Dirigent's benefit comes from *prediction*?
 *
 * Compares, on mixes with strong interference dynamics, four points:
 *  - Baseline (no control),
 *  - Reactive (same actuators and ladder, but one decision per FG
 *    completion based on the previous execution's duration — no
 *    within-execution prediction),
 *  - DirigentFreq (prediction-guided fine control, no partitioning),
 *  - Dirigent (full).
 *
 * The paper argues fine-time-scale prediction is the fundamental
 * enabler; the reactive controller shows what the same ladder achieves
 * without it.
 */

#include <iostream>
#include <sstream>

#include "bench_util.h"

using namespace dirigent;

int
main()
{
    printBanner(std::cout,
                "Ablation: prediction-guided vs reactive control");

    std::vector<workload::WorkloadMix> mixes = {
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs")),
        workload::makeMix({"streamcluster"},
                          workload::BgSpec::single("bwaves")),
        workload::makeMix({"bodytrack"},
                          workload::BgSpec::rotate("libquantum",
                                                   "soplex")),
        workload::makeMix({"raytrace"},
                          workload::BgSpec::rotate("lbm", "namd")),
    };

    // One job per mix; the four configurations of a mix share its
    // Baseline calibration, so they chain inside the job while mixes
    // run on separate workers.
    struct MixRows
    {
        harness::SchemeRunResult baseline, reactive, freqOnly, full;
    };
    std::vector<MixRows> rows(mixes.size());
    std::vector<exec::JobKey> keys;
    for (const auto &mix : mixes)
        keys.push_back({mix.name, "prediction-value", 0});

    exec::SweepExecutor executor(bench::defaultConfig(40),
                                 bench::defaultExecutorConfig());
    executor.forEach(keys, [&](size_t i, const exec::JobKey &,
                               harness::ExperimentRunner &runner) {
        const auto &mix = mixes[i];
        auto &out = rows[i];
        out.baseline = runner.run(mix, core::Scheme::Baseline, {});
        auto deadlines = runner.deadlinesFromBaseline(out.baseline);
        harness::applyDeadlines(out.baseline, deadlines);

        harness::RunOptions reactiveOpts;
        reactiveOpts.attachReactive = true;
        out.reactive = runner.run(mix, core::Scheme::Baseline,
                                  deadlines, reactiveOpts);
        out.freqOnly =
            runner.run(mix, core::Scheme::DirigentFreq, deadlines);
        out.full = runner.run(mix, core::Scheme::Dirigent, deadlines);
    });

    TextTable table({"mix", "config", "FG success", "norm std",
                     "BG throughput"});
    std::cout << "\nCSV:\n";
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"mix", "config", "fg_success", "norm_std", "bg_ratio"});

    for (size_t i = 0; i < mixes.size(); ++i) {
        const auto &baseline = rows[i].baseline;
        struct Row
        {
            const char *name;
            const harness::SchemeRunResult *res;
        };
        for (const auto &[name, res] :
             {Row{"Baseline", &baseline},
              Row{"Reactive", &rows[i].reactive},
              Row{"DirigentFreq", &rows[i].freqOnly},
              Row{"Dirigent", &rows[i].full}}) {
            table.addRow({mixes[i].name, name,
                          TextTable::pct(res->fgSuccessRatio()),
                          TextTable::num(
                              harness::stdRatio(*res, baseline), 3),
                          TextTable::pct(harness::bgThroughputRatio(
                              *res, baseline))});
            csv.row({mixes[i].name, name,
                     strfmt("%.4f", res->fgSuccessRatio()),
                     strfmt("%.4f", harness::stdRatio(*res, baseline)),
                     strfmt("%.4f", harness::bgThroughputRatio(
                                        *res, baseline))});
        }
    }
    table.print(std::cout);
    std::cout << "\n" << csvBuf.str();

    std::cout << "\nExpectation: the reactive ladder improves on "
                 "Baseline but reacts one\nexecution late, so it "
                 "either over-throttles (losing BG throughput) or "
                 "keeps\nmissing deadlines when interference shifts; "
                 "prediction-guided control gets\nboth sides at "
                 "once.\n";
    return 0;
}
