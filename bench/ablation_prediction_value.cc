/**
 * @file
 * Ablation: how much of Dirigent's benefit comes from *prediction*?
 *
 * Compares, on mixes with strong interference dynamics, four points:
 *  - Baseline (no control),
 *  - Reactive (same actuators and ladder, but one decision per FG
 *    completion based on the previous execution's duration — no
 *    within-execution prediction),
 *  - DirigentFreq (prediction-guided fine control, no partitioning),
 *  - Dirigent (full).
 *
 * The paper argues fine-time-scale prediction is the fundamental
 * enabler; the reactive controller shows what the same ladder achieves
 * without it.
 */

#include <iostream>
#include <sstream>

#include "bench_util.h"

using namespace dirigent;

int
main()
{
    harness::ExperimentRunner runner(bench::defaultConfig(40));
    printBanner(std::cout,
                "Ablation: prediction-guided vs reactive control");

    std::vector<workload::WorkloadMix> mixes = {
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs")),
        workload::makeMix({"streamcluster"},
                          workload::BgSpec::single("bwaves")),
        workload::makeMix({"bodytrack"},
                          workload::BgSpec::rotate("libquantum",
                                                   "soplex")),
        workload::makeMix({"raytrace"},
                          workload::BgSpec::rotate("lbm", "namd")),
    };

    TextTable table({"mix", "config", "FG success", "norm std",
                     "BG throughput"});
    std::cout << "\nCSV:\n";
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"mix", "config", "fg_success", "norm_std", "bg_ratio"});

    for (const auto &mix : mixes) {
        auto baseline = runner.run(mix, core::Scheme::Baseline, {});
        auto deadlines = runner.deadlinesFromBaseline(baseline);
        harness::applyDeadlines(baseline, deadlines);

        harness::RunOptions reactiveOpts;
        reactiveOpts.attachReactive = true;
        auto reactive = runner.run(mix, core::Scheme::Baseline,
                                   deadlines, reactiveOpts);
        auto freqOnly =
            runner.run(mix, core::Scheme::DirigentFreq, deadlines);
        auto full = runner.run(mix, core::Scheme::Dirigent, deadlines);

        struct Row
        {
            const char *name;
            const harness::SchemeRunResult *res;
        };
        for (const auto &[name, res] :
             {Row{"Baseline", &baseline}, Row{"Reactive", &reactive},
              Row{"DirigentFreq", &freqOnly},
              Row{"Dirigent", &full}}) {
            table.addRow({mix.name, name,
                          TextTable::pct(res->fgSuccessRatio()),
                          TextTable::num(
                              harness::stdRatio(*res, baseline), 3),
                          TextTable::pct(harness::bgThroughputRatio(
                              *res, baseline))});
            csv.row({mix.name, name,
                     strfmt("%.4f", res->fgSuccessRatio()),
                     strfmt("%.4f", harness::stdRatio(*res, baseline)),
                     strfmt("%.4f", harness::bgThroughputRatio(
                                        *res, baseline))});
        }
    }
    table.print(std::cout);
    std::cout << "\n" << csvBuf.str();

    std::cout << "\nExpectation: the reactive ladder improves on "
                 "Baseline but reacts one\nexecution late, so it "
                 "either over-throttles (losing BG throughput) or "
                 "keeps\nmissing deadlines when interference shifts; "
                 "prediction-guided control gets\nboth sides at "
                 "once.\n";
    return 0;
}
