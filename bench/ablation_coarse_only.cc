/**
 * @file
 * Ablation: coarse-time-scale control only.
 *
 * The paper omits a coarse-only Dirigent configuration from Fig. 9
 * "because it performs just slightly worse than StaticBoth" (both use
 * the same partition; StaticBoth additionally pins BG frequency low).
 * This bench runs the omitted configuration and checks the claim.
 */

#include <iostream>
#include <sstream>

#include "bench_util.h"

using namespace dirigent;

int
main()
{
    printBanner(std::cout,
                "Ablation: coarse-only Dirigent vs StaticBoth "
                "(paper's omitted configuration)");

    std::vector<workload::WorkloadMix> mixes = {
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs")),
        workload::makeMix({"streamcluster"},
                          workload::BgSpec::single("pca")),
        workload::makeMix({"bodytrack"},
                          workload::BgSpec::rotate("lbm", "namd")),
    };

    // One sharded job per mix; the stages inside a mix (Baseline →
    // Dirigent → StaticBoth/CoarseOnly) are data-dependent and chain
    // inside the job.
    struct MixRows
    {
        harness::SchemeRunResult baseline, dirigent, staticBoth,
            coarseOnly;
    };
    std::vector<MixRows> rows(mixes.size());
    std::vector<exec::JobKey> keys;
    for (const auto &mix : mixes)
        keys.push_back({mix.name, "coarse-only", 0});

    exec::SweepExecutor executor(bench::defaultConfig(40),
                                 bench::defaultExecutorConfig());
    executor.forEach(keys, [&](size_t i, const exec::JobKey &,
                               harness::ExperimentRunner &runner) {
        const auto &mix = mixes[i];
        auto &out = rows[i];
        out.baseline = runner.run(mix, core::Scheme::Baseline, {});
        auto deadlines = runner.deadlinesFromBaseline(out.baseline);
        harness::applyDeadlines(out.baseline, deadlines);

        // Full Dirigent first: its converged partition defines
        // StaticBoth, as in the main evaluation.
        out.dirigent =
            runner.run(mix, core::Scheme::Dirigent, deadlines);
        harness::RunOptions staticOpts;
        staticOpts.staticFgWays =
            out.dirigent.finalFgWays
                ? out.dirigent.finalFgWays
                : runner.config().staticFgWaysDefault;
        out.staticBoth = runner.run(mix, core::Scheme::StaticBoth,
                                    deadlines, staticOpts);
        harness::RunOptions coarseOpts;
        coarseOpts.attachCoarseOnly = true;
        out.coarseOnly = runner.run(mix, core::Scheme::Baseline,
                                    deadlines, coarseOpts);
    });

    TextTable table({"mix", "config", "FG success", "norm std",
                     "BG throughput", "FG ways"});
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"mix", "config", "fg_success", "norm_std", "bg_ratio",
             "fg_ways"});

    for (size_t i = 0; i < mixes.size(); ++i) {
        const auto &baseline = rows[i].baseline;
        struct Row
        {
            const char *name;
            const harness::SchemeRunResult *res;
        };
        for (const auto &[name, res] :
             {Row{"StaticBoth", &rows[i].staticBoth},
              Row{"CoarseOnly", &rows[i].coarseOnly},
              Row{"Dirigent", &rows[i].dirigent}}) {
            table.addRow({mixes[i].name, name,
                          TextTable::pct(res->fgSuccessRatio()),
                          TextTable::num(
                              harness::stdRatio(*res, baseline), 3),
                          TextTable::pct(harness::bgThroughputRatio(
                              *res, baseline)),
                          strfmt("%u", res->finalFgWays)});
            csv.row({mixes[i].name, name,
                     strfmt("%.4f", res->fgSuccessRatio()),
                     strfmt("%.4f", harness::stdRatio(*res, baseline)),
                     strfmt("%.4f", harness::bgThroughputRatio(
                                        *res, baseline)),
                     strfmt("%u", res->finalFgWays)});
        }
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n" << csvBuf.str();

    std::cout << "\nExpectation (paper §5.4): coarse-only performs at "
                 "or slightly below\nStaticBoth on FG success — "
                 "partitioning alone cannot react to fast "
                 "interference\nchanges — while full Dirigent matches "
                 "the best success at far higher BG\nthroughput.\n";
    return 0;
}
