/**
 * @file
 * Ablation: progress metrics under input dependence (paper §7).
 *
 * The paper's predictor counts retired instructions; §7 notes that
 * strongly input-dependent tasks may need Application-Heartbeats-style
 * interfaces. This bench creates variants of an FG task with
 * increasingly input-dependent phase lengths (per-instance instruction
 * jitter) and compares midpoint prediction error with the
 * retired-instruction metric vs the heartbeat metric, which reports
 * work *fractions* and is immune to instruction-count variation.
 */

#include <iostream>
#include <sstream>

#include "bench_util.h"
#include "workload/benchmarks.h"

using namespace dirigent;

namespace {

/** Register a raytrace variant with per-phase instruction jitter. */
std::string
jitteryVariant(double sigma)
{
    std::string name = strfmt("raytrace-j%02.0f", sigma * 100.0);
    const auto &lib = workload::BenchmarkLibrary::instance();
    if (lib.has(name))
        return name;
    workload::PhaseProgram prog = lib.get("raytrace").program;
    prog.name = name;
    for (auto &phase : prog.phases)
        phase.instrJitterSigma = sigma;
    workload::BenchmarkLibrary::registerCustom(
        name, strfmt("raytrace with %.0f%% input-dependent phase "
                     "lengths",
                     sigma * 100.0),
        prog);
    return name;
}

double
errorWithMetric(const std::string &fg, core::ProgressMetric metric,
                unsigned executions)
{
    harness::HarnessConfig cfg = bench::defaultConfig(executions);
    cfg.profiler.metric = metric;
    cfg.runtime.metric = metric;
    harness::ExperimentRunner runner(cfg);
    auto mix = workload::makeMix({fg}, workload::BgSpec::single("rs"));
    harness::RunOptions opts;
    opts.attachObserver = true;
    auto res = runner.run(mix, core::Scheme::Baseline, {}, opts);
    return res.predictionError();
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Ablation: retired-instructions vs heartbeats progress "
                "under input dependence");

    const unsigned executions = harness::envExecutions(30);
    TextTable table({"phase-length jitter", "instr-metric error",
                     "heartbeat-metric error"});
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"jitter", "instr_error", "heartbeat_error"});

    for (double sigma : {0.0, 0.05, 0.10, 0.20, 0.30}) {
        std::string fg =
            sigma == 0.0 ? "raytrace" : jitteryVariant(sigma);
        double instrErr = errorWithMetric(
            fg, core::ProgressMetric::RetiredInstructions, executions);
        double beatErr = errorWithMetric(
            fg, core::ProgressMetric::Heartbeats, executions);
        table.addRow({TextTable::pct(sigma, 0),
                      TextTable::pct(instrErr),
                      TextTable::pct(beatErr)});
        csv.numericRow({sigma, instrErr, beatErr});
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n" << csvBuf.str();

    std::cout
        << "\nExpectation: with input-independent phases both metrics "
           "match. As phase\nlengths become strongly input-dependent, "
           "both degrade (the instance's total\nwork is genuinely "
           "unpredictable), but the instruction metric additionally\n"
           "suffers profile-alignment error — the heartbeat metric "
           "should cut the\nworst-case error substantially, supporting "
           "the paper's §7 hypothesis that\nheartbeat-style interfaces "
           "help under strong input dependence.\n";
    return 0;
}
