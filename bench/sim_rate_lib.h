/**
 * @file
 * End-to-end simulation-rate benchmark scenarios, shared between the
 * bench/sim_rate CLI (which writes BENCH_sim_rate.json snapshots) and
 * the perf smoke test (which runs tiny horizons and schema-validates
 * the snapshot in-process).
 *
 * Each scenario is one full detached (no recorder, no checker) run
 * through the harness, repeated with the shared warmup/median
 * methodology of bench_util.h, in both stepping modes:
 *
 *  - fg_only             ferret alone on core 0 (5 idle cores)
 *  - cpu_bound           compute-only FG, OS noise off: per-quantum
 *                        fixed costs with the memory system quiescent
 *  - batch_mix           ferret + 5×rs under Dirigent (golden-like)
 *  - batch_deterministic the same mix with OS noise and CPI/instruction
 *                        jitter zeroed (pure-model throughput)
 *  - serving             open-loop Poisson serving under Dirigent
 *
 * Rates are reported as model quanta/second (from the engine's global
 * step counter) and runs/second, per scenario and stepping mode.
 */

#ifndef DIRIGENT_BENCH_SIM_RATE_LIB_H
#define DIRIGENT_BENCH_SIM_RATE_LIB_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dirigent::bench {

/** Knobs of one sim-rate benchmark invocation. */
struct SimRateOptions
{
    int reps = 5;    //!< timed repetitions per scenario × mode
    int warmup = 1;  //!< untimed repetitions before measuring
    unsigned executions = 10;      //!< measured FG executions per run
    double servingHorizonSec = 8.0; //!< serving-scenario arrival window
    bool quick = false; //!< tiny horizons for the perf smoke tier
    /** Stepping modes to measure ("reference", "fast"). */
    std::vector<std::string> modes = {"reference", "fast"};
};

/** Measured rates of one scenario under one stepping mode. */
struct ScenarioResult
{
    std::string name;
    std::string mode; //!< "reference" or "fast"
    int reps = 0;
    int warmup = 0;
    uint64_t quantaPerRun = 0; //!< model quanta one run advances
    double medianRunSec = 0.0;
    double minRunSec = 0.0;
    double maxRunSec = 0.0;
    double quantaPerSec = 0.0; //!< quantaPerRun / medianRunSec
    double runsPerSec = 0.0;   //!< 1 / medianRunSec
};

/** A full sim-rate measurement. */
struct SimRateReport
{
    SimRateOptions options;
    std::vector<ScenarioResult> scenarios;
};

/** A baseline section carried into the snapshot for comparison. */
struct SimRateBaseline
{
    std::string label;
    std::vector<ScenarioResult> scenarios;
};

/** The tiny-horizon options used by the `perf` ctest smoke tier. */
SimRateOptions quickSimRateOptions();

/** Run every scenario in every requested mode. */
SimRateReport runSimRate(const SimRateOptions &options);

/**
 * Render the snapshot JSON (schema: tools/schema/bench.schema.json).
 * When @p baseline is present a per-scenario speedup section is
 * computed for every matching (name, mode) pair.
 */
std::string formatSimRateJson(const SimRateReport &report,
                              const std::optional<SimRateBaseline> &baseline);

/**
 * Extract the scenario list of an existing snapshot's *current*
 * section so it can be embedded as the baseline of the next one
 * (`sim_rate --baseline-from`). Returns nullopt on parse failure.
 */
std::optional<SimRateBaseline>
baselineFromSnapshot(const std::string &jsonText, const std::string &label);

} // namespace dirigent::bench

#endif // DIRIGENT_BENCH_SIM_RATE_LIB_H
