/**
 * @file
 * Microbenchmarks of the Dirigent runtime's per-invocation cost. The
 * paper measures < 100 µs per invocation including predictor and
 * throttler on a 2 GHz Xeon; the library's data-structure work
 * (predictor observe + Eq. 2 evaluation + controller decision) must be
 * far below that bound on any modern host.
 *
 * Measurement uses the shared bench::measureMedian helper
 * (bench_util.h) — the same warmup + median-of-reps methodology as the
 * sim-rate benchmark — so CI's recorder-overhead gate and sim-rate
 * regression gate compare numbers produced one way.
 *
 * Usage:
 *   micro_overhead [--reps N] [--warmup N] [--json FILE]
 *                  [--only micro|experiment]
 *
 * The experiment section times the detached/recorded short-experiment
 * pair CI compares to enforce the < 3 % recorder-overhead budget; its
 * JSON carries "overhead_pct" plus both medians.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "dirigent/fine_controller.h"
#include "dirigent/predictor.h"
#include "harness/experiment.h"
#include "machine/actuators.h"
#include "machine/cpufreq.h"
#include "machine/machine.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "sim/engine.h"
#include "workload/benchmarks.h"
#include "workload/mix.h"

#ifndef DIRIGENT_BENCH_BUILD_TYPE
#define DIRIGENT_BENCH_BUILD_TYPE ""
#endif

using namespace dirigent;

namespace {

/** Keep @p value alive as far as the optimizer is concerned. */
template <typename T>
inline void
doNotOptimize(const T &value)
{
    asm volatile("" : : "g"(value) : "memory");
}

core::Profile
syntheticProfile(size_t segments)
{
    std::vector<core::ProfileSegment> segs(
        segments, core::ProfileSegment{1e7, Time::ms(5.0)});
    return core::Profile("synthetic", Time::ms(5.0), segs);
}

/** One per-operation microbenchmark row. */
struct MicroRow
{
    std::string name;
    uint64_t opsPerRep = 0;
    bench::Measured measured;

    double
    nsPerOp() const
    {
        if (opsPerRep == 0)
            return 0.0;
        return measured.medianSec * 1e9 / double(opsPerRep);
    }
};

MicroRow
benchPredictorObserve(size_t segments, int reps, int warmup)
{
    core::Profile profile = syntheticProfile(segments);
    core::Predictor pred(&profile);
    pred.beginExecution(Time());
    double progress = 0.0;
    Time now;
    const uint64_t ops = 1 << 16;
    auto fn = [&] {
        for (uint64_t i = 0; i < ops; ++i) {
            now += Time::ms(6.0);
            progress += 1e7;
            if (progress > profile.totalProgress()) {
                // Execution rollover; its cost amortizes over the
                // segments-many observes between rollovers.
                pred.endExecution(now, progress);
                pred.beginExecution(now);
                progress = 0.0;
                continue;
            }
            pred.observe(now, progress);
        }
    };
    MicroRow row;
    row.name = strfmt("predictor_observe/%zu", segments);
    row.opsPerRep = ops;
    row.measured = bench::measureMedian(fn, reps, warmup);
    return row;
}

MicroRow
benchPredictorPredictTotal(size_t segments, int reps, int warmup)
{
    core::Profile profile = syntheticProfile(segments);
    core::Predictor pred(&profile);
    pred.beginExecution(Time());
    pred.observe(Time::ms(6.0), 1e7);
    const uint64_t ops = 1 << 16;
    auto fn = [&] {
        for (uint64_t i = 0; i < ops; ++i)
            doNotOptimize(pred.predictTotal());
    };
    MicroRow row;
    row.name = strfmt("predictor_predict_total/%zu", segments);
    row.opsPerRep = ops;
    row.measured = bench::measureMedian(fn, reps, warmup);
    return row;
}

MicroRow
benchFullRuntimeInvocation(int reps, int warmup)
{
    // One predictor observation + prediction + controller decision for
    // a single FG — the work inside one Dirigent wake-up.
    machine::MachineConfig cfg;
    cfg.noiseEventsPerSec = 0.0;
    machine::Machine machine(cfg);
    sim::Engine engine(machine, cfg.maxQuantum);
    machine::CpuFreqGovernor governor(machine, engine);
    const auto &lib = workload::BenchmarkLibrary::instance();
    machine::ProcessSpec fg;
    fg.name = "fg";
    fg.program = &lib.get("ferret").program;
    fg.core = 0;
    fg.foreground = true;
    machine.spawnProcess(fg);
    for (unsigned c = 1; c < 6; ++c) {
        machine::ProcessSpec bg;
        bg.name = "bg";
        bg.program = &lib.get("lbm").program;
        bg.core = c;
        bg.foreground = false;
        machine.spawnProcess(bg);
    }
    machine::GovernorFrequencyActuator freq(governor);
    machine::OsPauseActuator pause(machine.os());
    core::FineGrainController controller(machine, freq, pause);
    core::Profile profile = syntheticProfile(200);
    core::Predictor pred(&profile);
    pred.beginExecution(Time());

    double progress = 0.0;
    Time now;
    const uint64_t ops = 4096;
    auto fn = [&] {
        for (uint64_t i = 0; i < ops; ++i) {
            now += Time::ms(6.0);
            progress += 1e7;
            if (progress > profile.totalProgress()) {
                pred.endExecution(now, progress);
                pred.beginExecution(now);
                progress = 0.0;
                continue;
            }
            pred.observe(now, progress);
            core::FineGrainController::FgStatus st;
            st.pid = 0;
            st.core = 0;
            st.predicted = pred.predictTotal();
            st.deadline = Time::sec(1.2);
            st.valid = true;
            controller.tick({st});
        }
    };
    MicroRow row;
    row.name = "full_runtime_invocation";
    row.opsPerRep = ops;
    row.measured = bench::measureMedian(fn, reps, warmup);
    return row;
}

MicroRow
benchRecorderSample(int reps, int warmup)
{
    // One telemetry sample append — the recorder's hot path: a fresh
    // recorder per rep so allocation amortizes into the per-op figure
    // rather than accumulating across reps.
    const uint64_t ops = 1 << 17;
    auto fn = [&] {
        obs::Recorder recorder;
        size_t id = recorder.addSeries("bench.value", "unit");
        Time now;
        for (uint64_t i = 0; i < ops; ++i) {
            now += Time::ms(1.0);
            recorder.sample(id, now, 0.5);
        }
        doNotOptimize(recorder);
    };
    MicroRow row;
    row.name = "recorder_sample";
    row.opsPerRep = ops;
    row.measured = bench::measureMedian(fn, reps, warmup);
    return row;
}

MicroRow
benchMetricsHistogramObserve(int reps, int warmup)
{
    obs::MetricsRegistry registry;
    obs::Histogram &hist = registry.histogram("bench.hist");
    Rng rng(42);
    const uint64_t ops = 1 << 17;
    auto fn = [&] {
        for (uint64_t i = 0; i < ops; ++i)
            hist.observe(rng.uniform(1e-4, 10.0));
    };
    MicroRow row;
    row.name = "metrics_histogram_observe";
    row.opsPerRep = ops;
    row.measured = bench::measureMedian(fn, reps, warmup);
    return row;
}

/** The detached/recorded short-experiment pair behind the CI < 3 %
 *  recorder-overhead budget. */
struct OverheadResult
{
    bench::Measured detached;
    bench::Measured recorded;

    double
    overheadPct() const
    {
        if (detached.medianSec <= 0.0)
            return 0.0;
        return (recorded.medianSec / detached.medianSec - 1.0) * 100.0;
    }
};

OverheadResult
benchExperimentPair(int reps, int warmup)
{
    // Pin reference stepping for both arms: the probe observer behind
    // opts.recorder forces reference mode anyway, so leaving the
    // detached arm on skip-ahead would bill the fast path's speedup to
    // the recorder. The gate isolates the recorder's own cost.
    const char *prevEnv = std::getenv("DIRIGENT_FAST_PATH");
    std::string saved = prevEnv != nullptr ? prevEnv : "";
    bool hadEnv = prevEnv != nullptr;
    ::setenv("DIRIGENT_FAST_PATH", "0", 1);

    harness::HarnessConfig hc;
    hc.warmup = 1;
    hc.executions = 3;
    harness::ExperimentRunner runner(hc); // profiles cached across reps
    auto mix =
        workload::makeMix({"ferret"}, workload::BgSpec::single("lbm"));
    auto runOnce = [&](bool recorded) {
        obs::Recorder recorder;
        harness::RunOptions opts;
        if (recorded)
            opts.recorder = &recorder;
        auto res = runner.run(mix, core::Scheme::Dirigent, {}, opts);
        doNotOptimize(res.total);
    };
    OverheadResult out;
    // Interleaved arms (order swapped each rep) so host-load drift
    // cannot bias the ratio; warmup also absorbs the runner's one-time
    // lazy profiling so it bills to neither arm.
    std::tie(out.detached, out.recorded) = bench::measurePairMedian(
        [&] { runOnce(false); }, [&] { runOnce(true); }, reps, warmup);

    if (hadEnv)
        ::setenv("DIRIGENT_FAST_PATH", saved.c_str(), 1);
    else
        ::unsetenv("DIRIGENT_FAST_PATH");
    return out;
}

void
printMicroTable(const std::vector<MicroRow> &rows)
{
    std::cout << "\nPer-operation medians:\n";
    std::cout << strfmt("  %-32s %12s %12s %10s\n", "benchmark",
                        "ns/op", "median ms", "ops/rep");
    for (const MicroRow &r : rows) {
        std::cout << strfmt("  %-32s %12.1f %12.3f %10llu\n",
                            r.name.c_str(), r.nsPerOp(),
                            r.measured.medianSec * 1e3,
                            (unsigned long long)r.opsPerRep);
    }
}

void
printOverhead(const OverheadResult &o)
{
    std::cout << strfmt(
        "\nRecorder overhead (short experiment, median of reps):\n"
        "  detached %.3f ms  recorded %.3f ms  overhead %+.2f%%\n",
        o.detached.medianSec * 1e3, o.recorded.medianSec * 1e3,
        o.overheadPct());
}

void
appendMeasuredJson(std::ostringstream &out, const bench::Measured &m)
{
    out << "{\"median_sec\": " << m.medianSec
        << ", \"min_sec\": " << m.minSec << ", \"max_sec\": " << m.maxSec
        << "}";
}

std::string
formatJson(const std::vector<MicroRow> &rows,
           const std::optional<OverheadResult> &overhead, int reps,
           int warmup)
{
    std::ostringstream out;
    out << std::setprecision(12);
    out << "{\n";
    out << "  \"schema_version\": 1,\n";
    out << "  \"bench\": \"micro_overhead\",\n";
    out << "  \"reps\": " << reps << ",\n";
    out << "  \"warmup\": " << warmup << ",\n";
    out << "  \"context\": {\"compiler\": " << obs::jsonQuote(__VERSION__)
        << ", \"build_type\": "
        << obs::jsonQuote(DIRIGENT_BENCH_BUILD_TYPE)
        << ", \"checker\": " << (check::enabled() ? "true" : "false")
        << "},\n";
    out << "  \"micro\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const MicroRow &r = rows[i];
        out << "    {\"name\": " << obs::jsonQuote(r.name)
            << ", \"ns_per_op\": " << r.nsPerOp()
            << ", \"ops_per_rep\": " << r.opsPerRep
            << ", \"measured\": ";
        appendMeasuredJson(out, r.measured);
        out << "}" << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    out << "  ]";
    if (overhead.has_value()) {
        out << ",\n  \"experiment\": {\n    \"detached\": ";
        appendMeasuredJson(out, overhead->detached);
        out << ",\n    \"recorded\": ";
        appendMeasuredJson(out, overhead->recorded);
        out << ",\n    \"overhead_pct\": " << overhead->overheadPct()
            << "\n  }";
    }
    out << "\n}\n";
    return out.str();
}

void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--reps N] [--warmup N] [--json FILE]"
                 " [--only micro|experiment]\n";
}

} // namespace

int
main(int argc, char **argv)
{
    int reps = 5;
    int warmup = 1;
    std::string jsonPath;
    bool runMicro = true;
    bool runExperiment = true;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal(strfmt("missing value for %s", arg.c_str()));
            return argv[++i];
        };
        if (arg == "--reps") {
            reps = std::stoi(next());
        } else if (arg == "--warmup") {
            warmup = std::stoi(next());
        } else if (arg == "--json") {
            jsonPath = next();
        } else if (arg == "--only") {
            std::string what = next();
            if (what == "micro") {
                runExperiment = false;
            } else if (what == "experiment") {
                runMicro = false;
            } else {
                usage(argv[0]);
                return 2;
            }
        } else {
            usage(argv[0]);
            return arg == "--help" ? 0 : 2;
        }
    }
    if (reps < 1 || warmup < 0)
        fatal("--reps must be >= 1 and --warmup >= 0");

    std::vector<MicroRow> rows;
    if (runMicro) {
        for (size_t segments : {100, 200, 400})
            rows.push_back(benchPredictorObserve(segments, reps, warmup));
        for (size_t segments : {100, 200, 400})
            rows.push_back(
                benchPredictorPredictTotal(segments, reps, warmup));
        rows.push_back(benchFullRuntimeInvocation(reps, warmup));
        rows.push_back(benchRecorderSample(reps, warmup));
        rows.push_back(benchMetricsHistogramObserve(reps, warmup));
        printMicroTable(rows);
    }

    std::optional<OverheadResult> overhead;
    if (runExperiment) {
        overhead = benchExperimentPair(reps, warmup);
        printOverhead(*overhead);
    }

    if (!jsonPath.empty()) {
        std::string text = formatJson(rows, overhead, reps, warmup);
        if (jsonPath == "-") {
            std::cout << text;
        } else {
            std::ofstream out(jsonPath);
            if (!out)
                fatal(strfmt("cannot write %s", jsonPath.c_str()));
            out << text;
            std::cout << "\nwrote " << jsonPath << "\n";
        }
    }
    return 0;
}
