/**
 * @file
 * Microbenchmarks of the Dirigent runtime's per-invocation cost
 * (google-benchmark). The paper measures < 100 µs per invocation
 * including predictor and throttler on a 2 GHz Xeon; the library's
 * data-structure work (predictor observe + Eq. 2 evaluation +
 * controller decision) must be far below that bound on any modern
 * host.
 */

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "dirigent/fine_controller.h"
#include "dirigent/predictor.h"
#include "harness/experiment.h"
#include "machine/actuators.h"
#include "machine/cpufreq.h"
#include "machine/machine.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "sim/engine.h"
#include "workload/benchmarks.h"
#include "workload/mix.h"

using namespace dirigent;

namespace {

core::Profile
syntheticProfile(size_t segments)
{
    std::vector<core::ProfileSegment> segs(
        segments, core::ProfileSegment{1e7, Time::ms(5.0)});
    return core::Profile("synthetic", Time::ms(5.0), segs);
}

void
BM_PredictorObserve(benchmark::State &state)
{
    core::Profile profile = syntheticProfile(size_t(state.range(0)));
    core::Predictor pred(&profile);
    pred.beginExecution(Time());
    double progress = 0.0;
    Time now;
    for (auto _ : state) {
        now += Time::ms(6.0);
        progress += 1e7;
        if (progress > profile.totalProgress()) {
            state.PauseTiming();
            pred.endExecution(now, progress);
            pred.beginExecution(now);
            progress = 0.0;
            state.ResumeTiming();
            continue;
        }
        pred.observe(now, progress);
    }
}
BENCHMARK(BM_PredictorObserve)->Arg(100)->Arg(200)->Arg(400);

void
BM_PredictorPredictTotal(benchmark::State &state)
{
    core::Profile profile = syntheticProfile(size_t(state.range(0)));
    core::Predictor pred(&profile);
    pred.beginExecution(Time());
    pred.observe(Time::ms(6.0), 1e7);
    for (auto _ : state)
        benchmark::DoNotOptimize(pred.predictTotal());
}
BENCHMARK(BM_PredictorPredictTotal)->Arg(100)->Arg(200)->Arg(400);

void
BM_FullRuntimeInvocation(benchmark::State &state)
{
    // One predictor observation + prediction + controller decision for
    // a single FG — the work inside one Dirigent wake-up.
    machine::MachineConfig cfg;
    cfg.noiseEventsPerSec = 0.0;
    machine::Machine machine(cfg);
    sim::Engine engine(machine, cfg.maxQuantum);
    machine::CpuFreqGovernor governor(machine, engine);
    const auto &lib = workload::BenchmarkLibrary::instance();
    machine::ProcessSpec fg;
    fg.name = "fg";
    fg.program = &lib.get("ferret").program;
    fg.core = 0;
    fg.foreground = true;
    machine.spawnProcess(fg);
    for (unsigned c = 1; c < 6; ++c) {
        machine::ProcessSpec bg;
        bg.name = "bg";
        bg.program = &lib.get("lbm").program;
        bg.core = c;
        bg.foreground = false;
        machine.spawnProcess(bg);
    }
    machine::GovernorFrequencyActuator freq(governor);
    machine::OsPauseActuator pause(machine.os());
    core::FineGrainController controller(machine, freq, pause);
    core::Profile profile = syntheticProfile(200);
    core::Predictor pred(&profile);
    pred.beginExecution(Time());

    double progress = 0.0;
    Time now;
    for (auto _ : state) {
        now += Time::ms(6.0);
        progress += 1e7;
        if (progress > profile.totalProgress()) {
            state.PauseTiming();
            pred.endExecution(now, progress);
            pred.beginExecution(now);
            progress = 0.0;
            state.ResumeTiming();
            continue;
        }
        pred.observe(now, progress);
        core::FineGrainController::FgStatus st;
        st.pid = 0;
        st.core = 0;
        st.predicted = pred.predictTotal();
        st.deadline = Time::sec(1.2);
        st.valid = true;
        controller.tick({st});
    }
}
BENCHMARK(BM_FullRuntimeInvocation)->Unit(benchmark::kMicrosecond);

void
BM_RecorderSample(benchmark::State &state)
{
    // One telemetry sample append — the recorder's hot path. After the
    // preallocated capacity this is a columnar push_back pair.
    obs::Recorder recorder;
    size_t id = recorder.addSeries("bench.value", "unit");
    Time now;
    for (auto _ : state) {
        now += Time::ms(1.0);
        recorder.sample(id, now, 0.5);
    }
}
BENCHMARK(BM_RecorderSample);

void
BM_MetricsHistogramObserve(benchmark::State &state)
{
    obs::MetricsRegistry registry;
    obs::Histogram &hist = registry.histogram("bench.hist");
    Rng rng(42);
    for (auto _ : state)
        hist.observe(rng.uniform(1e-4, 10.0));
}
BENCHMARK(BM_MetricsHistogramObserve);

/** A short full experiment, optionally instrumented — the pair CI
 *  compares to enforce the < 3 % recorder-overhead budget. */
void
runShortExperiment(benchmark::State &state, bool recorded)
{
    harness::HarnessConfig hc;
    hc.warmup = 1;
    hc.executions = 3;
    harness::ExperimentRunner runner(hc); // profiles cached across iters
    auto mix = workload::makeMix({"ferret"},
                                 workload::BgSpec::single("lbm"));
    for (auto _ : state) {
        obs::Recorder recorder;
        harness::RunOptions opts;
        if (recorded)
            opts.recorder = &recorder;
        auto res = runner.run(mix, core::Scheme::Dirigent, {}, opts);
        benchmark::DoNotOptimize(res.total);
    }
}

void
BM_ExperimentDetached(benchmark::State &state)
{
    runShortExperiment(state, false);
}
BENCHMARK(BM_ExperimentDetached)->Unit(benchmark::kMillisecond);

void
BM_ExperimentRecorded(benchmark::State &state)
{
    runShortExperiment(state, true);
}
BENCHMARK(BM_ExperimentRecorded)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
