/**
 * @file
 * Figure 9b: FG success ratio and BG throughput for the 20 rotate-BG
 * workload mixes (5 FG benchmarks × 4 rotating pairs) under all five
 * schemes.
 */

#include <iostream>

#include "bench_util.h"

using namespace dirigent;

int
main()
{
    harness::HarnessConfig config = bench::defaultConfig(40);
    printBanner(std::cout,
                "Fig. 9b: rotate-BG workload mixes (20 mixes x 5 "
                "schemes)");
    bench::runAndReport(config, workload::rotateBgMixes());
    std::cout << "\nPaper expectation: same ordering as Fig. 9a under "
                 "context-switch-style\ninterference (random pair "
                 "rotation at every FG completion).\n";
    return 0;
}
