/**
 * @file
 * Span-collection overhead benchmark: the detached/instrumented
 * serving-run pair behind CI's < 5 % span-overhead gate. Spans are
 * passive telemetry like the Recorder — a run with no SpanCollector
 * attached performs zero span work — so the cost being measured here
 * is recordRequest per terminal outcome, the DecisionTrace sink fan-
 * out per controller decision, and the one-shot finalize().
 *
 * Shares bench_util.h's warmup + median-of-reps methodology (and the
 * interleaved measurePairMedian arms) with micro_overhead, so the two
 * overhead gates compare numbers produced one way.
 *
 * Usage:
 *   span_overhead [--reps N] [--warmup N] [--json FILE]
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "check/check.h"
#include "common/strfmt.h"
#include "dirigent/scheme_spec.h"
#include "harness/experiment.h"
#include "harness/serving.h"
#include "obs/json.h"
#include "obs/span.h"
#include "serve/spec.h"
#include "workload/benchmarks.h"
#include "workload/mix.h"

#ifndef DIRIGENT_BENCH_BUILD_TYPE
#define DIRIGENT_BENCH_BUILD_TYPE ""
#endif

using namespace dirigent;

namespace {

/** Keep @p value alive as far as the optimizer is concerned. */
template <typename T>
inline void
doNotOptimize(const T &value)
{
    asm volatile("" : : "g"(value) : "memory");
}

struct OverheadResult
{
    bench::Measured detached;
    bench::Measured instrumented;
    size_t spansPerRun = 0;

    double
    overheadPct() const
    {
        if (detached.medianSec <= 0.0)
            return 0.0;
        return (instrumented.medianSec / detached.medianSec - 1.0) *
               100.0;
    }
};

OverheadResult
benchServingPair(int reps, int warmup)
{
    // Pin reference stepping for both arms: the span sink subscribes
    // to the DecisionTrace, which would force reference mode on the
    // instrumented arm only and bill the fast path's speedup to the
    // spans. The gate isolates the span substrate's own cost.
    const char *prevEnv = std::getenv("DIRIGENT_FAST_PATH");
    std::string saved = prevEnv != nullptr ? prevEnv : "";
    bool hadEnv = prevEnv != nullptr;
    ::setenv("DIRIGENT_FAST_PATH", "0", 1);

    harness::HarnessConfig hc;
    hc.warmup = 1;
    hc.executions = 3;
    harness::ExperimentRunner runner(hc); // profiles cached across reps
    auto mix =
        workload::makeMix({"ferret"}, workload::BgSpec::single("lbm"));
    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner.deadlinesFromBaseline(baseline);

    serve::ServeSpec spec;
    spec.arrivals.kind = serve::ArrivalKind::Poisson;
    spec.arrivals.rate = 1.0;
    spec.queueCapacity = 32;
    spec.slos = {{0.99, 10.0}};
    spec.horizonSec = 20.0;
    spec.warmupSec = 2.0;

    OverheadResult out;
    auto runOnce = [&](bool instrumented) {
        obs::SpanCollector spans(hc.seed);
        harness::RunOptions opts;
        if (instrumented)
            opts.spans = &spans;
        auto res = runner.runServing(mix,
                                     core::schemeSpec(
                                         core::Scheme::Dirigent),
                                     spec, deadlines, opts);
        doNotOptimize(res.arrivals);
        if (instrumented)
            out.spansPerRun = spans.spans().size();
    };
    // Interleaved arms (order swapped each rep) so host-load drift
    // cannot bias the ratio; warmup also absorbs the runner's one-time
    // lazy profiling so it bills to neither arm.
    std::tie(out.detached, out.instrumented) = bench::measurePairMedian(
        [&] { runOnce(false); }, [&] { runOnce(true); }, reps, warmup);

    if (hadEnv)
        ::setenv("DIRIGENT_FAST_PATH", saved.c_str(), 1);
    else
        ::unsetenv("DIRIGENT_FAST_PATH");
    return out;
}

void
appendMeasuredJson(std::ostringstream &out, const bench::Measured &m)
{
    out << "{\"median_sec\": " << m.medianSec
        << ", \"min_sec\": " << m.minSec << ", \"max_sec\": " << m.maxSec
        << "}";
}

std::string
formatJson(const OverheadResult &overhead, int reps, int warmup)
{
    std::ostringstream out;
    out << std::setprecision(12);
    out << "{\n";
    out << "  \"schema_version\": 1,\n";
    out << "  \"bench\": \"span_overhead\",\n";
    out << "  \"reps\": " << reps << ",\n";
    out << "  \"warmup\": " << warmup << ",\n";
    out << "  \"context\": {\"compiler\": " << obs::jsonQuote(__VERSION__)
        << ", \"build_type\": "
        << obs::jsonQuote(DIRIGENT_BENCH_BUILD_TYPE)
        << ", \"checker\": " << (check::enabled() ? "true" : "false")
        << "},\n";
    out << "  \"serving\": {\n    \"detached\": ";
    appendMeasuredJson(out, overhead.detached);
    out << ",\n    \"instrumented\": ";
    appendMeasuredJson(out, overhead.instrumented);
    out << ",\n    \"spans_per_run\": " << overhead.spansPerRun;
    out << ",\n    \"overhead_pct\": " << overhead.overheadPct()
        << "\n  }\n}\n";
    return out.str();
}

void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--reps N] [--warmup N] [--json FILE]\n";
}

} // namespace

int
main(int argc, char **argv)
{
    int reps = 5;
    int warmup = 1;
    std::string jsonPath;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--reps") {
            reps = std::stoi(next());
        } else if (arg == "--warmup") {
            warmup = std::stoi(next());
        } else if (arg == "--json") {
            jsonPath = next();
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    OverheadResult overhead = benchServingPair(reps, warmup);
    std::cout << strfmt(
        "Span overhead (serving run, median of %d reps):\n"
        "  detached %.3f ms  instrumented %.3f ms  (%zu spans)  "
        "overhead %+.2f%%\n",
        reps, overhead.detached.medianSec * 1e3,
        overhead.instrumented.medianSec * 1e3, overhead.spansPerRun,
        overhead.overheadPct());

    if (!jsonPath.empty()) {
        std::string text = formatJson(overhead, reps, warmup);
        if (jsonPath == "-") {
            std::cout << text;
        } else {
            std::ofstream out(jsonPath);
            if (!out) {
                std::cerr << "cannot write " << jsonPath << "\n";
                return 1;
            }
            out << text;
            std::cout << "wrote " << jsonPath << "\n";
        }
    }
    return 0;
}
