/**
 * @file
 * Table 1: the FG and BG benchmark inventory, with the modelled
 * workload parameters behind each entry.
 */

#include <iostream>

#include "common/table.h"
#include "common/strfmt.h"
#include "workload/benchmarks.h"

using namespace dirigent;

int
main()
{
    const auto &lib = workload::BenchmarkLibrary::instance();

    printBanner(std::cout, "Table 1: FG and BG Benchmarks");
    TextTable table({"Type", "Name", "Description"});
    for (const auto &bench : lib.all()) {
        table.addRow({workload::categoryName(bench.category), bench.name,
                      bench.description});
    }
    table.print(std::cout);

    printBanner(std::cout, "Modelled phase programs");
    TextTable detail({"Name", "phase", "instr (G)", "CPI", "APKI",
                      "WS (MiB)", "max hit", "MLP", "loop"});
    for (const auto &bench : lib.all()) {
        for (const auto &ph : bench.program.phases) {
            detail.addRow({bench.name, ph.name,
                           TextTable::num(ph.instructions / 1e9, 2),
                           TextTable::num(ph.cpiBase, 2),
                           TextTable::num(ph.llcApki, 1),
                           TextTable::num(ph.workingSet / (1 << 20), 1),
                           TextTable::num(ph.maxHitRatio, 2),
                           TextTable::num(ph.mlp, 1),
                           bench.program.loop ? "yes" : "no"});
        }
    }
    detail.print(std::cout);

    std::cout << "\nCSV:\n";
    CsvWriter csv(std::cout);
    csv.row({"type", "name", "description"});
    for (const auto &bench : lib.all())
        csv.row({workload::categoryName(bench.category), bench.name,
                 bench.description});
    return 0;
}
