/**
 * @file
 * Figure 12: distribution of BG-core DVFS frequencies under
 * DirigentFreq and full Dirigent for the ferret + 5×RS mix. With the
 * cache partitioned, BG tasks can safely run at much higher frequency.
 */

#include <iostream>
#include <sstream>

#include "bench_util.h"

using namespace dirigent;

int
main()
{
    harness::ExperimentRunner runner(bench::defaultConfig(60));
    printBanner(std::cout,
                "Fig. 12: BG core frequency distribution, "
                "ferret + 5x RS");

    auto mix =
        workload::makeMix({"ferret"}, workload::BgSpec::single("rs"));
    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner.deadlinesFromBaseline(baseline);

    auto freqOnly =
        runner.run(mix, core::Scheme::DirigentFreq, deadlines);
    auto full = runner.run(mix, core::Scheme::Dirigent, deadlines);

    auto fractions = [](const harness::SchemeRunResult &res) {
        double total = 0.0;
        for (uint64_t n : res.bgGradeResidency)
            total += double(n);
        std::vector<double> out;
        for (uint64_t n : res.bgGradeResidency)
            out.push_back(total > 0.0 ? double(n) / total : 0.0);
        return out;
    };
    auto fo = fractions(freqOnly);
    auto fu = fractions(full);

    TextTable table({"BG core frequency", "DirigentFreq", "Dirigent"});
    std::cout << "\nCSV:\n";
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"freq_ghz", "dirigentfreq", "dirigent"});
    for (size_t g = 0; g < fo.size(); ++g) {
        std::string label = strfmt("%.1fGHz", freqOnly.ladderGhz[g]);
        table.addRow({label, TextTable::num(fo[g], 3),
                      TextTable::num(fu[g], 3)});
        csv.numericRow({freqOnly.ladderGhz[g], fo[g], fu[g]});
    }
    table.print(std::cout);
    std::cout << "\n" << csvBuf.str();

    double meanFo = 0.0, meanFu = 0.0;
    for (size_t g = 0; g < fo.size(); ++g) {
        meanFo += fo[g] * freqOnly.ladderGhz[g];
        meanFu += fu[g] * full.ladderGhz[g];
    }
    std::cout << "\nmean BG frequency: DirigentFreq "
              << TextTable::num(meanFo, 2) << " GHz, Dirigent "
              << TextTable::num(meanFu, 2) << " GHz\n";

    std::cout << "\nPaper expectation: partitioning the cache removes "
                 "most FG/BG contention, so\nDirigent runs BG cores at "
                 "much higher frequency (mode at 2.0 GHz) than\n"
                 "DirigentFreq.\n";
    return 0;
}
