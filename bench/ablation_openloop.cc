/**
 * @file
 * Extension: open-loop tail latency.
 *
 * The paper argues (Fig. 2) that execution-time variance forces
 * over-provisioning; under queueing, variance also inflates *response
 * time tails* directly. This bench offers Poisson arrivals of raytrace
 * requests to a node backfilled with 5 bwaves tasks and sweeps the
 * offered load, comparing response-time percentiles under free
 * contention (Baseline) vs under the full Dirigent runtime.
 */

#include <iostream>
#include <sstream>

#include "bench_util.h"
#include "common/stats.h"
#include "dirigent/profiler.h"
#include "harness/arrivals.h"
#include "machine/cat.h"
#include "machine/cpufreq.h"
#include "workload/benchmarks.h"

using namespace dirigent;

namespace {

struct TailResult
{
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
    size_t served = 0;
};

TailResult
runOpenLoop(bool useDirigent, Time meanInterarrival, Time deadline,
            const core::Profile &profile, Time span, uint64_t seed)
{
    const auto &lib = workload::BenchmarkLibrary::instance();
    machine::MachineConfig mcfg;
    mcfg.seed = seed;
    machine::Machine machine(mcfg);
    sim::Engine engine(machine, mcfg.maxQuantum);
    machine::CpuFreqGovernor governor(machine, engine);
    machine::CatController cat(machine);

    machine::ProcessSpec fg;
    fg.name = "raytrace";
    fg.program = &lib.get("raytrace").program;
    fg.core = 0;
    fg.foreground = true;
    machine::Pid fgPid = machine.spawnProcess(fg);
    for (unsigned c = 1; c < 6; ++c) {
        machine::ProcessSpec bg;
        bg.name = "bwaves";
        bg.program = &lib.get("bwaves").program;
        bg.core = c;
        bg.foreground = false;
        machine.spawnProcess(bg);
    }

    std::unique_ptr<core::DirigentRuntime> runtime;
    if (useDirigent) {
        core::RuntimeConfig rcfg;
        rcfg.runtimeCore = 1;
        runtime = std::make_unique<core::DirigentRuntime>(
            machine, engine, governor, cat, rcfg);
        runtime->addForeground(fgPid, &profile, deadline);
        runtime->start();
    }

    harness::ArrivalDriver driver(engine, machine, fgPid,
                                  meanInterarrival,
                                  Rng(seed).fork(0xA221),
                                  runtime.get());
    driver.start();
    engine.runUntil(span);
    driver.stop();
    if (runtime)
        runtime->stop();

    auto responses = driver.responseTimes();
    TailResult result;
    result.served = responses.size();
    result.p50 = percentile(responses, 0.50);
    result.p95 = percentile(responses, 0.95);
    result.p99 = percentile(responses, 0.99);
    return result;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Extension: open-loop tail latency "
                "(raytrace requests + 5x bwaves)");

    const uint64_t seed = harness::envSeed(77);
    const Time span =
        Time::sec(double(harness::envExecutions(40)) * 2.5);

    machine::MachineConfig mcfg;
    core::OfflineProfiler profiler;
    const auto &lib = workload::BenchmarkLibrary::instance();
    core::Profile profile =
        profiler.profileAlone(lib.get("raytrace"), mcfg);
    // Deadline per request: 1.15× the standalone service time.
    Time deadline = profile.totalTime() * 1.15;
    std::cout << "service time standalone "
              << TextTable::num(profile.totalTime().sec(), 3)
              << " s; per-request deadline "
              << TextTable::num(deadline.sec(), 3) << " s; window "
              << TextTable::num(span.sec(), 0) << " s\n";

    TextTable table({"offered load", "config", "p50 (s)", "p95 (s)",
                     "p99 (s)", "served"});
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"load", "config", "p50", "p95", "p99", "served"});

    // Offered load relative to the *contended* Baseline service rate
    // (~0.84 s per request).
    for (double load : {0.4, 0.6, 0.8, 0.9}) {
        Time interarrival = Time::sec(0.84 / load);
        auto base = runOpenLoop(false, interarrival, deadline, profile,
                                span, seed);
        auto diri = runOpenLoop(true, interarrival, deadline, profile,
                                span, seed);
        for (const auto &[name, res] :
             {std::pair<const char *, TailResult &>{"Baseline", base},
              {"Dirigent", diri}}) {
            table.addRow({strfmt("%.0f%%", load * 100.0), name,
                          TextTable::num(res.p50, 3),
                          TextTable::num(res.p95, 3),
                          TextTable::num(res.p99, 3),
                          strfmt("%zu", res.served)});
            csv.row({strfmt("%.2f", load), name,
                     strfmt("%.4f", res.p50), strfmt("%.4f", res.p95),
                     strfmt("%.4f", res.p99),
                     strfmt("%zu", res.served)});
        }
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n" << csvBuf.str();

    std::cout << "\nExpectation: at low load the two configs are "
                 "similar (service dominates);\nas load rises, "
                 "Baseline's service-time variance inflates the "
                 "p95/p99 response\ntails through queueing while "
                 "Dirigent's low-variance service keeps the tail\n"
                 "close to the median — the open-loop face of the "
                 "paper's Fig. 2 argument.\n";
    return 0;
}
