/**
 * @file
 * Figure 8: exhaustive search over static FG partition sizes for the
 * streamcluster + 5×PCA mix (mean FG execution time vs FG ways), plus
 * the convergence trace of Dirigent's coarse-time-scale heuristic,
 * which the paper reports reaching the knee within ~32 executions
 * (5 coarse invocations).
 */

#include <iostream>
#include <sstream>

#include "common/table.h"
#include "common/strfmt.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "workload/mix.h"

using namespace dirigent;

int
main()
{
    harness::HarnessConfig cfg;
    cfg.executions = harness::envExecutions(25);
    cfg.seed = harness::envSeed(cfg.seed);
    harness::ExperimentRunner runner(cfg);

    printBanner(std::cout,
                "Fig. 8: exhaustive FG-partition search "
                "(streamcluster + 5x PCA)");

    auto mix = workload::makeMix({"streamcluster"},
                                 workload::BgSpec::single("pca"));
    // Deadlines for the Dirigent convergence run.
    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner.deadlinesFromBaseline(baseline);

    // Exhaustive static sweep: BG cores at min frequency (StaticBoth
    // semantics), FG partition swept over the paper's 2–18 range.
    TextTable table({"FG ways", "exec time mean (s)",
                     "normalized to 2 ways"});
    std::cout << "\nCSV:\n";
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"fg_ways", "exec_mean_s", "exec_norm"});
    double base = 0.0;
    double bestMean = 1e18;
    unsigned knee = 0;
    std::vector<double> means;
    for (unsigned ways = 2; ways <= 18; ++ways) {
        harness::RunOptions opts;
        opts.staticFgWays = ways;
        auto res = runner.run(mix, core::Scheme::StaticBoth, deadlines,
                              opts);
        double mean = res.fgDurationMean();
        means.push_back(mean);
        if (ways == 2)
            base = mean;
        table.addRow({strfmt("%u", ways), TextTable::num(mean, 3),
                      TextTable::num(mean / base, 3)});
        csv.numericRow({double(ways), mean, mean / base});
        if (mean < bestMean)
            bestMean = mean;
    }
    // Knee: the smallest partition within 2% of the best mean.
    for (unsigned ways = 2; ways <= 18; ++ways) {
        if (means[ways - 2] <= bestMean * 1.02) {
            knee = ways;
            break;
        }
    }
    table.print(std::cout);
    std::cout << "\nknee of the exhaustive-search curve: " << knee
              << " ways\n";
    std::cout << "\n" << csvBuf.str();

    // Dirigent's coarse-controller convergence trace.
    printBanner(std::cout, "Coarse-controller convergence (Dirigent)");
    harness::HarnessConfig convergeCfg = cfg;
    convergeCfg.executions = std::max(cfg.executions, 40u);
    harness::ExperimentRunner convergeRunner(convergeCfg);
    auto dirigent =
        convergeRunner.run(mix, core::Scheme::Dirigent, deadlines);
    TextTable conv({"after exec", "FG ways", "heuristic"});
    for (const auto &d : dirigent.partitionDecisions) {
        conv.addRow({strfmt("%lu", (unsigned long)d.executionIndex),
                     strfmt("%u", d.fgWays),
                     d.heuristic[0] ? d.heuristic : "-"});
    }
    conv.print(std::cout);
    std::cout << "converged partition: " << dirigent.finalFgWays
              << " ways (exhaustive knee: " << knee << ")\n";

    std::cout << "\nPaper expectation: FG time improves as the "
                 "partition grows, with the knee\nat ~5 ways; "
                 "Dirigent's heuristic converges to the same partition "
                 "within\n~32 executions (5 coarse invocations).\n";
    return 0;
}
