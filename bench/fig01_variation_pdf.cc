/**
 * @file
 * Figure 1: completion-time probability density of a foreground task
 * run standalone, under free contention, and under Dirigent (the
 * paper's "ideal" curve: throughput and latency targets met exactly,
 * variance minimized).
 */

#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "common/strfmt.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "workload/mix.h"

using namespace dirigent;

int
main()
{
    harness::HarnessConfig cfg;
    cfg.executions = harness::envExecutions(60);
    cfg.seed = harness::envSeed(cfg.seed);
    harness::ExperimentRunner runner(cfg);

    printBanner(std::cout,
                "Fig. 1: FG completion-time PDF (ferret + 5x bwaves)");

    auto mix = workload::makeMix({"ferret"},
                                 workload::BgSpec::single("bwaves"));
    auto alone = runner.runStandalone("ferret");
    auto baseline = runner.run(mix, core::Scheme::Baseline, {});
    auto deadlines = runner.deadlinesFromBaseline(baseline);
    harness::applyDeadlines(baseline, deadlines);
    auto dirigent = runner.run(mix, core::Scheme::Dirigent, deadlines);

    double deadline = deadlines.at("ferret").sec();

    TextTable stats({"curve", "mean (s)", "std (s)", "success"});
    stats.addRow({"standalone", TextTable::num(alone.fgDurationMean(), 3),
                  TextTable::num(alone.fgDurationStd(), 4), "-"});
    stats.addRow({"contention (Baseline)",
                  TextTable::num(baseline.fgDurationMean(), 3),
                  TextTable::num(baseline.fgDurationStd(), 4),
                  TextTable::pct(baseline.fgSuccessRatio())});
    stats.addRow({"ideal (Dirigent)",
                  TextTable::num(dirigent.fgDurationMean(), 3),
                  TextTable::num(dirigent.fgDurationStd(), 4),
                  TextTable::pct(dirigent.fgSuccessRatio())});
    stats.print(std::cout);
    std::cout << "deadline: " << TextTable::num(deadline, 3) << " s\n";

    // Common histogram range across the three curves.
    double lo = alone.fgDurationMean() * 0.9;
    double hi = baseline.fgDurationMean() +
                4.0 * baseline.fgDurationStd();
    const size_t bins = 40;
    auto densityOf = [&](const harness::SchemeRunResult &res) {
        Histogram h(lo, hi, bins);
        for (double d : res.pooledDurations())
            h.add(d);
        return h;
    };
    Histogram hAlone = densityOf(alone);
    Histogram hBase = densityOf(baseline);
    Histogram hDir = densityOf(dirigent);

    std::cout << "\nCSV (probability density):\n";
    CsvWriter csv(std::cout);
    csv.row({"time_s", "standalone", "contention", "dirigent"});
    for (size_t i = 0; i < bins; ++i) {
        csv.numericRow({hAlone.binCenter(i), hAlone.density(i),
                        hBase.density(i), hDir.density(i)});
    }

    std::cout << "\nPaper expectation: standalone completes well before "
                 "the deadline\n(headroom = wasted resources); "
                 "contention spreads past the deadline;\nDirigent "
                 "concentrates mass just inside the deadline.\n";
    return 0;
}
