/**
 * @file
 * Figure 9c: FG success ratio and BG throughput for the 15 multi-FG
 * workload mixes (5 FG/BG combinations × 1–3 concurrent FG processes)
 * under all five schemes.
 */

#include <iostream>

#include "bench_util.h"

using namespace dirigent;

int
main()
{
    harness::HarnessConfig config = bench::defaultConfig(30);
    printBanner(std::cout,
                "Fig. 9c: multi-FG workload mixes (5 combos x "
                "{1,2,3} FG)");
    bench::runAndReport(config, workload::multiFgMixes());
    std::cout << "\nPaper expectation: trends match the single-FG "
                 "results; without partitioning,\nBG throughput "
                 "decreases with each added FG task (conservative "
                 "throttling for\nthe slowest FG), which cache "
                 "partitioning alleviates.\n";
    return 0;
}
