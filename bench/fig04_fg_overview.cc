/**
 * @file
 * Figure 4: overview of the FG workloads — execution time and LLC MPKI
 * standalone vs contended (1 FG core + 5 BG cores running bwaves).
 */

#include <iostream>
#include <sstream>

#include "common/table.h"
#include "common/strfmt.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "workload/benchmarks.h"
#include "workload/mix.h"

using namespace dirigent;

int
main()
{
    harness::HarnessConfig cfg;
    cfg.executions = harness::envExecutions(40);
    cfg.seed = harness::envSeed(cfg.seed);
    harness::ExperimentRunner runner(cfg);

    printBanner(std::cout,
                "Fig. 4: FG workloads, standalone vs contended "
                "(5x bwaves)");

    // Paper x-axis order.
    const std::vector<std::string> order = {
        "fluidanimate", "raytrace", "bodytrack", "ferret",
        "streamcluster"};

    TextTable table({"workload", "exec alone (s)", "exec contend (s)",
                     "MPKI alone", "MPKI contend", "slowdown",
                     "norm std contend"});
    std::cout << "\nCSV:\n";
    std::ostringstream csvBuf;
    CsvWriter csv(csvBuf);
    csv.row({"workload", "exec_alone_s", "exec_contend_s", "mpki_alone",
             "mpki_contend"});

    for (const auto &fg : order) {
        auto alone = runner.runStandalone(fg);
        auto mix =
            workload::makeMix({fg}, workload::BgSpec::single("bwaves"));
        auto contend = runner.run(mix, core::Scheme::Baseline, {});
        table.addRow({fg, TextTable::num(alone.fgDurationMean(), 3),
                      TextTable::num(contend.fgDurationMean(), 3),
                      TextTable::num(alone.fgMpki(), 2),
                      TextTable::num(contend.fgMpki(), 2),
                      TextTable::num(contend.fgDurationMean() /
                                         alone.fgDurationMean(),
                                     2),
                      TextTable::pct(contend.fgDurationStd() /
                                     contend.fgDurationMean())});
        csv.row({fg, strfmt("%.4f", alone.fgDurationMean()),
                 strfmt("%.4f", contend.fgDurationMean()),
                 strfmt("%.3f", alone.fgMpki()),
                 strfmt("%.3f", contend.fgMpki())});
    }
    table.print(std::cout);
    std::cout << "\n" << csvBuf.str();

    std::cout << "\nPaper expectation: completion times span ~0.5-1.6 s "
                 "standalone;\nMPKI and contention sensitivity rise "
                 "from fluidanimate to streamcluster.\n";
    return 0;
}
